// High-level facade over the whole system: build a delta-clustered sensor
// network from a dataset, keep it maintained under feature updates, and
// answer range / path queries — the end-to-end pipeline of the paper in one
// object.
//
//   ClusteredSensorNetwork::Options opts;
//   opts.delta = 0.4;
//   auto net = ClusteredSensorNetwork::Build(dataset, opts);
//   net->UpdateFeature(node, new_coefficients);   // Section 6 maintenance.
//   auto hits = net->RangeQuery(initiator, q, r); // Section 7.2.
//   auto path = net->SafePath(src, dst, danger, gamma);  // Section 7.3.
//
// The facade re-derives the index and backbone lazily after membership
// changes, and aggregates all communication into one ledger, broken down by
// phase (clustering / index build / maintenance / queries).
#ifndef ELINK_CORE_CLUSTERED_NETWORK_H_
#define ELINK_CORE_CLUSTERED_NETWORK_H_

#include <memory>
#include <optional>
#include <vector>

#include "cluster/elink.h"
#include "cluster/maintenance.h"
#include "common/status.h"
#include "data/dataset.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "index/path_query.h"
#include "index/path_query_protocol.h"
#include "index/query_protocol.h"
#include "index/range_query.h"

namespace elink {

/// \brief One clustered, queryable, maintainable sensor network.
class ClusteredSensorNetwork {
 public:
  struct Options {
    /// Definition 1's threshold.
    double delta = 1.0;
    /// Maintenance slack Delta (Section 6).
    double slack = 0.0;
    /// Scheduling technique; kExplicit also works asynchronously.
    ElinkMode mode = ElinkMode::kImplicit;
    /// Forwarded into ElinkConfig.
    double phi_fraction = 0.1;
    int max_switches = 4;
    bool synchronous = true;
    uint64_t seed = 1;
  };

  /// Clusters `dataset` with ELink and prepares the index layer.
  /// The dataset's topology/features/metric are copied in, so the facade
  /// owns everything it needs.
  static Result<std::unique_ptr<ClusteredSensorNetwork>> Build(
      const SensorDataset& dataset, const Options& options);

  // -- State inspection -------------------------------------------------------

  /// Current clustering (reflects maintenance-driven changes).
  const Clustering& clustering() const;

  int num_nodes() const { return topology_.num_nodes(); }

  /// Deployment topology (positions + radio adjacency) the network was
  /// built over.  The serving layer snapshots it when publishing views.
  const Topology& topology() const { return topology_; }

  /// The distance metric, shareable with read views that outlive a query.
  std::shared_ptr<const DistanceMetric> metric() const { return metric_; }
  int num_clusters() const { return clustering().num_clusters(); }
  double delta() const { return options_.delta; }

  /// Current feature of a node (latest update applied).
  const Feature& feature(int node) const;

  /// Communication ledger across all phases so far.  Categories follow the
  /// subsystem conventions (expand/ack/..., mtree_build, backbone_build,
  /// update_*, query_*, path_*).
  const MessageStats& total_stats() const { return stats_; }

  // -- Checker hooks (elink_check) --------------------------------------------
  //
  // The invariant checkers validate final cluster/index state from outside;
  // these accessors expose it (rebuilding lazily first, like the queries do).

  /// The current M-tree index over the cluster trees (Section 7.1).
  const ClusterIndex& cluster_index();

  /// The current leader backbone (Section 7.2).
  const Backbone& backbone();

  /// Per-node cluster-tree parent (parent[root] == root), matching
  /// cluster_index().
  const std::vector<int>& cluster_tree_parent();

  /// Cost of the initial clustering alone (paper message units).
  uint64_t clustering_cost_units() const { return clustering_cost_units_; }

  // -- Maintenance (Section 6) ------------------------------------------------

  /// Applies a feature update through the A1-A3 slack protocol.
  void UpdateFeature(int node, const Feature& updated);

  /// Verifies the maintained invariant (see MaintenanceSession).
  Status ValidateInvariant() const;

  // -- Queries (Section 7) ----------------------------------------------------

  /// All nodes whose current features are within `r` of `q`.
  RangeQueryResult RangeQuery(int initiator, const Feature& q, double r);

  /// A path from `source` to `destination` on which every node's feature is
  /// at least `gamma` from `danger`, if one exists.
  PathQueryResult SafePath(int source, int destination, const Feature& danger,
                           double gamma);

  // -- Distributed query execution (proto runtime) ----------------------------
  //
  // The engine-backed methods above answer from the centralized accounting
  // models; these run the same queries as actual message-passing protocols
  // in the event simulator (index/query_protocol.h and
  // index/path_query_protocol.h) and report real latencies and wire stats.

  /// Runs the range query as the distributed protocol over the simulated
  /// network.  The aggregate outcome matches RangeQuery's match count.
  Result<DistributedQueryOutcome> RangeQueryDistributed(int initiator,
                                                        const Feature& q,
                                                        double r);

  /// Runs the path query as the distributed protocol; outcome semantics
  /// match SafePath, with the protocol's completion acks added to the stats
  /// under "path_collect".
  Result<PathQueryResult> SafePathDistributed(int source, int destination,
                                              const Feature& danger,
                                              double gamma);

 private:
  ClusteredSensorNetwork(Topology topology,
                         std::shared_ptr<const DistanceMetric> metric,
                         Options options);

  /// (Re)builds cluster trees, M-tree, backbone, and engines from the
  /// current clustering + features; charges index-build messages.
  void RebuildIndex();

  /// Invalidate engines after membership or feature changes.
  void MarkDirty() { index_valid_ = false; }
  void EnsureIndex();

  Topology topology_;
  std::shared_ptr<const DistanceMetric> metric_;
  Options options_;

  std::unique_ptr<MaintenanceSession> maintenance_;
  MessageStats stats_;
  uint64_t clustering_cost_units_ = 0;
  uint64_t maintenance_units_seen_ = 0;

  // Index layer (lazily rebuilt).
  bool index_valid_ = false;
  std::vector<int> tree_parent_;
  std::unique_ptr<ClusterIndex> index_;
  std::unique_ptr<Backbone> backbone_;
  std::unique_ptr<RangeQueryEngine> range_engine_;
  std::unique_ptr<PathQueryEngine> path_engine_;
  std::unique_ptr<DistributedRangeQuery> range_protocol_;
  std::unique_ptr<DistributedPathQuery> path_protocol_;
};

}  // namespace elink

#endif  // ELINK_CORE_CLUSTERED_NETWORK_H_
