#include "core/clustered_network.h"

namespace elink {

ClusteredSensorNetwork::ClusteredSensorNetwork(
    Topology topology, std::shared_ptr<const DistanceMetric> metric,
    Options options)
    : topology_(std::move(topology)),
      metric_(std::move(metric)),
      options_(options) {}

Result<std::unique_ptr<ClusteredSensorNetwork>> ClusteredSensorNetwork::Build(
    const SensorDataset& dataset, const Options& options) {
  if (dataset.metric == nullptr) {
    return Status::InvalidArgument("dataset has no metric");
  }

  ElinkConfig cfg;
  cfg.delta = options.delta;
  cfg.slack = options.slack;
  cfg.phi_fraction = options.phi_fraction;
  cfg.max_switches = options.max_switches;
  cfg.synchronous = options.synchronous;
  cfg.seed = options.seed;
  Result<ElinkResult> clustered =
      RunElink(dataset.topology, dataset.features, *dataset.metric, cfg,
               options.mode);
  if (!clustered.ok()) return clustered.status();

  auto net = std::unique_ptr<ClusteredSensorNetwork>(
      new ClusteredSensorNetwork(dataset.topology, dataset.metric, options));
  net->stats_.Merge(clustered.value().stats);
  net->clustering_cost_units_ = clustered.value().stats.total_units();

  MaintenanceConfig mcfg;
  mcfg.delta = options.delta;
  mcfg.slack = options.slack;
  net->maintenance_ = std::make_unique<MaintenanceSession>(
      net->topology_, clustered.value().clustering, dataset.features,
      net->metric_, mcfg);
  net->RebuildIndex();
  return net;
}

const Clustering& ClusteredSensorNetwork::clustering() const {
  return maintenance_->clustering();
}

const Feature& ClusteredSensorNetwork::feature(int node) const {
  return maintenance_->current_features()[node];
}

void ClusteredSensorNetwork::UpdateFeature(int node, const Feature& updated) {
  maintenance_->UpdateFeature(node, updated);
  MarkDirty();
}

Status ClusteredSensorNetwork::ValidateInvariant() const {
  return maintenance_->ValidateRootDistanceInvariant(options_.delta +
                                                     2 * options_.slack);
}

void ClusteredSensorNetwork::RebuildIndex() {
  const Clustering& clustering = maintenance_->clustering();
  const std::vector<Feature>& features = maintenance_->current_features();
  tree_parent_ = BuildClusterTrees(clustering, topology_.adjacency);
  index_ = std::make_unique<ClusterIndex>(ClusterIndex::Build(
      clustering, tree_parent_, features, *metric_, &stats_));
  backbone_ = std::make_unique<Backbone>(
      Backbone::Build(clustering, topology_.adjacency, &stats_, &features,
                      metric_.get()));
  range_engine_ = std::make_unique<RangeQueryEngine>(
      clustering, *index_, *backbone_, features, *metric_, options_.delta);
  path_engine_ = std::make_unique<PathQueryEngine>(
      clustering, *index_, *backbone_, topology_.adjacency, features,
      *metric_, options_.delta);
  DistributedRangeQuery::ProtocolOptions qopt;
  qopt.synchronous = options_.synchronous;
  qopt.seed = options_.seed;
  range_protocol_ = std::make_unique<DistributedRangeQuery>(
      topology_, clustering, *index_, *backbone_, features, metric_, qopt);
  PathProtocolOptions popt;
  popt.synchronous = options_.synchronous;
  popt.seed = options_.seed;
  path_protocol_ = std::make_unique<DistributedPathQuery>(
      topology_, clustering, *index_, *backbone_, features, metric_, popt);
  index_valid_ = true;
}

void ClusteredSensorNetwork::EnsureIndex() {
  // Fold in maintenance messages recorded since the last sync.
  const uint64_t seen = maintenance_->stats().total_units();
  if (seen > maintenance_units_seen_) {
    MessageStats delta_stats;
    // Category detail is preserved by merging the whole ledger once at the
    // end of a run; here we only need the totals to stay consistent, so we
    // re-merge the difference under a single category.
    delta_stats.Record("maintenance",
                       static_cast<int>(seen - maintenance_units_seen_));
    stats_.Merge(delta_stats);
    maintenance_units_seen_ = seen;
  }
  if (!index_valid_) RebuildIndex();
}

const ClusterIndex& ClusteredSensorNetwork::cluster_index() {
  EnsureIndex();
  return *index_;
}

const Backbone& ClusteredSensorNetwork::backbone() {
  EnsureIndex();
  return *backbone_;
}

const std::vector<int>& ClusteredSensorNetwork::cluster_tree_parent() {
  EnsureIndex();
  return tree_parent_;
}

RangeQueryResult ClusteredSensorNetwork::RangeQuery(int initiator,
                                                    const Feature& q,
                                                    double r) {
  EnsureIndex();
  RangeQueryResult result = range_engine_->Query(initiator, q, r);
  stats_.Merge(result.stats);
  return result;
}

PathQueryResult ClusteredSensorNetwork::SafePath(int source, int destination,
                                                 const Feature& danger,
                                                 double gamma) {
  EnsureIndex();
  PathQueryResult result =
      path_engine_->Query(source, destination, danger, gamma);
  stats_.Merge(result.stats);
  return result;
}

Result<DistributedQueryOutcome> ClusteredSensorNetwork::RangeQueryDistributed(
    int initiator, const Feature& q, double r) {
  EnsureIndex();
  Result<DistributedQueryOutcome> out = range_protocol_->Run(initiator, q, r);
  if (out.ok()) stats_.Merge(out.value().stats);
  return out;
}

Result<PathQueryResult> ClusteredSensorNetwork::SafePathDistributed(
    int source, int destination, const Feature& danger, double gamma) {
  EnsureIndex();
  Result<PathQueryResult> out =
      path_protocol_->Run(source, destination, danger, gamma);
  if (out.ok()) stats_.Merge(out.value().stats);
  return out;
}

}  // namespace elink
