#include "proto/snapshot.h"

#include <cstring>

#include "proto/codec.h"
#include "proto/wire.h"

namespace elink {
namespace proto {

Status SnapshotWriter::AddSection(const std::string& name,
                                  std::vector<uint8_t> body) {
  for (const auto& [existing, bytes] : sections_) {
    if (existing == name) {
      return Status::InvalidArgument("snapshot: duplicate section '" + name +
                                     "'");
    }
  }
  sections_.emplace_back(name, std::move(body));
  return Status::OK();
}

std::vector<uint8_t> SnapshotWriter::Finish() const {
  std::vector<uint8_t> out;
  for (const uint8_t b : kSnapshotMagic) out.push_back(b);
  handshake_wire::Hello hello;
  hello.version_min = local_.min;
  hello.version_max = local_.max;
  wire::EncodeFrame(Encode(hello), &out);
  wire::PutVarint(sections_.size(), &out);
  for (const auto& [name, body] : sections_) {
    wire::PutString(name, &out);
    wire::PutVarint(body.size(), &out);
    const size_t body_start = out.size();
    out.insert(out.end(), body.begin(), body.end());
    uint32_t crc = wire::Crc32(
        reinterpret_cast<const uint8_t*>(name.data()), name.size());
    crc = wire::Crc32(out.data() + body_start, body.size(), crc);
    wire::PutU32Le(crc, &out);
  }
  return out;
}

Result<SnapshotReader> SnapshotReader::Parse(const uint8_t* data, size_t size,
                                             VersionRange local) {
  if (size < 4 || std::memcmp(data, kSnapshotMagic, 4) != 0) {
    return Status::InvalidArgument("snapshot: bad magic");
  }
  size_t hello_len = 0;
  Result<Message> hello_msg = wire::DecodeFrame(data + 4, size - 4, &hello_len);
  if (!hello_msg.ok()) {
    return Status::InvalidArgument("snapshot: bad hello frame: " +
                                   hello_msg.status().message());
  }
  // DecodeFrame leaves the category empty (it never travels); restore it so
  // the typed decoder's identity checks see a normal message.
  hello_msg->category = handshake_wire::Hello::kCategory;
  Result<handshake_wire::Hello> hello = Decode<handshake_wire::Hello>(*hello_msg);
  if (!hello.ok()) {
    return Status::InvalidArgument("snapshot: bad hello payload: " +
                                   hello.status().message());
  }
  if (hello->version_min < 0 || hello->version_max > 255 ||
      hello->version_min > hello->version_max) {
    return Status::InvalidArgument("snapshot: nonsensical version span");
  }
  VersionRange remote;
  remote.min = static_cast<uint8_t>(hello->version_min);
  remote.max = static_cast<uint8_t>(hello->version_max);
  Result<uint8_t> agreed = NegotiateVersion(local, remote);
  if (!agreed.ok()) return agreed.status();

  SnapshotReader reader;
  reader.version_ = *agreed;
  wire::ByteReader r(data + 4 + hello_len, size - 4 - hello_len);
  uint64_t nsections = 0;
  Status s = r.Varint(&nsections);
  if (!s.ok()) return s;
  if (nsections > wire::kMaxFieldCount) {
    return Status::InvalidArgument("snapshot: section count exceeds cap");
  }
  for (uint64_t i = 0; i < nsections; ++i) {
    std::string name;
    s = r.String(&name);
    if (!s.ok()) return s;
    uint64_t body_len = 0;
    s = r.Varint(&body_len);
    if (!s.ok()) return s;
    if (body_len > wire::kMaxBodyBytes || body_len + 4 > r.remaining()) {
      return Status::OutOfRange("snapshot: truncated section '" + name + "'");
    }
    const uint8_t* body = data + 4 + hello_len + r.offset();
    uint32_t want = wire::Crc32(
        reinterpret_cast<const uint8_t*>(name.data()), name.size());
    want = wire::Crc32(body, static_cast<size_t>(body_len), want);
    (void)r.Skip(static_cast<size_t>(body_len));  // In range: checked above.
    uint32_t got = 0;
    s = r.U32Le(&got);
    if (!s.ok()) return s;
    if (got != want) {
      return Status::InvalidArgument("snapshot: CRC mismatch in section '" +
                                     name + "'");
    }
    if (reader.sections_.count(name)) {
      return Status::InvalidArgument("snapshot: duplicate section '" + name +
                                     "'");
    }
    reader.order_.push_back(name);
    reader.sections_.emplace(name, std::vector<uint8_t>(body, body + body_len));
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes after archive");
  }
  return reader;
}

Result<SnapshotReader> SnapshotReader::Parse(const std::vector<uint8_t>& bytes,
                                             VersionRange local) {
  return Parse(bytes.data(), bytes.size(), local);
}

const std::vector<uint8_t>* SnapshotReader::section(
    const std::string& name) const {
  const auto it = sections_.find(name);
  return it == sections_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Section codecs.

std::vector<uint8_t> EncodeManifestSection(
    const std::map<std::string, std::string>& kv) {
  std::vector<uint8_t> out;
  wire::PutVarint(kv.size(), &out);
  for (const auto& [key, value] : kv) {
    wire::PutString(key, &out);
    wire::PutString(value, &out);
  }
  return out;
}

Result<std::map<std::string, std::string>> DecodeManifestSection(
    const std::vector<uint8_t>& body) {
  wire::ByteReader r(body.data(), body.size());
  uint64_t n = 0;
  Status s = r.Varint(&n);
  if (!s.ok()) return s;
  if (n > wire::kMaxFieldCount) {
    return Status::InvalidArgument("snapshot: manifest entry count cap");
  }
  std::map<std::string, std::string> kv;
  for (uint64_t i = 0; i < n; ++i) {
    std::string key, value;
    s = r.String(&key);
    if (!s.ok()) return s;
    s = r.String(&value);
    if (!s.ok()) return s;
    if (!kv.emplace(key, value).second) {
      return Status::InvalidArgument("snapshot: duplicate manifest key '" +
                                     key + "'");
    }
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes in manifest");
  }
  return kv;
}

std::vector<uint8_t> EncodeHorizonSection(const HorizonImage& h) {
  std::vector<uint8_t> out;
  wire::PutVarint(h.events, &out);
  wire::PutF64Le(h.now, &out);
  return out;
}

Result<HorizonImage> DecodeHorizonSection(const std::vector<uint8_t>& body) {
  wire::ByteReader r(body.data(), body.size());
  HorizonImage h;
  Status s = r.Varint(&h.events);
  if (!s.ok()) return s;
  s = r.F64Le(&h.now);
  if (!s.ok()) return s;
  if (r.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes in horizon");
  }
  return h;
}

std::vector<uint8_t> EncodeStatsSection(const MessageStats& stats) {
  std::vector<uint8_t> out;
  wire::PutVarint(stats.total_sends(), &out);
  wire::PutVarint(stats.total_units(), &out);
  wire::PutVarint(stats.total_bytes(), &out);
  wire::PutVarint(stats.dropped_sends(), &out);
  wire::PutVarint(stats.dropped_units(), &out);
  wire::PutVarint(stats.dropped_bytes(), &out);
  wire::PutVarint(stats.decode_errors(), &out);
  const std::vector<MessageStats::CategorySnapshot> cats = stats.Snapshot();
  wire::PutVarint(cats.size(), &out);
  for (const MessageStats::CategorySnapshot& c : cats) {
    wire::PutString(c.category, &out);
    wire::PutVarint(c.sends, &out);
    wire::PutVarint(c.units, &out);
    wire::PutVarint(c.bytes, &out);
    wire::PutVarint(c.dropped_sends, &out);
    wire::PutVarint(c.dropped_units, &out);
    wire::PutVarint(c.dropped_bytes, &out);
    wire::PutVarint(c.decode_errors, &out);
  }
  return out;
}

Result<StatsImage> DecodeStatsSection(const std::vector<uint8_t>& body) {
  wire::ByteReader r(body.data(), body.size());
  StatsImage img;
  Status s;
  uint64_t* const totals[] = {&img.total_sends,   &img.total_units,
                              &img.total_bytes,   &img.dropped_sends,
                              &img.dropped_units, &img.dropped_bytes,
                              &img.decode_errors};
  for (uint64_t* field : totals) {
    s = r.Varint(field);
    if (!s.ok()) return s;
  }
  uint64_t ncats = 0;
  s = r.Varint(&ncats);
  if (!s.ok()) return s;
  if (ncats > wire::kMaxFieldCount) {
    return Status::InvalidArgument("snapshot: category count cap");
  }
  for (uint64_t i = 0; i < ncats; ++i) {
    MessageStats::CategorySnapshot c;
    s = r.String(&c.category);
    if (!s.ok()) return s;
    uint64_t* const fields[] = {&c.sends,         &c.units,
                                &c.bytes,         &c.dropped_sends,
                                &c.dropped_units, &c.dropped_bytes,
                                &c.decode_errors};
    for (uint64_t* field : fields) {
      s = r.Varint(field);
      if (!s.ok()) return s;
    }
    img.categories.push_back(std::move(c));
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes in stats");
  }
  return img;
}

std::vector<uint8_t> EncodeNodeStatesSection(Network& network) {
  std::vector<uint8_t> out;
  const int n = network.num_nodes();
  wire::PutVarint(static_cast<uint64_t>(n), &out);
  std::vector<uint8_t> blob;
  for (int id = 0; id < n; ++id) {
    blob.clear();
    network.node(id)->EncodeSnapshotState(&blob);
    wire::PutVarint(blob.size(), &out);
    out.insert(out.end(), blob.begin(), blob.end());
  }
  return out;
}

}  // namespace proto
}  // namespace elink
