// One deploy -> run -> watchdog -> collect driver for all protocols.
//
// RunHarness owns the Network and centralizes the run-loop machinery each
// protocol driver used to duplicate:
//
//  * node installation with runtime binding (activity counter, trace hook);
//  * quiet-period completion detection — the watchdog that re-arms every
//    `quiet_timeout` and declares the run timed out when a full window
//    passes with no handler invocations (ELink's completion watchdog,
//    verbatim);
//  * an optional run horizon — a no-op event at `run_horizon` that keeps the
//    clock honest when the protocol dies en route (the query deadline);
//  * a per-message trace callback observing every delivered frame.
//
// Scheduling order is part of the determinism contract: the caller performs
// all protocol setup (timers, injected messages) on net() first; Run() then
// arms the watchdog, then the horizon, then drains the event queue — the
// exact insertion order of the drivers this replaces.
#ifndef ELINK_PROTO_HARNESS_H_
#define ELINK_PROTO_HARNESS_H_

#include <functional>
#include <memory>
#include <utility>

#include "proto/node.h"
#include "sim/network.h"
#include "sim/topology.h"

namespace elink {
namespace proto {

class RunHarness {
 public:
  struct Options {
    Network::Config net;
    /// Watchdog window: when > 0, the run is declared timed out after a full
    /// window with no protocol activity (unless `done` already reports
    /// success).  0 disables the watchdog.
    double quiet_timeout = 0.0;
    /// When > 0, a no-op event at this time keeps the simulation clock
    /// running to at least the horizon (deadline accounting).
    double run_horizon = 0.0;
    /// Event cap forwarded to Network::Run.
    uint64_t max_events = 200'000'000ULL;
  };

  struct Report {
    uint64_t events = 0;
    bool hit_event_cap = false;
    /// True when the watchdog fired with the protocol still incomplete.
    bool timed_out = false;
    double end_time = 0.0;
  };

  RunHarness(const Topology& topology, const Options& options)
      : options_(options), net_(topology, options.net) {}

  Network& net() { return net_; }
  const Network& net() const { return net_; }

  using NodeFactory = std::function<std::unique_ptr<ProtocolNode>(int)>;

  /// Installs factory(id) for every node, binding the harness runtime
  /// (activity counter + trace hook) before each node's install runs.
  void InstallNodes(const NodeFactory& factory);

  /// Completion predicate consulted by the watchdog: when it returns true
  /// the watchdog stands down without declaring a timeout.
  void set_done(std::function<bool()> done) { done_ = std::move(done); }

  /// Observer for every frame delivered to any node (including transport
  /// acks and duplicates).  Set before Run().
  void set_trace(TraceFn trace) { trace_ = std::move(trace); }

  /// Installs a SimObserver (telemetry/tracer) on the run: the network
  /// reports sends/delivers/drops/timers to it, the harness adds watchdog
  /// arm/fire and run-end events.  Null detaches.  Set before Run().
  void set_observer(SimObserver* observer) {
    observer_ = observer;
    net_.set_observer(observer);
  }

  /// Total handler invocations (messages + timers) across all nodes.
  uint64_t activity() const { return activity_; }

  /// Arms the watchdog and horizon, then drains the event queue.  May be
  /// called repeatedly (incremental protocols re-enter between updates).
  Report Run();

 private:
  void WatchdogTick();

  Options options_;
  Network net_;
  SimObserver* observer_ = nullptr;
  TraceFn trace_;
  std::function<bool()> done_;
  uint64_t activity_ = 0;
  uint64_t watchdog_last_seen_ = 0;
  bool timed_out_ = false;
};

}  // namespace proto
}  // namespace elink

#endif  // ELINK_PROTO_HARNESS_H_
