#include "proto/harness.h"

namespace elink {
namespace proto {

void RunHarness::InstallNodes(const NodeFactory& factory) {
  for (int id = 0; id < net_.num_nodes(); ++id) {
    std::unique_ptr<ProtocolNode> node = factory(id);
    ELINK_CHECK(node != nullptr);
    // Bind before install: OnInstall (channel attach, OnReady) may already
    // need the runtime hooks in place.
    node->BindRuntime(&activity_, &trace_);
    net_.InstallNode(id, std::move(node));
  }
}

RunHarness::Report RunHarness::Run() {
  if (options_.quiet_timeout > 0.0) {
    timed_out_ = false;
    watchdog_last_seen_ = activity_;
    if (observer_ != nullptr) {
      observer_->OnWatchdogArm(net_.Now(), options_.quiet_timeout);
    }
    net_.ScheduleAfter(options_.quiet_timeout, [this] { WatchdogTick(); });
  }
  if (options_.run_horizon > 0.0) {
    net_.ScheduleAfter(options_.run_horizon, [] {});
  }
  Report report;
  report.events = net_.Run(options_.max_events);
  report.hit_event_cap = net_.hit_event_cap();
  report.timed_out = timed_out_;
  report.end_time = net_.Now();
  if (observer_ != nullptr) {
    observer_->OnRunEnd(report.end_time, report.events, report.timed_out,
                        report.hit_event_cap);
  }
  return report;
}

void RunHarness::WatchdogTick() {
  // Quiet-period completion detection: a full window with no handler
  // activity and no success verdict means lost waves or dead coordinators —
  // report "timed out" instead of letting the drained queue masquerade as a
  // protocol error.
  if ((done_ && done_()) || timed_out_) return;
  if (activity_ == watchdog_last_seen_) {
    timed_out_ = true;
    if (observer_ != nullptr) observer_->OnWatchdogFire(net_.Now());
    return;
  }
  watchdog_last_seen_ = activity_;
  if (observer_ != nullptr) {
    observer_->OnWatchdogArm(net_.Now(), options_.quiet_timeout);
  }
  net_.ScheduleAfter(options_.quiet_timeout, [this] { WatchdogTick(); });
}

}  // namespace proto
}  // namespace elink
