// Typed message schemas over sim::Message.
//
// Every protocol message is described once as a plain struct ("schema") and
// converted to/from the wire Message by the templates here, instead of each
// handler indexing msg.ints / msg.doubles by hand.  Encoding is infallible;
// decoding is bounds-checked and returns Result<M>, so a truncated or
// malformed frame becomes a protocol-level error, never undefined behavior.
//
// A schema declares, in wire order:
//
//   struct Expand {
//     static constexpr int kType = 1;          // Message::type tag.
//     static constexpr const char* kCategory = "expand";
//     long long root = 0;                      // -> Message::ints
//     long long level = 0;                     // -> Message::ints
//     std::vector<double> feature;             // -> Message::doubles
//     template <class V> void VisitFields(V& v) {
//       v.I64(root);
//       v.I64(level);
//       v.Block(feature);
//     }
//     bool operator==(const Expand&) const = default;
//   };
//
// Field kinds:
//   I64    — required long long, appended to Message::ints.
//   OptI64 — std::optional<long long>; optional trailing int (present iff the
//            wire message carries it).  Optionals must follow all required
//            ints of the schema.
//   F64    — required double, appended to Message::doubles.
//   Block  — std::vector<double> of variable length (feature vectors, query
//            payloads).  At most one per schema; its decoded length is
//            whatever the fixed F64 fields leave over.
//
// Decode<M> verifies the type tag and the ints/doubles arity before any
// element access: too-short ints, a doubles array that cannot satisfy the
// fixed fields, or (for block-less schemas) surplus doubles all yield an
// error Status.  Payload layout is exactly what the hand-rolled encoders
// produced, so ports of existing protocols stay bit-identical on the wire.
#ifndef ELINK_PROTO_CODEC_H_
#define ELINK_PROTO_CODEC_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/message.h"

namespace elink {
namespace proto {

namespace internal {

struct EncodeVisitor {
  Message* msg;
  void I64(const long long& v) { msg->ints.push_back(v); }
  void OptI64(const std::optional<long long>& v) {
    if (v.has_value()) msg->ints.push_back(*v);
  }
  void F64(const double& v) { msg->doubles.push_back(v); }
  void Block(const std::vector<double>& v) {
    msg->doubles.insert(msg->doubles.end(), v.begin(), v.end());
  }
};

/// Counts a schema's wire arity; runs on a default-constructed instance.
struct ShapeVisitor {
  size_t required_ints = 0;
  size_t optional_ints = 0;
  size_t fixed_doubles = 0;
  bool has_block = false;
  void I64(long long&) { ++required_ints; }
  void OptI64(std::optional<long long>&) { ++optional_ints; }
  void F64(double&) { ++fixed_doubles; }
  void Block(std::vector<double>&) { has_block = true; }
};

struct DecodeVisitor {
  const Message* msg;
  size_t block_len = 0;
  size_t int_cursor = 0;
  size_t dbl_cursor = 0;
  void I64(long long& out) { out = msg->ints[int_cursor++]; }
  void OptI64(std::optional<long long>& out) {
    if (int_cursor < msg->ints.size()) {
      out = msg->ints[int_cursor++];
    } else {
      out.reset();
    }
  }
  void F64(double& out) { out = msg->doubles[dbl_cursor++]; }
  void Block(std::vector<double>& out) {
    out.assign(msg->doubles.begin() + static_cast<long>(dbl_cursor),
               msg->doubles.begin() + static_cast<long>(dbl_cursor + block_len));
    dbl_cursor += block_len;
  }
};

}  // namespace internal

/// Serializes a schema instance into a wire Message.  Field order in
/// VisitFields is wire order; type/category come from the schema constants.
template <typename M>
Message Encode(const M& m) {
  Message msg;
  msg.type = M::kType;
  msg.category = M::kCategory;
  internal::EncodeVisitor v{&msg};
  // VisitFields is non-const so one definition serves encode and decode; the
  // encode visitor only reads through the references.
  const_cast<M&>(m).VisitFields(v);
  return msg;
}

/// Parses a wire Message into schema M, verifying the type tag and that the
/// ints/doubles arrays satisfy the schema's arity *before* any element is
/// touched.  Malformed frames (wrong type, truncated or surplus fields)
/// return an error Status.
template <typename M>
Result<M> Decode(const Message& msg) {
  M out{};
  if (msg.type != M::kType) {
    return Status::InvalidArgument(
        std::string(M::kCategory) + ": wire type " + std::to_string(msg.type) +
        " does not match schema type " + std::to_string(M::kType));
  }
  internal::ShapeVisitor shape;
  out.VisitFields(shape);
  const size_t ni = msg.ints.size();
  if (ni < shape.required_ints ||
      ni > shape.required_ints + shape.optional_ints) {
    return Status::OutOfRange(
        std::string(M::kCategory) + ": message carries " + std::to_string(ni) +
        " ints, schema expects " + std::to_string(shape.required_ints) +
        (shape.optional_ints > 0
             ? ".." + std::to_string(shape.required_ints + shape.optional_ints)
             : ""));
  }
  const size_t nd = msg.doubles.size();
  if (shape.has_block ? nd < shape.fixed_doubles : nd != shape.fixed_doubles) {
    return Status::OutOfRange(
        std::string(M::kCategory) + ": message carries " + std::to_string(nd) +
        " doubles, schema expects " +
        (shape.has_block ? ">= " : "exactly ") +
        std::to_string(shape.fixed_doubles));
  }
  internal::DecodeVisitor v{&msg,
                            shape.has_block ? nd - shape.fixed_doubles : 0};
  out.VisitFields(v);
  return out;
}

}  // namespace proto
}  // namespace elink

#endif  // ELINK_PROTO_CODEC_H_
