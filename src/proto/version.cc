#include "proto/version.h"

#include "common/strings.h"

namespace elink {
namespace proto {

Result<uint8_t> NegotiateVersion(const VersionRange& local,
                                 const VersionRange& remote) {
  const uint8_t lo = local.min > remote.min ? local.min : remote.min;
  const uint8_t hi = local.max < remote.max ? local.max : remote.max;
  if (lo > hi) {
    return Status::FailedPrecondition(StringPrintf(
        "wire: no common version (local %u..%u, remote %u..%u)", local.min,
        local.max, remote.min, remote.max));
  }
  return hi;
}

handshake_wire::Hello VersionHandshake::MakeHello() {
  if (state_ == State::kIdle) state_ = State::kHelloSent;
  handshake_wire::Hello hello;
  hello.version_min = local_.min;
  hello.version_max = local_.max;
  return hello;
}

Result<uint8_t> VersionHandshake::OnHello(
    const handshake_wire::Hello& hello) {
  if (state_ == State::kEstablished) return agreed_;
  if (state_ == State::kRejected) {
    return Status::FailedPrecondition("wire: handshake already rejected");
  }
  if (hello.version_min < 0 || hello.version_max > 255 ||
      hello.version_min > hello.version_max) {
    state_ = State::kRejected;
    return Status::InvalidArgument(StringPrintf(
        "wire: malformed hello span %lld..%lld", hello.version_min,
        hello.version_max));
  }
  VersionRange remote;
  remote.min = static_cast<uint8_t>(hello.version_min);
  remote.max = static_cast<uint8_t>(hello.version_max);
  Result<uint8_t> agreed = NegotiateVersion(local_, remote);
  if (!agreed.ok()) {
    state_ = State::kRejected;
    return agreed;
  }
  state_ = State::kEstablished;
  agreed_ = *agreed;
  return agreed_;
}

void VersionHandshake::OnReject(const handshake_wire::Reject& reject) {
  (void)reject;
  state_ = State::kRejected;
}

handshake_wire::Reject VersionHandshake::MakeReject() const {
  handshake_wire::Reject reject;
  reject.version_min = local_.min;
  reject.version_max = local_.max;
  return reject;
}

}  // namespace proto
}  // namespace elink
