#include "proto/node.h"

#include "proto/wire.h"

namespace elink {
namespace proto {

void ProtocolNode::EncodeSnapshotState(std::vector<uint8_t>* out) const {
  wire::PutU8(reliable_enabled_ ? 1 : 0, out);
  channel_.EncodeSnapshotState(out);
  OnEncodeSnapshotState(out);
}

void ProtocolNode::HandleMessage(int from, const Message& msg) {
  // The activity counter ticks for every handler invocation — including
  // transport acks and duplicates — matching the quiet-period semantics the
  // protocols' hand-written watchdogs used.
  if (activity_ != nullptr) ++*activity_;
  if (trace_ != nullptr && *trace_) (*trace_)(network()->Now(), from, id(), msg);
  if (channel_.attached() && channel_.OnMessage(from, msg)) return;
  DispatchMessage(from, msg);
}

void ProtocolNode::HandleTimer(int timer_id) {
  if (activity_ != nullptr) ++*activity_;
  if (channel_.attached() && channel_.OnTimer(timer_id)) return;
  OnProtocolTimer(timer_id);
}

void ProtocolNode::OnRestart() {
  // A restart is activity: a run is not quiet while nodes are still being
  // repaired and re-integrating.
  if (activity_ != nullptr) ++*activity_;
  if (channel_.attached()) channel_.Reset();
  OnNodeRestart();
}

void ProtocolNode::OnNeighborChange(int neighbor, bool up) {
  if (activity_ != nullptr) ++*activity_;
  OnNeighborUpdate(neighbor, up);
}

void ProtocolNode::OnInstall() {
  if (reliable_enabled_) {
    channel_.Attach(network(), id(), channel_config_);
    channel_.set_give_up(
        [this](int to, const Message& m) { OnGiveUp(to, m); });
  }
  OnReady();
}

void ProtocolNode::DispatchMessage(int from, const Message& msg) {
  if (msg.type >= 0 && msg.type < static_cast<int>(handlers_.size()) &&
      handlers_[static_cast<size_t>(msg.type)]) {
    handlers_[static_cast<size_t>(msg.type)](from, msg);
    return;
  }
  // No handler registered for this type: a corrupted or foreign frame.
  network()->NoteDecodeError(id(), msg.category);
  OnBadMessage(from, msg,
               Status::InvalidArgument("no handler for message type " +
                                       std::to_string(msg.type)));
}

}  // namespace proto
}  // namespace elink
