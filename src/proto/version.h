// Schema-version negotiation for the byte wire format (proto/wire.h).
//
// Two endpoints (or a snapshot writer and a later reader) may speak
// different wire versions.  Before exchanging data frames they negotiate:
// each side announces the [min, max] version span it supports in a Hello
// frame; the agreed version is the highest one inside both spans, and a pair
// of spans with no overlap is rejected gracefully (a Reject frame naming the
// speaker's span, never a crash or a misparsed payload).
//
// The handshake is itself carried over the byte codec: Hello and Reject are
// ordinary field-visitor schemas with reserved packet ids, so they
// round-trip through Encode -> EncodeFrame -> DecodeFrame -> Decode like any
// protocol message.  The frame's own version byte is pinned to
// kWireVersionMin for Hello/Reject frames by convention — every
// implementation of any version can parse them, which is what makes the
// negotiation able to *reach* disagreement instead of tripping over it.
//
// State machine (one per directed peering):
//
//   kIdle --MakeHello()--> kHelloSent --OnHello(compatible)--> kEstablished
//                                     \-OnHello(disjoint)----> kRejected
//                                     \-OnReject()-----------> kRejected
//
// OnHello is also valid from kIdle (the passive side answers the initiator)
// and transitions identically.
#ifndef ELINK_PROTO_VERSION_H_
#define ELINK_PROTO_VERSION_H_

#include <cstdint>

#include "common/status.h"
#include "proto/wire.h"

namespace elink {
namespace proto {

namespace handshake_wire {

/// Version announcement; packet ids >= 1000 are reserved for the handshake.
struct Hello {
  static constexpr int kType = 1000;
  static constexpr const char* kCategory = "wire.hello";
  long long version_min = 0;
  long long version_max = 0;
  template <class V>
  void VisitFields(V& v) {
    v.I64(version_min);
    v.I64(version_max);
  }
  bool operator==(const Hello&) const = default;
};

/// Graceful refusal: the spans do not overlap.  Carries the refusing side's
/// span so the peer can log something actionable.
struct Reject {
  static constexpr int kType = 1001;
  static constexpr const char* kCategory = "wire.reject";
  long long version_min = 0;
  long long version_max = 0;
  template <class V>
  void VisitFields(V& v) {
    v.I64(version_min);
    v.I64(version_max);
  }
  bool operator==(const Reject&) const = default;
};

}  // namespace handshake_wire

/// Inclusive span of wire versions an endpoint speaks.
struct VersionRange {
  uint8_t min = wire::kWireVersionMin;
  uint8_t max = wire::kWireVersionMax;
};

/// Highest version inside both spans; FailedPrecondition when disjoint.
Result<uint8_t> NegotiateVersion(const VersionRange& local,
                                 const VersionRange& remote);

/// \brief One endpoint's half of the version handshake.
class VersionHandshake {
 public:
  enum class State { kIdle, kHelloSent, kEstablished, kRejected };

  explicit VersionHandshake(VersionRange local = {}) : local_(local) {}

  State state() const { return state_; }

  /// Version both sides agreed on; only valid in kEstablished.
  uint8_t agreed_version() const { return agreed_; }

  /// The Hello announcing this endpoint's span; moves kIdle -> kHelloSent.
  handshake_wire::Hello MakeHello();

  /// Consumes the peer's Hello.  Compatible spans establish the session and
  /// return the agreed version; disjoint spans move to kRejected and return
  /// the negotiation error (callers answer with MakeReject()).
  Result<uint8_t> OnHello(const handshake_wire::Hello& hello);

  /// Consumes the peer's Reject: the session is over.
  void OnReject(const handshake_wire::Reject& reject);

  /// The Reject frame to answer an incompatible Hello with.
  handshake_wire::Reject MakeReject() const;

 private:
  VersionRange local_;
  State state_ = State::kIdle;
  uint8_t agreed_ = 0;
};

}  // namespace proto
}  // namespace elink

#endif  // ELINK_PROTO_VERSION_H_
