// Whole-network snapshot container (elink_proto).
//
// A snapshot is a named-section archive built on the same byte primitives as
// the radio wire format (proto/wire.h), so everything the codec guarantees —
// bounds-checked totality, CRC-framed integrity, version negotiation —
// carries over to durable state:
//
//   offset 0  4 bytes  magic "ELSN"
//   ...       frame    a wire frame carrying handshake_wire::Hello with the
//                      writer's [min, max] version span.  A reader first
//                      negotiates this span against its own (the same
//                      NegotiateVersion the live handshake uses) and rejects
//                      gracefully when they are disjoint.
//   ...       varint   section count
//   per section:
//     string  name     varint length + bytes, unique within the archive
//     varint  body length
//     ...     body
//     u32le   CRC32 over the name bytes followed by the body
//
// Section bodies are opaque to the container; the codecs below define the
// standard ones.  Restore in this repo is replay-based: the event queue
// holds closures that cannot be serialized, so a snapshot captures the
// scenario identity (manifest) plus every piece of *checkable* state — event
// horizon, message-stats ledger, per-node protocol/transport state — and a
// restore re-derives the scenario, replays to the same event index, and
// byte-compares the recaptured sections before continuing.  Equal bytes at
// the checkpoint plus a deterministic simulator prove the resumed run is
// byte-identical to the uninterrupted one.
#ifndef ELINK_PROTO_SNAPSHOT_H_
#define ELINK_PROTO_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "proto/version.h"
#include "sim/network.h"
#include "sim/stats.h"

namespace elink {
namespace proto {

/// Archive magic ("ELSN").
inline constexpr uint8_t kSnapshotMagic[4] = {'E', 'L', 'S', 'N'};

// Standard section names.
inline constexpr const char* kSectionManifest = "manifest";
inline constexpr const char* kSectionHorizon = "horizon";
inline constexpr const char* kSectionStats = "stats";
inline constexpr const char* kSectionNodes = "nodes";
inline constexpr const char* kSectionLedger = "ledger";
inline constexpr const char* kSectionFeatures = "features";
inline constexpr const char* kSectionClustering = "clustering";

/// \brief Builds a snapshot archive section by section.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(VersionRange local = {}) : local_(local) {}

  /// Appends a named section; names must be unique within the archive.
  Status AddSection(const std::string& name, std::vector<uint8_t> body);

  /// Renders the complete archive (magic, Hello frame, sections).
  std::vector<uint8_t> Finish() const;

 private:
  VersionRange local_;
  std::vector<std::pair<std::string, std::vector<uint8_t>>> sections_;
};

/// \brief Parses and validates a snapshot archive.
class SnapshotReader {
 public:
  /// Parses `size` bytes at `data`: magic, embedded Hello (negotiated
  /// against `local`; disjoint spans reject with the negotiation error),
  /// then every section with its CRC.  The archive must be consumed exactly.
  static Result<SnapshotReader> Parse(const uint8_t* data, size_t size,
                                      VersionRange local = {});
  static Result<SnapshotReader> Parse(const std::vector<uint8_t>& bytes,
                                      VersionRange local = {});

  /// The version the writer's span and `local` agreed on.
  uint8_t version() const { return version_; }

  /// Section names in archive order.
  const std::vector<std::string>& section_names() const { return order_; }

  /// The named section's body, or null when absent.
  const std::vector<uint8_t>* section(const std::string& name) const;

 private:
  uint8_t version_ = 0;
  std::vector<std::string> order_;
  std::map<std::string, std::vector<uint8_t>> sections_;
};

// ---------------------------------------------------------------------------
// Standard section codecs.

/// Manifest: the scenario identity a restore re-derives the run from —
/// protocol name, seed, knob/disable list, checkpoint event index — as an
/// ordered string map.
std::vector<uint8_t> EncodeManifestSection(
    const std::map<std::string, std::string>& kv);
Result<std::map<std::string, std::string>> DecodeManifestSection(
    const std::vector<uint8_t>& body);

/// Event horizon: how far the run had progressed when the snapshot fired.
struct HorizonImage {
  uint64_t events = 0;  // Events dispatched since the run began.
  double now = 0.0;     // Simulation clock at the checkpoint.
};
std::vector<uint8_t> EncodeHorizonSection(const HorizonImage& h);
Result<HorizonImage> DecodeHorizonSection(const std::vector<uint8_t>& body);

/// Full MessageStats dump: totals plus every per-category counter.
struct StatsImage {
  uint64_t total_sends = 0;
  uint64_t total_units = 0;
  uint64_t total_bytes = 0;
  uint64_t dropped_sends = 0;
  uint64_t dropped_units = 0;
  uint64_t dropped_bytes = 0;
  uint64_t decode_errors = 0;
  std::vector<MessageStats::CategorySnapshot> categories;
};
std::vector<uint8_t> EncodeStatsSection(const MessageStats& stats);
Result<StatsImage> DecodeStatsSection(const std::vector<uint8_t>& body);

/// Per-node durable state: every node's Node::EncodeSnapshotState blob, in
/// node-id order (transport channel state for ProtocolNodes, plus whatever
/// the protocol overrides append).
std::vector<uint8_t> EncodeNodeStatesSection(Network& network);

}  // namespace proto
}  // namespace elink

#endif  // ELINK_PROTO_SNAPSHOT_H_
