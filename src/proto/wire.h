// Byte-level wire format for sim::Message (elink_proto).
//
// The typed codec (proto/codec.h) maps schema structs onto the abstract
// Message{ints, doubles} container; this header maps that container onto
// actual radio bytes, so every schema gets a byte encoding for free and the
// ledger can account real bytes-on-wire next to the paper's CostUnits.
// Encoding is observational: CostUnits still drive simulation timing, and a
// build that never calls into this header behaves bit-identically.
//
// Frame layout (version 1):
//
//   offset 0   u8      magic 0xE7
//   offset 1   u8      wire version (kWireVersionMin..kWireVersionMax)
//   offset 2   varint  body length L
//   ...        L bytes body
//   ...        u32le   CRC32 (IEEE, reflected) over everything between the
//                      magic and the CRC itself: version byte, length
//                      varint, and body.  Any single-byte corruption in
//                      that span is a guaranteed reject (CRC32 detects all
//                      bursts shorter than 32 bits).
//
// Body layout (version 1):
//
//   varint  packet id  zigzag(Message::type) — packet ids are scoped by the
//                      frame's version byte; the handshake (proto/version.h)
//                      guarantees both ends interpret them under the same
//                      version.
//   u8      flags      bit0: reliable envelope present (rel_seq/rel_from
//                            follow the payload), bit1: rel_ack.
//   varint  nints
//   ...     ints       zigzag varints, delta-coded: the first int raw, each
//                      subsequent int as the difference from its
//                      predecessor.  Id/level fields of one message are
//                      typically near each other in value, so the deltas
//                      stay in the 1-2 byte varint range.
//   varint  ndoubles
//   ...     doubles    IEEE-754 binary64, little-endian, 8 bytes each.
//   [env]   rel_seq    zigzag varint   (only with flags bit0)
//           rel_from   zigzag varint
//
// The category string never travels: it is accounting metadata derivable
// from the packet id via each family's CategoryForType registry, exactly as
// a real deployment would dispatch on the type byte.  DecodeFrame therefore
// returns a Message with an empty category.
//
// Decoding is total: every read is bounds-checked, counts are capped, the
// frame must be consumed exactly, and any violation returns an error Status
// — truncation at any byte offset, a flipped bit anywhere, or arbitrary
// garbage can reject but never crash.
//
// Header-only on purpose: the Network charges per-hop byte counts with
// FrameSize, and keeping this a leaf header (depending only on sim/message.h
// and common/status.h) avoids a sim <-> proto link cycle.
#ifndef ELINK_PROTO_WIRE_H_
#define ELINK_PROTO_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/message.h"

namespace elink {
namespace wire {

inline constexpr uint8_t kFrameMagic = 0xE7;
inline constexpr uint8_t kWireVersionMin = 1;
inline constexpr uint8_t kWireVersionMax = 1;
/// The version this build emits.
inline constexpr uint8_t kWireVersion = kWireVersionMax;

/// Hard caps a well-formed frame can never exceed; anything larger is a
/// malformed or hostile frame and rejects before any allocation.
inline constexpr uint64_t kMaxBodyBytes = 1ull << 28;
inline constexpr uint64_t kMaxFieldCount = 1ull << 20;

inline constexpr uint8_t kFlagEnvelope = 1u << 0;
inline constexpr uint8_t kFlagRelAck = 1u << 1;
inline constexpr uint8_t kKnownFlags = kFlagEnvelope | kFlagRelAck;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320).

namespace internal {

struct Crc32Table {
  uint32_t t[256];
  constexpr Crc32Table() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

inline constexpr Crc32Table kCrc32Table{};

}  // namespace internal

/// CRC32 of `size` bytes at `data`; chainable via `seed` (pass a previous
/// call's return value to continue).
inline uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed = 0) {
  uint32_t c = ~seed;
  for (size_t i = 0; i < size; ++i) {
    c = internal::kCrc32Table.t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

// ---------------------------------------------------------------------------
// Primitive encoders.

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t u) {
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

/// Bytes a varint encoding of `v` occupies (1..10).
inline size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80u) {
    v >>= 7;
    ++n;
  }
  return n;
}

inline void PutVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80u) {
    out->push_back(static_cast<uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

inline void PutZigzag(int64_t v, std::vector<uint8_t>* out) {
  PutVarint(ZigzagEncode(v), out);
}

inline void PutU8(uint8_t v, std::vector<uint8_t>* out) {
  out->push_back(v);
}

/// Length-prefixed UTF-8/binary string (snapshot sections only; the radio
/// frame format never carries strings).
inline void PutString(const std::string& s, std::vector<uint8_t>* out) {
  PutVarint(s.size(), out);
  out->insert(out->end(), s.begin(), s.end());
}

inline void PutU32Le(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

inline void PutF64Le(double v, std::vector<uint8_t>* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

/// Bounds-checked sequential reader over a byte span.  Every getter reports
/// failure through its return Status; after a failure the cursor stays put.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t offset() const { return off_; }
  size_t remaining() const { return size_ - off_; }

  Status U8(uint8_t* out) {
    if (off_ + 1 > size_) return Truncated("u8");
    *out = data_[off_++];
    return Status::OK();
  }

  Status U32Le(uint32_t* out) {
    if (off_ + 4 > size_) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[off_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    off_ += 4;
    *out = v;
    return Status::OK();
  }

  Status F64Le(double* out) {
    if (off_ + 8 > size_) return Truncated("f64");
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(data_[off_ + static_cast<size_t>(i)])
              << (8 * i);
    }
    off_ += 8;
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }

  Status Varint(uint64_t* out) {
    uint64_t v = 0;
    size_t cursor = off_;
    for (int shift = 0; shift < 64; shift += 7) {
      if (cursor >= size_) return Truncated("varint");
      const uint8_t b = data_[cursor++];
      v |= static_cast<uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) {
        // The 10th byte may only contribute the top bit of the value;
        // anything more means the continuation chain overflowed 64 bits.
        if (shift == 63 && b > 1) {
          return Status::InvalidArgument("wire: varint overflows 64 bits");
        }
        off_ = cursor;
        *out = v;
        return Status::OK();
      }
    }
    return Status::InvalidArgument("wire: varint longer than 10 bytes");
  }

  Status Zigzag(int64_t* out) {
    uint64_t u = 0;
    Status s = Varint(&u);
    if (!s.ok()) return s;
    *out = ZigzagDecode(u);
    return Status::OK();
  }

  Status Skip(size_t n) {
    if (n > remaining()) return Truncated("skip");
    off_ += n;
    return Status::OK();
  }

  Status String(std::string* out) {
    uint64_t len = 0;
    Status s = Varint(&len);
    if (!s.ok()) return s;
    if (len > remaining()) return Truncated("string");
    out->assign(reinterpret_cast<const char*>(data_ + off_),
                static_cast<size_t>(len));
    off_ += static_cast<size_t>(len);
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::OutOfRange(std::string("wire: truncated ") + what);
  }

  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
};

// ---------------------------------------------------------------------------
// Message body.

/// Delta between consecutive ints, wrapping in two's complement (computed
/// in unsigned arithmetic: `v - prev` would be UB at the INT64 extremes).
/// The decoder inverts this with the matching unsigned addition.
inline long long DeltaWrap(long long v, long long prev) {
  return static_cast<long long>(static_cast<uint64_t>(v) -
                                static_cast<uint64_t>(prev));
}

/// Exact byte length of EncodeBody(msg) without materializing it — the
/// Network's per-hop accounting path.
inline size_t BodySize(const Message& msg) {
  size_t n = VarintSize(ZigzagEncode(msg.type)) + 1;  // packet id + flags.
  n += VarintSize(msg.ints.size());
  long long prev = 0;
  bool first = true;
  for (const long long v : msg.ints) {
    n += VarintSize(ZigzagEncode(first ? v : DeltaWrap(v, prev)));
    prev = v;
    first = false;
  }
  n += VarintSize(msg.doubles.size());
  n += 8 * msg.doubles.size();
  if (msg.rel_seq != -1 || msg.rel_from != -1) {
    n += VarintSize(ZigzagEncode(msg.rel_seq)) +
         VarintSize(ZigzagEncode(msg.rel_from));
  }
  return n;
}

/// Appends the version-1 body encoding of `msg` to `out`.
inline void EncodeBody(const Message& msg, std::vector<uint8_t>* out) {
  PutZigzag(msg.type, out);
  const bool envelope = msg.rel_seq != -1 || msg.rel_from != -1;
  uint8_t flags = 0;
  if (envelope) flags |= kFlagEnvelope;
  if (msg.rel_ack) flags |= kFlagRelAck;
  out->push_back(flags);
  PutVarint(msg.ints.size(), out);
  long long prev = 0;
  bool first = true;
  for (const long long v : msg.ints) {
    PutZigzag(first ? v : DeltaWrap(v, prev), out);
    prev = v;
    first = false;
  }
  PutVarint(msg.doubles.size(), out);
  for (const double d : msg.doubles) PutF64Le(d, out);
  if (envelope) {
    PutZigzag(msg.rel_seq, out);
    PutZigzag(msg.rel_from, out);
  }
}

// ---------------------------------------------------------------------------
// Frames.

/// Exact on-air byte length of one frame carrying `msg` — what every
/// single-hop transmission charges to the byte ledger.
inline size_t FrameSize(const Message& msg) {
  const size_t body = BodySize(msg);
  return 2 + VarintSize(body) + body + 4;
}

/// Frame bytes of a minimal version-1 frame carrying `ndoubles` coefficients
/// plus `nints` small (single-varint-byte) ids — the engine-level cost
/// models' bytes-on-wire charge for a logical hop whose concrete Message
/// never materializes.  Double values never affect the frame length, and
/// protocol ids are near zero, so this matches what the distributed
/// equivalent would put on the air.
inline size_t NominalFrameSize(size_t nints, size_t ndoubles) {
  Message m;
  m.type = 1;
  m.ints.assign(nints, 1);
  m.doubles.assign(ndoubles, 0.0);
  return FrameSize(m);
}

/// Appends a complete frame (magic, version, length, body, CRC) to `out`.
inline void EncodeFrame(const Message& msg, std::vector<uint8_t>* out) {
  out->reserve(out->size() + FrameSize(msg));
  out->push_back(kFrameMagic);
  const size_t covered_start = out->size();
  out->push_back(kWireVersion);
  const size_t body = BodySize(msg);
  PutVarint(body, out);
  EncodeBody(msg, out);
  PutU32Le(Crc32(out->data() + covered_start, out->size() - covered_start),
           out);
}

inline std::vector<uint8_t> EncodeFrame(const Message& msg) {
  std::vector<uint8_t> out;
  EncodeFrame(msg, &out);
  return out;
}

/// Parses one frame starting at `data`.  With `consumed` null the frame must
/// occupy the span exactly; otherwise `*consumed` reports its length and
/// trailing bytes are the caller's business (stream framing).  The returned
/// Message carries an empty category (see the header comment).  Every
/// malformed input — short reads, bad magic, unknown version, corrupted CRC,
/// inconsistent counts, trailing body bytes — yields an error Status.
inline Result<Message> DecodeFrame(const uint8_t* data, size_t size,
                                   size_t* consumed = nullptr) {
  if (size < 1) return Status::OutOfRange("wire: empty frame");
  if (data[0] != kFrameMagic) {
    return Status::InvalidArgument("wire: bad frame magic");
  }
  ByteReader header(data + 1, size - 1);
  uint8_t version = 0;
  Status s = header.U8(&version);
  if (!s.ok()) return s;
  if (version < kWireVersionMin || version > kWireVersionMax) {
    return Status::Unimplemented(
        "wire: unsupported version " + std::to_string(version) +
        " (this build speaks " + std::to_string(kWireVersionMin) + ".." +
        std::to_string(kWireVersionMax) + ")");
  }
  uint64_t body_len = 0;
  s = header.Varint(&body_len);
  if (!s.ok()) return s;
  if (body_len > kMaxBodyBytes) {
    return Status::InvalidArgument("wire: body length exceeds cap");
  }
  // header.offset() counts from the version byte (data + 1).
  const size_t body_start = 1 + header.offset();
  if (body_start + body_len + 4 > size) {
    return Status::OutOfRange("wire: truncated frame");
  }
  const uint32_t want_crc =
      Crc32(data + 1, body_start - 1 + static_cast<size_t>(body_len));
  ByteReader crc_reader(data + body_start + body_len, 4);
  uint32_t got_crc = 0;
  (void)crc_reader.U32Le(&got_crc);
  if (got_crc != want_crc) {
    return Status::InvalidArgument("wire: CRC mismatch");
  }
  const size_t frame_len = body_start + static_cast<size_t>(body_len) + 4;
  if (consumed == nullptr && frame_len != size) {
    return Status::InvalidArgument("wire: trailing bytes after frame");
  }

  ByteReader body(data + body_start, static_cast<size_t>(body_len));
  Message msg;
  int64_t type = 0;
  s = body.Zigzag(&type);
  if (!s.ok()) return s;
  if (type < INT32_MIN || type > INT32_MAX) {
    return Status::InvalidArgument("wire: packet id out of range");
  }
  msg.type = static_cast<int>(type);
  uint8_t flags = 0;
  s = body.U8(&flags);
  if (!s.ok()) return s;
  if ((flags & ~kKnownFlags) != 0) {
    return Status::InvalidArgument("wire: unknown flag bits");
  }
  uint64_t nints = 0;
  s = body.Varint(&nints);
  if (!s.ok()) return s;
  if (nints > kMaxFieldCount) {
    return Status::InvalidArgument("wire: int count exceeds cap");
  }
  msg.ints.reserve(static_cast<size_t>(nints));
  long long prev = 0;
  for (uint64_t i = 0; i < nints; ++i) {
    int64_t d = 0;
    s = body.Zigzag(&d);
    if (!s.ok()) return s;
    // Deltas wrap in two's complement, inverting the encoder exactly.
    const long long v =
        i == 0 ? d
               : static_cast<long long>(static_cast<uint64_t>(prev) +
                                        static_cast<uint64_t>(d));
    msg.ints.push_back(v);
    prev = v;
  }
  uint64_t ndoubles = 0;
  s = body.Varint(&ndoubles);
  if (!s.ok()) return s;
  if (ndoubles > kMaxFieldCount || body.remaining() < 8 * ndoubles) {
    return Status::InvalidArgument("wire: double count inconsistent");
  }
  msg.doubles.reserve(static_cast<size_t>(ndoubles));
  for (uint64_t i = 0; i < ndoubles; ++i) {
    double d = 0.0;
    s = body.F64Le(&d);
    if (!s.ok()) return s;
    msg.doubles.push_back(d);
  }
  if ((flags & kFlagEnvelope) != 0) {
    int64_t seq = 0, from = 0;
    s = body.Zigzag(&seq);
    if (!s.ok()) return s;
    s = body.Zigzag(&from);
    if (!s.ok()) return s;
    msg.rel_seq = seq;
    if (from < INT32_MIN || from > INT32_MAX) {
      return Status::InvalidArgument("wire: rel_from out of range");
    }
    msg.rel_from = static_cast<int>(from);
  }
  msg.rel_ack = (flags & kFlagRelAck) != 0;
  if (body.remaining() != 0) {
    return Status::InvalidArgument("wire: trailing bytes inside body");
  }
  if (consumed != nullptr) *consumed = frame_len;
  return msg;
}

inline Result<Message> DecodeFrame(const std::vector<uint8_t>& frame,
                                   size_t* consumed = nullptr) {
  return DecodeFrame(frame.data(), frame.size(), consumed);
}

}  // namespace wire
}  // namespace elink

#endif  // ELINK_PROTO_WIRE_H_
