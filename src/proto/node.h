// Protocol node base class: typed dispatch over the simulated network.
//
// ProtocolNode extends sim's Node with the plumbing every protocol in this
// repo used to hand-roll:
//
//  * typed handler registration — OnMsg<Schema>(handler) binds a decoder and
//    a handler to the schema's message type; incoming frames are
//    bounds-checked by proto::Decode before the handler runs, and malformed
//    ones are counted in MessageStats::decode_errors instead of crashing;
//  * optional ReliableChannel integration — EnableReliable() attaches the
//    ack/retransmit channel at install time and interposes it on every
//    incoming message and timer, exactly as the hand-written protocols did;
//  * send helpers — Send / SendRouted encode a schema and transparently pick
//    the reliable channel when one is enabled, the raw network otherwise;
//  * harness hooks — RunHarness binds an activity counter (for quiet-period
//    completion detection) and a per-message trace callback.
//
// Subclasses register handlers in their constructor and override the
// OnReady / OnProtocolTimer / OnGiveUp / OnBadMessage virtuals as needed.
#ifndef ELINK_PROTO_NODE_H_
#define ELINK_PROTO_NODE_H_

#include <functional>
#include <utility>
#include <vector>

#include "proto/codec.h"
#include "sim/network.h"
#include "sim/reliable.h"

namespace elink {
namespace proto {

/// Per-delivery trace hook: fires for every frame a node receives (before
/// duplicate suppression / transport acks are filtered out), so it sees the
/// raw wire traffic.  `to` is the receiving node.
using TraceFn =
    std::function<void(double now, int from, int to, const Message& msg)>;

class RunHarness;

/// \brief Base class for protocol logic built on the proto runtime.
class ProtocolNode : public Node {
 public:
  // The runtime owns the sim entry points; protocol code plugs in through
  // OnMsg registration and the virtuals below.
  void HandleMessage(int from, const Message& msg) final;
  void HandleTimer(int timer_id) final;
  void OnInstall() final;
  void OnRestart() final;
  void OnNeighborChange(int neighbor, bool up) final;

  /// Serializes the runtime's per-node state (reliable-transport channel:
  /// sequence counter, in-flight frames, delivery history) for a
  /// whole-network snapshot.  Protocols with additional durable state
  /// override OnEncodeSnapshotState to append their own bytes after it.
  void EncodeSnapshotState(std::vector<uint8_t>* out) const final;

 protected:
  /// Called once at install time, after the reliable channel (if any) is
  /// attached; the protocol's OnInstall replacement.
  virtual void OnReady() {}

  /// A timer that does not belong to the reliable channel.
  virtual void OnProtocolTimer(int timer_id) { (void)timer_id; }

  /// The node restarted (churn join/repair, or fault-plan crash recovery).
  /// The runtime has already voided the reliable channel's in-flight sends
  /// (ReliableChannel::Reset) and the network orphaned all pre-restart
  /// timers; the protocol resets its own state and re-arms here.
  virtual void OnNodeRestart() {}

  /// First-class churn changed this node's neighborhood (see
  /// Node::OnNeighborChange).  Fault-plan crashes are never announced.
  virtual void OnNeighborUpdate(int neighbor, bool up) {
    (void)neighbor, (void)up;
  }

  /// The reliable channel exhausted its retries sending `msg` to `to`.
  virtual void OnGiveUp(int to, const Message& msg) {
    (void)to;
    (void)msg;
  }

  /// Appends protocol-specific durable state to the node's snapshot record
  /// (after the runtime's transport state).  Must be deterministic: equal
  /// states must emit equal bytes.
  virtual void OnEncodeSnapshotState(std::vector<uint8_t>* out) const {
    (void)out;
  }

  /// An incoming frame failed to decode (truncated payload, unknown type).
  /// The decode error has already been counted in the network's stats.
  virtual void OnBadMessage(int from, const Message& msg,
                            const Status& error) {
    (void)from;
    (void)msg;
    (void)error;
  }

  /// Registers `handler` for schema M's message type.  Call from the
  /// subclass constructor.  The handler receives the decoded schema;
  /// malformed frames never reach it.
  template <typename M, typename F>
  void OnMsg(F handler) {
    const int type = M::kType;
    ELINK_CHECK(type >= 0);
    if (static_cast<int>(handlers_.size()) <= type) {
      handlers_.resize(static_cast<size_t>(type) + 1);
    }
    ELINK_CHECK(!handlers_[static_cast<size_t>(type)]);
    handlers_[static_cast<size_t>(type)] =
        [this, handler = std::move(handler)](int from, const Message& msg) {
          Result<M> decoded = Decode<M>(msg);
          if (!decoded.ok()) {
            network()->NoteDecodeError(id(), msg.category);
            OnBadMessage(from, msg, decoded.status());
            return;
          }
          handler(from, *decoded);
        };
  }

  /// Counts a delivered frame whose decoded fields fail protocol-level
  /// validation (e.g. a feature block of the wrong dimensionality after
  /// in-flight truncation).  Pair with an early return from the handler.
  void RejectBadFields(const std::string& category) {
    network()->NoteDecodeError(id(), category);
  }

  /// Reports a named protocol phase transition to the run's observer (ELink
  /// round boundaries, maintenance detach/adopt, query fan-out/collect).
  /// Free when no observer is attached; `phase` must be a string literal.
  void TracePhase(const char* phase, long long value = 0) {
    if (SimObserver* obs = network()->observer()) {
      obs->OnPhase(network()->Now(), id(), phase, value);
    }
  }

  /// Arms the reliable channel; it attaches at install time.  Call from the
  /// subclass constructor (before the node is installed).
  void EnableReliable(const ReliableChannel::Config& config) {
    reliable_enabled_ = true;
    channel_config_ = config;
  }

  bool reliable_enabled() const { return reliable_enabled_; }
  ReliableChannel& channel() { return channel_; }

  /// Single-hop send of a schema to neighbor `to`, over the reliable channel
  /// when enabled, the raw network otherwise.
  template <typename M>
  void Send(int to, const M& m) {
    SendRaw(to, Encode(m));
  }

  /// Routed send of a schema to arbitrary node `to`.
  template <typename M>
  void SendRouted(int to, const M& m) {
    SendRoutedRaw(to, Encode(m));
  }

  void SendRaw(int to, Message msg) {
    if (channel_.attached()) {
      channel_.Send(to, std::move(msg));
    } else {
      network()->Send(id(), to, std::move(msg));
    }
  }

  void SendRoutedRaw(int to, Message msg) {
    if (channel_.attached()) {
      channel_.SendRouted(to, std::move(msg));
    } else {
      network()->SendRouted(id(), to, std::move(msg));
    }
  }

 private:
  friend class RunHarness;

  /// Wires the harness's activity counter and trace hook.  Must run before
  /// the node is installed (the harness's InstallNodes does).
  void BindRuntime(uint64_t* activity, const TraceFn* trace) {
    activity_ = activity;
    trace_ = trace;
  }

  void DispatchMessage(int from, const Message& msg);

  std::vector<std::function<void(int, const Message&)>> handlers_;
  ReliableChannel channel_;
  ReliableChannel::Config channel_config_;
  bool reliable_enabled_ = false;
  // Harness bindings; null when the node runs outside a RunHarness.
  uint64_t* activity_ = nullptr;
  const TraceFn* trace_ = nullptr;
};

}  // namespace proto
}  // namespace elink

#endif  // ELINK_PROTO_NODE_H_
