// Status / Result error-handling primitives, in the style of RocksDB/Arrow.
//
// Library code in this project reports recoverable errors through Status (or
// Result<T> for value-returning functions) rather than exceptions.  Fatal
// programming errors (violated preconditions) use ELINK_CHECK, which aborts.
#ifndef ELINK_COMMON_STATUS_H_
#define ELINK_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace elink {

/// Error taxonomy for recoverable failures.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

/// \brief A lightweight success-or-error value.
///
/// A default-constructed Status is OK.  Error statuses carry a code and a
/// human-readable message.  Status is cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: delta must be non-negative".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Usage:
///   Result<Matrix> r = Invert(m);
///   if (!r.ok()) return r.status();
///   Matrix inv = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

/// Aborts the process when a precondition does not hold.
#define ELINK_CHECK(expr)                                         \
  do {                                                            \
    if (!(expr)) {                                                \
      ::elink::internal::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                             \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define ELINK_RETURN_NOT_OK(expr)          \
  do {                                     \
    ::elink::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace elink

#endif  // ELINK_COMMON_STATUS_H_
