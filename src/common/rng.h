// Deterministic pseudo-random number generation.
//
// All stochastic components of the simulator and the dataset generators draw
// from Rng so that every experiment is reproducible from a single seed.  The
// generator is xoshiro256** seeded through SplitMix64, which has good
// statistical quality and is trivially portable (no libstdc++ distribution
// implementation differences leak into the results).
#ifndef ELINK_COMMON_RNG_H_
#define ELINK_COMMON_RNG_H_

#include <cstdint>

#include "common/status.h"

namespace elink {

/// \brief Deterministic xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t UniformIntRange(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box-Muller with caching).
  double Normal();

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Derives an independent generator for a named sub-stream.  Useful for
  /// giving each node / each trial its own stream from one master seed.
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace elink

#endif  // ELINK_COMMON_RNG_H_
