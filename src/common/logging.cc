#include "common/logging.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace elink {

namespace {
LogLevel g_level = LogLevel::kWarning;
bool g_env_checked = false;

/// Applies ELINK_LOG_LEVEL once, lazily, before the level is first read.
/// An explicit SetLogLevel beforehand wins (it marks the env as consumed).
void ApplyEnvLevelOnce() {
  if (g_env_checked) return;
  g_env_checked = true;
  LogLevel parsed;
  if (ParseLogLevel(std::getenv("ELINK_LOG_LEVEL"), &parsed)) {
    g_level = parsed;
  }
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_env_checked = true;  // Explicit configuration overrides the environment.
  g_level = level;
}

LogLevel GetLogLevel() {
  ApplyEnvLevelOnce();
  return g_level;
}

bool ParseLogLevel(const char* name, LogLevel* out) {
  if (name == nullptr) return false;
  std::string lower;
  for (const char* p = name; *p; ++p) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    // Strip directories from the path for terse output.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal

}  // namespace elink
