#include "common/status.h"

namespace elink {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

namespace internal {
void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "ELINK_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}
}  // namespace internal

}  // namespace elink
