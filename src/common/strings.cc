#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace elink {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string FormatDouble(double v, int precision) {
  std::string s = StringPrintf("%.*f", precision, v);
  // Trim trailing zeros but keep at least one digit after the point.
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') last += 1;
    s.erase(last + 1);
  }
  return s;
}

}  // namespace elink
