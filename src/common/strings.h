// Small string utilities shared by the harnesses (CSV-style table output,
// joining, formatting).  Nothing here is performance critical.
#ifndef ELINK_COMMON_STRINGS_H_
#define ELINK_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace elink {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a double compactly (up to `precision` significant decimals,
/// trailing zeros trimmed) for table output.
std::string FormatDouble(double v, int precision = 4);

}  // namespace elink

#endif  // ELINK_COMMON_STRINGS_H_
