#include "common/rng.h"

#include <cmath>

namespace elink {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform01();
}

uint64_t Rng::UniformInt(uint64_t n) {
  ELINK_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformIntRange(int64_t lo, int64_t hi) {
  ELINK_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform.
  double u1;
  do {
    u1 = Uniform01();
  } while (u1 <= 0.0);
  const double u2 = Uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform01() < p; }

Rng Rng::Fork(uint64_t stream_id) {
  // Mix the stream id into fresh state derived from this generator.
  uint64_t seed = Next() ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  return Rng(seed);
}

}  // namespace elink
