// Minimal leveled logging to stderr.
//
// The simulator and benchmark harnesses use this for progress and diagnostic
// output; the default level is kWarning so test output stays quiet.
#ifndef ELINK_COMMON_LOGGING_H_
#define ELINK_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace elink {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.  Takes
/// precedence over the ELINK_LOG_LEVEL environment variable.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.  On the first call (of this or
/// any log statement) the ELINK_LOG_LEVEL environment variable is consulted:
/// "debug", "info", "warning"/"warn", or "error" (case-insensitive) select
/// the level; unset or unrecognized values keep the kWarning default.
LogLevel GetLogLevel();

/// Parses a level name as accepted by ELINK_LOG_LEVEL.  Returns false (and
/// leaves `out` untouched) when `name` is not a recognized level.
bool ParseLogLevel(const char* name, LogLevel* out);

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define ELINK_LOG(level)                                               \
  ::elink::internal::LogMessage(::elink::LogLevel::k##level, __FILE__, \
                                __LINE__)

}  // namespace elink

#endif  // ELINK_COMMON_LOGGING_H_
