// A move-only callable wrapper with small-buffer optimization, used by the
// discrete-event queue in place of std::function.
//
// Why not std::function: it must be copyable, so (a) it cannot hold closures
// that capture move-only state (e.g. a shared payload moved into a delivery
// closure), and (b) containers that cannot move elements out (like
// std::priority_queue) force a deep copy of the closure — including any
// captured Message — on every dispatch.  UniqueFunction is move-only by
// construction: closures up to kInlineSize bytes live inline in the event
// record (no allocation at all), larger ones cost one allocation at schedule
// time and zero work per move.
#ifndef ELINK_COMMON_UNIQUE_FUNCTION_H_
#define ELINK_COMMON_UNIQUE_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace elink {

/// \brief Move-only `void()` callable with small-buffer optimization.
class UniqueFunction {
 public:
  /// Closures at most this large (and at most max_align_t-aligned, nothrow
  /// move constructible) are stored inline.  48 bytes fits the simulator's
  /// delivery closures (this-pointer, two node ids, one shared payload
  /// handle) with room to spare.
  static constexpr std::size_t kInlineSize = 48;

  UniqueFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(&storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(&storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(&other.storage_, &storage_);
      other.ops_ = nullptr;
    }
  }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(&other.storage_, &storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  /// Assigns a fresh callable in place — the closure is constructed directly
  /// into this object's storage with no intermediate UniqueFunction move.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction& operator=(F&& f) {
    Reset();
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(&storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(&storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::ops;
    }
    return *this;
  }

  ~UniqueFunction() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(&storage_); }

  /// Invokes the callable and destroys it in one virtual dispatch, leaving
  /// this object empty.  The event queue's dispatch path: every event fires
  /// exactly once, so invoke and teardown are fused to save an indirect
  /// call per event.
  void InvokeOnce() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(&storage_);
  }

 private:
  struct alignas(std::max_align_t) Storage {
    unsigned char bytes[kInlineSize];
  };

  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= kInlineSize &&
      alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  struct Ops {
    void (*invoke)(void* storage);
    // Invoke followed by destruction of the callable (fused dispatch path).
    void (*invoke_destroy)(void* storage);
    // Move-constructs the callable from `from` into `to` and destroys the
    // source; noexcept so heap growth in the event queue cannot throw.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* s) { (*std::launder(static_cast<Fn*>(s)))(); }
    static void InvokeDestroy(void* s) {
      Fn* fn = std::launder(static_cast<Fn*>(s));
      (*fn)();
      fn->~Fn();
    }
    static void Relocate(void* from, void* to) noexcept {
      Fn* src = std::launder(static_cast<Fn*>(from));
      ::new (to) Fn(std::move(*src));
      src->~Fn();
    }
    static void Destroy(void* s) noexcept {
      std::launder(static_cast<Fn*>(s))->~Fn();
    }
    static constexpr Ops ops{&Invoke, &InvokeDestroy, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn*& Ptr(void* s) { return *std::launder(static_cast<Fn**>(s)); }
    static void Invoke(void* s) { (*Ptr(s))(); }
    static void InvokeDestroy(void* s) {
      Fn* fn = Ptr(s);
      (*fn)();
      delete fn;
    }
    static void Relocate(void* from, void* to) noexcept {
      ::new (to) Fn*(Ptr(from));
    }
    static void Destroy(void* s) noexcept { delete Ptr(s); }
    static constexpr Ops ops{&Invoke, &InvokeDestroy, &Relocate, &Destroy};
  };

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  Storage storage_;
  const Ops* ops_ = nullptr;
};

}  // namespace elink

#endif  // ELINK_COMMON_UNIQUE_FUNCTION_H_
