// Contaminant-plume workload (the paper's second motivating scenario:
// "sensing phenomena such as ... contaminant flows" [5], and the Section-7.3
// rescue-navigation use case).
//
// A Gaussian puff released at a source point advects with the wind and
// diffuses; sensors scattered over the region measure the local
// concentration.  The field is smooth and time-varying: spatially proximate
// sensors read similar levels (clusterable), and the plume's motion drives
// the dynamic-maintenance machinery.  Features are the local concentration
// (1-D), matching how the paper's path queries measure "exposure to
// chemical along the path".
#ifndef ELINK_DATA_PLUME_H_
#define ELINK_DATA_PLUME_H_

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace elink {

/// Configuration for the plume generator.
struct PlumeConfig {
  int num_nodes = 400;
  /// Deployment square side (meters).
  double side = 1000.0;
  /// Radio range as a fraction of the side.
  double radio_range_fraction = 0.08;
  /// Puff release point (defaults to the upwind third of the region).
  double source_x = 200.0;
  double source_y = 500.0;
  /// Wind velocity (meters per step).
  double wind_x = 12.0;
  double wind_y = 2.0;
  /// Initial puff spread and its growth per step (diffusion).
  double sigma0 = 60.0;
  double sigma_growth = 3.0;
  /// Peak released concentration (arbitrary units).
  double peak = 100.0;
  /// Sensor noise standard deviation.
  double noise = 0.5;
  /// Snapshot time (steps after release) used for the static features.
  int snapshot_step = 10;
  /// Further steps exposed as the evaluation stream.
  int stream_steps = 40;
  uint64_t seed = 23;
};

/// The concentration of the puff at position (x, y), `step` steps after
/// release (noise-free).  Exposed so tests and examples can compute ground
/// truth.
double PlumeConcentration(const PlumeConfig& config, double x, double y,
                          int step);

/// Generates the workload: random connected deployment, features = noisy
/// concentration at the snapshot step, streams = the following steps (one
/// measurement per node per step).
Result<SensorDataset> MakePlumeDataset(const PlumeConfig& config);

}  // namespace elink

#endif  // ELINK_DATA_PLUME_H_
