#include "data/plume.h"

#include <cmath>

namespace elink {

double PlumeConcentration(const PlumeConfig& config, double x, double y,
                          int step) {
  const double cx = config.source_x + config.wind_x * step;
  const double cy = config.source_y + config.wind_y * step;
  const double sigma = config.sigma0 + config.sigma_growth * step;
  const double dx = x - cx;
  const double dy = y - cy;
  // Mass-conserving 2-D Gaussian puff: the peak decays as sigma grows.
  const double amplitude =
      config.peak * (config.sigma0 * config.sigma0) / (sigma * sigma);
  return amplitude * std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
}

Result<SensorDataset> MakePlumeDataset(const PlumeConfig& config) {
  if (config.num_nodes <= 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  if (config.sigma0 <= 0 || config.sigma_growth < 0) {
    return Status::InvalidArgument("sigma parameters invalid");
  }
  if (config.snapshot_step < 0 || config.stream_steps < 0) {
    return Status::InvalidArgument("step counts must be non-negative");
  }
  Rng rng(config.seed);
  Result<Topology> topo = MakeRandomTopology(
      config.num_nodes, config.side, config.side * config.radio_range_fraction,
      &rng, /*force_connectivity=*/true);
  if (!topo.ok()) return topo.status();

  SensorDataset ds;
  ds.name = "plume";
  ds.topology = std::move(topo).value();
  ds.metric =
      std::make_shared<WeightedEuclidean>(WeightedEuclidean::Euclidean(1));
  ds.features.resize(config.num_nodes);
  ds.streams.resize(config.num_nodes);
  for (int i = 0; i < config.num_nodes; ++i) {
    Rng node_rng = rng.Fork(static_cast<uint64_t>(i) + 3000);
    const Point2D& p = ds.topology.positions[i];
    const double snapshot =
        PlumeConcentration(config, p.x, p.y, config.snapshot_step) +
        node_rng.Normal(0.0, config.noise);
    ds.features[i] = {std::max(0.0, snapshot)};
    ds.streams[i].reserve(config.stream_steps);
    for (int s = 1; s <= config.stream_steps; ++s) {
      const double c =
          PlumeConcentration(config, p.x, p.y, config.snapshot_step + s) +
          node_rng.Normal(0.0, config.noise);
      ds.streams[i].push_back(std::max(0.0, c));
    }
  }
  return ds;
}

}  // namespace elink
