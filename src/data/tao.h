// Tao-like sea-surface-temperature workload (paper Section 8.1, "Tao").
//
// The paper uses one month of 10-minute-resolution temperatures from the
// TAO/Tropical-Pacific buoy array, a 6x9 grid between 2S-2N / 140W-165E,
// with range (19.57, 32.79), mean 25.61, sigma 0.67.  Each node is modeled
// as x_t = a1 x_{t-1} + b1 mu_{T-1} + b2 mu_{T-2} + b3 mu_{T-3} + e_t and
// clustered on the 4-vector (a1, b1..b3) under the weighted Euclidean
// distance with weights (0.5, 0.3, 0.2, 0.1).
//
// The real archive is not redistributable here, so this generator synthesizes
// a field with the same structure: a handful of contiguous ocean regimes
// (warm pool / cold tongue / transition bands), each regime with its own
// within-day AR(1) persistence and day-scale mean dynamics, plus buoy-level
// noise.  Spatially proximate sensors therefore share model coefficients —
// the property the clustering experiments depend on — and the generated
// temperatures are calibrated to the published range / mean / sigma.
#ifndef ELINK_DATA_TAO_H_
#define ELINK_DATA_TAO_H_

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace elink {

/// Configuration for the Tao-like generator.
struct TaoConfig {
  int rows = 6;
  int cols = 9;
  /// 10-minute resolution => 144 measurements per day.
  int measurements_per_day = 144;
  /// Days used to train the initial models (paper: previous month).
  int train_days = 30;
  /// Days of stream for the dynamic experiments (paper: December 1998).
  int eval_days = 31;
  /// Number of longitudinal ocean regimes to synthesize.
  int num_regimes = 4;
  uint64_t seed = 42;
};

/// Default weight vector for the Tao feature distance (paper Section 8.1).
std::vector<double> TaoDistanceWeights();

/// Generates the workload: grid topology, per-node features fitted on the
/// training month with the seasonal AR model, and the evaluation stream.
Result<SensorDataset> MakeTaoDataset(const TaoConfig& config);

}  // namespace elink

#endif  // ELINK_DATA_TAO_H_
