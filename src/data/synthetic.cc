#include "data/synthetic.h"

#include "timeseries/ar_model.h"

namespace elink {

Result<SensorDataset> MakeSyntheticDataset(const SyntheticConfig& config) {
  if (config.num_nodes <= 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  if (config.alpha_min >= config.alpha_max || config.alpha_min < 0 ||
      config.alpha_max >= 1.0) {
    return Status::InvalidArgument("alpha range must satisfy 0<=min<max<1");
  }
  if (config.train_length < 10) {
    return Status::InvalidArgument("train_length too short");
  }
  Rng rng(config.seed);
  Result<Topology> topo = MakeRandomTopologyWithDegree(
      config.num_nodes, config.density, config.target_avg_degree, &rng);
  if (!topo.ok()) return topo.status();

  SensorDataset ds;
  ds.name = "synthetic-uncorrelated";
  ds.topology = std::move(topo).value();
  ds.metric =
      std::make_shared<WeightedEuclidean>(WeightedEuclidean::Euclidean(1));
  ds.features.resize(config.num_nodes);
  ds.streams.resize(config.num_nodes);
  ds.train_streams.resize(config.num_nodes);

  for (int i = 0; i < config.num_nodes; ++i) {
    Rng node_rng = rng.Fork(static_cast<uint64_t>(i) + 500);
    const double alpha =
        node_rng.Uniform(config.alpha_min, config.alpha_max);
    // Generate training series + evaluation stream from the AR(1) process.
    const int total = config.train_length + config.stream_length;
    Vector series;
    series.reserve(total);
    double x = node_rng.Uniform01();
    for (int t = 0; t < total; ++t) {
      x = alpha * x + node_rng.Uniform01();
      series.push_back(x);
    }
    Vector train(series.begin(), series.begin() + config.train_length);
    // Demean before fitting: the U(0,1) innovations give the process a large
    // positive mean, and a no-intercept AR(1) fit on raw values would push
    // every node's coefficient towards 1 (mean domination), erasing the
    // alpha_i differences the experiment clusters on.
    double mean = 0.0;
    for (double v : train) mean += v;
    mean /= train.size();
    for (double& v : train) v -= mean;
    Result<ArModel> fit = FitAr(train, 1);
    if (!fit.ok()) return fit.status();
    ds.features[i] = {fit.value().coefficients[0]};
    ds.streams[i].assign(series.begin() + config.train_length, series.end());
    ds.train_streams[i].assign(series.begin(),
                               series.begin() + config.train_length);
  }
  return ds;
}

}  // namespace elink
