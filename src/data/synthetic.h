// Spatially-uncorrelated synthetic workload (paper Section 8.1, "Synthetic").
//
// Nodes are placed uniformly at random (densities 0.7-0.9, ~4 radio
// neighbors on average); node i's data follows x_t = alpha_i x_{t-1} + e_t
// with e_t ~ U(0, 1) and alpha_i ~ U(0.4, 0.8) drawn independently per node,
// so neighboring nodes have *uncorrelated* model coefficients.  Every node is
// initialized with alpha = 1 and updates the model on each measurement.
#ifndef ELINK_DATA_SYNTHETIC_H_
#define ELINK_DATA_SYNTHETIC_H_

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace elink {

/// Configuration for the synthetic generator.
struct SyntheticConfig {
  int num_nodes = 400;
  /// Node density (nodes per unit area), paper range 0.7-0.9.
  double density = 0.8;
  /// Target mean degree (paper: ~4 nodes in radio range).
  double target_avg_degree = 4.0;
  /// Length of the training series used to fit alpha per node.
  int train_length = 500;
  /// Length of the evaluation stream (paper generates 100,000 readings; the
  /// dynamic experiments only consume what they need).
  int stream_length = 2000;
  double alpha_min = 0.4;
  double alpha_max = 0.8;
  uint64_t seed = 11;
};

/// Generates the workload: random topology, per-node AR(1) coefficient
/// feature fitted on the training prefix, plus the evaluation stream.
Result<SensorDataset> MakeSyntheticDataset(const SyntheticConfig& config);

}  // namespace elink

#endif  // ELINK_DATA_SYNTHETIC_H_
