#include "data/terrain.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace elink {

Heightmap Heightmap::DiamondSquare(int exponent, double roughness,
                                   double min_elev, double max_elev,
                                   Rng* rng) {
  ELINK_CHECK(exponent >= 1 && exponent <= 12);
  ELINK_CHECK(roughness > 0.0 && roughness < 1.0);
  const int size = (1 << exponent) + 1;
  Heightmap hm(size);
  auto cell = [&](int r, int c) -> double& {
    return hm.cells_[r * size + c];
  };

  // Seed the corners.
  cell(0, 0) = rng->Uniform(-1, 1);
  cell(0, size - 1) = rng->Uniform(-1, 1);
  cell(size - 1, 0) = rng->Uniform(-1, 1);
  cell(size - 1, size - 1) = rng->Uniform(-1, 1);

  double scale = 1.0;
  for (int step = size - 1; step > 1; step /= 2) {
    const int half = step / 2;
    // Diamond step: centers of squares.
    for (int r = half; r < size; r += step) {
      for (int c = half; c < size; c += step) {
        const double avg = (cell(r - half, c - half) + cell(r - half, c + half) +
                            cell(r + half, c - half) + cell(r + half, c + half)) /
                           4.0;
        cell(r, c) = avg + rng->Uniform(-scale, scale);
      }
    }
    // Square step: edge midpoints.
    for (int r = 0; r < size; r += half) {
      for (int c = (r + half) % step; c < size; c += step) {
        double sum = 0.0;
        int count = 0;
        if (r >= half) {
          sum += cell(r - half, c);
          ++count;
        }
        if (r + half < size) {
          sum += cell(r + half, c);
          ++count;
        }
        if (c >= half) {
          sum += cell(r, c - half);
          ++count;
        }
        if (c + half < size) {
          sum += cell(r, c + half);
          ++count;
        }
        cell(r, c) = sum / count + rng->Uniform(-scale, scale);
      }
    }
    scale *= roughness;
  }

  // Rescale to the requested elevation range.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : hm.cells_) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi > lo ? hi - lo : 1.0;
  for (double& v : hm.cells_) {
    v = min_elev + (v - lo) / span * (max_elev - min_elev);
  }
  return hm;
}

double Heightmap::Sample(double u, double v) const {
  u = std::clamp(u, 0.0, 1.0);
  v = std::clamp(v, 0.0, 1.0);
  const double fx = u * (size_ - 1);
  const double fy = v * (size_ - 1);
  const int x0 = std::min(static_cast<int>(fx), size_ - 2);
  const int y0 = std::min(static_cast<int>(fy), size_ - 2);
  const double tx = fx - x0;
  const double ty = fy - y0;
  const double a = at(y0, x0);
  const double b = at(y0, x0 + 1);
  const double c = at(y0 + 1, x0);
  const double d = at(y0 + 1, x0 + 1);
  return a * (1 - tx) * (1 - ty) + b * tx * (1 - ty) + c * (1 - tx) * ty +
         d * tx * ty;
}

Result<SensorDataset> MakeTerrainDataset(const TerrainConfig& config) {
  if (config.num_nodes <= 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  if (config.max_elevation <= config.min_elevation) {
    return Status::InvalidArgument("elevation range is empty");
  }
  Rng rng(config.seed);
  Heightmap hm =
      Heightmap::DiamondSquare(config.heightmap_exponent, config.roughness,
                               config.min_elevation, config.max_elevation,
                               &rng);

  const double side = 1.0;
  Result<Topology> topo =
      MakeRandomTopology(config.num_nodes, side,
                         side * config.radio_range_fraction, &rng,
                         /*force_connectivity=*/true);
  if (!topo.ok()) return topo.status();

  SensorDataset ds;
  ds.name = "terrain-like";
  ds.topology = std::move(topo).value();
  ds.metric = std::make_shared<WeightedEuclidean>(
      WeightedEuclidean::Euclidean(1));
  ds.features.resize(config.num_nodes);
  for (int i = 0; i < config.num_nodes; ++i) {
    const Point2D& p = ds.topology.positions[i];
    ds.features[i] = {hm.Sample(p.x / side, p.y / side)};
  }
  return ds;
}

}  // namespace elink
