// Dataset abstraction shared by the experiment harnesses.
//
// A SensorDataset bundles a deployment topology with the per-node clustering
// features (model coefficients) and the metric to compare them, i.e. exactly
// the inputs the delta-clustering problem of Section 2 takes.  Dynamic
// workloads additionally carry raw measurement streams for the maintenance
// and scalability experiments.
#ifndef ELINK_DATA_DATASET_H_
#define ELINK_DATA_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "metric/distance.h"
#include "metric/feature.h"
#include "sim/topology.h"

namespace elink {

/// \brief A ready-to-cluster sensor workload.
struct SensorDataset {
  std::string name;
  Topology topology;
  /// Clustering feature per node (model coefficients).
  std::vector<Feature> features;
  /// Metric on the features.
  std::shared_ptr<const DistanceMetric> metric;
  /// Optional per-node raw measurement stream (empty for static datasets).
  /// streams[i][t] is node i's t-th future measurement, used by the dynamic
  /// maintenance / scalability experiments.
  std::vector<std::vector<double>> streams;
  /// The training prefix the features were fitted on (empty for static
  /// datasets).  Streaming experiments warm-start their per-node models from
  /// this history so the first live updates continue the fitted state
  /// instead of jumping from a cold model.
  std::vector<std::vector<double>> train_streams;
  /// Measurements per "day" for datasets with a daily structure (0 if n/a).
  int measurements_per_day = 0;
};

/// Largest pairwise feature distance across communication-graph edges.
/// Useful for calibrating delta sweeps on a dataset.
double MaxNeighborDistance(const SensorDataset& ds);

/// Largest pairwise feature distance over all node pairs (the feature-space
/// diameter).  O(N^2); fine for the paper's network sizes.
double FeatureDiameter(const SensorDataset& ds);

/// Evenly spaced delta values in [lo_frac, hi_frac] * FeatureDiameter(ds).
std::vector<double> SuggestDeltaSweep(const SensorDataset& ds, int count,
                                      double lo_frac = 0.1,
                                      double hi_frac = 0.6);

}  // namespace elink

#endif  // ELINK_DATA_DATASET_H_
