#include "data/tao.h"

#include <algorithm>
#include <cmath>

#include "timeseries/seasonal.h"

namespace elink {

std::vector<double> TaoDistanceWeights() { return {0.5, 0.3, 0.2, 0.1}; }

namespace {

/// Latent per-regime dynamics.  Regimes differ in how persistent the daily
/// temperature trend is and in the size/shape of the diurnal cycle; these
/// differences land in the fitted (a1, b1..b3) coefficients and make regimes
/// separable in feature space.
struct Regime {
  double base_temp;        // Regime mean temperature.
  double diurnal_amp;      // Amplitude of the daily cycle.
  double intra_day_ar;     // AR(1) persistence of within-day fluctuations.
  double daily_mean_ar1;   // AR coefficients of the daily-mean process.
  double daily_mean_ar2;
  double daily_mean_ar3;
  double daily_noise;      // Innovation sigma of the daily-mean process.
};

Regime MakeRegime(int index, int total, Rng* rng) {
  // Spread regime parameters across the plausible ENSO range; jitter keeps
  // different seeds distinct without collapsing regimes together.
  //
  // Two identifiability choices make the fitted coefficients recover the
  // regime cleanly from a month of data:
  //  * within-day fluctuations dominate the (small) diurnal cycle, so the
  //    fitted a1 tracks intra_day_ar (estimated from ~10^3 samples, tight);
  //  * the daily-mean process is a damped oscillation with a regime-specific
  //    period (complex AR poles), which decorrelates the lagged regressors
  //    and keeps the b estimates from drowning in collinearity noise.
  const double f = total > 1 ? static_cast<double>(index) / (total - 1) : 0.0;
  Regime r;
  r.base_temp = 24.2 + 2.6 * f + rng->Uniform(-0.1, 0.1);       // 24.2..26.8C
  r.diurnal_amp = 0.08 + 0.07 * f + rng->Uniform(-0.01, 0.01);  // deg C
  r.intra_day_ar = 0.30 + 0.55 * f + rng->Uniform(-0.02, 0.02);  // 0.30..0.85
  const double rho = 0.72 + 0.12 * f;            // Pole magnitude.
  const double period = 3.0 + 5.0 * f;           // Oscillation period (days).
  const double theta = 2.0 * M_PI / period;
  r.daily_mean_ar1 = 2.0 * rho * std::cos(theta) + rng->Uniform(-0.02, 0.02);
  r.daily_mean_ar2 = -rho * rho + rng->Uniform(-0.02, 0.02);
  r.daily_mean_ar3 = 0.1 * (f - 0.5) + rng->Uniform(-0.02, 0.02);
  r.daily_noise = 0.30 + 0.10 * f;
  return r;
}

}  // namespace

Result<SensorDataset> MakeTaoDataset(const TaoConfig& config) {
  if (config.rows <= 0 || config.cols <= 0) {
    return Status::InvalidArgument("Tao grid dimensions must be positive");
  }
  if (config.train_days < 5) {
    return Status::InvalidArgument("Tao generator needs >= 5 training days");
  }
  if (config.num_regimes < 1 || config.num_regimes > config.cols) {
    return Status::InvalidArgument("num_regimes must be in [1, cols]");
  }

  Rng rng(config.seed);
  SensorDataset ds;
  ds.name = "tao-like";
  ds.topology = MakeGridTopology(config.rows, config.cols);
  ds.measurements_per_day = config.measurements_per_day;
  ds.metric = std::make_shared<WeightedEuclidean>(TaoDistanceWeights());

  const int n = ds.topology.num_nodes();
  std::vector<Regime> regimes;
  regimes.reserve(config.num_regimes);
  for (int i = 0; i < config.num_regimes; ++i) {
    regimes.push_back(MakeRegime(i, config.num_regimes, &rng));
  }

  // Assign each grid column band to a regime (longitudinal zones, like the
  // warm pool / cold tongue structure of the equatorial Pacific).
  std::vector<int> regime_of_node(n);
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c < config.cols; ++c) {
      const int zone =
          std::min(config.num_regimes - 1,
                   c * config.num_regimes / std::max(1, config.cols));
      regime_of_node[r * config.cols + c] = zone;
    }
  }

  const int total_days = config.train_days + config.eval_days;
  const int per_day = config.measurements_per_day;

  // Shared daily-mean trajectories, one per regime: buoys of a regime ride
  // the same weather (spatially correlated innovations), so their fitted b
  // coefficients agree closely — the spatial correlation the Tao experiments
  // rely on.  Each buoy adds a small idiosyncratic perturbation.
  std::vector<std::vector<double>> regime_mean_dev(config.num_regimes);
  for (int z = 0; z < config.num_regimes; ++z) {
    Rng regime_rng = rng.Fork(static_cast<uint64_t>(z) + 77);
    const Regime& reg = regimes[z];
    double m1 = 0.0, m2 = 0.0, m3 = 0.0;
    regime_mean_dev[z].reserve(total_days);
    for (int day = 0; day < total_days; ++day) {
      const double dev = reg.daily_mean_ar1 * m1 + reg.daily_mean_ar2 * m2 +
                         reg.daily_mean_ar3 * m3 +
                         regime_rng.Normal(0.0, reg.daily_noise);
      m3 = m2;
      m2 = m1;
      m1 = dev;
      regime_mean_dev[z].push_back(dev);
    }
  }

  std::vector<std::vector<double>> all_series(n);
  for (int i = 0; i < n; ++i) {
    Rng node_rng = rng.Fork(static_cast<uint64_t>(i) + 1000);
    const Regime& reg = regimes[regime_of_node[i]];
    // Small per-buoy parameter jitter: nodes in a regime are similar but not
    // identical (sensor calibration, local currents).
    const double base = reg.base_temp + node_rng.Uniform(-0.15, 0.15);
    const double amp = reg.diurnal_amp * node_rng.Uniform(0.95, 1.05);
    const double ar1 = std::clamp(
        reg.intra_day_ar + node_rng.Uniform(-0.015, 0.015), 0.05, 0.95);
    const double phase = node_rng.Uniform(-0.1, 0.1);

    std::vector<double>& series = all_series[i];
    series.reserve(static_cast<size_t>(total_days) * per_day);

    // Daily means = regime-shared trajectory + small local perturbation.
    double fluct = 0.0;  // Within-day AR(1) state.
    for (int day = 0; day < total_days; ++day) {
      const double mean_dev = regime_mean_dev[regime_of_node[i]][day] +
                              node_rng.Normal(0.0, 0.4 * reg.daily_noise);
      const double day_mean = base + mean_dev;
      for (int t = 0; t < per_day; ++t) {
        const double cycle =
            amp * std::sin(2.0 * M_PI * t / per_day + phase);
        fluct = ar1 * fluct + node_rng.Normal(0.0, 0.12);
        series.push_back(day_mean + cycle + fluct);
      }
    }
  }

  // Fit the seasonal model on the training prefix; expose the rest as the
  // evaluation stream.
  ds.features.resize(n);
  ds.streams.resize(n);
  ds.train_streams.resize(n);
  for (int i = 0; i < n; ++i) {
    const auto& series = all_series[i];
    const size_t train_len = static_cast<size_t>(config.train_days) * per_day;
    Vector train(series.begin(), series.begin() + train_len);
    Result<SeasonalArModel> model = SeasonalArModel::Train(train, per_day);
    if (!model.ok()) return model.status();
    ds.features[i] = model.value().Feature();
    ds.streams[i].assign(series.begin() + train_len, series.end());
    ds.train_streams[i] = std::move(train);
  }
  return ds;
}

}  // namespace elink
