#include "data/dataset.h"

#include <algorithm>

namespace elink {

double MaxNeighborDistance(const SensorDataset& ds) {
  double m = 0.0;
  const int n = ds.topology.num_nodes();
  for (int i = 0; i < n; ++i) {
    for (int j : ds.topology.adjacency[i]) {
      if (j <= i) continue;
      m = std::max(m, ds.metric->Distance(ds.features[i], ds.features[j]));
    }
  }
  return m;
}

double FeatureDiameter(const SensorDataset& ds) {
  double m = 0.0;
  const int n = ds.topology.num_nodes();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      m = std::max(m, ds.metric->Distance(ds.features[i], ds.features[j]));
    }
  }
  return m;
}

std::vector<double> SuggestDeltaSweep(const SensorDataset& ds, int count,
                                      double lo_frac, double hi_frac) {
  const double diameter = FeatureDiameter(ds);
  std::vector<double> out;
  out.reserve(count);
  if (count == 1) {
    out.push_back(lo_frac * diameter);
    return out;
  }
  for (int i = 0; i < count; ++i) {
    const double f =
        lo_frac + (hi_frac - lo_frac) * static_cast<double>(i) / (count - 1);
    out.push_back(f * diameter);
  }
  return out;
}

}  // namespace elink
