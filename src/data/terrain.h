// Death-Valley-like terrain workload (paper Section 8.1, "Death Valley").
//
// The paper scatters sensors over the USGS Death Valley elevation raster and
// uses the terrain elevation at each sensor as its (static) feature, with
// altitude range (175, 1996); results are averaged over 5 random topologies
// of 2500 samples.  The raster itself is not redistributable here, so we
// synthesize fractal terrain with the diamond-square algorithm — the
// standard model for natural-terrain spatial autocorrelation — and rescale
// it to the published altitude range.  What the experiments need from the
// data is a static, spatially-correlated scalar field with valley/ridge
// structure, which diamond-square provides.
#ifndef ELINK_DATA_TERRAIN_H_
#define ELINK_DATA_TERRAIN_H_

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace elink {

/// Configuration for the terrain generator.
struct TerrainConfig {
  /// Number of scattered sensors (paper: 2500).
  int num_nodes = 2500;
  /// Heightmap resolution exponent: the raster is (2^k + 1)^2.
  int heightmap_exponent = 7;
  /// Diamond-square roughness in (0, 1); higher is more rugged.
  double roughness = 0.55;
  /// Published elevation range.
  double min_elevation = 175.0;
  double max_elevation = 1996.0;
  /// Radio range as a fraction of the deployment side length.
  double radio_range_fraction = 0.035;
  uint64_t seed = 7;
};

/// \brief A synthetic elevation raster.
class Heightmap {
 public:
  /// Generates a (2^exponent + 1)-sided fractal heightmap, rescaled to
  /// [min_elev, max_elev].
  static Heightmap DiamondSquare(int exponent, double roughness,
                                 double min_elev, double max_elev, Rng* rng);

  int size() const { return size_; }
  double at(int row, int col) const { return cells_[row * size_ + col]; }

  /// Bilinear sample at normalized coordinates (u, v) in [0, 1]^2.
  double Sample(double u, double v) const;

 private:
  Heightmap(int size) : size_(size), cells_(size * size, 0.0) {}

  int size_;
  std::vector<double> cells_;
};

/// Generates one terrain workload: `num_nodes` sensors scattered uniformly,
/// unit-disk communication graph (grown until connected), and 1-dimensional
/// elevation features under plain Euclidean distance.
Result<SensorDataset> MakeTerrainDataset(const TerrainConfig& config);

}  // namespace elink

#endif  // ELINK_DATA_TERRAIN_H_
