#include "check/snapshot.h"

#include <cstdlib>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>

#include "check/conservation.h"
#include "common/strings.h"
#include "proto/snapshot.h"
#include "proto/wire.h"
#include "sim/network.h"

namespace elink {
namespace check {

namespace {

// Serializes the ledger's complete state: the totals of both planes and
// every per-category counter, in map (= name) order.
std::vector<uint8_t> EncodeLedgerSection(const ConservationLedger& ledger) {
  std::vector<uint8_t> out;
  const uint64_t totals[] = {
      ledger.logical_sends(),  ledger.logical_units(),
      ledger.logical_bytes(),  ledger.delivers(),
      ledger.charged_sends(),  ledger.charged_units(),
      ledger.charged_bytes(),  ledger.drops(),
      ledger.dropped_units(),  ledger.dropped_bytes(),
      ledger.hops(),           ledger.decode_errors(),
      ledger.timer_fires(),    ledger.retransmits(),
      ledger.transport_acks(), ledger.transport_give_ups()};
  for (const uint64_t v : totals) wire::PutVarint(v, &out);
  wire::PutVarint(ledger.by_category().size(), &out);
  for (const auto& [name, c] : ledger.by_category()) {
    wire::PutString(name, &out);
    const uint64_t fields[] = {c.sends,         c.units,
                               c.bytes,         c.dropped_sends,
                               c.dropped_units, c.dropped_bytes,
                               c.decode_errors};
    for (const uint64_t v : fields) wire::PutVarint(v, &out);
  }
  return out;
}

// The capture callback's product: the named sections frozen at the fire
// point (everything except the manifest, which the driver owns).
struct CapturedSections {
  std::vector<uint8_t> horizon;
  std::vector<uint8_t> stats;
  std::vector<uint8_t> nodes;
  std::vector<uint8_t> ledger;
  bool has_ledger = false;
};

void CaptureFromNetwork(Network& net, uint64_t dispatched,
                        CapturedSections* sections) {
  proto::HorizonImage horizon;
  horizon.events = dispatched;
  horizon.now = net.Now();
  sections->horizon = proto::EncodeHorizonSection(horizon);
  sections->stats = proto::EncodeStatsSection(net.stats());
  sections->nodes = proto::EncodeNodeStatesSection(net);
  // The trials chain their observers ledger-first, so the network observer
  // is the ledger when one is attached at all.
  if (const auto* ledger =
          dynamic_cast<const ConservationLedger*>(net.observer())) {
    sections->ledger = EncodeLedgerSection(*ledger);
    sections->has_ledger = true;
  }
}

}  // namespace

uint64_t CountTrialEvents(Protocol protocol, uint64_t seed,
                          const ScenarioKnobs& knobs) {
  Network::RunCheckpoint cp;  // countdown defaults to "never fire".
  Network::ArmCheckpoint(&cp);
  (void)RunScenario(protocol, seed, knobs);
  Network::ArmCheckpoint(nullptr);
  return cp.dispatched;
}

Result<SnapshotCapture> CaptureSnapshot(Protocol protocol, uint64_t seed,
                                        const ScenarioKnobs& knobs,
                                        uint64_t event_index) {
  SnapshotCapture capture;
  capture.checkpoint = event_index;

  CapturedSections sections;
  Network::RunCheckpoint cp;
  cp.countdown = event_index;
  cp.on_fire = [&sections, &cp](Network& net) {
    CaptureFromNetwork(net, cp.dispatched, &sections);
  };
  Network::ArmCheckpoint(&cp);
  capture.outcome = RunScenario(protocol, seed, knobs, &capture.artifacts);
  Network::ArmCheckpoint(nullptr);
  if (!cp.fired) {
    return Status::FailedPrecondition(StringPrintf(
        "snapshot: trial dispatched %llu event(s), checkpoint at %llu never "
        "fired",
        static_cast<unsigned long long>(cp.dispatched),
        static_cast<unsigned long long>(event_index)));
  }

  std::map<std::string, std::string> manifest;
  manifest["protocol"] = ProtocolName(protocol);
  manifest["seed"] = std::to_string(seed);
  manifest["disable"] = knobs.DisableList();
  manifest["checkpoint"] = std::to_string(event_index);

  proto::SnapshotWriter writer;
  Status s = writer.AddSection(proto::kSectionManifest,
                               proto::EncodeManifestSection(manifest));
  if (s.ok()) {
    s = writer.AddSection(proto::kSectionHorizon, std::move(sections.horizon));
  }
  if (s.ok()) {
    s = writer.AddSection(proto::kSectionStats, std::move(sections.stats));
  }
  if (s.ok()) {
    s = writer.AddSection(proto::kSectionNodes, std::move(sections.nodes));
  }
  if (s.ok() && sections.has_ledger) {
    s = writer.AddSection(proto::kSectionLedger, std::move(sections.ledger));
  }
  if (!s.ok()) return s;
  capture.archive = writer.Finish();
  return capture;
}

Status VerifySnapshot(const std::vector<uint8_t>& archive) {
  Result<proto::SnapshotReader> reader = proto::SnapshotReader::Parse(archive);
  if (!reader.ok()) return reader.status();

  const std::vector<uint8_t>* manifest_bytes =
      reader->section(proto::kSectionManifest);
  if (manifest_bytes == nullptr) {
    return Status::InvalidArgument("snapshot: archive has no manifest");
  }
  Result<std::map<std::string, std::string>> manifest =
      proto::DecodeManifestSection(*manifest_bytes);
  if (!manifest.ok()) return manifest.status();
  for (const char* key : {"protocol", "seed", "disable", "checkpoint"}) {
    if (!manifest->count(key)) {
      return Status::InvalidArgument(
          StringPrintf("snapshot: manifest lacks '%s'", key));
    }
  }
  Result<Protocol> protocol = ProtocolFromName(manifest->at("protocol"));
  if (!protocol.ok()) return protocol.status();
  Result<ScenarioKnobs> knobs =
      ScenarioKnobs::FromDisableList(manifest->at("disable"));
  if (!knobs.ok()) return knobs.status();
  uint64_t seed = 0, checkpoint = 0;
  for (const auto& [key, dest] :
       std::initializer_list<std::pair<const char*, uint64_t*>>{
           {"seed", &seed}, {"checkpoint", &checkpoint}}) {
    const std::string& text = manifest->at(key);
    char* end = nullptr;
    *dest = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size()) {
      return Status::InvalidArgument(
          StringPrintf("snapshot: malformed manifest '%s': '%s'", key,
                       text.c_str()));
    }
  }

  // Replay: re-derive the scenario and re-capture at the same event index.
  Result<SnapshotCapture> replay =
      CaptureSnapshot(*protocol, seed, *knobs, checkpoint);
  if (!replay.ok()) {
    return Status::FailedPrecondition("snapshot: replay failed: " +
                                      replay.status().message());
  }
  if (replay->archive != archive) {
    return Status::FailedPrecondition(StringPrintf(
        "snapshot: replayed archive differs (%zu vs %zu bytes) — the "
        "checkpoint state did not reproduce",
        replay->archive.size(), archive.size()));
  }

  // Uninterrupted control run: no checkpoint armed at all.  Its reports
  // must be byte-identical to the instrumented run's.
  TrialArtifacts plain;
  (void)RunScenario(*protocol, seed, *knobs, &plain);
  if (plain.reports != replay->artifacts.reports) {
    return Status::FailedPrecondition(
        "snapshot: instrumented and uninterrupted runs produced different "
        "reports");
  }
  return Status::OK();
}

}  // namespace check
}  // namespace elink
