#include "check/conservation.h"

#include <set>

#include "common/strings.h"
#include "proto/wire.h"

namespace elink {
namespace check {

void ConservationLedger::OnCausal(const CausalInfo& info) {
  // Pure pass-through: causal ids do not change any conservation law, but a
  // tracer chained behind the ledger needs them to annotate its events.
  if (next_ != nullptr) next_->OnCausal(info);
}

void ConservationLedger::OnSend(double now, int from, int to,
                                const Message& msg, double delay) {
  ++logical_sends_;
  logical_units_ += static_cast<uint64_t>(msg.CostUnits());
  logical_bytes_ += wire::FrameSize(msg);
  if (routed_pending_) {
    // Closing OnSend of a routed message: hops already charged.
    routed_pending_ = false;
  } else if (from != to) {
    // Plain single-hop send: charged exactly like MessageStats::Record.
    // The observer sees the same (possibly truncated) message the Network
    // charged, so re-encoding its frame length here reproduces the byte
    // ledger independently.
    ++charged_sends_;
    charged_units_ += static_cast<uint64_t>(msg.CostUnits());
    charged_bytes_ += wire::FrameSize(msg);
    Category& c = Cat(msg.category);
    ++c.sends;
    c.units += static_cast<uint64_t>(msg.CostUnits());
    c.bytes += wire::FrameSize(msg);
  }
  // from == to (routed self-delivery) is free on the wire.
  if (next_ != nullptr) next_->OnSend(now, from, to, msg, delay);
}

void ConservationLedger::OnHop(double at, int from, int to,
                               const Message& msg) {
  ++hops_;
  ++charged_sends_;
  charged_units_ += static_cast<uint64_t>(msg.CostUnits());
  charged_bytes_ += wire::FrameSize(msg);
  Category& c = Cat(msg.category);
  ++c.sends;
  c.units += static_cast<uint64_t>(msg.CostUnits());
  c.bytes += wire::FrameSize(msg);
  routed_pending_ = true;
  if (next_ != nullptr) next_->OnHop(at, from, to, msg);
}

void ConservationLedger::OnDeliver(double now, int from, int to,
                                   const Message& msg) {
  ++delivers_;
  if (next_ != nullptr) next_->OnDeliver(now, from, to, msg);
}

void ConservationLedger::OnDrop(double at, int from, int to,
                                const Message& msg) {
  ++drops_;
  dropped_units_ += static_cast<uint64_t>(msg.CostUnits());
  dropped_bytes_ += wire::FrameSize(msg);
  Category& c = Cat(msg.category);
  ++c.dropped_sends;
  c.dropped_units += static_cast<uint64_t>(msg.CostUnits());
  c.dropped_bytes += wire::FrameSize(msg);
  // A routed message that died mid-path never emits its closing OnSend.
  routed_pending_ = false;
  if (next_ != nullptr) next_->OnDrop(at, from, to, msg);
}

void ConservationLedger::OnTimerFire(double now, int node, int timer_id) {
  ++timer_fires_;
  if (next_ != nullptr) next_->OnTimerFire(now, node, timer_id);
}

void ConservationLedger::OnDecodeError(double now, int node,
                                       const std::string& category) {
  ++decode_errors_;
  ++Cat(category).decode_errors;
  if (next_ != nullptr) next_->OnDecodeError(now, node, category);
}

void ConservationLedger::OnRetransmit(double now, int node, int to,
                                      const Message& msg, int attempt) {
  ++retransmits_;
  if (next_ != nullptr) next_->OnRetransmit(now, node, to, msg, attempt);
}

void ConservationLedger::OnTransportAck(double now, int node, int to,
                                        long long seq) {
  ++transport_acks_;
  if (next_ != nullptr) next_->OnTransportAck(now, node, to, seq);
}

void ConservationLedger::OnTransportGiveUp(double now, int node, int to,
                                           const Message& msg) {
  ++transport_give_ups_;
  if (next_ != nullptr) next_->OnTransportGiveUp(now, node, to, msg);
}

void ConservationLedger::OnPhase(double now, int node, const char* phase,
                                 long long value) {
  if (next_ != nullptr) next_->OnPhase(now, node, phase, value);
}

void ConservationLedger::OnChurn(double now, const char* kind, int a, int b) {
  if (next_ != nullptr) next_->OnChurn(now, kind, a, b);
}

void ConservationLedger::OnWatchdogArm(double now, double window) {
  if (next_ != nullptr) next_->OnWatchdogArm(now, window);
}

void ConservationLedger::OnWatchdogFire(double now) {
  if (next_ != nullptr) next_->OnWatchdogFire(now);
}

void ConservationLedger::OnRunEnd(double end_time, uint64_t events,
                                  bool timed_out, bool hit_event_cap) {
  if (next_ != nullptr) {
    next_->OnRunEnd(end_time, events, timed_out, hit_event_cap);
  }
}

namespace {

Status Mismatch(const char* what, uint64_t ledger, uint64_t stats) {
  return Status::FailedPrecondition(
      StringPrintf("conservation: %s — ledger %llu vs stats %llu", what,
                   static_cast<unsigned long long>(ledger),
                   static_cast<unsigned long long>(stats)));
}

}  // namespace

Status CheckConservation(const ConservationLedger& ledger,
                         const MessageStats& stats, bool drained,
                         const std::vector<std::string>& ignore_categories) {
  // Law 1: every logical send is matched by exactly one delivery.
  if (ledger.delivers() > ledger.logical_sends()) {
    return Mismatch("delivers exceed sends", ledger.logical_sends(),
                    ledger.delivers());
  }
  if (drained && ledger.in_flight() != 0) {
    return Status::FailedPrecondition(StringPrintf(
        "conservation: %llu message(s) still in flight after the queue "
        "drained (sends %llu, delivers %llu)",
        static_cast<unsigned long long>(ledger.in_flight()),
        static_cast<unsigned long long>(ledger.logical_sends()),
        static_cast<unsigned long long>(ledger.delivers())));
  }

  // Law 2: hop-level charges equal the Network's own ledger.  Categories
  // recorded outside the Network are subtracted from the stats totals.
  const std::set<std::string> ignored(ignore_categories.begin(),
                                      ignore_categories.end());
  uint64_t ignored_sends = 0, ignored_units = 0;
  for (const std::string& cat : ignored) {
    ignored_sends += stats.sends(cat);
    ignored_units += stats.units(cat);
    if (stats.dropped(cat) != 0 || stats.decode_errors(cat) != 0) {
      return Status::FailedPrecondition(StringPrintf(
          "conservation: ignored category '%s' carries drops or decode "
          "errors",
          cat.c_str()));
    }
  }
  if (ledger.charged_sends() != stats.total_sends() - ignored_sends) {
    return Mismatch("total sends", ledger.charged_sends(),
                    stats.total_sends() - ignored_sends);
  }
  if (ledger.charged_units() != stats.total_units() - ignored_units) {
    return Mismatch("total units", ledger.charged_units(),
                    stats.total_units() - ignored_units);
  }
  if (ledger.drops() != stats.dropped_sends()) {
    return Mismatch("dropped sends", ledger.drops(), stats.dropped_sends());
  }
  if (ledger.dropped_units() != stats.dropped_units()) {
    return Mismatch("dropped units", ledger.dropped_units(),
                    stats.dropped_units());
  }
  if (ledger.decode_errors() != stats.decode_errors()) {
    return Mismatch("decode errors", ledger.decode_errors(),
                    stats.decode_errors());
  }

  // Per category, both directions: every category either side knows about.
  std::set<std::string> cats;
  for (const auto& [cat, c] : ledger.by_category()) cats.insert(cat);
  for (const auto& [cat, units] : stats.units_by_category()) cats.insert(cat);
  for (const auto& [cat, units] : stats.dropped_by_category()) {
    cats.insert(cat);
  }
  for (const std::string& cat : cats) {
    if (ignored.count(cat)) continue;
    ConservationLedger::Category want;  // Zeroes when the ledger never saw it.
    const auto it = ledger.by_category().find(cat);
    if (it != ledger.by_category().end()) want = it->second;
    if (want.sends != stats.sends(cat)) {
      return Mismatch(("sends of '" + cat + "'").c_str(), want.sends,
                      stats.sends(cat));
    }
    if (want.units != stats.units(cat)) {
      return Mismatch(("units of '" + cat + "'").c_str(), want.units,
                      stats.units(cat));
    }
    if (want.dropped_units != stats.dropped(cat)) {
      return Mismatch(("dropped units of '" + cat + "'").c_str(),
                      want.dropped_units, stats.dropped(cat));
    }
    if (want.decode_errors != stats.decode_errors(cat)) {
      return Mismatch(("decode errors of '" + cat + "'").c_str(),
                      want.decode_errors, stats.decode_errors(cat));
    }
  }
  return Status::OK();
}

Status CheckTelemetryConsistency(const ConservationLedger& ledger,
                                 const obs::MetricsRegistry& metrics) {
  const struct {
    const char* counter;
    uint64_t want;
  } rows[] = {
      {"sim.sends", ledger.logical_sends()},
      {"sim.send_units", ledger.logical_units()},
      {"sim.hops", ledger.hops()},
      {"sim.delivers", ledger.delivers()},
      {"sim.drops", ledger.drops()},
      {"sim.timer_fires", ledger.timer_fires()},
      {"sim.decode_errors", ledger.decode_errors()},
      {"transport.retx", ledger.retransmits()},
      {"transport.acks", ledger.transport_acks()},
      {"transport.give_ups", ledger.transport_give_ups()},
      {"sim.wire_bytes", ledger.logical_bytes()},
      {"sim.dropped_wire_bytes", ledger.dropped_bytes()},
  };
  for (const auto& row : rows) {
    const uint64_t got = metrics.counter(row.counter);
    if (got != row.want) {
      return Status::FailedPrecondition(StringPrintf(
          "telemetry: %s = %llu, ledger says %llu", row.counter,
          static_cast<unsigned long long>(got),
          static_cast<unsigned long long>(row.want)));
    }
  }
  return Status::OK();
}

Status CheckByteConservation(const ConservationLedger& ledger,
                             const MessageStats& stats,
                             const std::vector<std::string>& ignore_categories) {
  // Categories recorded outside the Network never ride the radio, so the
  // stats must carry zero bytes for them and the totals need no subtraction.
  const std::set<std::string> ignored(ignore_categories.begin(),
                                      ignore_categories.end());
  for (const std::string& cat : ignored) {
    if (stats.bytes(cat) != 0) {
      return Status::FailedPrecondition(StringPrintf(
          "byte conservation: ignored category '%s' carries %llu wire bytes",
          cat.c_str(), static_cast<unsigned long long>(stats.bytes(cat))));
    }
  }
  if (ledger.charged_bytes() != stats.total_bytes()) {
    return Mismatch("total wire bytes", ledger.charged_bytes(),
                    stats.total_bytes());
  }
  if (ledger.dropped_bytes() != stats.dropped_bytes()) {
    return Mismatch("dropped wire bytes", ledger.dropped_bytes(),
                    stats.dropped_bytes());
  }
  // Per category, both directions.
  std::set<std::string> cats;
  for (const auto& [cat, c] : ledger.by_category()) cats.insert(cat);
  for (const MessageStats::CategorySnapshot& c : stats.Snapshot()) {
    cats.insert(c.category);
  }
  for (const std::string& cat : cats) {
    if (ignored.count(cat)) continue;
    ConservationLedger::Category want;  // Zeroes when the ledger never saw it.
    const auto it = ledger.by_category().find(cat);
    if (it != ledger.by_category().end()) want = it->second;
    if (want.bytes != stats.bytes(cat)) {
      return Mismatch(("wire bytes of '" + cat + "'").c_str(), want.bytes,
                      stats.bytes(cat));
    }
  }
  return Status::OK();
}

}  // namespace check
}  // namespace elink
