#include "check/invariants.h"

#include <algorithm>

#include "common/strings.h"

namespace elink {
namespace check {

Status CheckClusterAssignments(const Clustering& clustering, int num_nodes) {
  if (static_cast<int>(clustering.root_of.size()) != num_nodes) {
    return Status::FailedPrecondition(StringPrintf(
        "clustering covers %zu nodes, topology has %d",
        clustering.root_of.size(), num_nodes));
  }
  for (int i = 0; i < num_nodes; ++i) {
    const int r = clustering.root_of[i];
    if (r < 0 || r >= num_nodes) {
      return Status::FailedPrecondition(
          StringPrintf("node %d has out-of-range root %d", i, r));
    }
    if (clustering.root_of[r] != r) {
      return Status::FailedPrecondition(StringPrintf(
          "node %d's root %d is not self-rooted (root_of[%d] = %d)", i, r, r,
          clustering.root_of[r]));
    }
  }
  return Status::OK();
}

Status CheckDeltaClustering(const Clustering& clustering,
                            const AdjacencyList& adjacency,
                            const std::vector<Feature>& features,
                            const DistanceMetric& metric, double delta) {
  Status s =
      CheckClusterAssignments(clustering, static_cast<int>(adjacency.size()));
  if (!s.ok()) return s;
  return ValidateDeltaClustering(clustering, adjacency, features, metric,
                                 delta);
}

Status CheckMTreeInvariants(const ClusterIndex& index,
                            const Clustering& clustering,
                            const std::vector<int>& tree_parent,
                            const std::vector<Feature>& features,
                            const DistanceMetric& metric) {
  const int n = index.num_nodes();
  if (n != static_cast<int>(tree_parent.size()) ||
      n != static_cast<int>(features.size()) ||
      n != static_cast<int>(clustering.root_of.size())) {
    return Status::FailedPrecondition(StringPrintf(
        "index size %d disagrees with tree_parent %zu / features %zu / "
        "clustering %zu",
        n, tree_parent.size(), features.size(), clustering.root_of.size()));
  }

  for (int i = 0; i < n; ++i) {
    // Parent links mirror the cluster trees; roots are self-parented.
    if (index.parent(i) != tree_parent[i]) {
      return Status::FailedPrecondition(
          StringPrintf("index.parent(%d) = %d, cluster tree says %d", i,
                       index.parent(i), tree_parent[i]));
    }
    const bool is_root = tree_parent[i] == i;
    if (is_root && clustering.root_of[i] != i) {
      return Status::FailedPrecondition(StringPrintf(
          "tree root %d is not its cluster's root (root_of = %d)", i,
          clustering.root_of[i]));
    }
    if (is_root != (index.depth(i) == 0)) {
      return Status::FailedPrecondition(StringPrintf(
          "node %d: depth %d inconsistent with root status %d", i,
          index.depth(i), is_root ? 1 : 0));
    }
    if (!is_root && index.depth(i) != index.depth(tree_parent[i]) + 1) {
      return Status::FailedPrecondition(StringPrintf(
          "node %d: depth %d != parent %d's depth %d + 1", i, index.depth(i),
          tree_parent[i], index.depth(tree_parent[i])));
    }

    // Children lists: exactly the nodes naming i as parent, ascending.
    const std::vector<int>& kids = index.children(i);
    if (!std::is_sorted(kids.begin(), kids.end())) {
      return Status::FailedPrecondition(
          StringPrintf("children(%d) not ascending", i));
    }
    for (const int c : kids) {
      if (c < 0 || c >= n || c == i || tree_parent[c] != i) {
        return Status::FailedPrecondition(
            StringPrintf("children(%d) lists %d whose parent is %d", i, c,
                         c >= 0 && c < n ? tree_parent[c] : -1));
      }
    }
    if (!is_root) {
      const std::vector<int>& pk = index.children(tree_parent[i]);
      if (!std::binary_search(pk.begin(), pk.end(), i)) {
        return Status::FailedPrecondition(StringPrintf(
            "node %d missing from children(%d)", i, tree_parent[i]));
      }
    }

    // Covering radius: 0 at leaves, the Section 7.1 aggregation elsewhere.
    const double r_i = index.covering_radius(i);
    if (kids.empty()) {
      if (r_i != 0.0) {
        return Status::FailedPrecondition(
            StringPrintf("leaf %d has covering radius %g != 0", i, r_i));
      }
    } else {
      double want = 0.0;
      for (const int c : kids) {
        const double reach =
            metric.Distance(index.routing_feature(i),
                            index.routing_feature(c)) +
            index.covering_radius(c);
        want = std::max(want, reach);
        if (r_i + kCheckEps < reach) {
          return Status::FailedPrecondition(StringPrintf(
              "node %d: covering radius %.12g < d(F_%d, F_%d) + R_%d = %.12g",
              i, r_i, i, c, c, reach));
        }
      }
      if (r_i > want + kCheckEps) {
        return Status::FailedPrecondition(StringPrintf(
            "node %d: covering radius %.12g overshoots child aggregate %.12g",
            i, r_i, want));
      }
    }

    // Subtree containment: every member within the covering radius, every
    // member's parent chain passing through i.
    for (const int m : index.subtree(i)) {
      const double d =
          metric.Distance(index.routing_feature(i), index.routing_feature(m));
      if (d > r_i + kCheckEps) {
        return Status::FailedPrecondition(StringPrintf(
            "subtree(%d) member %d at distance %.12g > covering radius %.12g",
            i, m, d, r_i));
      }
      int walk = m;
      int steps = 0;
      while (walk != i && tree_parent[walk] != walk && steps++ <= n) {
        walk = tree_parent[walk];
      }
      if (walk != i) {
        return Status::FailedPrecondition(StringPrintf(
            "subtree(%d) member %d does not descend from %d", i, m, i));
      }
    }
  }

  // Root ball radii: exact max member distance per cluster.
  for (const auto& [root, members] : clustering.Groups()) {
    double want = 0.0;
    for (const int m : members) {
      want = std::max(want, metric.Distance(features[root], features[m]));
    }
    const double got = index.root_ball_radius(root);
    if (std::abs(got - want) > kCheckEps) {
      return Status::FailedPrecondition(StringPrintf(
          "root_ball_radius(%d) = %.12g, exact member max is %.12g", root,
          got, want));
    }
  }
  return Status::OK();
}

std::vector<int> RangeOracle(const std::vector<Feature>& features,
                             const DistanceMetric& metric, const Feature& q,
                             double r) {
  // One batched whole-set scan (bit-identical to the per-feature Distance
  // loop, so oracle verdicts are unchanged).
  const FeaturePool pool(features);
  std::vector<double> dists(pool.size());
  metric.BatchDistance(q, pool, dists.data());
  std::vector<int> matches;
  for (int i = 0; i < static_cast<int>(dists.size()); ++i) {
    // Exact inclusion tolerance of RangeQueryEngine::LinearScan.
    if (dists[i] <= r + 1e-12) matches.push_back(i);
  }
  return matches;
}

bool NodeIsSafe(const Feature& feature, const DistanceMetric& metric,
                const Feature& danger, double gamma) {
  // Exact IsSafe tolerance of PathQueryEngine (index/path_query.cc).
  return metric.Distance(feature, danger) >= gamma - 1e-12;
}

bool SafePathExists(const AdjacencyList& adjacency,
                    const std::vector<Feature>& features,
                    const DistanceMetric& metric, const Feature& danger,
                    double gamma, int source, int destination) {
  const int n = static_cast<int>(adjacency.size());
  if (!NodeIsSafe(features[source], metric, danger, gamma) ||
      !NodeIsSafe(features[destination], metric, danger, gamma)) {
    return false;
  }
  std::vector<char> seen(n, 0);
  std::vector<int> frontier{source};
  seen[source] = 1;
  while (!frontier.empty()) {
    std::vector<int> next;
    for (const int u : frontier) {
      if (u == destination) return true;
      for (const int v : adjacency[u]) {
        if (seen[v] || !NodeIsSafe(features[v], metric, danger, gamma)) {
          continue;
        }
        seen[v] = 1;
        next.push_back(v);
      }
    }
    frontier = std::move(next);
  }
  return seen[destination] != 0;
}

Status CheckPathResult(const PathQueryResult& result,
                       const AdjacencyList& adjacency,
                       const std::vector<Feature>& features,
                       const DistanceMetric& metric, const Feature& danger,
                       double gamma, int source, int destination,
                       bool require_exact) {
  if (!result.found) {
    if (!result.path.empty()) {
      return Status::FailedPrecondition(StringPrintf(
          "not-found result carries a %zu-node path", result.path.size()));
    }
    if (require_exact && SafePathExists(adjacency, features, metric, danger,
                                        gamma, source, destination)) {
      return Status::FailedPrecondition(StringPrintf(
          "query (%d -> %d) reported no path but the oracle finds one",
          source, destination));
    }
    return Status::OK();
  }

  // Soundness of a found path: real endpoints, real edges, all nodes safe.
  if (result.path.empty() || result.path.front() != source ||
      result.path.back() != destination) {
    return Status::FailedPrecondition(StringPrintf(
        "path endpoints do not match query (%d -> %d)", source, destination));
  }
  const int n = static_cast<int>(adjacency.size());
  for (size_t k = 0; k < result.path.size(); ++k) {
    const int u = result.path[k];
    if (u < 0 || u >= n) {
      return Status::FailedPrecondition(
          StringPrintf("path node %d out of range", u));
    }
    if (!NodeIsSafe(features[u], metric, danger, gamma)) {
      return Status::FailedPrecondition(StringPrintf(
          "path node %d is unsafe (d = %.12g < gamma = %.12g)", u,
          metric.Distance(features[u], danger), gamma));
    }
    if (k > 0) {
      const int prev = result.path[k - 1];
      const auto& nbrs = adjacency[prev];
      if (prev == u ||
          !std::binary_search(nbrs.begin(), nbrs.end(), u)) {
        return Status::FailedPrecondition(StringPrintf(
            "path step %d -> %d is not a communication edge", prev, u));
      }
    }
  }
  // A found path IS the existence proof; with exactness required there is
  // nothing further to compare (the oracle must agree, and does).
  return Status::OK();
}

}  // namespace check
}  // namespace elink
