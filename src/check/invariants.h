// Invariant checkers over finished runs — the machine-checkable form of the
// paper's guarantees (elink_check).
//
// Every checker is a pure function: it inspects final state (a clustering,
// an index, a query result) and returns OK or FailedPrecondition describing
// the first violation found.  Checkers never mutate anything and never
// consult an RNG, so a failing check reproduces bit-identically from the
// scenario seed that produced the state.
//
// The catalog (see DESIGN.md §9 for the paper citations):
//   * CheckClusterAssignments  — partition sanity (Definition 1 preamble).
//   * CheckDeltaClustering     — full Definition 1: connectivity + pairwise
//                                delta-compactness + cover (Lemma 1 is what
//                                makes ELink's delta/2 join rule imply it).
//   * CheckMTreeInvariants     — Section 7.1: leaves R = 0, parent radius
//                                aggregation, subtree containment, exact
//                                root ball radii.
//   * RangeOracle              — brute-force Section 7.2 answer.
//   * CheckPathResult          — Section 7.3 soundness (returned path is
//                                real and safe) and optional exactness
//                                against the BFS-over-safe-nodes oracle.
#ifndef ELINK_CHECK_INVARIANTS_H_
#define ELINK_CHECK_INVARIANTS_H_

#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "index/mtree.h"
#include "index/path_query.h"
#include "metric/distance.h"
#include "metric/feature.h"
#include "sim/graph.h"

namespace elink {
namespace check {

/// Tolerance used by the floating-point comparisons below.  The M-tree radii
/// are aggregated by the same double arithmetic the checker replays, so the
/// slack only has to absorb association-order differences.
inline constexpr double kCheckEps = 1e-9;

/// Partition sanity that must hold even on degraded (watchdog-cut) runs:
/// every node assigned a root in range, roots self-rooted.
Status CheckClusterAssignments(const Clustering& clustering, int num_nodes);

/// Full Definition 1 check: assignment sanity, induced-subgraph connectivity
/// per cluster, and exhaustive pairwise delta-compactness.  Delegates the
/// heavy part to ValidateDeltaClustering (cluster/clustering.h).
Status CheckDeltaClustering(const Clustering& clustering,
                            const AdjacencyList& adjacency,
                            const std::vector<Feature>& features,
                            const DistanceMetric& metric, double delta);

/// Section 7.1 structural invariants of a built ClusterIndex:
///  * parent/children/depth agree with `tree_parent` (roots self-parented,
///    children ascending, depth = parent depth + 1);
///  * leaves have covering radius 0;
///  * every parent's radius equals max_j (d(F_p, F_j) + R_j) over its
///    children (within kCheckEps, both directions);
///  * every subtree member lies within the subtree root's covering radius;
///  * root_ball_radius(leader) is exactly the max distance from the leader's
///    feature to any member of its cluster.
Status CheckMTreeInvariants(const ClusterIndex& index,
                            const Clustering& clustering,
                            const std::vector<int>& tree_parent,
                            const std::vector<Feature>& features,
                            const DistanceMetric& metric);

/// Brute-force range-query answer: ids of all nodes within `r` of `q`,
/// ascending — the oracle the Section 7.2 engines and protocols must match.
std::vector<int> RangeOracle(const std::vector<Feature>& features,
                             const DistanceMetric& metric, const Feature& q,
                             double r);

/// Node safety under (danger, gamma), with the exact tolerance
/// PathQueryEngine::IsSafe uses.
bool NodeIsSafe(const Feature& feature, const DistanceMetric& metric,
                const Feature& danger, double gamma);

/// Oracle: does a path from `source` to `destination` exist whose every node
/// is safe?  BFS over the safe-node-induced subgraph.
bool SafePathExists(const AdjacencyList& adjacency,
                    const std::vector<Feature>& features,
                    const DistanceMetric& metric, const Feature& danger,
                    double gamma, int source, int destination);

/// Validates one path-query result.  Soundness always: when `found`, the
/// path must start at source, end at destination, walk real communication
/// edges, and contain only safe nodes; when not found, the path must be
/// empty.  With `require_exact` (fault-free runs), `found` must additionally
/// equal the SafePathExists oracle.
Status CheckPathResult(const PathQueryResult& result,
                       const AdjacencyList& adjacency,
                       const std::vector<Feature>& features,
                       const DistanceMetric& metric, const Feature& danger,
                       double gamma, int source, int destination,
                       bool require_exact);

}  // namespace check
}  // namespace elink

#endif  // ELINK_CHECK_INVARIANTS_H_
