#include "check/runner.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "check/causal.h"
#include "check/conservation.h"
#include "check/invariants.h"
#include "cluster/elink.h"
#include "cluster/maintenance.h"
#include "cluster/maintenance_protocol.h"
#include "common/rng.h"
#include "common/strings.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "index/path_query.h"
#include "index/path_query_protocol.h"
#include "index/query_protocol.h"
#include "index/range_query.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "proto/wire.h"
#include "serve/session.h"
#include "serve/workload.h"
#include "sim/graph.h"

namespace elink {
namespace check {

namespace {

// Workload streams, disjoint from the scenario's aspect streams (1-5 in
// scenario.cc): the update and query batches are part of the trial but not
// of the Scenario struct, so they fork their own sub-streams of the seed.
constexpr uint64_t kUpdateStream = 16;
constexpr uint64_t kRangeQueryStream = 17;
constexpr uint64_t kPathQueryStream = 18;
constexpr uint64_t kUpdateTimeStream = 19;
constexpr uint64_t kWireFuzzStream = 20;
constexpr uint64_t kServeQueryStream = 21;

// Trace-ring capacity for the causal cross-check.  Fuzz scenarios are small
// (tens of nodes), so the ring virtually never wraps; when a pathological
// seed does wrap it, CheckCausalGraph degrades to structural checks only.
constexpr size_t kCausalTraceCapacity = 1 << 17;

void Add(CheckOutcome* out, const char* checkname, std::string detail) {
  out->violations.push_back(CheckViolation{checkname, std::move(detail)});
}

void AddIfBad(CheckOutcome* out, const char* checkname, const Status& s) {
  if (!s.ok()) Add(out, checkname, s.ToString());
}

// The fault-tolerance tunings the repo's robustness bench validated: the
// retransmit span stays inside ELink's completion watchdog, and the query
// deadlines clear the longest routed leg's retransmissions.
void TuneElinkForFaults(const Scenario& s, ElinkConfig* cfg) {
  if (!s.fault.enabled()) return;
  if (s.reliable) {
    cfg->reliable_transport = true;
    cfg->reliable.rto = 8.0;
    cfg->reliable.backoff = 1.5;
    cfg->reliable.max_retries = 8;
  }
  cfg->completion_timeout = 450.0;
}

void TuneQueryForFaults(const Scenario& s,
                        DistributedRangeQuery::ProtocolOptions* opt) {
  if (!s.fault.enabled()) return;
  opt->node_deadline = 2500.0;
  opt->query_deadline = 30000.0;
  if (s.reliable) {
    opt->reliable_transport = true;
    opt->reliable.rto = 40.0;
    opt->reliable.backoff = 1.5;
    opt->reliable.max_retries = 10;
  }
}

// The fault-free world (clustering + trees + index + backbone) that the
// maintenance and query trials start from.  Built with explicit-mode ELink
// on a synchronous fault-free network — the configuration whose completion
// is unconditional.  Returns nullopt after recording a violation.
struct World {
  Clustering clustering;
  std::vector<int> tree_parent;
  std::optional<ClusterIndex> index;
  std::optional<Backbone> backbone;
};

std::optional<World> BuildWorld(const Scenario& s, CheckOutcome* out) {
  ElinkConfig cfg;
  cfg.delta = s.delta;
  cfg.slack = s.slack;
  cfg.synchronous = true;
  cfg.seed = s.seed;
  Result<ElinkResult> r =
      RunElink(s.topology, s.features, *s.metric, cfg, ElinkMode::kExplicit);
  if (!r.ok()) {
    Add(out, "world_build", r.status().ToString());
    return std::nullopt;
  }
  World w;
  w.clustering = std::move(r).value().clustering;
  w.tree_parent = BuildClusterTrees(w.clustering, s.topology.adjacency);
  w.index = ClusterIndex::Build(w.clustering, w.tree_parent, s.features,
                                *s.metric);
  w.backbone = Backbone::Build(w.clustering, s.topology.adjacency, nullptr,
                               &s.features, s.metric.get());
  return w;
}

// ---------------------------------------------------------------------------
// Wire-format frame-mutation sweep (the `wirefuzz` knob).
//
// Per scenario: a batch of randomized messages, each proven to (a) round-trip
// encode -> frame -> CRC -> decode exactly, (b) reject truncation at every
// byte offset, (c) reject a bit flip at every byte offset (CRC32 detects all
// bursts shorter than 32 bits, and flips outside the CRC span hit the magic
// or the stored CRC, so rejection is deterministic — never flaky), and
// (d) reject non-magic garbage without crashing.

Message RandomWireMessage(Rng* rng) {
  Message m;
  m.category = "wirefuzz";
  m.type = static_cast<int>(rng->UniformInt(2000));
  const int nints = static_cast<int>(rng->UniformInt(13));
  for (int i = 0; i < nints; ++i) {
    switch (rng->UniformInt(4)) {
      case 0:  // Near-zero ids/levels, the common protocol case.
        m.ints.push_back(static_cast<long long>(rng->UniformInt(128)) - 16);
        break;
      case 1:  // Mid-range values with both signs.
        m.ints.push_back(rng->UniformIntRange(-1'000'000, 1'000'000));
        break;
      case 2:  // Full 64-bit patterns: exercises varint length 10 and the
               // delta decoder's wrapping arithmetic.
        m.ints.push_back(static_cast<long long>(rng->Next()));
        break;
      default:  // The extremes themselves.
        m.ints.push_back(rng->Bernoulli(0.5) ? INT64_MAX : INT64_MIN);
        break;
    }
  }
  const int ndoubles = static_cast<int>(rng->UniformInt(9));
  for (int i = 0; i < ndoubles; ++i) {
    m.doubles.push_back(rng->Bernoulli(0.9) ? rng->Uniform(-1e6, 1e6)
                                            : rng->Uniform(-1e-300, 1e-300));
  }
  if (rng->Bernoulli(0.5)) {
    m.rel_seq = static_cast<long long>(rng->UniformInt(1 << 20));
    m.rel_from = static_cast<int>(rng->UniformInt(4096));
    m.rel_ack = rng->Bernoulli(0.3);
  }
  return m;
}

bool SameWirePayload(const Message& a, const Message& b) {
  if (a.type != b.type || a.ints != b.ints || a.rel_seq != b.rel_seq ||
      a.rel_from != b.rel_from || a.rel_ack != b.rel_ack) {
    return false;
  }
  // Bitwise double comparison: -0.0 vs 0.0 or a mangled NaN payload must
  // count as corruption even though operator== would wave them through.
  if (a.doubles.size() != b.doubles.size()) return false;
  return a.doubles.empty() ||
         std::memcmp(a.doubles.data(), b.doubles.data(),
                     a.doubles.size() * sizeof(double)) == 0;
}

void RunWireFuzzPass(uint64_t seed, CheckOutcome* out) {
  Rng rng = Rng(seed).Fork(kWireFuzzStream);
  constexpr int kMessages = 48;
  for (int i = 0; i < kMessages; ++i) {
    const Message msg = RandomWireMessage(&rng);
    const std::vector<uint8_t> frame = wire::EncodeFrame(msg);
    if (frame.size() != wire::FrameSize(msg)) {
      Add(out, "wirefuzz",
          StringPrintf("message %d: FrameSize says %zu, encoder emitted %zu",
                       i, wire::FrameSize(msg), frame.size()));
      continue;
    }
    Result<Message> decoded = wire::DecodeFrame(frame);
    if (!decoded.ok()) {
      Add(out, "wirefuzz",
          StringPrintf("message %d: round-trip decode failed: %s", i,
                       decoded.status().ToString().c_str()));
      continue;
    }
    if (!SameWirePayload(msg, *decoded)) {
      Add(out, "wirefuzz",
          StringPrintf("message %d: round-trip changed the payload", i));
      continue;
    }
    // Truncation at every byte offset must reject.
    for (size_t len = 0; len < frame.size(); ++len) {
      if (wire::DecodeFrame(frame.data(), len).ok()) {
        Add(out, "wirefuzz",
            StringPrintf("message %d: truncation to %zu bytes decoded", i,
                         len));
        break;
      }
    }
    // A single flipped bit at every byte offset must reject.
    std::vector<uint8_t> mutated = frame;
    for (size_t off = 0; off < mutated.size(); ++off) {
      const uint8_t bit = static_cast<uint8_t>(1u << rng.UniformInt(8));
      mutated[off] ^= bit;
      if (wire::DecodeFrame(mutated).ok()) {
        Add(out, "wirefuzz",
            StringPrintf("message %d: bit flip at byte %zu decoded", i, off));
      }
      mutated[off] ^= bit;  // Restore for the next offset.
    }
    // Non-magic garbage must reject without crashing.
    std::vector<uint8_t> garbage(rng.UniformInt(64) + 1);
    for (uint8_t& b : garbage) b = static_cast<uint8_t>(rng.Next());
    if (garbage[0] == wire::kFrameMagic) garbage[0] ^= 0xFF;
    if (wire::DecodeFrame(garbage).ok()) {
      Add(out, "wirefuzz",
          StringPrintf("message %d: non-magic garbage decoded", i));
    }
  }
}

// Appends the run's report to the trial artifacts (no-op without a sink).
void CollectReport(TrialArtifacts* artifacts, const obs::RunTelemetry& tele,
                   const char* protocol, uint64_t seed,
                   const MessageStats& stats) {
  if (artifacts == nullptr) return;
  artifacts->reports.push_back(tele.MakeReport(protocol, seed, stats).ToJson());
}

void RunElinkTrial(const Scenario& s, CheckOutcome* out,
                   TrialArtifacts* artifacts) {
  ConservationLedger ledger;
  obs::RunTelemetry tele;
  ledger.set_next(&tele);
  obs::Tracer tracer(kCausalTraceCapacity);
  if (s.knobs.causal) tele.set_next(&tracer);

  ElinkConfig cfg;
  cfg.delta = s.delta;
  cfg.slack = s.slack;
  cfg.synchronous = s.synchronous;
  cfg.seed = s.seed;
  cfg.fault = s.fault;
  cfg.observer = &ledger;
  TuneElinkForFaults(s, &cfg);

  Result<ElinkResult> r =
      RunElink(s.topology, s.features, *s.metric, cfg, s.elink_mode);
  if (!r.ok()) {
    Add(out, "elink_run", r.status().ToString());
    return;
  }
  const ElinkResult& res = r.value();
  // The RunElink contract: the output is a valid delta-clustering even on
  // degraded (watchdog-cut) runs — Definition 1, via Lemma 1's delta/2 join
  // rule plus the connectivity repair.
  AddIfBad(out, "delta_clustering",
           CheckDeltaClustering(res.clustering, s.topology.adjacency,
                                s.features, *s.metric, s.delta));
  if (!s.fault.enabled()) {
    if (!res.completed) {
      Add(out, "elink_completed", "fault-free run reported completed=false");
    }
    if (res.unclustered_nodes != 0) {
      Add(out, "elink_unclustered",
          StringPrintf("fault-free run left %d node(s) unclustered",
                       res.unclustered_nodes));
    }
  }
  AddIfBad(out, "conservation",
           CheckConservation(ledger, res.stats, /*drained=*/true));
  AddIfBad(out, "byte_conservation",
           CheckByteConservation(ledger, res.stats));
  AddIfBad(out, "telemetry",
           CheckTelemetryConsistency(ledger, tele.metrics()));
  if (s.knobs.causal) {
    AddIfBad(out, "causal", CheckCausalGraph(tracer, res.stats));
  }
  CollectReport(artifacts, tele, "elink", s.seed, res.stats);
}

// ---------------------------------------------------------------------------
// Serve-coherence pass (the `serve` knob).
//
// A MaintenanceServeDriver rides along the maintenance trial: the protocol's
// epoch-bump hook feeds its cache invalidation, and at every publish point
// each client replays a pooled (Zipf-skewed, so hits occur) query batch.
// Every served answer — cache hit or miss — must (a) byte-equal a fresh
// recomputation on the published view, (b) equal the exact linear-scan/BFS
// oracles over the view's live state, and (c) when it came from the cache,
// carry the epoch vector of the *current* view (a stale hit is the
// coherence failure mode this pass exists to catch).  Purely observational:
// the pass draws from its own stream and never injects protocol activity,
// so enabling/disabling it cannot reshuffle the maintenance trial.

void CheckServedBatch(const Scenario& s, serve::MaintenanceServeDriver* driver,
                      const serve::WorkloadGenerator& gen, int round,
                      CheckOutcome* out) {
  std::shared_ptr<const serve::ReadView> view = driver->frontend().View();
  // original id -> compact id on the served view, for oracle remapping.
  std::vector<int> remap(s.topology.num_nodes(), -1);
  for (int c = 0; c < view->num_live(); ++c) remap[view->original_id(c)] = c;

  for (int client = 0; client < s.serve_clients; ++client) {
    const std::vector<serve::WorkloadOp> ops = gen.ClientOps(client);
    for (size_t k = 0; k < ops.size(); ++k) {
      const serve::WorkloadOp& op = ops[k];
      const auto where = [&] {
        return StringPrintf("round %d client %d op %zu (%s)", round, client,
                            k, s.Describe().c_str());
      };
      if (op.is_range) {
        const serve::ServedRange served =
            driver->frontend().Range(op.feature, op.scalar);
        const serve::RangeAnswer fresh = view->Range(op.feature, op.scalar);
        if (!(served.answer == fresh)) {
          Add(out, "serve_coherence",
              StringPrintf("%s: served range answer (%zu matches, cached=%d) "
                           "!= fresh recomputation (%zu)",
                           where().c_str(), served.answer.matches.size(),
                           served.from_cache ? 1 : 0, fresh.matches.size()));
        }
        std::vector<int> oracle = RangeOracle(
            view->compact_features(), *s.metric, op.feature, op.scalar);
        for (int& id : oracle) id = view->original_id(id);
        if (served.answer.matches != oracle) {
          Add(out, "serve_oracle",
              StringPrintf("%s: served range answer (%zu) != linear-scan "
                           "oracle (%zu)",
                           where().c_str(), served.answer.matches.size(),
                           oracle.size()));
        }
        if (served.from_cache &&
            (served.epochs != view->epochs() ||
             served.epoch_signature != view->epoch_signature())) {
          Add(out, "serve_stale_hit",
              StringPrintf("%s: cache hit carries a non-current epoch vector",
                           where().c_str()));
        }
      } else {
        const serve::ServedPath served = driver->frontend().SafePath(
            op.source, op.destination, op.feature, op.scalar);
        const serve::PathAnswer fresh = view->SafePath(
            op.source, op.destination, op.feature, op.scalar);
        if (!(served.answer == fresh)) {
          Add(out, "serve_coherence",
              StringPrintf("%s: served path answer (found=%d, cached=%d) != "
                           "fresh recomputation (found=%d)",
                           where().c_str(), served.answer.found ? 1 : 0,
                           served.from_cache ? 1 : 0, fresh.found ? 1 : 0));
        }
        const bool endpoints_live =
            view->node_live(op.source) && view->node_live(op.destination);
        const bool oracle_found =
            endpoints_live &&
            SafePathExists(view->compact_adjacency(),
                           view->compact_features(), *s.metric, op.feature,
                           op.scalar, remap[op.source],
                           remap[op.destination]);
        if (served.answer.found != oracle_found) {
          Add(out, "serve_oracle",
              StringPrintf("%s: served path found=%d but BFS oracle says %d",
                           where().c_str(), served.answer.found ? 1 : 0,
                           oracle_found ? 1 : 0));
        }
        if (served.answer.found) {
          // Soundness of the returned path on the served live state.
          const std::vector<int>& p = served.answer.path;
          bool sound = p.front() == op.source && p.back() == op.destination;
          for (size_t i = 0; sound && i < p.size(); ++i) {
            if (!view->node_live(p[i]) ||
                !NodeIsSafe(view->compact_features()[remap[p[i]]], *s.metric,
                            op.feature, op.scalar)) {
              sound = false;
            }
            if (sound && i + 1 < p.size()) {
              const auto& nbrs = view->compact_adjacency()[remap[p[i]]];
              sound = std::find(nbrs.begin(), nbrs.end(),
                                remap[p[i + 1]]) != nbrs.end();
            }
          }
          if (!sound) {
            Add(out, "serve_oracle",
                StringPrintf("%s: served path is not a safe live walk",
                             where().c_str()));
          }
        }
        if (served.from_cache &&
            (served.epochs != view->epochs() ||
             served.epoch_signature != view->epoch_signature())) {
          Add(out, "serve_stale_hit",
              StringPrintf("%s: cache hit carries a non-current epoch vector",
                           where().c_str()));
        }
      }
    }
  }
}

void RunMaintenanceTrial(const Scenario& s, CheckOutcome* out,
                         TrialArtifacts* artifacts) {
  std::optional<World> w = BuildWorld(s, out);
  if (!w.has_value()) return;

  MaintenanceConfig mcfg;
  mcfg.delta = s.delta;
  mcfg.slack = s.slack;

  // Maintenance carries no transport/watchdog recovery, so its fault
  // exposure is the message-level classes it is built to survive: loss and
  // truncation.  Crashes and outages stay with the protocols that have
  // deadlines or watchdogs.
  FaultPlan plan;
  plan.drop_probability = s.fault.drop_probability;
  plan.truncate_probability = s.fault.truncate_probability;

  DistributedMaintenance dm(s.topology, w->clustering, s.features, s.metric,
                            mcfg, s.synchronous, s.seed, plan, s.churn);
  ConservationLedger ledger;
  obs::RunTelemetry tele;
  ledger.set_next(&tele);
  obs::Tracer tracer(kCausalTraceCapacity);
  if (s.knobs.causal) tele.set_next(&tracer);
  dm.set_observer(&ledger);

  const int n = s.topology.num_nodes();
  const int dim = s.feature_dim;
  const bool churny = s.churn.enabled();

  // The serve pass rides along, publishing snapshots between protocol
  // activity; it never injects updates or messages of its own.
  std::unique_ptr<serve::MaintenanceServeDriver> driver;
  std::unique_ptr<serve::WorkloadGenerator> serve_gen;
  int serve_round = 0;
  if (s.serve_enabled) {
    serve::ServeFrontend::Options fopt;
    fopt.delta = s.delta;
    fopt.cache.shards = 4;
    fopt.cache.capacity_per_shard = s.serve_cache_capacity;
    driver = std::make_unique<serve::MaintenanceServeDriver>(&dm, s.metric,
                                                             fopt);
    serve::WorkloadConfig wcfg;
    wcfg.num_clients = s.serve_clients;
    wcfg.ops_per_client = s.serve_ops;
    wcfg.range_fraction = s.serve_range_fraction;
    wcfg.predicate_pool = s.serve_pool;
    wcfg.zipf_s = s.serve_zipf;
    wcfg.unique_fraction = 0.15;
    serve_gen = std::make_unique<serve::WorkloadGenerator>(
        s.features, n, wcfg, Rng(s.seed).Fork(kServeQueryStream).Next());
    CheckServedBatch(s, driver.get(), *serve_gen, serve_round++, out);
  }
  // The fire front's correlated shifts land at the times the front passes,
  // interleaved with the crashes it causes.
  for (const TimedUpdate& u : s.scheduled_updates) {
    dm.ScheduleUpdate(u.at, u.node, u.feature);
  }
  Rng urng = Rng(s.seed).Fork(kUpdateStream);
  // Schedule times come from their own stream so churn-free trials replay
  // exactly the workload the pre-churn sweeps pinned down.
  Rng trng = Rng(s.seed).Fork(kUpdateTimeStream);
  for (int u = 0; u < s.num_updates; ++u) {
    const int node = static_cast<int>(urng.UniformInt(n));
    Feature f = dm.CurrentFeatures()[node];
    if (urng.Bernoulli(0.7)) {
      // Small drift, scaled so the A1-A3 absorption conditions actually
      // trigger when slack is on.
      const double span = s.slack > 0.0 ? s.slack : 0.1 * s.delta;
      for (int k = 0; k < dim; ++k) f[k] += urng.Uniform(-span, span);
    } else {
      // A jump toward another node's feature: provokes escalation, detach,
      // and re-merge.
      const Feature& target = s.features[urng.UniformInt(n)];
      for (int k = 0; k < dim; ++k) {
        f[k] = target[k] + urng.Uniform(-0.1, 0.1) * s.delta;
      }
    }
    // Drawn for every update so disabling churn never reshuffles the
    // stream; only churny trials use it.
    const double at = trng.Uniform(1.0, 100.0);
    if (churny) {
      // Updates must race the churn events, so they are spread across the
      // churn window and drained in one run instead of each being applied
      // (and fully quiesced) before the clock reaches any churn.
      dm.ScheduleUpdate(at, node, f);
    } else {
      dm.ApplyUpdate(node, f);
      // Republish midway so pooled predicates cached on the previous state
      // get invalidated (or stay warm when nothing drifted far enough to
      // re-cluster) and the batch re-checks them on the new view.
      if (driver && u == s.num_updates / 2) {
        driver->Publish();
        CheckServedBatch(s, driver.get(), *serve_gen, serve_round++, out);
      }
    }
  }
  dm.RunToQuiescence();
  if (driver) {
    driver->Publish();
    CheckServedBatch(s, driver.get(), *serve_gen, serve_round++, out);
  }

  // Correctness of the maintained state is only guaranteed when nothing was
  // *silently* lost: fault drops and mangled messages void the warranty,
  // while churn drops are announced topology changes the self-healing layer
  // is built to absorb.  Conservation holds regardless.
  if (dm.stats().dropped_sends() == dm.churn_drops() &&
      dm.stats().decode_errors() == 0) {
    const Clustering c = dm.CurrentClustering();
    AddIfBad(out, "maintenance_invariant",
             dm.ValidateRootDistanceInvariant(s.delta + 2.0 * s.slack));
    if (!churny) {
      AddIfBad(out, "maintenance_assignments", CheckClusterAssignments(c, n));
    } else {
      // Departed nodes keep their last (stale) assignment, so the full-view
      // check does not apply; the live view must be self-consistent.
      const std::vector<char> live = dm.LiveMask();
      std::map<int, std::vector<char>> members;  // root -> live member mask.
      for (int i = 0; i < n; ++i) {
        if (!live[i]) continue;
        const int r = c.root_of[i];
        if (r < 0 || r >= n) {
          Add(out, "maintenance_assignments",
              StringPrintf("present node %d has out-of-range root %d", i, r));
          continue;
        }
        if (live[r] && c.root_of[r] != r) {
          Add(out, "maintenance_assignments",
              StringPrintf("present node %d's root %d is not self-rooted "
                           "(root_of[%d] = %d)",
                           i, r, r, c.root_of[r]));
        }
        auto [it, inserted] = members.emplace(r, std::vector<char>());
        if (inserted) it->second.assign(n, 0);
        it->second[i] = 1;
      }
      // Self-healing convergence: the live members of every maintained
      // cluster stay connected through live radio links.
      const AdjacencyList live_adj = dm.LiveAdjacency();
      for (const auto& [root, mask] : members) {
        if (!IsInducedConnected(live_adj, mask)) {
          Add(out, "maintenance_live_connectivity",
              StringPrintf(
                  "cluster rooted at %d is disconnected on the live topology",
                  root));
        }
      }
    }
  }
  AddIfBad(out, "conservation",
           CheckConservation(ledger, dm.stats(), /*drained=*/true));
  AddIfBad(out, "byte_conservation",
           CheckByteConservation(ledger, dm.stats()));
  AddIfBad(out, "telemetry",
           CheckTelemetryConsistency(ledger, tele.metrics()));
  if (s.knobs.causal) {
    AddIfBad(out, "causal", CheckCausalGraph(tracer, dm.stats()));
  }
  CollectReport(artifacts, tele, "maintenance", s.seed, dm.stats());
}

void RunRangeQueryTrial(const Scenario& s, CheckOutcome* out,
                        TrialArtifacts* artifacts) {
  std::optional<World> w = BuildWorld(s, out);
  if (!w.has_value()) return;
  const int n = s.topology.num_nodes();

  AddIfBad(out, "mtree",
           CheckMTreeInvariants(*w->index, w->clustering, w->tree_parent,
                                s.features, *s.metric));

  RangeQueryEngine engine(w->clustering, *w->index, *w->backbone, s.features,
                          *s.metric, s.delta);
  Rng qrng = Rng(s.seed).Fork(kRangeQueryStream);
  for (int t = 0; t < s.num_queries; ++t) {
    const int initiator = static_cast<int>(qrng.UniformInt(n));
    Feature q = s.features[qrng.UniformInt(n)];
    for (double& v : q) v += qrng.Uniform(-0.3, 0.3) * s.delta;
    const double r = qrng.Uniform(0.2, 1.2) * s.delta;

    const std::vector<int> truth = RangeOracle(s.features, *s.metric, q, r);
    const RangeQueryResult eres = engine.Query(initiator, q, r);
    if (eres.matches != truth) {
      Add(out, "range_engine",
          StringPrintf("query %d: engine found %zu matches, oracle %zu", t,
                       eres.matches.size(), truth.size()));
    }
    if (engine.LinearScan(q, r) != truth) {
      Add(out, "range_scan",
          StringPrintf("query %d: LinearScan disagrees with the oracle", t));
    }

    DistributedRangeQuery::ProtocolOptions qopt;
    qopt.synchronous = s.synchronous;
    qopt.seed = s.seed;
    qopt.fault = s.fault;
    qopt.churn = s.churn;
    TuneQueryForFaults(s, &qopt);
    ConservationLedger ledger;
    obs::RunTelemetry tele;
    ledger.set_next(&tele);
    obs::Tracer tracer(kCausalTraceCapacity);
    if (s.knobs.causal) tele.set_next(&tracer);
    qopt.observer = &ledger;
    DistributedRangeQuery protocol(s.topology, w->clustering, *w->index,
                                   *w->backbone, s.features, s.metric, qopt);
    Result<DistributedQueryOutcome> run = protocol.Run(initiator, q, r);
    if (!run.ok()) {
      Add(out, "range_protocol_run", run.status().ToString());
      continue;
    }
    const DistributedQueryOutcome& o = run.value();
    if (o.answer_received &&
        o.match_count > static_cast<long long>(truth.size())) {
      Add(out, "range_soundness",
          StringPrintf("query %d: match_count %lld exceeds the true %zu", t,
                       o.match_count, truth.size()));
    }
    if (!s.fault.enabled() && !s.churn.enabled()) {
      if (!o.answer_received || !o.complete ||
          o.match_count != static_cast<long long>(truth.size()) ||
          o.unreachable_subtrees != 0) {
        Add(out, "range_exactness",
            StringPrintf("fault-free query %d: match_count %lld vs truth "
                         "%zu (complete=%d answered=%d unreachable=%lld)",
                         t, o.match_count, truth.size(), o.complete ? 1 : 0,
                         o.answer_received ? 1 : 0, o.unreachable_subtrees));
      }
    }
    AddIfBad(out, "conservation",
             CheckConservation(ledger, o.stats, /*drained=*/true));
    AddIfBad(out, "byte_conservation", CheckByteConservation(ledger, o.stats));
    AddIfBad(out, "telemetry",
             CheckTelemetryConsistency(ledger, tele.metrics()));
    if (s.knobs.causal) {
      AddIfBad(out, "causal", CheckCausalGraph(tracer, o.stats));
    }
    CollectReport(artifacts, tele, "range_query", s.seed, o.stats);
  }
}

void RunPathQueryTrial(const Scenario& s, CheckOutcome* out,
                       TrialArtifacts* artifacts) {
  std::optional<World> w = BuildWorld(s, out);
  if (!w.has_value()) return;
  const int n = s.topology.num_nodes();

  PathQueryEngine engine(w->clustering, *w->index, *w->backbone,
                         s.topology.adjacency, s.features, *s.metric,
                         s.delta);
  Rng qrng = Rng(s.seed).Fork(kPathQueryStream);
  for (int t = 0; t < s.num_queries; ++t) {
    const int source = static_cast<int>(qrng.UniformInt(n));
    const int destination = static_cast<int>(qrng.UniformInt(n));
    Feature danger = s.features[qrng.UniformInt(n)];
    for (double& v : danger) v += qrng.Uniform(-0.3, 0.3) * s.delta;
    const double gamma = qrng.Uniform(0.2, 1.0) * s.delta;

    const PathQueryResult eres =
        engine.Query(source, destination, danger, gamma);
    AddIfBad(out, "path_engine",
             CheckPathResult(eres, s.topology.adjacency, s.features,
                             *s.metric, danger, gamma, source, destination,
                             /*require_exact=*/true));
    const PathQueryResult bfs =
        engine.BfsBaseline(source, destination, danger, gamma);
    if (bfs.found != eres.found) {
      Add(out, "path_bfs_parity",
          StringPrintf("query %d: engine found=%d, BFS baseline found=%d", t,
                       eres.found ? 1 : 0, bfs.found ? 1 : 0));
    }
    AddIfBad(out, "path_bfs",
             CheckPathResult(bfs, s.topology.adjacency, s.features, *s.metric,
                             danger, gamma, source, destination,
                             /*require_exact=*/true));

    PathProtocolOptions popt;
    popt.synchronous = s.synchronous;
    popt.seed = s.seed;
    popt.fault = s.fault;
    popt.churn = s.churn;
    ConservationLedger ledger;
    obs::RunTelemetry tele;
    ledger.set_next(&tele);
    obs::Tracer tracer(kCausalTraceCapacity);
    if (s.knobs.causal) tele.set_next(&tracer);
    popt.observer = &ledger;
    DistributedPathQuery protocol(s.topology, w->clustering, *w->index,
                                  *w->backbone, s.features, s.metric, popt);
    Result<PathQueryResult> run =
        protocol.Run(source, destination, danger, gamma);
    if (!run.ok()) {
      Add(out, "path_protocol_run", run.status().ToString());
      continue;
    }
    AddIfBad(out, "path_protocol",
             CheckPathResult(run.value(), s.topology.adjacency, s.features,
                             *s.metric, danger, gamma, source, destination,
                             /*require_exact=*/!s.fault.enabled() &&
                                 !s.churn.enabled()));
    // "path_search"/"path_trace" are the engine-parity categories the
    // protocol records outside the Network (the classification walk).
    AddIfBad(out, "conservation",
             CheckConservation(ledger, run.value().stats, /*drained=*/true,
                               {"path_search", "path_trace"}));
    AddIfBad(out, "byte_conservation",
             CheckByteConservation(ledger, run.value().stats,
                                   {"path_search", "path_trace"}));
    AddIfBad(out, "telemetry",
             CheckTelemetryConsistency(ledger, tele.metrics()));
    if (s.knobs.causal) {
      // "path_search"/"path_trace" never touch the wire, so the causal
      // graph cannot see them either.
      AddIfBad(out, "causal",
               CheckCausalGraph(tracer, run.value().stats,
                                {"path_search", "path_trace"}));
    }
    CollectReport(artifacts, tele, "path_query", s.seed, run.value().stats);
  }
}

}  // namespace

const char* ProtocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kElink:
      return "elink";
    case Protocol::kMaintenance:
      return "maintenance";
    case Protocol::kRangeQuery:
      return "range_query";
    case Protocol::kPathQuery:
      return "path_query";
  }
  return "?";
}

Result<Protocol> ProtocolFromName(const std::string& name) {
  for (const Protocol p : AllProtocols()) {
    if (name == ProtocolName(p)) return p;
  }
  return Status::InvalidArgument(StringPrintf(
      "unknown protocol '%s' (expected elink, maintenance, range_query, "
      "path_query)",
      name.c_str()));
}

const std::vector<Protocol>& AllProtocols() {
  static const std::vector<Protocol> kAll = {
      Protocol::kElink, Protocol::kMaintenance, Protocol::kRangeQuery,
      Protocol::kPathQuery};
  return kAll;
}

std::string CheckOutcome::Summary() const {
  std::string out;
  for (const CheckViolation& v : violations) {
    if (!out.empty()) out += "; ";
    out += v.check + ": " + v.detail;
  }
  return out;
}

CheckOutcome RunScenario(Protocol protocol, uint64_t seed,
                         const ScenarioKnobs& knobs,
                         TrialArtifacts* artifacts) {
  CheckOutcome out;
  Result<Scenario> scenario = MakeScenario(seed, knobs);
  if (!scenario.ok()) {
    Add(&out, "scenario", scenario.status().ToString());
    return out;
  }
  out.scenario = std::move(scenario).value();
  switch (protocol) {
    case Protocol::kElink:
      RunElinkTrial(out.scenario, &out, artifacts);
      break;
    case Protocol::kMaintenance:
      RunMaintenanceTrial(out.scenario, &out, artifacts);
      break;
    case Protocol::kRangeQuery:
      RunRangeQueryTrial(out.scenario, &out, artifacts);
      break;
    case Protocol::kPathQuery:
      RunPathQueryTrial(out.scenario, &out, artifacts);
      break;
  }
  if (knobs.wirefuzz) RunWireFuzzPass(seed, &out);
  return out;
}

ScenarioKnobs ShrinkFailure(Protocol protocol, uint64_t seed,
                            const ScenarioKnobs& start) {
  ScenarioKnobs current = start;
  const std::vector<bool ScenarioKnobs::*> order = {
      &ScenarioKnobs::faults,   &ScenarioKnobs::churn,
      &ScenarioKnobs::async,    &ScenarioKnobs::reliable,
      &ScenarioKnobs::slack,    &ScenarioKnobs::features,
      &ScenarioKnobs::random_topology, &ScenarioKnobs::wirefuzz,
      &ScenarioKnobs::causal,   &ScenarioKnobs::serve,
  };
  for (const auto member : order) {
    if (!(current.*member)) continue;
    ScenarioKnobs trial = current;
    trial.*member = false;
    if (!RunScenario(protocol, seed, trial).ok()) current = trial;
  }
  return current;
}

}  // namespace check
}  // namespace elink
