#include "check/firefront.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace elink {
namespace check {

FireFrontEffects SweepFireFront(const Topology& topology,
                                const std::vector<Feature>& features,
                                const FireFrontConfig& config, Rng* rng) {
  const int n = topology.num_nodes();
  ELINK_CHECK(static_cast<int>(features.size()) == n);
  ELINK_CHECK(config.speed > 0.0);
  ELINK_CHECK(config.start_time >= 0.0);
  ELINK_CHECK(config.crash_fraction >= 0.0 && config.crash_fraction <= 1.0);
  ELINK_CHECK(config.repair_delay_max >= config.repair_delay_min);
  ELINK_CHECK(config.repair_delay_min > 0.0);
  ELINK_CHECK(config.burn_lag > 0.0);

  FireFrontEffects fx;
  if (n == 0) return fx;

  double min_x = std::numeric_limits<double>::infinity();
  for (const Point2D& p : topology.positions) min_x = std::min(min_x, p.x);

  // Visit nodes in front-arrival order (x, then id for ties) so the emitted
  // updates and crashes read as the sweep they are.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return topology.positions[a].x < topology.positions[b].x;
  });

  for (const int i : order) {
    ELINK_CHECK(features[i].size() == config.shift.size());
    const double hit =
        config.start_time + (topology.positions[i].x - min_x) / config.speed;
    TimedUpdate u;
    u.at = hit;
    u.node = i;
    u.feature = features[i];
    for (size_t k = 0; k < u.feature.size(); ++k) {
      u.feature[k] += config.shift[k];
    }
    fx.updates.push_back(std::move(u));
    // Both draws happen for every node so crash_fraction never shifts the
    // repair-delay stream (see header).
    const bool burns = rng->Bernoulli(config.crash_fraction);
    const double repair_after =
        rng->Uniform(config.repair_delay_min, config.repair_delay_max);
    if (burns) {
      ChurnPlan::NodeCrash c;
      c.node = i;
      c.crash_at = hit + config.burn_lag;
      c.recover_at = c.crash_at + repair_after;
      fx.churn.crashes.push_back(c);
    }
  }
  return fx;
}

}  // namespace check
}  // namespace elink
