#include "check/causal.h"

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "check/invariants.h"
#include "common/strings.h"
#include "obs/causal.h"

namespace elink {
namespace check {

namespace {

// Compares two category -> count maps over their key union, treating a
// missing key as 0 and skipping `ignored` keys.  `what` names the counter
// in the failure message ("units", "bytes", "dropped units").
Status CompareCategoryMaps(const std::map<std::string, uint64_t>& graph_side,
                           const std::map<std::string, uint64_t>& stats_side,
                           const std::set<std::string>& ignored,
                           const char* what) {
  std::set<std::string> keys;
  for (const auto& [k, v] : graph_side) {
    if (v > 0) keys.insert(k);
  }
  for (const auto& [k, v] : stats_side) {
    if (v > 0) keys.insert(k);
  }
  for (const std::string& k : keys) {
    if (ignored.count(k) > 0) continue;
    const auto g = graph_side.find(k);
    const auto s = stats_side.find(k);
    const uint64_t gv = g == graph_side.end() ? 0 : g->second;
    const uint64_t sv = s == stats_side.end() ? 0 : s->second;
    if (gv != sv) {
      return Status::FailedPrecondition(StringPrintf(
          "category '%s': causal graph attributes %llu %s, MessageStats "
          "recorded %llu",
          k.c_str(), static_cast<unsigned long long>(gv), what,
          static_cast<unsigned long long>(sv)));
    }
  }
  return Status::OK();
}

}  // namespace

Status CheckCausalGraph(const obs::Tracer& tracer, const MessageStats& stats,
                        const std::vector<std::string>& ignore_categories) {
  const obs::CausalGraph g = obs::CausalGraph::Build(tracer);
  const std::vector<obs::CausalNode>& nodes = g.nodes();

  // Structure: the trace stream is emitted in schedule order, so every
  // cause must have been recorded before its effect (acyclicity), and an
  // effect can never carry an earlier sim time than its cause.
  for (size_t i = 0; i < nodes.size(); ++i) {
    const obs::CausalNode& n = nodes[i];
    if (n.parent < 0) continue;
    if (static_cast<size_t>(n.parent) >= i) {
      return Status::FailedPrecondition(StringPrintf(
          "causal node %zu (seq %llu) points at parent %d, which does not "
          "precede it: the graph is not a forest in emission order",
          i, static_cast<unsigned long long>(n.seq), n.parent));
    }
    const obs::CausalNode& p = nodes[static_cast<size_t>(n.parent)];
    if (n.time < p.time - kCheckEps) {
      return Status::FailedPrecondition(StringPrintf(
          "causal node %zu happens at t=%.9f before its cause at t=%.9f",
          i, n.time, p.time));
    }
    if (n.kind == obs::CausalNode::Kind::kDeliver) {
      // A deliver's parent is the send that carried the same message id to
      // this destination, and it lands exactly at the send's arrival time.
      if (p.kind != obs::CausalNode::Kind::kSend || p.msg != n.msg ||
          p.peer != n.node) {
        return Status::FailedPrecondition(StringPrintf(
            "deliver node %zu (msg %llu -> node %d) matched a parent that "
            "is not its send (parent msg %llu, peer %d)",
            i, static_cast<unsigned long long>(n.msg), n.node,
            static_cast<unsigned long long>(p.msg), p.peer));
      }
      if (n.time < p.end_time - kCheckEps ||
          n.time > p.end_time + kCheckEps) {
        return Status::FailedPrecondition(StringPrintf(
            "deliver node %zu lands at t=%.9f but its send scheduled "
            "arrival at t=%.9f",
            i, n.time, p.end_time));
      }
    }
  }

  // Every activation (a handler that actually ran) must land inside the
  // run.  Drop nodes are exempt: a routed frame lost mid-path is stamped
  // with its virtual arrival instant, which can lie beyond the drain time
  // when nothing else was scheduled.  Sends are covered transitively —
  // their arrival is their deliver child's activation time.
  for (size_t i = 0; i < nodes.size(); ++i) {
    const obs::CausalNode& n = nodes[i];
    if (n.kind != obs::CausalNode::Kind::kDeliver &&
        n.kind != obs::CausalNode::Kind::kTimer) {
      continue;
    }
    if (n.time > g.run_end_time() + kCheckEps) {
      return Status::FailedPrecondition(StringPrintf(
          "activation node %zu runs at t=%.9f, after the run end t=%.9f",
          i, n.time, g.run_end_time()));
    }
  }

  // Counting laws only hold over a complete window: an overflowed ring is
  // an honest suffix, so orphans and partial sums are expected there.
  if (!g.complete()) return Status::OK();

  if (g.orphans() != 0) {
    return Status::FailedPrecondition(StringPrintf(
        "%llu causal node(s) reference a cause that was never recorded, "
        "but the trace ring never overflowed",
        static_cast<unsigned long long>(g.orphans())));
  }

  const std::set<std::string> ignored(ignore_categories.begin(),
                                      ignore_categories.end());
  if (Status s = CompareCategoryMaps(g.UnitsByCategory(),
                                     stats.units_by_category(), ignored,
                                     "delivered units");
      !s.ok()) {
    return s;
  }
  std::map<std::string, uint64_t> stats_bytes;
  for (const MessageStats::CategorySnapshot& c : stats.Snapshot()) {
    if (c.bytes > 0) stats_bytes[c.category] = c.bytes;
  }
  if (Status s = CompareCategoryMaps(g.BytesByCategory(), stats_bytes,
                                     ignored, "delivered bytes");
      !s.ok()) {
    return s;
  }
  return CompareCategoryMaps(g.DroppedUnitsByCategory(),
                             stats.dropped_by_category(), ignored,
                             "dropped units");
}

}  // namespace check
}  // namespace elink
