// Causal-graph invariants (elink_check).
//
// CheckCausalGraph rebuilds an obs::CausalGraph from a Tracer that watched
// the run and verifies the causal annotations the Network emitted are a
// consistent history, then cross-checks the graph's cost attribution
// against the run's own MessageStats ledger:
//
//   * structure — the forest is acyclic by construction order (every parent
//     precedes its child in the trace stream) and causally monotone (a
//     child never happens before its parent, within kCheckEps);
//   * completeness — with an un-overflowed ring there are no orphans: every
//     deliver matches a recorded send of the same message id, every timer
//     fire's arming activation was seen;
//   * run bounds — every activation (deliver / timer fire) happens at or
//     before the run's recorded end time (drops are exempt: a routed frame
//     lost mid-path carries its virtual arrival instant, which can lie
//     beyond the drain time);
//   * attribution — delivered units per category summed over the graph's
//     send nodes equal MessageStats::units_by_category(), and dropped units
//     per category equal dropped_by_category() (bytes likewise).
//
// When the ring overflowed the counting checks are skipped (the window is
// an honest suffix, not the whole run) but the structural checks still
// apply to what was retained.  `ignore_categories` follows
// CheckConservation: categories recorded into `stats` outside the Network
// (engine-parity bookkeeping) never appear on the wire, so they are skipped
// in the per-category comparison.
#ifndef ELINK_CHECK_CAUSAL_H_
#define ELINK_CHECK_CAUSAL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "sim/stats.h"

namespace elink {
namespace check {

Status CheckCausalGraph(const obs::Tracer& tracer, const MessageStats& stats,
                        const std::vector<std::string>& ignore_categories = {});

}  // namespace check
}  // namespace elink

#endif  // ELINK_CHECK_CAUSAL_H_
