// Moving-phenomenon scenario generation: a "fire front" sweeping across the
// deployment field (elink_check).
//
// The front enters the field at its min-x edge at a configured start time
// and advances along +x at constant speed.  Every node it passes observes a
// correlated feature shift (the phenomenon) at the instant the front
// reaches its position, and a configured fraction of passed nodes also
// burns out — a churn crash at the front, repaired after a random delay
// (the redeploy).  The result is the archetypal dynamic-topology workload:
// feature updates and faults that are *spatially and temporally
// correlated*, unlike the independent draws of the plain fuzz streams.
//
// Generation is deterministic in (topology, features, config, rng state);
// the sweep itself consumes exactly two draws per node (burn decision and
// repair delay) regardless of their outcome, so configs that differ only in
// crash_fraction keep every other draw aligned.
#ifndef ELINK_CHECK_FIREFRONT_H_
#define ELINK_CHECK_FIREFRONT_H_

#include <vector>

#include "common/rng.h"
#include "metric/feature.h"
#include "sim/churn.h"
#include "sim/topology.h"

namespace elink {
namespace check {

/// One feature update scheduled at an absolute simulation time (consumed by
/// DistributedMaintenance::ScheduleUpdate).
struct TimedUpdate {
  double at = 0.0;
  int node = 0;
  Feature feature;
};

struct FireFrontConfig {
  /// Simulation time the front crosses the field's min-x edge.
  double start_time = 5.0;
  /// Field distance the front advances per simulation time unit (> 0).
  double speed = 1.0;
  /// Added to a node's feature when the front passes it; dimension must
  /// match the feature field.
  Feature shift;
  /// Probability a passed node burns out (churn crash), drawn per node.
  double crash_fraction = 0.0;
  /// A burned node is redeployed (churn repair) after a delay drawn
  /// uniformly from [repair_delay_min, repair_delay_max].
  double repair_delay_min = 20.0;
  double repair_delay_max = 60.0;
  /// A burned node still observes the shift before dying: its crash lags
  /// the front's passage by this much.
  double burn_lag = 0.5;
};

/// What one sweep does to the network: crashes for the churn plan plus the
/// correlated feature updates, both in front-arrival (x) order.
struct FireFrontEffects {
  ChurnPlan churn;
  std::vector<TimedUpdate> updates;
};

/// Sweeps the front over every node of `topology`.  `features` is the field
/// the shifts apply to (one update per node: feature + shift).
FireFrontEffects SweepFireFront(const Topology& topology,
                                const std::vector<Feature>& features,
                                const FireFrontConfig& config, Rng* rng);

}  // namespace check
}  // namespace elink

#endif  // ELINK_CHECK_FIREFRONT_H_
