// Mid-run snapshot capture and restore verification (elink_check).
//
// Builds on the proto snapshot container (proto/snapshot.h) and the
// Network's checkpoint seam (Network::ArmCheckpoint): a fuzz trial is run
// with a checkpoint armed at a chosen event index, and when the simulator
// crosses that index the capture callback — a read-only witness — freezes
// every checkable piece of state into an ELSN archive:
//
//   manifest   protocol, seed, disable list, checkpoint index
//   horizon    events dispatched, simulation clock
//   stats      full MessageStats dump (units AND bytes, per category)
//   nodes      every node's protocol/transport state blob
//   ledger     the ConservationLedger's independent re-derivation
//
// Restore is replay-based (the event queue holds closures, which cannot be
// serialized): VerifySnapshot parses the archive — including the embedded
// version handshake — re-derives the identical scenario from the manifest,
// replays to the same event index, and demands the recaptured archive be
// byte-identical.  It then runs the trial once more WITHOUT a checkpoint
// and demands the final run reports match the captured run's byte for byte,
// proving the checkpoint probe is unobservable and the resumed run equals
// the uninterrupted one.
#ifndef ELINK_CHECK_SNAPSHOT_H_
#define ELINK_CHECK_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "check/runner.h"
#include "common/status.h"

namespace elink {
namespace check {

/// Events the full (protocol, seed, knobs) trial dispatches, summed over
/// every Network the trial runs.  Uses a count-only checkpoint; the trial's
/// outcome is discarded.
uint64_t CountTrialEvents(Protocol protocol, uint64_t seed,
                          const ScenarioKnobs& knobs = {});

struct SnapshotCapture {
  /// The complete archive; empty when the checkpoint never fired.
  std::vector<uint8_t> archive;
  /// The event index the snapshot was taken at.
  uint64_t checkpoint = 0;
  /// Final artifacts of the (instrumented, uninterrupted) capture run.
  TrialArtifacts artifacts;
  /// The trial's check outcome (snapshotting must not mask violations).
  CheckOutcome outcome;
};

/// Runs the trial with a checkpoint armed at `event_index` (1-based count of
/// dispatched events) and captures the archive at the fire point.
/// FailedPrecondition when the trial finishes before reaching the index.
Result<SnapshotCapture> CaptureSnapshot(Protocol protocol, uint64_t seed,
                                        const ScenarioKnobs& knobs,
                                        uint64_t event_index);

/// The full restore proof described in the header comment.  OK means the
/// replayed run reproduced the archive byte-identically AND the
/// uninterrupted run's reports equal the instrumented run's.
Status VerifySnapshot(const std::vector<uint8_t>& archive);

}  // namespace check
}  // namespace elink

#endif  // ELINK_CHECK_SNAPSHOT_H_
