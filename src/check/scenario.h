// Seeded scenario generation for the fuzzing harness (elink_check).
//
// A Scenario is everything one fuzz trial needs — topology, feature field,
// metric, delta/slack, delay regime, fault plan, churn plan (possibly a
// fire-front sweep), transport choice, update and query workloads — derived
// deterministically from a single uint64 seed.
// Each aspect draws from its own forked RNG stream (common/rng.h Fork), so
// disabling one knob never reshuffles the others: the shrunk repro differs
// from the original run only in the disabled aspect.
//
// ScenarioKnobs are the shrinking dimensions.  check_fuzz disables them one
// at a time (`--disable=faults,async,...`) to report the minimal failing
// configuration; a disabled knob pins its aspect to the simplest value
// (inert fault plan, synchronous delays, zero slack, a constant feature
// field, a regular grid, plain transport, a static topology).
#ifndef ELINK_CHECK_SCENARIO_H_
#define ELINK_CHECK_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "check/firefront.h"
#include "cluster/elink.h"
#include "common/status.h"
#include "metric/distance.h"
#include "metric/feature.h"
#include "sim/churn.h"
#include "sim/fault.h"
#include "sim/topology.h"

namespace elink {
namespace check {

/// Shrinking dimensions.  All-true is the full scenario space; each false
/// pins one aspect to its simplest value.
struct ScenarioKnobs {
  bool faults = true;           // false: inert FaultPlan.
  bool async = true;            // false: synchronous (unit) delays.
  bool reliable = true;         // false: never use ReliableChannel.
  bool slack = true;            // false: maintenance slack 0.
  bool features = true;         // false: constant feature field.
  bool random_topology = true;  // false: regular grid only.
  bool churn = true;            // false: inert ChurnPlan, no fire front.
  bool wirefuzz = true;         // false: skip the frame-mutation sweep.
  bool causal = true;           // false: no tracer, no causal-graph check.
  bool serve = true;            // false: skip the serve-coherence pass.

  /// Parses "faults,async,reliable,slack,features,topology,churn,wirefuzz,
  /// causal,serve" items (the check_fuzz --disable spelling); unknown names
  /// are an error.
  static Result<ScenarioKnobs> FromDisableList(const std::string& csv);

  /// The --disable list reproducing this knob set ("" when all enabled).
  std::string DisableList() const;
};

enum class TopologyKind { kGrid, kRandomGeometric, kLinear };

/// One fully derived fuzz trial.
struct Scenario {
  uint64_t seed = 0;
  ScenarioKnobs knobs;

  TopologyKind topology_kind = TopologyKind::kGrid;
  Topology topology;
  std::vector<Feature> features;
  std::shared_ptr<const DistanceMetric> metric;  // Weighted Euclidean.
  std::vector<double> weights;
  int feature_dim = 2;

  double feature_diameter = 0.0;
  double delta = 1.0;
  double slack = 0.0;

  bool synchronous = true;
  ElinkMode elink_mode = ElinkMode::kImplicit;
  FaultPlan fault;
  /// Carry protocol waves over ReliableChannel when the plan is enabled.
  bool reliable = false;
  /// Topology dynamics: joins, leaves, crash/repair cycles, link churn.
  /// Inert for roughly half the seeds (and always under --disable=churn).
  ChurnPlan churn;
  /// Set when the churn plan came from a fire-front sweep (check/firefront.h).
  bool fire_front = false;
  /// Feature updates correlated with `churn` (the fire front's shifts),
  /// scheduled at absolute times by the maintenance trial.  Empty unless
  /// fire_front.
  std::vector<TimedUpdate> scheduled_updates;

  int num_updates = 0;  // Maintenance workload.
  int num_queries = 0;  // Range/path workload.

  /// Serve-coherence pass (checked between maintenance rounds by the
  /// runner): drive a ServeFrontend alongside the protocol and require
  /// every served answer — cache hit or miss — to equal a fresh
  /// recomputation and the exact oracles.  Disabled via knobs.serve.
  bool serve_enabled = false;
  int serve_ops = 0;            // Serve ops issued per publish point.
  int serve_clients = 0;        // Deterministic client streams.
  double serve_range_fraction = 0.7;
  double serve_zipf = 1.1;      // Pool-popularity skew.
  int serve_pool = 16;          // Shared predicate pool size.
  int serve_cache_capacity = 64;  // Per-shard capacity (small: eviction).

  /// One-line human summary for failure reports.
  std::string Describe() const;
};

/// Derives the scenario for `seed` under `knobs`.  Deterministic: identical
/// (seed, knobs) pairs yield identical scenarios on every platform.
Result<Scenario> MakeScenario(uint64_t seed, const ScenarioKnobs& knobs = {});

}  // namespace check
}  // namespace elink

#endif  // ELINK_CHECK_SCENARIO_H_
