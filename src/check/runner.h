// One fuzz trial end to end: scenario -> protocol run -> every applicable
// invariant checker (elink_check).
//
// RunScenario derives the scenario for (seed, knobs), runs the chosen
// protocol inside the simulator with a ConservationLedger and a
// obs::RunTelemetry chained as observers, and evaluates the check matrix:
//
//   protocol     | always                       | fault-free only
//   -------------+------------------------------+--------------------------
//   elink        | Definition 1 validity,       | completed, zero
//                | conservation, telemetry      | unclustered nodes
//   maintenance  | conservation, telemetry      | assignment sanity +
//                |                              | root-distance invariant
//                |                              | (gated on zero realized
//                |                              | drops/decode errors)
//   range_query  | M-tree invariants, engine    | protocol exactness vs
//                | parity vs oracle, soundness  | the brute-force oracle
//                | (match_count <= truth),      |
//                | conservation, telemetry      |
//   path_query   | M-tree-backed engine parity, | protocol exactness vs
//                | path soundness, conservation,| the BFS oracle
//                | telemetry                    |
//
// Every violation is collected (not first-failure), so one failing seed
// reports everything it breaks.  ShrinkFailure greedily disables scenario
// knobs one at a time and keeps each disable that still reproduces a
// failure, yielding the minimal failing configuration for the repro line.
#ifndef ELINK_CHECK_RUNNER_H_
#define ELINK_CHECK_RUNNER_H_

#include <string>
#include <vector>

#include "check/scenario.h"
#include "common/status.h"

namespace elink {
namespace check {

enum class Protocol { kElink, kMaintenance, kRangeQuery, kPathQuery };

/// "elink", "maintenance", "range_query", "path_query".
const char* ProtocolName(Protocol protocol);

/// Inverse of ProtocolName; InvalidArgument on unknown names.
Result<Protocol> ProtocolFromName(const std::string& name);

/// All four protocols, in fuzzing order.
const std::vector<Protocol>& AllProtocols();

struct CheckViolation {
  /// Which checker failed ("delta_clustering", "conservation", ...).
  std::string check;
  /// The checker's message.
  std::string detail;
};

struct CheckOutcome {
  Scenario scenario;
  std::vector<CheckViolation> violations;
  bool ok() const { return violations.empty(); }
  /// All violations as "check: detail" lines joined by "; ".
  std::string Summary() const;
};

/// Byte-comparable final artifacts of one trial: the RunReport JSON of every
/// protocol run the trial performed, in order.  Two invocations of the same
/// (protocol, seed, knobs) triple must produce byte-identical artifacts —
/// the equality the snapshot/restore suite (check/snapshot.h) rests on.
struct TrialArtifacts {
  std::vector<std::string> reports;
};

/// Runs one trial.  Scenario-generation and protocol-run errors are reported
/// as violations (a protocol returning Internal on a fuzzed input is exactly
/// the kind of bug the fuzzer exists to find), so this never throws away a
/// finding.  `artifacts`, when non-null, collects the trial's run reports.
CheckOutcome RunScenario(Protocol protocol, uint64_t seed,
                         const ScenarioKnobs& knobs = {},
                         TrialArtifacts* artifacts = nullptr);

/// Greedy minimization of a failing (protocol, seed, knobs) triple: tries
/// disabling each still-enabled knob in a fixed order (faults, async,
/// reliable, slack, features, topology), keeping each disable under which
/// the trial still fails.  Returns the minimal knob set (== `start` when
/// nothing can be disabled).
ScenarioKnobs ShrinkFailure(Protocol protocol, uint64_t seed,
                            const ScenarioKnobs& start);

}  // namespace check
}  // namespace elink

#endif  // ELINK_CHECK_RUNNER_H_
