#include "check/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"

namespace elink {
namespace check {

namespace {

// Dedicated Fork stream ids, one per scenario aspect (see header: disabling
// a knob must not reshuffle the other aspects).
enum Stream : uint64_t {
  kTopologyStream = 1,
  kFeatureStream = 2,
  kParamStream = 3,
  kFaultStream = 4,
  kWorkloadStream = 5,
  kChurnStream = 6,
  kServeStream = 7,
};

const char* KindName(TopologyKind k) {
  switch (k) {
    case TopologyKind::kGrid:
      return "grid";
    case TopologyKind::kRandomGeometric:
      return "random";
    case TopologyKind::kLinear:
      return "linear";
  }
  return "?";
}

const char* ModeName(ElinkMode m) {
  switch (m) {
    case ElinkMode::kImplicit:
      return "implicit";
    case ElinkMode::kExplicit:
      return "explicit";
    case ElinkMode::kUnordered:
      return "unordered";
  }
  return "?";
}

Result<Topology> DeriveTopology(Rng* rng, const ScenarioKnobs& knobs,
                                TopologyKind* kind) {
  uint64_t pick = rng->UniformInt(3);
  if (!knobs.random_topology) pick = 0;
  switch (pick) {
    case 1: {
      *kind = TopologyKind::kRandomGeometric;
      const int n = static_cast<int>(rng->UniformIntRange(24, 72));
      const double side = std::sqrt(static_cast<double>(n));
      Rng place = rng->Fork(7);
      return MakeRandomTopology(n, side, 1.4, &place,
                                /*force_connectivity=*/true);
    }
    case 2: {
      *kind = TopologyKind::kLinear;
      const int n = static_cast<int>(rng->UniformIntRange(8, 32));
      return Result<Topology>(MakeGridTopology(1, n));
    }
    default: {
      *kind = TopologyKind::kGrid;
      const int rows = static_cast<int>(rng->UniformIntRange(3, 7));
      const int cols = static_cast<int>(rng->UniformIntRange(3, 7));
      return Result<Topology>(MakeGridTopology(rows, cols));
    }
  }
}

std::vector<Feature> DeriveFeatures(Rng* rng, const ScenarioKnobs& knobs,
                                    const Topology& topology, int dim) {
  const int n = topology.num_nodes();
  std::vector<Feature> features(n, Feature(dim, 0.0));
  const bool smooth = rng->Bernoulli(0.6);
  // Per-coordinate field parameters (drawn whether or not they end up used,
  // to keep this stream's draw sequence knob-independent).
  std::vector<double> amp_x(dim), amp_y(dim), freq_x(dim), freq_y(dim),
      phase_x(dim), phase_y(dim);
  for (int k = 0; k < dim; ++k) {
    amp_x[k] = rng->Uniform(0.5, 1.5);
    amp_y[k] = rng->Uniform(0.5, 1.5);
    freq_x[k] = rng->Uniform(0.3, 1.2);
    freq_y[k] = rng->Uniform(0.3, 1.2);
    phase_x[k] = rng->Uniform(0.0, 6.28318530717958647692);
    phase_y[k] = rng->Uniform(0.0, 6.28318530717958647692);
  }
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < dim; ++k) {
      const double rough_draw = rng->Uniform01();
      if (!knobs.features) {
        features[i][k] = 0.5;  // Constant field: the simplest input.
      } else if (smooth) {
        features[i][k] =
            amp_x[k] * std::sin(freq_x[k] * topology.positions[i].x +
                                phase_x[k]) +
            amp_y[k] * std::cos(freq_y[k] * topology.positions[i].y +
                                phase_y[k]) +
            0.05 * rough_draw;
      } else {
        features[i][k] = rough_draw;
      }
    }
  }
  return features;
}

FaultPlan DeriveFaultPlan(Rng* rng, const ScenarioKnobs& knobs,
                          const Topology& topology) {
  FaultPlan plan;
  // All draws happen regardless of the knob so the stream stays aligned; the
  // knob only decides whether the drawn plan is kept.
  const bool any = rng->Bernoulli(0.55);
  const bool loss = rng->Bernoulli(0.7);
  const double drop_p = rng->Uniform(0.02, 0.2);
  const bool trunc = rng->Bernoulli(0.3);
  const double trunc_p = rng->Uniform(0.02, 0.12);
  const bool outage = rng->Bernoulli(0.35);
  const bool crash = rng->Bernoulli(0.35);

  const int n = topology.num_nodes();
  if (loss || !(trunc || outage || crash)) plan.drop_probability = drop_p;
  if (trunc) plan.truncate_probability = trunc_p;
  if (outage) {
    const int count = static_cast<int>(rng->UniformIntRange(1, 2));
    for (int k = 0; k < count; ++k) {
      const int u = static_cast<int>(rng->UniformInt(n));
      if (topology.adjacency[u].empty()) continue;
      const int v = topology.adjacency[u][rng->UniformInt(
          topology.adjacency[u].size())];
      FaultPlan::LinkOutage o;
      o.from = u;
      o.to = v;
      o.down_at = rng->Uniform(5.0, 40.0);
      o.up_at = o.down_at + rng->Uniform(10.0, 80.0);
      plan.link_outages.push_back(o);
    }
  }
  if (crash) {
    const int count = static_cast<int>(rng->UniformIntRange(1, 2));
    for (int k = 0; k < count; ++k) {
      FaultPlan::NodeCrash c;
      c.node = static_cast<int>(rng->UniformInt(n));
      c.crash_at = rng->Uniform(10.0, 60.0);
      if (rng->Bernoulli(0.5)) {
        c.recover_at = c.crash_at + rng->Uniform(20.0, 100.0);
      }
      plan.node_crashes.push_back(c);
    }
  }
  if (!knobs.faults || !any) return FaultPlan{};
  return plan;
}

// Derives the topology dynamics.  Same alignment discipline as the fault
// plan: every draw happens regardless of the knob and of earlier picks, so
// --disable=churn (or an "inert" coin) never reshuffles anything else.
// Link churn only removes-and-readds edges the topology already has, so the
// live graph never gains geometry the scenario didn't place.  A quarter of
// churny seeds run a fire-front sweep (check/firefront.h) whose correlated
// feature shifts land in `updates`.
ChurnPlan DeriveChurnPlan(Rng* rng, const ScenarioKnobs& knobs,
                          const Topology& topology,
                          const std::vector<Feature>& features, double delta,
                          std::vector<TimedUpdate>* updates,
                          bool* fire_front) {
  ChurnPlan plan;
  updates->clear();
  *fire_front = false;
  const int n = topology.num_nodes();
  const bool any = rng->Bernoulli(0.5);

  // Crash-with-repair is the prominent class: it exercises the full
  // down-notification / restart-as-singleton / re-probe cycle.
  const bool crashes = rng->Bernoulli(0.7);
  {
    const int count = static_cast<int>(rng->UniformIntRange(1, 3));
    for (int k = 0; k < count; ++k) {
      ChurnPlan::NodeCrash c;
      c.node = static_cast<int>(rng->UniformInt(n));
      c.crash_at = rng->Uniform(5.0, 60.0);
      const double repair_after = rng->Uniform(10.0, 60.0);
      if (rng->Bernoulli(0.8)) c.recover_at = c.crash_at + repair_after;
      if (crashes) plan.crashes.push_back(c);
    }
  }
  const bool leave = rng->Bernoulli(0.35);
  {
    ChurnPlan::NodeLeave l;
    l.node = static_cast<int>(rng->UniformInt(n));
    l.at = rng->Uniform(30.0, 90.0);
    if (leave) plan.leaves.push_back(l);
  }
  const bool join = rng->Bernoulli(0.35);
  {
    ChurnPlan::NodeJoin j;
    j.node = static_cast<int>(rng->UniformInt(n));
    j.at = rng->Uniform(5.0, 30.0);
    if (join) plan.joins.push_back(j);
  }
  const bool links = rng->Bernoulli(0.5);
  {
    const int u = static_cast<int>(rng->UniformInt(n));
    const double down_at = rng->Uniform(5.0, 50.0);
    const double up_after = rng->Uniform(10.0, 60.0);
    if (!topology.adjacency[u].empty()) {
      const int v = topology.adjacency[u][rng->UniformInt(
          topology.adjacency[u].size())];
      if (links) {
        plan.link_changes.push_back({u, v, down_at, /*add=*/false});
        plan.link_changes.push_back({u, v, down_at + up_after, /*add=*/true});
      }
    }
  }

  const bool fire = rng->Bernoulli(0.25);
  {
    double min_x = topology.positions.empty() ? 0.0 : topology.positions[0].x;
    double max_x = min_x;
    for (const Point2D& p : topology.positions) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
    }
    FireFrontConfig fcfg;
    fcfg.start_time = rng->Uniform(5.0, 20.0);
    const double width = max_x - min_x;
    const double sweep_duration = rng->Uniform(30.0, 80.0);
    fcfg.speed = width > 0.0 ? width / sweep_duration : 1.0;
    const int dim = features.empty() ? 0 : static_cast<int>(features[0].size());
    fcfg.shift = Feature(dim, 0.0);
    for (int k = 0; k < dim; ++k) {
      const double magnitude = rng->Uniform(0.2, 0.6) * delta;
      fcfg.shift[k] = rng->Bernoulli(0.5) ? magnitude : -magnitude;
    }
    fcfg.crash_fraction = rng->Uniform(0.05, 0.25);
    fcfg.repair_delay_min = 15.0;
    fcfg.repair_delay_max = 50.0;
    Rng fire_rng = rng->Fork(11);
    FireFrontEffects fx = SweepFireFront(topology, features, fcfg, &fire_rng);
    if (fire) {
      for (const ChurnPlan::NodeCrash& c : fx.churn.crashes) {
        plan.crashes.push_back(c);
      }
      *updates = std::move(fx.updates);
      *fire_front = true;
    }
  }

  if (!knobs.churn || !any) {
    updates->clear();
    *fire_front = false;
    return ChurnPlan{};
  }
  return plan;
}

}  // namespace

Result<ScenarioKnobs> ScenarioKnobs::FromDisableList(const std::string& csv) {
  ScenarioKnobs knobs;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string item = csv.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    if (item == "faults") {
      knobs.faults = false;
    } else if (item == "async") {
      knobs.async = false;
    } else if (item == "reliable") {
      knobs.reliable = false;
    } else if (item == "slack") {
      knobs.slack = false;
    } else if (item == "features") {
      knobs.features = false;
    } else if (item == "topology") {
      knobs.random_topology = false;
    } else if (item == "churn") {
      knobs.churn = false;
    } else if (item == "wirefuzz") {
      knobs.wirefuzz = false;
    } else if (item == "causal") {
      knobs.causal = false;
    } else if (item == "serve") {
      knobs.serve = false;
    } else {
      return Status::InvalidArgument(
          StringPrintf("unknown --disable knob '%s' (expected faults, async, "
                       "reliable, slack, features, topology, churn, "
                       "wirefuzz, causal, serve)",
                       item.c_str()));
    }
  }
  return knobs;
}

std::string ScenarioKnobs::DisableList() const {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (!faults) add("faults");
  if (!async) add("async");
  if (!reliable) add("reliable");
  if (!slack) add("slack");
  if (!features) add("features");
  if (!random_topology) add("topology");
  if (!churn) add("churn");
  if (!wirefuzz) add("wirefuzz");
  if (!causal) add("causal");
  if (!serve) add("serve");
  return out;
}

std::string Scenario::Describe() const {
  std::string fault_desc = "none";
  if (fault.enabled()) {
    fault_desc = StringPrintf(
        "drop=%.2f trunc=%.2f outages=%zu crashes=%zu",
        fault.drop_probability, fault.truncate_probability,
        fault.link_outages.size(), fault.node_crashes.size());
  }
  std::string serve_desc = "none";
  if (serve_enabled) {
    serve_desc = StringPrintf(
        "ops=%d clients=%d pool=%d zipf=%.2f cap=%d", serve_ops,
        serve_clients, serve_pool, serve_zipf, serve_cache_capacity);
  }
  std::string churn_desc = "none";
  if (churn.enabled()) {
    churn_desc = StringPrintf(
        "joins=%zu leaves=%zu crashes=%zu links=%zu%s", churn.joins.size(),
        churn.leaves.size(), churn.crashes.size(), churn.link_changes.size(),
        fire_front ? " fire" : "");
  }
  return StringPrintf(
      "seed=%llu topo=%s n=%d dim=%d delta=%.4f slack=%.4f sync=%d mode=%s "
      "fault=[%s] churn=[%s] reliable=%d updates=%d queries=%d serve=[%s]",
      static_cast<unsigned long long>(seed), KindName(topology_kind),
      topology.num_nodes(), feature_dim, delta, slack, synchronous ? 1 : 0,
      ModeName(elink_mode), fault_desc.c_str(), churn_desc.c_str(),
      reliable ? 1 : 0, num_updates, num_queries, serve_desc.c_str());
}

Result<Scenario> MakeScenario(uint64_t seed, const ScenarioKnobs& knobs) {
  Scenario s;
  s.seed = seed;
  s.knobs = knobs;
  Rng master(seed);
  Rng topo_rng = master.Fork(kTopologyStream);
  Rng feat_rng = master.Fork(kFeatureStream);
  Rng param_rng = master.Fork(kParamStream);
  Rng fault_rng = master.Fork(kFaultStream);
  Rng work_rng = master.Fork(kWorkloadStream);
  Rng churn_rng = master.Fork(kChurnStream);
  Rng serve_rng = master.Fork(kServeStream);

  Result<Topology> topo = DeriveTopology(&topo_rng, knobs, &s.topology_kind);
  if (!topo.ok()) return topo.status();
  s.topology = std::move(topo).value();

  s.feature_dim = static_cast<int>(param_rng.UniformIntRange(2, 3));
  s.weights.resize(s.feature_dim);
  for (double& w : s.weights) w = param_rng.Uniform(0.25, 2.0);
  s.metric = std::make_shared<WeightedEuclidean>(s.weights);
  s.features = DeriveFeatures(&feat_rng, knobs, s.topology, s.feature_dim);

  s.feature_diameter = 0.0;
  const int n = s.topology.num_nodes();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      s.feature_diameter = std::max(
          s.feature_diameter, s.metric->Distance(s.features[i], s.features[j]));
    }
  }

  const double delta_frac = param_rng.Uniform(0.2, 0.6);
  s.delta = s.feature_diameter > 0.0 ? delta_frac * s.feature_diameter : 1.0;
  const bool use_slack = param_rng.Bernoulli(0.5);
  const double slack_frac = param_rng.Uniform(0.05, 0.2);
  if (knobs.slack && use_slack) s.slack = slack_frac * s.delta;

  const bool want_async = param_rng.Bernoulli(0.5);
  s.synchronous = !(knobs.async && want_async);

  s.fault = DeriveFaultPlan(&fault_rng, knobs, s.topology);
  s.churn = DeriveChurnPlan(&churn_rng, knobs, s.topology, s.features,
                            s.delta, &s.scheduled_updates, &s.fire_front);

  // Mode: implicit's timing guarantees need synchrony, and only explicit
  // carries the completion watchdog faults require; unordered is the
  // synchronous fault-free ablation.
  const uint64_t mode_pick = param_rng.UniformInt(5);
  if (s.fault.enabled() || !s.synchronous) {
    s.elink_mode = ElinkMode::kExplicit;
  } else if (mode_pick < 2) {
    s.elink_mode = ElinkMode::kImplicit;
  } else if (mode_pick < 4) {
    s.elink_mode = ElinkMode::kExplicit;
  } else {
    s.elink_mode = ElinkMode::kUnordered;
  }

  const bool want_reliable = param_rng.Bernoulli(0.7);
  s.reliable = knobs.reliable && s.fault.enabled() && want_reliable;

  s.num_updates = static_cast<int>(work_rng.UniformIntRange(8, 30));
  s.num_queries = static_cast<int>(work_rng.UniformIntRange(2, 5));

  // Serve aspect (knob-stable: every draw happens, the knob and the coin
  // only decide whether the drawn configuration is kept).
  const bool serve_any = serve_rng.Bernoulli(0.6);
  s.serve_ops = static_cast<int>(serve_rng.UniformIntRange(6, 20));
  s.serve_clients = static_cast<int>(serve_rng.UniformIntRange(1, 3));
  s.serve_range_fraction = serve_rng.Uniform(0.4, 0.9);
  s.serve_zipf = serve_rng.Uniform(0.6, 1.6);
  s.serve_pool = static_cast<int>(serve_rng.UniformIntRange(4, 24));
  s.serve_cache_capacity = static_cast<int>(serve_rng.UniformIntRange(4, 64));
  s.serve_enabled = knobs.serve && serve_any;
  return s;
}

}  // namespace check
}  // namespace elink
