// Simulator conservation laws (elink_check).
//
// ConservationLedger is a read-only SimObserver that re-derives the
// Network's accounting from the event stream alone, so a finished run can be
// cross-checked three ways:
//
//   * against itself  — every logical send (one OnSend) must be matched by
//     exactly one delivery: sends == delivers + in-flight, and a drained
//     event queue means in-flight == 0;
//   * against MessageStats — hop-level charges (per-hop for routed sends),
//     dropped sends/units, and decode errors must agree with the Network's
//     own ledger, per category and in total;
//   * against RunTelemetry — the "sim.*" / "transport.*" counters folded by
//     the observability layer must agree with the ledger's counts.
//
// Attribution rules mirror sim/network.cc exactly: a plain Send charges one
// send of CostUnits at OnSend; a routed send charges per OnHop and its
// closing OnSend carries no extra charge; a self-delivery (SendRouted with
// from == to) is free; every drop (OnDrop) charges the dropped counters once
// regardless of how many hops preceded it.  OnHop/OnSend sequences of one
// routed send are emitted synchronously by the Network, so a single pending
// flag suffices to tell the closing OnSend apart from a plain one.
//
// Chain the run's real observer (telemetry/tracer) behind the ledger with
// set_next; the ledger forwards every event unchanged.
#ifndef ELINK_CHECK_CONSERVATION_H_
#define ELINK_CHECK_CONSERVATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "sim/observer.h"
#include "sim/stats.h"

namespace elink {
namespace check {

/// \brief Event-stream reimplementation of the Network's message accounting.
class ConservationLedger : public SimObserver {
 public:
  struct Category {
    uint64_t sends = 0;          // Hop-level transmissions (MessageStats).
    uint64_t units = 0;          // Hop-level units.
    uint64_t bytes = 0;          // Hop-level frame bytes (wire::FrameSize).
    uint64_t dropped_sends = 0;  // One per OnDrop.
    uint64_t dropped_units = 0;
    uint64_t dropped_bytes = 0;
    uint64_t decode_errors = 0;
  };

  /// Chains the observer that should see the stream after the ledger.
  void set_next(SimObserver* next) { next_ = next; }

  // -- Logical message plane (one per OnSend) -----------------------------
  uint64_t logical_sends() const { return logical_sends_; }
  uint64_t logical_units() const { return logical_units_; }
  /// Frame bytes of every logical send (one frame per OnSend; what the
  /// telemetry's "sim.wire_bytes" counter folds).
  uint64_t logical_bytes() const { return logical_bytes_; }
  uint64_t delivers() const { return delivers_; }
  /// Logical sends not yet delivered; 0 once the queue drained.
  uint64_t in_flight() const { return logical_sends_ - delivers_; }

  // -- Hop-level charges (what MessageStats records) ----------------------
  uint64_t charged_sends() const { return charged_sends_; }
  uint64_t charged_units() const { return charged_units_; }
  /// Frame bytes re-derived at the hop plane: one frame per plain send plus
  /// one per routed hop — what MessageStats::total_bytes() records.
  uint64_t charged_bytes() const { return charged_bytes_; }
  uint64_t drops() const { return drops_; }
  uint64_t dropped_units() const { return dropped_units_; }
  uint64_t dropped_bytes() const { return dropped_bytes_; }
  uint64_t hops() const { return hops_; }
  uint64_t decode_errors() const { return decode_errors_; }

  // -- Timers and transport ----------------------------------------------
  uint64_t timer_fires() const { return timer_fires_; }
  uint64_t retransmits() const { return retransmits_; }
  uint64_t transport_acks() const { return transport_acks_; }
  uint64_t transport_give_ups() const { return transport_give_ups_; }

  const std::map<std::string, Category>& by_category() const {
    return by_category_;
  }

  // SimObserver implementation (each forwards to the chained observer).
  void OnCausal(const CausalInfo& info) override;
  void OnSend(double now, int from, int to, const Message& msg,
              double delay) override;
  void OnHop(double at, int from, int to, const Message& msg) override;
  void OnDeliver(double now, int from, int to, const Message& msg) override;
  void OnDrop(double at, int from, int to, const Message& msg) override;
  void OnTimerFire(double now, int node, int timer_id) override;
  void OnDecodeError(double now, int node,
                     const std::string& category) override;
  void OnRetransmit(double now, int node, int to, const Message& msg,
                    int attempt) override;
  void OnTransportAck(double now, int node, int to, long long seq) override;
  void OnTransportGiveUp(double now, int node, int to,
                         const Message& msg) override;
  void OnPhase(double now, int node, const char* phase,
               long long value) override;
  void OnChurn(double now, const char* kind, int a, int b) override;
  void OnWatchdogArm(double now, double window) override;
  void OnWatchdogFire(double now) override;
  void OnRunEnd(double end_time, uint64_t events, bool timed_out,
                bool hit_event_cap) override;

 private:
  Category& Cat(const std::string& category) { return by_category_[category]; }

  uint64_t logical_sends_ = 0;
  uint64_t logical_units_ = 0;
  uint64_t logical_bytes_ = 0;
  uint64_t delivers_ = 0;
  uint64_t charged_sends_ = 0;
  uint64_t charged_units_ = 0;
  uint64_t charged_bytes_ = 0;
  uint64_t drops_ = 0;
  uint64_t dropped_units_ = 0;
  uint64_t dropped_bytes_ = 0;
  uint64_t hops_ = 0;
  uint64_t decode_errors_ = 0;
  uint64_t timer_fires_ = 0;
  uint64_t retransmits_ = 0;
  uint64_t transport_acks_ = 0;
  uint64_t transport_give_ups_ = 0;

  /// True between a routed send's first OnHop and its closing OnSend (the
  /// Network emits them back to back; see header comment).
  bool routed_pending_ = false;

  std::map<std::string, Category> by_category_;
  SimObserver* next_ = nullptr;
};

/// The conservation laws of one finished run: ledger internally consistent
/// (sends == delivers + in-flight; in-flight == 0 when `drained`) and equal
/// to `stats` per category and in total.  `ignore_categories` names
/// categories recorded into `stats` outside the Network (engine-parity
/// bookkeeping such as the path protocol's "path_search"/"path_trace"); they
/// are subtracted from the stats totals and skipped in the per-category
/// comparison, but must never carry drops or decode errors.
Status CheckConservation(const ConservationLedger& ledger,
                         const MessageStats& stats, bool drained,
                         const std::vector<std::string>& ignore_categories = {});

/// Cross-checks the ledger against RunTelemetry's folded counters
/// ("sim.sends", "sim.send_units", "sim.hops", "sim.delivers", "sim.drops",
/// "sim.timer_fires", "sim.decode_errors", "transport.retx",
/// "transport.acks", "transport.give_ups").  Pass the telemetry's
/// metrics(); the telemetry must have been chained behind this ledger (or
/// attached to the same run) so both saw the same stream.
Status CheckTelemetryConsistency(const ConservationLedger& ledger,
                                 const obs::MetricsRegistry& metrics);

/// Byte-plane conservation: the encoded frame bytes the ledger re-derived
/// from the event stream (wire::FrameSize per plain send / routed hop /
/// drop) must equal the byte counters MessageStats accumulated inside the
/// Network, per category and in total.  `ignore_categories` follows
/// CheckConservation: categories recorded outside the Network carry no
/// wire bytes, and are skipped in the per-category comparison.
Status CheckByteConservation(
    const ConservationLedger& ledger, const MessageStats& stats,
    const std::vector<std::string>& ignore_categories = {});

}  // namespace check
}  // namespace elink

#endif  // ELINK_CHECK_CONSERVATION_H_
