// The seasonal model used for the Tao workload (paper Section 8.1):
//
//   x_t = a1 * x_{t-1} + b1 * mu_{T-1} + b2 * mu_{T-2} + b3 * mu_{T-3} + e_t
//
// where x_t are the 10-minute-resolution measurements of day T and mu_{T-j}
// are the mean temperatures of the three preceding days.  Within a day the
// data follows AR(1) (the a1 term); day-to-day variation of the mean follows
// AR(3) (the b terms).  The node feature is the 4-vector (a1, b1, b2, b3).
// Following the paper, a1 is refreshed on every measurement while the b's
// are refreshed once per day, at the day boundary.
#ifndef ELINK_TIMESERIES_SEASONAL_H_
#define ELINK_TIMESERIES_SEASONAL_H_

#include <deque>

#include "common/status.h"
#include "linalg/matrix.h"
#include "timeseries/rls.h"

namespace elink {

/// \brief Streaming estimator of the seasonal (a1, b1, b2, b3) model.
class SeasonalArModel {
 public:
  /// `measurements_per_day` is the number of samples in one day (144 for the
  /// paper's 10-minute resolution).
  explicit SeasonalArModel(int measurements_per_day);

  /// Trains on a full history (e.g. the previous month, per the paper) and
  /// returns a warm-started model.  The history length must cover at least
  /// five days so that three lagged daily means exist.
  static Result<SeasonalArModel> Train(const Vector& history,
                                       int measurements_per_day);

  /// Feeds one new measurement.  Updates a1 immediately; at each day
  /// boundary, recomputes the daily mean and refreshes b1..b3.
  void Observe(double x);

  /// Current feature (a1, b1, b2, b3).
  Vector Feature() const;

  /// Number of complete days consumed so far.
  int completed_days() const { return completed_days_; }

 private:
  void FinishDay();

  int per_day_;
  RlsEstimator intra_day_rls_;   // 1 regressor: x_{t-1}.
  RlsEstimator daily_mean_rls_;  // 3 regressors: mu_{T-1..T-3}.
  Vector beta_snapshot_;         // b's exposed in Feature(); day-boundary copy.

  bool have_prev_x_ = false;
  double prev_x_ = 0.0;  // Previous deviation from the running daily mean.
  double day_sum_ = 0.0;
  int day_count_ = 0;
  int completed_days_ = 0;
  std::deque<double> recent_daily_means_;  // Most recent first; size <= 3.
};

}  // namespace elink

#endif  // ELINK_TIMESERIES_SEASONAL_H_
