// AR model-order selection.
//
// The paper fixes the model orders per dataset (AR(1) within a day, AR(3) on
// daily means, AR(1) for the synthetic streams).  A deployment on new data
// needs to *choose* the order; this utility selects it by the Akaike
// information criterion over candidate orders, the standard approach for
// autoregressive fitting [26].
#ifndef ELINK_TIMESERIES_ORDER_SELECTION_H_
#define ELINK_TIMESERIES_ORDER_SELECTION_H_

#include "common/status.h"
#include "timeseries/ar_model.h"

namespace elink {

/// Outcome of an order search.
struct OrderSelection {
  int order = 0;
  ArModel model;
  /// AIC score of the winner (lower is better).
  double aic = 0.0;
  /// AIC per candidate order 1..max_order (index 0 holds order 1).
  std::vector<double> candidate_aic;
};

/// Fits AR(k) for k = 1..max_order and picks the minimum-AIC model, with
/// AIC = m ln(sigma^2) + 2k evaluated over the m observations the largest
/// candidate can use (so scores are comparable across orders).
/// Errors when the series is too short for max_order.
Result<OrderSelection> SelectArOrder(const Vector& series, int max_order,
                                     double ridge = 1e-9);

}  // namespace elink

#endif  // ELINK_TIMESERIES_ORDER_SELECTION_H_
