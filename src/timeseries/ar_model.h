// Auto-regressive data models (paper Section 2.2).
//
// Each sensor node regresses its local time series with an AR(k) model
//   X_t = a_1 X_{t-1} + ... + a_k X_{t-k} + e_t
// and the coefficient vector (a_1..a_k) is the node's clustering feature.
// Batch fitting solves the least-squares normal equations
//   alpha = (X X^T)^{-1} X Y  (Section 2.2);
// online maintenance uses the recursive update in rls.h.
#ifndef ELINK_TIMESERIES_AR_MODEL_H_
#define ELINK_TIMESERIES_AR_MODEL_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace elink {

/// \brief A fitted AR(k) model.
struct ArModel {
  /// coefficients[j] multiplies X_{t-1-j}; size is the model order k.
  Vector coefficients;
  /// Residual (innovation) variance estimate.
  double noise_variance = 0.0;

  int order() const { return static_cast<int>(coefficients.size()); }

  /// One-step-ahead prediction from the k most recent values,
  /// `recent[0]` being X_{t-1}, `recent[1]` being X_{t-2}, etc.
  double Predict(const Vector& recent) const;
};

/// Builds the AR lag regression (X, y) for `series` and order k:
/// column t of X holds (X_{t-1}, ..., X_{t-k}) and y[t] = X_t.
/// Requires series.size() > k.
Status BuildLagRegression(const Vector& series, int k, Matrix* x, Vector* y);

/// Fits AR(k) to `series` by least squares.  `ridge` adds Tikhonov
/// regularization for nearly constant series.  Errors when the series is too
/// short (needs at least 2k + 1 points for a meaningful fit).
Result<ArModel> FitAr(const Vector& series, int k, double ridge = 1e-9);

}  // namespace elink

#endif  // ELINK_TIMESERIES_AR_MODEL_H_
