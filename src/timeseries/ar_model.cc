#include "timeseries/ar_model.h"

#include "linalg/solve.h"

namespace elink {

double ArModel::Predict(const Vector& recent) const {
  ELINK_CHECK(recent.size() >= coefficients.size());
  double s = 0.0;
  for (size_t j = 0; j < coefficients.size(); ++j) {
    s += coefficients[j] * recent[j];
  }
  return s;
}

Status BuildLagRegression(const Vector& series, int k, Matrix* x, Vector* y) {
  if (k <= 0) return Status::InvalidArgument("AR order must be positive");
  const int n = static_cast<int>(series.size());
  if (n <= k) {
    return Status::InvalidArgument("series shorter than AR order");
  }
  const int m = n - k;  // Number of usable observations.
  *x = Matrix(k, m);
  y->assign(m, 0.0);
  for (int t = 0; t < m; ++t) {
    // Observation t predicts series[k + t] from the k preceding values.
    (*y)[t] = series[k + t];
    for (int j = 0; j < k; ++j) {
      (*x)(j, t) = series[k + t - 1 - j];
    }
  }
  return Status::OK();
}

Result<ArModel> FitAr(const Vector& series, int k, double ridge) {
  if (static_cast<int>(series.size()) < 2 * k + 1) {
    return Status::InvalidArgument("FitAr: series too short for order");
  }
  Matrix x;
  Vector y;
  ELINK_RETURN_NOT_OK(BuildLagRegression(series, k, &x, &y));
  Result<Vector> alpha = SolveNormalEquations(x, y, ridge);
  if (!alpha.ok()) return alpha.status();

  ArModel model;
  model.coefficients = std::move(alpha).value();
  // Residual variance.
  double ss = 0.0;
  for (size_t t = 0; t < y.size(); ++t) {
    double pred = 0.0;
    for (int j = 0; j < k; ++j) pred += model.coefficients[j] * x(j, t);
    const double r = y[t] - pred;
    ss += r * r;
  }
  model.noise_variance = y.empty() ? 0.0 : ss / static_cast<double>(y.size());
  return model;
}

}  // namespace elink
