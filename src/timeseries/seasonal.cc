#include "timeseries/seasonal.h"

#include <algorithm>

namespace elink {

SeasonalArModel::SeasonalArModel(int measurements_per_day)
    : per_day_(measurements_per_day),
      intra_day_rls_(1),
      daily_mean_rls_(3),
      beta_snapshot_(3, 0.0) {
  ELINK_CHECK(measurements_per_day > 0);
}

Result<SeasonalArModel> SeasonalArModel::Train(const Vector& history,
                                               int measurements_per_day) {
  if (measurements_per_day <= 0) {
    return Status::InvalidArgument("measurements_per_day must be positive");
  }
  if (static_cast<int>(history.size()) < 5 * measurements_per_day) {
    return Status::InvalidArgument(
        "SeasonalArModel::Train: history must span at least five days");
  }
  SeasonalArModel model(measurements_per_day);
  for (double x : history) model.Observe(x);
  return model;
}

void SeasonalArModel::Observe(double x) {
  // The a1 regression runs on deviations from the *current day's* running
  // mean: regressing raw temperatures (mean ~25C) without an intercept
  // would push a1 towards 1 for every node (mean domination), and the
  // previous day's mean is offset by the day-to-day drift the b's model.
  // The first few samples of each day are excluded while the running mean
  // stabilizes.
  const int warmup = std::max(2, per_day_ / 16);
  const double ref = day_count_ > 0 ? day_sum_ / day_count_ : x;
  const double deviation = x - ref;
  if (have_prev_x_ && day_count_ >= warmup) {
    intra_day_rls_.Observe({prev_x_}, deviation);
  }
  prev_x_ = deviation;
  have_prev_x_ = true;

  day_sum_ += x;
  if (++day_count_ == per_day_) FinishDay();
}

void SeasonalArModel::FinishDay() {
  const double mean = day_sum_ / per_day_;
  day_sum_ = 0.0;
  day_count_ = 0;
  ++completed_days_;

  if (recent_daily_means_.size() == 3) {
    // Today's mean regressed on the three preceding daily means.
    const Vector regressors(recent_daily_means_.begin(),
                            recent_daily_means_.end());
    daily_mean_rls_.Observe(regressors, mean);
    beta_snapshot_ = daily_mean_rls_.coefficients();
  }
  recent_daily_means_.push_front(mean);
  if (recent_daily_means_.size() > 3) recent_daily_means_.pop_back();
}

Vector SeasonalArModel::Feature() const {
  Vector f(4, 0.0);
  f[0] = intra_day_rls_.coefficients()[0];
  for (int j = 0; j < 3; ++j) f[1 + j] = beta_snapshot_[j];
  return f;
}

}  // namespace elink
