#include "timeseries/rls.h"

#include "linalg/solve.h"

namespace elink {

RlsEstimator::RlsEstimator(int num_regressors, double initial_p_scale) {
  ELINK_CHECK(num_regressors > 0);
  ELINK_CHECK(initial_p_scale > 0);
  p_ = Matrix::Identity(num_regressors).Scale(initial_p_scale);
  alpha_.assign(num_regressors, 0.0);
}

Result<RlsEstimator> RlsEstimator::FromBatch(const Matrix& x, const Vector& y,
                                             double ridge) {
  const size_t k = x.rows();
  if (y.size() != x.cols()) {
    return Status::InvalidArgument("RlsEstimator::FromBatch: size mismatch");
  }
  Matrix xxt(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i; j < k; ++j) {
      double s = 0.0;
      for (size_t m = 0; m < x.cols(); ++m) s += x(i, m) * x(j, m);
      xxt(i, j) = s;
      xxt(j, i) = s;
    }
    xxt(i, i) += ridge;
  }
  Result<Matrix> inv = Invert(xxt);
  if (!inv.ok()) return inv.status();
  Result<Vector> alpha = SolveNormalEquations(x, y, ridge);
  if (!alpha.ok()) return alpha.status();

  RlsEstimator est;
  est.p_ = std::move(inv).value();
  est.alpha_ = std::move(alpha).value();
  est.count_ = static_cast<long long>(y.size());
  return est;
}

void RlsEstimator::Observe(const Vector& x, double y) {
  ELINK_CHECK(static_cast<int>(x.size()) == num_regressors());
  // g = P_{k-1} x
  const Vector g = p_.Multiply(x);
  // denom = 1 + x^T P_{k-1} x
  const double denom = 1.0 + Dot(x, g);
  // P_k = P_{k-1} - g g^T / denom   (equation 7)
  const size_t k = x.size();
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      p_(i, j) -= g[i] * g[j] / denom;
    }
  }
  // alpha_k = alpha_{k-1} - P_k (x x^T alpha_{k-1} - x y)   (equation 8)
  const double innovation = Dot(x, alpha_) - y;  // x^T alpha - y
  const Vector correction = p_.Multiply(Scale(x, innovation));
  for (size_t i = 0; i < k; ++i) alpha_[i] -= correction[i];
  ++count_;
}

}  // namespace elink
