#include "timeseries/order_selection.h"

#include <cmath>
#include <limits>

#include "linalg/solve.h"

namespace elink {

Result<OrderSelection> SelectArOrder(const Vector& series, int max_order,
                                     double ridge) {
  if (max_order < 1) {
    return Status::InvalidArgument("max_order must be at least 1");
  }
  const int n = static_cast<int>(series.size());
  if (n < 2 * max_order + 1) {
    return Status::InvalidArgument("series too short for max_order");
  }
  // All candidates are scored on the same m = n - max_order observations so
  // their likelihoods are comparable.
  const int m = n - max_order;

  OrderSelection best;
  best.aic = std::numeric_limits<double>::infinity();
  best.candidate_aic.reserve(max_order);

  for (int k = 1; k <= max_order; ++k) {
    // Lag regression restricted to the common evaluation window.
    Matrix x(k, m);
    Vector y(m);
    for (int t = 0; t < m; ++t) {
      y[t] = series[max_order + t];
      for (int j = 0; j < k; ++j) x(j, t) = series[max_order + t - 1 - j];
    }
    Result<Vector> alpha = SolveNormalEquations(x, y, ridge);
    if (!alpha.ok()) return alpha.status();
    double ss = 0.0;
    for (int t = 0; t < m; ++t) {
      double pred = 0.0;
      for (int j = 0; j < k; ++j) pred += alpha.value()[j] * x(j, t);
      const double r = y[t] - pred;
      ss += r * r;
    }
    const double sigma2 = std::max(ss / m, 1e-300);
    const double aic = m * std::log(sigma2) + 2.0 * k;
    best.candidate_aic.push_back(aic);
    if (aic < best.aic) {
      best.aic = aic;
      best.order = k;
      best.model.coefficients = alpha.value();
      best.model.noise_variance = sigma2;
    }
  }
  return best;
}

}  // namespace elink
