// Recursive least squares — the online model update of paper Appendix A.
//
// The estimator maintains P_k = (X X^T)^{-1} and the coefficient vector
// alpha, and folds in each new (x_k, y_k) observation with the rank-one
// updates of equations (6)-(8):
//   b_k = b_{k-1} + x_k y_k
//   P_k = P_{k-1} - P_{k-1} x_k [1 + x_k^T P_{k-1} x_k]^{-1} x_k^T P_{k-1}
//   alpha_k = alpha_{k-1} - P_k (x_k x_k^T alpha_{k-1} - x_k y_k)
// so a sensor node never re-solves the normal equations.
#ifndef ELINK_TIMESERIES_RLS_H_
#define ELINK_TIMESERIES_RLS_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace elink {

/// \brief Online least-squares estimator over a fixed set of k regressors.
class RlsEstimator {
 public:
  /// Cold start: alpha = 0, P = initial_p_scale * I.  A large
  /// initial_p_scale (default 1e6) makes the estimate converge to the batch
  /// least-squares solution as observations arrive.
  explicit RlsEstimator(int num_regressors, double initial_p_scale = 1e6);

  /// Warm start from a batch solve: P = (X X^T)^{-1}, alpha from the batch
  /// fit.  Subsequent Observe() calls continue that exact trajectory, i.e.
  /// after t more observations the estimate equals the batch fit over all
  /// m + t observations.  Errors if X X^T is singular.
  static Result<RlsEstimator> FromBatch(const Matrix& x, const Vector& y,
                                        double ridge = 0.0);

  /// Folds in one observation (regressor vector x, response y).
  void Observe(const Vector& x, double y);

  /// Current coefficient estimate.
  const Vector& coefficients() const { return alpha_; }

  /// Number of observations folded in (including any batch warm start).
  long long observation_count() const { return count_; }

  int num_regressors() const { return static_cast<int>(alpha_.size()); }

  /// Access to the inverse information matrix (tests).
  const Matrix& p() const { return p_; }

 private:
  RlsEstimator() = default;

  Matrix p_;      // (X X^T)^{-1}
  Vector alpha_;  // Coefficients.
  long long count_ = 0;
};

}  // namespace elink

#endif  // ELINK_TIMESERIES_RLS_H_
