// Deterministic discrete-event queue.
//
// Events fire in (time, sequence) order: ties in simulated time are broken by
// insertion order, which makes every simulation run bit-reproducible for a
// given seed regardless of container iteration quirks.
//
// Hot-path layout, replacing the std::priority_queue<Event> of the original
// implementation (whose const& top() forced a deep copy of the callback and
// any captured payload on every dispatch):
//
//  * Events are grouped into FIFO buckets by *distinct* timestamp.  The
//    simulator's dominant regimes — synchronous unit hop delays, integer
//    timer grids, the handful of distinct retransmission offsets — put many
//    events on few distinct times, so both enqueue (append to an existing
//    bucket) and dispatch (advance the bucket cursor) are O(1) there.
//    Within a bucket, append order equals global schedule order, which *is*
//    ascending sequence order, so the (time, seq) dispatch contract holds
//    with no per-event sequence storage at all.
//  * Distinct pending times live in an implicit 4-ary min-heap of 16-byte
//    POD entries (timestamp as its IEEE-754 bit pattern, order-preserving
//    for the non-negative times the queue admits, plus a bucket index).
//    Heap sifts therefore move two machine words once per *distinct time*,
//    never per event and never a callback.  Bucket lookup by timestamp is a
//    flat open-addressing hash table sized to the live distinct times.
//  * Callbacks are UniqueFunction (move-only, ~48 bytes of inline storage)
//    parked in a stable slot arena with a free list.  Scheduling constructs
//    the closure directly in its slot; dispatch moves it out — nothing is
//    ever copied.
#ifndef ELINK_SIM_EVENT_QUEUE_H_
#define ELINK_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/unique_function.h"

namespace elink {

/// \brief Priority queue of timestamped callbacks.
class EventQueue {
 public:
  using Callback = UniqueFunction;

  /// Schedules `f` to run at absolute time `time` (must be >= Now()).
  /// Accepts any void() callable, including move-only closures; the closure
  /// is constructed in place in the queue's arena.
  template <typename F>
  void ScheduleAt(double time, F&& f) {
    ELINK_CHECK(time >= now_);
    const uint32_t slot = AllocSlot();
    slots_[slot] = std::forward<F>(f);
    Enqueue(TimeBits(time), slot);
  }

  /// Schedules `f` to run `delay` from now (delay >= 0).
  template <typename F>
  void ScheduleAfter(double delay, F&& f) {
    ELINK_CHECK(delay >= 0.0);
    ScheduleAt(now_ + delay, std::forward<F>(f));
  }

  /// Current simulated time.  Advances to each event's timestamp as it is
  /// dispatched; RunUntil additionally advances it to the horizon (see
  /// there).
  double Now() const { return now_; }

  bool Empty() const { return size_ == 0; }
  size_t Size() const { return size_; }

  /// High-water mark of Size() over the queue's lifetime.
  size_t PeakSize() const { return peak_size_; }

  /// Dispatches the next event; returns false when the queue is empty.
  bool RunOne();

  /// Runs events until the queue empties or `max_events` dispatches.
  /// Returns the number of events dispatched.
  uint64_t RunAll(uint64_t max_events = UINT64_MAX);

  /// Runs all events with time <= `until`, then advances Now() to `until`
  /// even when the queue drained early (if `until` is in the future), so a
  /// subsequent ScheduleAfter is relative to the simulated horizon the
  /// caller just ran to, not to whenever the last event happened to fire.
  /// Returns the dispatched count.
  uint64_t RunUntil(double until);

 private:
  /// One distinct pending timestamp in the time heap.  `time_bits` is the
  /// IEEE-754 pattern of the timestamp — for non-negative doubles (NaN
  /// excluded; both enforced by the time >= Now() >= 0 check) the unsigned
  /// bit patterns order exactly like the values.  Entries carry unique
  /// times, so comparisons need no tie-break.
  struct TimeEntry {
    uint64_t time_bits;
    uint32_t bucket;
  };

  /// FIFO of the arena slots scheduled for one distinct timestamp.
  struct Bucket {
    std::vector<uint32_t> items;
    uint32_t cursor = 0;
  };

  /// Flat hash table entry mapping a live timestamp to its bucket.
  struct TableEntry {
    uint64_t time_bits;
    uint32_t bucket;
    uint8_t occupied;
  };

  static uint64_t TimeBits(double time) {
    // +0.0 canonicalizes a (valid, schedulable) -0.0, whose bit pattern
    // would otherwise compare above every positive time.
    const double canonical = time + 0.0;
    uint64_t bits;
    std::memcpy(&bits, &canonical, sizeof(bits));
    return bits;
  }

  static double TimeFromBits(uint64_t bits) {
    double time;
    std::memcpy(&time, &bits, sizeof(time));
    return time;
  }

  /// Claims an arena slot for the caller to fill.  Out-of-line together
  /// with Enqueue so the template schedule entry points stay tiny.
  uint32_t AllocSlot();

  /// Appends `slot` to the bucket for `time_bits`, creating the bucket (and
  /// its time-heap entry) on first use of that timestamp.
  void Enqueue(uint64_t time_bits, uint32_t slot);

  /// Returns the bucket id for `time_bits`, inserting a fresh bucket into
  /// the hash table and the time heap on miss.
  uint32_t BucketFor(uint64_t time_bits);

  /// Removes `time_bits` from the hash table (backward-shift deletion).
  void TableErase(uint64_t time_bits);

  void GrowTable();

  void SiftUp(size_t i);
  void SiftDown(size_t i);

  // Implicit 4-ary heap of distinct times: children of i are 4i+1 .. 4i+4.
  std::vector<TimeEntry> heap_;
  std::vector<Bucket> buckets_;
  std::vector<uint32_t> free_buckets_;
  // timestamp -> bucket id; open addressing, linear probing, power-of-two.
  std::vector<TableEntry> table_;
  size_t table_used_ = 0;
  // Stable callback arena indexed by bucket items, recycled via a free list.
  std::vector<Callback> slots_;
  std::vector<uint32_t> free_slots_;
  double now_ = 0.0;
  size_t size_ = 0;
  size_t peak_size_ = 0;
};

}  // namespace elink

#endif  // ELINK_SIM_EVENT_QUEUE_H_
