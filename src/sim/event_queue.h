// Deterministic discrete-event queue.
//
// Events fire in (time, sequence) order: ties in simulated time are broken by
// insertion order, which makes every simulation run bit-reproducible for a
// given seed regardless of container iteration quirks.
#ifndef ELINK_SIM_EVENT_QUEUE_H_
#define ELINK_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/status.h"

namespace elink {

/// \brief Priority queue of timestamped callbacks.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to run at absolute time `time` (must be >= Now()).
  void ScheduleAt(double time, Callback cb);

  /// Schedules `cb` to run `delay` from now (delay >= 0).
  void ScheduleAfter(double delay, Callback cb);

  /// Current simulated time (the time of the last dispatched event).
  double Now() const { return now_; }

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  /// Dispatches the next event; returns false when the queue is empty.
  bool RunOne();

  /// Runs events until the queue empties or `max_events` dispatches.
  /// Returns the number of events dispatched.
  uint64_t RunAll(uint64_t max_events = UINT64_MAX);

  /// Runs all events with time <= `until`.  Returns dispatched count.
  uint64_t RunUntil(double until);

 private:
  struct Event {
    double time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  uint64_t next_seq_ = 0;
};

}  // namespace elink

#endif  // ELINK_SIM_EVENT_QUEUE_H_
