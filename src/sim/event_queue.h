// Deterministic discrete-event queue.
//
// Events fire in (time, sequence) order: ties in simulated time are broken by
// insertion order, which makes every simulation run bit-reproducible for a
// given seed regardless of container iteration quirks.
//
// Hot-path layout, replacing the std::priority_queue<Event> of the original
// implementation (whose const& top() forced a deep copy of the callback and
// any captured payload on every dispatch):
//
//  * Events are grouped into FIFO buckets by *distinct* timestamp.  The
//    simulator's dominant regimes — synchronous unit hop delays, integer
//    timer grids, the handful of distinct retransmission offsets — put many
//    events on few distinct times, so both enqueue (append to an existing
//    bucket) and dispatch (advance the bucket cursor) are O(1) there.
//    Within a bucket, append order equals global schedule order, which *is*
//    ascending sequence order, so the (time, seq) dispatch contract holds
//    with no per-event sequence storage at all.
//  * Distinct pending times live in an implicit 4-ary min-heap of 16-byte
//    POD entries (timestamp as its IEEE-754 bit pattern, order-preserving
//    for the non-negative times the queue admits, plus a bucket index).
//    Heap sifts therefore move two machine words once per *distinct time*,
//    never per event and never a callback.  Bucket lookup by timestamp is a
//    flat open-addressing hash table sized to the live distinct times.
//  * A bucket item is a 16-byte POD of three kinds.  The dominant simulator
//    events — message deliveries and protocol timers — are stored *inline*
//    (endpoints plus a payload pointer / generation) and dispatched through
//    a handler installed once by the Network: no closure is constructed,
//    moved, or destroyed for them at all.  Everything else is a generic
//    callback: a UniqueFunction (move-only, ~48 bytes inline) parked in a
//    chunk-stable slot arena, constructed in place at schedule time and
//    invoked *in place* at dispatch (chunks never move, so reentrant
//    scheduling cannot invalidate the executing closure).
//  * RunAll/RunUntil drain bucket-at-a-time: the front bucket is resolved
//    once per distinct timestamp and its FIFO is swept in a tight loop —
//    the bulk-synchronous fast path.  In synchronous-round mode every
//    delivery of a round lands in one bucket, so a whole round dispatches
//    with a single heap pop at its end and no per-event heap traffic.
#ifndef ELINK_SIM_EVENT_QUEUE_H_
#define ELINK_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/unique_function.h"

namespace elink {

/// \brief Priority queue of timestamped callbacks and inline POD events.
class EventQueue {
 public:
  using Callback = UniqueFunction;

  /// Handler for inline delivery events (installed once by the Network).
  using DeliveryHandler = void (*)(void* ctx, int from, int to, void* payload);
  /// Handler for inline timer events.  `aux` is an opaque 64-bit word the
  /// scheduler round-trips untouched; the Network packs the restart
  /// generation into its low half (and, while tracing, a causal-parent slot
  /// into the high half).
  using TimerHandler = void (*)(void* ctx, int node, int timer_id,
                                uint64_t aux);

  /// Installs the dispatch target for inline delivery/timer events.  Must be
  /// set before the first ScheduleDeliveryAfter/ScheduleTimerAfter.
  void SetInlineHandlers(DeliveryHandler on_delivery, TimerHandler on_timer,
                         void* ctx) {
    on_delivery_ = on_delivery;
    on_timer_ = on_timer;
    handler_ctx_ = ctx;
  }

  /// Schedules `f` to run at absolute time `time` (must be >= Now()).
  /// Accepts any void() callable, including move-only closures; the closure
  /// is constructed in place in the queue's arena.
  template <typename F>
  void ScheduleAt(double time, F&& f) {
    ELINK_CHECK(time >= now_);
    const uint32_t slot = AllocSlot();
    SlotRef(slot) = std::forward<F>(f);
    Enqueue(TimeBits(time), Item{kKindCallback << kKindShift, slot, 0});
  }

  /// Schedules `f` to run `delay` from now (delay >= 0).
  template <typename F>
  void ScheduleAfter(double delay, F&& f) {
    ELINK_CHECK(delay >= 0.0);
    ScheduleAt(now_ + delay, std::forward<F>(f));
  }

  /// Schedules an inline delivery event: at `delay` from now the installed
  /// DeliveryHandler fires with (from, to, payload).  No closure exists; the
  /// three words are the whole event.
  void ScheduleDeliveryAfter(double delay, int from, int to, void* payload) {
    ELINK_CHECK(delay >= 0.0);
    Enqueue(TimeBits(now_ + delay),
            Item{(kKindDelivery << kKindShift) | static_cast<uint32_t>(from),
                 static_cast<uint32_t>(to),
                 reinterpret_cast<uint64_t>(payload)});
  }

  /// Schedules an inline timer event for the installed TimerHandler.
  void ScheduleTimerAfter(double delay, int node, int timer_id,
                          uint64_t aux) {
    ELINK_CHECK(delay >= 0.0);
    Enqueue(TimeBits(now_ + delay),
            Item{(kKindTimer << kKindShift) | static_cast<uint32_t>(node),
                 static_cast<uint32_t>(timer_id), aux});
  }

  /// Current simulated time.  Advances to each event's timestamp as it is
  /// dispatched; RunUntil additionally advances it to the horizon (see
  /// there).
  double Now() const { return now_; }

  bool Empty() const { return size_ == 0; }
  size_t Size() const { return size_; }

  /// High-water mark of Size() over the queue's lifetime.
  size_t PeakSize() const { return peak_size_; }

  /// Causal id of the handler activation currently executing (0 = none).
  /// Written by the Network's delivery/timer handlers while an observer is
  /// attached; cleared by the dispatcher before every generic callback so
  /// driver-scheduled closures are never misattributed to whichever handler
  /// happened to run last.  Purely observational: no simulation decision
  /// ever reads it.
  uint64_t active_cause() const { return active_cause_; }
  void set_active_cause(uint64_t cause) { active_cause_ = cause; }

  /// Dispatches the next event; returns false when the queue is empty.
  bool RunOne();

  /// Runs events until the queue empties or `max_events` dispatches,
  /// draining bucket-at-a-time (the bulk-synchronous fast path).
  /// Returns the number of events dispatched.
  uint64_t RunAll(uint64_t max_events = UINT64_MAX);

  /// Runs all events with time <= `until`, then advances Now() to `until`
  /// even when the queue drained early (if `until` is in the future), so a
  /// subsequent ScheduleAfter is relative to the simulated horizon the
  /// caller just ran to, not to whenever the last event happened to fire.
  /// Returns the dispatched count.
  uint64_t RunUntil(double until);

 private:
  // Item kinds, stored in the top bits of Item::a.  Node ids therefore top
  // out at 2^30 - 1 — three orders of magnitude past the 1M-node target.
  static constexpr uint32_t kKindCallback = 0;
  static constexpr uint32_t kKindDelivery = 1;
  static constexpr uint32_t kKindTimer = 2;
  static constexpr uint32_t kKindShift = 30;
  static constexpr uint32_t kArgMask = (1u << kKindShift) - 1;

  /// One scheduled event, 16 bytes, trivially copyable.
  ///  kind == callback: b is the slot of the parked UniqueFunction.
  ///  kind == delivery: a&mask = from, b = to, c = payload pointer.
  ///  kind == timer:    a&mask = node, b = timer id, c = restart generation.
  struct Item {
    uint32_t a;
    uint32_t b;
    uint64_t c;
  };

  /// One distinct pending timestamp in the time heap.  `time_bits` is the
  /// IEEE-754 pattern of the timestamp — for non-negative doubles (NaN
  /// excluded; both enforced by the time >= Now() >= 0 check) the unsigned
  /// bit patterns order exactly like the values.  Entries carry unique
  /// times, so comparisons need no tie-break.
  struct TimeEntry {
    uint64_t time_bits;
    uint32_t bucket;
  };

  /// FIFO of the items scheduled for one distinct timestamp.
  struct Bucket {
    std::vector<Item> items;
    uint32_t cursor = 0;
  };

  /// Flat hash table entry mapping a live timestamp to its bucket.
  struct TableEntry {
    uint64_t time_bits;
    uint32_t bucket;
    uint8_t occupied;
  };

  static uint64_t TimeBits(double time) {
    // +0.0 canonicalizes a (valid, schedulable) -0.0, whose bit pattern
    // would otherwise compare above every positive time.
    const double canonical = time + 0.0;
    uint64_t bits;
    std::memcpy(&bits, &canonical, sizeof(bits));
    return bits;
  }

  static double TimeFromBits(uint64_t bits) {
    double time;
    std::memcpy(&time, &bits, sizeof(time));
    return time;
  }

  // Callback slots live in fixed-size chunks so their addresses are stable
  // across arena growth: a closure can be invoked in place even when it
  // schedules (and thereby allocates) reentrantly.
  static constexpr uint32_t kSlotChunkShift = 8;
  static constexpr uint32_t kSlotChunkSize = 1u << kSlotChunkShift;

  Callback& SlotRef(uint32_t slot) {
    return slot_chunks_[slot >> kSlotChunkShift]
                       [slot & (kSlotChunkSize - 1)];
  }

  /// Claims an arena slot for the caller to fill.  Out-of-line together
  /// with Enqueue so the template schedule entry points stay tiny.
  uint32_t AllocSlot();

  /// Appends `item` to the bucket for `time_bits`, creating the bucket (and
  /// its time-heap entry) on first use of that timestamp.
  void Enqueue(uint64_t time_bits, Item item);

  /// Returns the bucket id for `time_bits`, inserting a fresh bucket into
  /// the hash table and the time heap on miss.
  uint32_t BucketFor(uint64_t time_bits);

  /// Dispatches one dequeued item (after all queue state is consistent).
  void Dispatch(const Item& item);

  /// Retires the exhausted front bucket: recycles it, erases its timestamp,
  /// pops the time heap.
  void RetireFrontBucket(uint64_t time_bits, uint32_t bucket);

  /// Removes `time_bits` from the hash table (backward-shift deletion).
  void TableErase(uint64_t time_bits);

  void GrowTable();

  void SiftUp(size_t i);
  void SiftDown(size_t i);

  // Implicit 4-ary heap of distinct times: children of i are 4i+1 .. 4i+4.
  std::vector<TimeEntry> heap_;
  std::vector<Bucket> buckets_;
  std::vector<uint32_t> free_buckets_;
  // timestamp -> bucket id; open addressing, linear probing, power-of-two.
  std::vector<TableEntry> table_;
  size_t table_used_ = 0;
  // Single-entry memo of the last timestamp resolved by Enqueue.  In the
  // synchronous regime every delivery scheduled during round k lands at
  // k + 1, so consecutive enqueues hit one bucket and the memo replaces the
  // hash probe with a single compare.  Invalidated when its timestamp
  // retires (the bucket id may be recycled for a different time).  The
  // initial value is a NaN bit pattern, which no schedulable time equals.
  uint64_t memo_time_bits_ = ~0ULL;
  uint32_t memo_bucket_ = 0;
  // Chunk-stable callback arena addressed by slot index, recycled via a
  // free list.
  std::vector<std::unique_ptr<Callback[]>> slot_chunks_;
  uint32_t slots_in_use_ = 0;  // High-water mark of allocated slot indices.
  std::vector<uint32_t> free_slots_;
  DeliveryHandler on_delivery_ = nullptr;
  TimerHandler on_timer_ = nullptr;
  void* handler_ctx_ = nullptr;
  uint64_t active_cause_ = 0;
  double now_ = 0.0;
  size_t size_ = 0;
  size_t peak_size_ = 0;
};

}  // namespace elink

#endif  // ELINK_SIM_EVENT_QUEUE_H_
