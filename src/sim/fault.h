// Deterministic fault injection for the simulated network.
//
// A FaultPlan describes, per run, everything that can go wrong: i.i.d.
// message loss, per-link loss overrides, scheduled link outages, and node
// crashes (with optional recovery).  The FaultInjector evaluates the plan at
// simulation time; it draws all randomness from a private RNG stream forked
// from the network seed, so enabling faults never perturbs the delay stream
// and identical (seed, plan) pairs reproduce bit-identical runs.  A
// default-constructed plan is inert: the Network skips the injector entirely
// and behaves byte-identically to a fault-free build.
#ifndef ELINK_SIM_FAULT_H_
#define ELINK_SIM_FAULT_H_

#include <limits>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace elink {

/// \brief Declarative description of the faults of one run.
struct FaultPlan {
  /// Probability that any single-hop transmission is lost (i.i.d.).
  double drop_probability = 0.0;

  /// Probability that a transmission's payload arrives *truncated* (i.i.d.):
  /// the message is delivered, but a seeded prefix of its ints/doubles is
  /// chopped off in flight.  Models bit errors that shorten a frame without
  /// killing it; receiving protocols must treat such messages as a decode
  /// error, never as valid fields.  Drawn from the injector's private RNG
  /// stream, so enabling truncation never perturbs delay or drop draws.
  double truncate_probability = 0.0;

  /// Per-link loss probability overriding `drop_probability`.  Undirected by
  /// default; set `directed` to affect only the from->to direction (useful
  /// for, e.g., losing acks but not data).
  struct LinkOverride {
    int from = -1;
    int to = -1;
    double drop_probability = 0.0;
    bool directed = false;
  };
  std::vector<LinkOverride> link_overrides;

  /// Scheduled outage: the link delivers nothing during [down_at, up_at).
  struct LinkOutage {
    int from = -1;
    int to = -1;
    double down_at = 0.0;
    double up_at = std::numeric_limits<double>::infinity();
    bool directed = false;
  };
  std::vector<LinkOutage> link_outages;

  /// The node is dead during [crash_at, recover_at): it neither sends nor
  /// receives, and its timers are suppressed.  Omit recover_at for a
  /// permanent crash.
  struct NodeCrash {
    int node = -1;
    double crash_at = 0.0;
    double recover_at = std::numeric_limits<double>::infinity();
  };
  std::vector<NodeCrash> node_crashes;

  /// True when the plan can affect any run at all.
  bool enabled() const {
    return drop_probability > 0.0 || truncate_probability > 0.0 ||
           !link_overrides.empty() || !link_outages.empty() ||
           !node_crashes.empty();
  }
};

/// \brief Evaluates a FaultPlan during a simulation run.
class FaultInjector {
 public:
  /// `seed` is the owning network's seed; the injector forks a private
  /// sub-stream from it for the probabilistic drops.
  FaultInjector(const FaultPlan& plan, uint64_t seed);

  /// False for an inert plan; callers skip all other queries then.
  bool enabled() const { return enabled_; }

  /// True when node `id` is crashed at time `now`.
  bool IsCrashed(int node, double now) const;

  /// True when the from->to transmission starting at `now` is lost to a link
  /// outage or a (seeded) random drop.  Advances the private RNG stream when
  /// a probabilistic decision is needed, so call exactly once per attempt.
  bool DropTransmission(int from, int to, double now);

  /// True when the from->to direction is inside a scheduled outage at `now`.
  bool LinkDown(int from, int to, double now) const;

  /// True when the plan can truncate payloads at all (cheap fast-path gate).
  bool truncates() const { return plan_.truncate_probability > 0.0; }

  /// Decides whether a transmission carrying `num_ints` ints and
  /// `num_doubles` doubles arrives truncated; on true, writes the number of
  /// surviving leading fields (strictly fewer than sent when any exist).
  /// Advances the private RNG stream only when truncation is enabled, so
  /// plans without it reproduce pre-truncation runs bit for bit.
  bool TruncatePayload(size_t num_ints, size_t num_doubles, size_t* keep_ints,
                       size_t* keep_doubles);

  /// Loss probability in effect for the from->to direction.
  double LinkDropProbability(int from, int to) const;

 private:
  /// Directed per-link override, materialized in both directions for
  /// undirected entries.  Kept sorted by (from, to) for binary search.
  struct LinkProb {
    int from;
    int to;
    double p;
    bool operator<(const LinkProb& o) const {
      return from != o.from ? from < o.from : to < o.to;
    }
  };
  /// One crash interval [crash_at, recover_at) of `node`.  Kept sorted by
  /// node (stable, so a node's intervals stay in plan order).
  struct CrashInterval {
    int node;
    double crash_at;
    double recover_at;
  };

  bool enabled_ = false;
  FaultPlan plan_;
  Rng rng_;
  // Flat sorted vectors instead of std::map: both are consulted on every
  // hop of every transmission, where binary search over contiguous memory
  // beats pointer-chasing a red-black tree.
  std::vector<LinkProb> override_p_;
  std::vector<CrashInterval> crash_intervals_;
};

}  // namespace elink

#endif  // ELINK_SIM_FAULT_H_
