#include "sim/reliable.h"

#include <utility>

#include "proto/wire.h"

namespace elink {

namespace {

/// Ack/retx categories derive from the data category with the ".retx"
/// marker stripped, so a retransmitted "expand" still acks as "expand.ack".
std::string BaseCategory(const std::string& category) {
  constexpr const char kRetxSuffix[] = ".retx";
  const size_t n = sizeof(kRetxSuffix) - 1;
  if (category.size() > n &&
      category.compare(category.size() - n, n, kRetxSuffix) == 0) {
    return category.substr(0, category.size() - n);
  }
  return category;
}

}  // namespace

void ReliableChannel::Attach(Network* network, int self, Config config) {
  ELINK_CHECK(network != nullptr);
  ELINK_CHECK(config.rto > 0.0);
  ELINK_CHECK(config.backoff >= 1.0);
  ELINK_CHECK(config.max_retries >= 0);
  network_ = network;
  self_ = self;
  config_ = config;
}

void ReliableChannel::Dispatch(int to, bool routed, const Message& msg) {
  if (routed) {
    network_->SendRouted(self_, to, msg);
  } else {
    network_->Send(self_, to, msg);
  }
}

void ReliableChannel::Enqueue(int to, bool routed, Message msg) {
  ELINK_CHECK(attached());
  const long long seq = next_seq_++;
  msg.rel_seq = seq;
  msg.rel_from = self_;
  msg.rel_ack = false;
  Pending p;
  p.to = to;
  p.routed = routed;
  p.timeout = config_.rto;
  p.retx_category = msg.category + ".retx";
  p.msg = msg;
  Dispatch(to, routed, p.msg);
  pending_.emplace(seq, std::move(p));
  network_->SetTimer(self_, config_.rto,
                     config_.timer_id_base + static_cast<int>(seq));
}

void ReliableChannel::Send(int to, Message msg) {
  Enqueue(to, /*routed=*/false, std::move(msg));
}

void ReliableChannel::SendRouted(int to, Message msg) {
  Enqueue(to, /*routed=*/true, std::move(msg));
}

bool ReliableChannel::OnMessage(int from, const Message& msg) {
  if (msg.rel_ack) {
    pending_.erase(msg.rel_seq);  // Stale retransmit timers find no entry.
    return true;
  }
  if (msg.rel_seq < 0) return false;  // Plain message, not ours.
  // Acknowledge every delivered copy: the originator keeps retransmitting
  // until an ack survives the return path.
  Message ack;
  ack.rel_ack = true;
  ack.rel_seq = msg.rel_seq;
  ack.rel_from = self_;
  ack.category = BaseCategory(msg.category) + ".ack";
  if (SimObserver* obs = network_->observer()) {
    obs->OnTransportAck(network_->Now(), self_, msg.rel_from, msg.rel_seq);
  }
  if (msg.rel_from == from && from != self_) {
    network_->Send(self_, from, std::move(ack));
  } else {
    // Data arrived over a multi-hop route (`from` is just the last relay)
    // or was a routed self-delivery (from == self_, which Network::Send
    // would reject — there is no self edge); the ack routes back to the
    // logical originator.
    network_->SendRouted(self_, msg.rel_from, std::move(ack));
  }
  auto [it, first_delivery] = delivered_[msg.rel_from].insert(msg.rel_seq);
  (void)it;
  return !first_delivery;
}

bool ReliableChannel::OnTimer(int timer_id) {
  if (timer_id < config_.timer_id_base) return false;
  const long long seq = timer_id - config_.timer_id_base;
  auto it = pending_.find(seq);
  if (it == pending_.end()) return true;  // Acked; deadline is stale.
  Pending& p = it->second;
  if (p.attempts >= config_.max_retries) {
    ++gave_up_count_;
    Pending abandoned = std::move(p);
    pending_.erase(it);
    if (SimObserver* obs = network_->observer()) {
      obs->OnTransportGiveUp(network_->Now(), self_, abandoned.to,
                             abandoned.msg);
    }
    if (give_up_) give_up_(abandoned.to, abandoned.msg);
    return true;
  }
  ++p.attempts;
  ++retransmissions_;
  p.timeout *= config_.backoff;
  Message copy = p.msg;
  copy.category = p.retx_category;
  if (SimObserver* obs = network_->observer()) {
    obs->OnRetransmit(network_->Now(), self_, p.to, copy, p.attempts);
  }
  Dispatch(p.to, p.routed, copy);
  network_->SetTimer(self_, p.timeout, timer_id);
  return true;
}

void ReliableChannel::EncodeSnapshotState(std::vector<uint8_t>* out) const {
  wire::PutU8(attached() ? 1 : 0, out);
  if (!attached()) return;
  wire::PutZigzag(self_, out);
  wire::PutZigzag(next_seq_, out);
  wire::PutVarint(retransmissions_, out);
  wire::PutVarint(gave_up_count_, out);
  // In-flight sends, ascending by sequence number (std::map order).  The
  // payload travels as a real wire frame plus its accounting category and
  // retx label (neither is on the radio frame).
  wire::PutVarint(pending_.size(), out);
  for (const auto& [seq, p] : pending_) {
    wire::PutZigzag(seq, out);
    wire::PutZigzag(p.to, out);
    wire::PutU8(p.routed ? 1 : 0, out);
    wire::PutZigzag(p.attempts, out);
    wire::PutF64Le(p.timeout, out);
    wire::PutString(p.msg.category, out);
    wire::PutString(p.retx_category, out);
    wire::EncodeFrame(p.msg, out);
  }
  // Delivery history: originator -> delivered seqs, both in ascending order.
  wire::PutVarint(delivered_.size(), out);
  for (const auto& [from, seqs] : delivered_) {
    wire::PutZigzag(from, out);
    wire::PutVarint(seqs.size(), out);
    for (const long long s : seqs) wire::PutZigzag(s, out);
  }
}

}  // namespace elink
