// Deployment topologies: node positions plus the communication graph.
//
// The paper evaluates on a 6x9 buoy grid (Tao), 2500 sensors scattered over
// terrain (Death Valley), and uniform-random placements of 100-800 nodes with
// ~4 neighbors in radio range (synthetic).  All three are generated here as
// unit-disk communication graphs.
#ifndef ELINK_SIM_TOPOLOGY_H_
#define ELINK_SIM_TOPOLOGY_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sim/point.h"

namespace elink {

/// \brief Node positions and communication-graph adjacency.
struct Topology {
  std::vector<Point2D> positions;
  /// adjacency[i] lists the ids of i's radio neighbors, sorted ascending.
  std::vector<std::vector<int>> adjacency;
  /// Bounding box of the deployment: [0, width] x [0, height].
  double width = 0.0;
  double height = 0.0;

  int num_nodes() const { return static_cast<int>(positions.size()); }

  /// True when (u, v) is a communication edge.
  bool HasEdge(int u, int v) const;

  /// Number of undirected edges.
  int num_edges() const;

  /// Mean node degree.
  double average_degree() const;

  /// Maximum node degree (the paper's constant d).
  int max_degree() const;
};

/// Regular rows x cols grid with `spacing` between adjacent nodes; the
/// communication graph is 4-connected (N/S/E/W grid neighbors).  Node id of
/// grid cell (r, c) is r * cols + c.
Topology MakeGridTopology(int rows, int cols, double spacing = 1.0);

/// Uniform-random placement of n nodes on a square of side `side`, connected
/// as a unit-disk graph with `radio_range`.  When `force_connectivity` is
/// set, the radio range is grown (by 10% steps) until the graph is connected,
/// which mirrors common sensor-network evaluation practice.
Result<Topology> MakeRandomTopology(int n, double side, double radio_range,
                                    Rng* rng, bool force_connectivity = true);

/// Uniform-random placement calibrated so the *average* degree is close to
/// `target_avg_degree` (the paper's synthetic setup uses ~4); side length is
/// chosen from `density` = n / side^2.
Result<Topology> MakeRandomTopologyWithDegree(int n, double density,
                                              double target_avg_degree,
                                              Rng* rng);

}  // namespace elink

#endif  // ELINK_SIM_TOPOLOGY_H_
