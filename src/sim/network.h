// The simulated sensor network: nodes, message delivery, timers, and cost
// accounting over a Topology, driven by a deterministic event queue.
//
// Two delay regimes model the paper's two settings:
//  * synchronous  — every hop takes exactly one time unit (Section 4);
//  * asynchronous — per-hop delays are drawn uniformly from a configured
//    interval (Section 5), so message orderings can interleave arbitrarily.
#ifndef ELINK_SIM_NETWORK_H_
#define ELINK_SIM_NETWORK_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sim/churn.h"
#include "sim/event_queue.h"
#include "sim/fault.h"
#include "sim/graph.h"
#include "sim/message.h"
#include "sim/msg_arena.h"
#include "sim/observer.h"
#include "sim/stats.h"
#include "sim/topology.h"

namespace elink {

class Network;

/// \brief Base class for protocol logic running on one sensor node.
///
/// Subclasses implement HandleMessage / HandleTimer; they send messages and
/// set timers through the owning Network.
class Node {
 public:
  virtual ~Node() = default;

  /// Delivery of a single-hop (or routed) message from `from`.
  virtual void HandleMessage(int from, const Message& msg) = 0;

  /// Expiry of a timer set via Network::SetTimer.
  virtual void HandleTimer(int timer_id) { (void)timer_id; }

  /// Called once by InstallNode after network()/id() are wired; protocols
  /// that own helper objects needing the back-pointers (e.g. a
  /// ReliableChannel) attach them here.
  virtual void OnInstall() {}

  /// The node came back with reset protocol state: a churn join/repair, or a
  /// fault-plan crash whose recover_at arrived.  Timers set before the
  /// restart never fire (the Network bumps the node's restart generation),
  /// so implementations re-arm whatever they need and drop in-flight
  /// bookkeeping.  The default keeps legacy resume-as-if-nothing-happened
  /// behavior for protocols that predate churn.
  virtual void OnRestart() {}

  /// First-class churn changed this node's neighborhood: `neighbor` became
  /// reachable (`up`) or unreachable (`!up`) through a join/leave/crash/
  /// repair/link change.  Fault-plan crashes and outages are NOT announced —
  /// those stay invisible at the protocol level, exactly as before.
  virtual void OnNeighborChange(int neighbor, bool up) {
    (void)neighbor, (void)up;
  }

  /// Appends this node's protocol state to `out` for a whole-network
  /// snapshot (proto/snapshot.h).  The encoding must be deterministic: two
  /// nodes in identical states must emit identical bytes, since the
  /// restore path proves state equality by byte comparison.  The base
  /// emits nothing — stateless relays have nothing to persist; the proto
  /// runtime overrides this with its transport state.
  virtual void EncodeSnapshotState(std::vector<uint8_t>* out) const {
    (void)out;
  }

  int id() const { return id_; }

 protected:
  Network* network() const { return network_; }

 private:
  friend class Network;
  Network* network_ = nullptr;
  int id_ = -1;
};

/// \brief The simulated network.
class Network {
 public:
  struct Config {
    /// Synchronous: one time unit per hop.  Asynchronous: U(min, max).
    bool synchronous = true;
    double async_delay_min = 0.5;
    double async_delay_max = 1.5;
    uint64_t seed = 1;
    /// Fault model of the run (message loss, link outages, node crashes).
    /// The default plan is inert: delivery is perfectly reliable and the run
    /// is byte-identical to a build without the fault layer.
    FaultPlan fault;
    /// Topology dynamics of the run (joins, leaves, crash/repair cycles,
    /// link add/remove).  The default plan is inert: the topology is frozen
    /// and the run is byte-identical to a build without the churn layer.
    ChurnPlan churn;
    /// When true (the default), in-flight payloads live in the slab arena
    /// and deliveries are inline POD events; when false, every delivery
    /// parks its payload in a heap-backed closure (the pre-arena layout).
    /// The two paths are observably identical — same RNG draws, same
    /// (time, seq) order, same bytes in every report — and the knob exists
    /// so tests can prove exactly that.
    bool arena_messages = Network::default_arena_messages();
  };

  /// Process-wide default for Config::arena_messages.  Protocols construct
  /// their Network::Config internally, so the arena-vs-heap equivalence
  /// suite flips this to run whole protocol stacks on the legacy heap path
  /// without threading a knob through every protocol's options.  Not a
  /// production switch: leave it true outside tests.
  static bool default_arena_messages() { return default_arena_messages_; }
  static void set_default_arena_messages(bool v) {
    default_arena_messages_ = v;
  }

  Network(Topology topology, Config config);

  // Nodes hold back-pointers to their Network, so it must never move.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Installs the protocol object for node `id`.  All nodes must be
  /// installed before the first Send/SetTimer/Run.
  void InstallNode(int id, std::unique_ptr<Node> node);

  /// Convenience: installs `factory(id)` for every node id.
  void InstallNodes(
      const std::function<std::unique_ptr<Node>(int)>& factory);

  int num_nodes() const { return topology_.num_nodes(); }
  const Topology& topology() const { return topology_; }
  /// Current radio neighborhood of `id`: the deployment adjacency, edited by
  /// any churn link changes that have taken effect.  Absent/crashed
  /// neighbors still appear — presence is a per-node property (IsPresent),
  /// not an edge property.
  const std::vector<int>& neighbors(int id) const {
    return churn_.enabled() ? live_adjacency_[id] : topology_.adjacency[id];
  }

  /// Sends `msg` over the single radio hop from `from` to neighbor `to`.
  /// Cost: msg.CostUnits() units in msg.category.
  void Send(int from, int to, Message msg);

  /// Sends `msg` to every neighbor of `from` (independent transmissions).
  /// All fan-out deliveries share one immutable payload — the message is
  /// materialized once, not copied per neighbor — but each transmission is
  /// charged, delayed, and fault-gated independently, exactly like N Sends.
  void Broadcast(int from, Message msg);

  /// Sends `msg` from `from` to an arbitrary node `to` along a shortest hop
  /// path; intermediate nodes relay without processing.  Each hop is charged
  /// like a Send.  Used for quadtree parent/child signalling and query
  /// routing, whose endpoints need not be radio neighbors.
  /// Returns the number of hops traveled (0 for from == to, in which case
  /// the message is delivered locally after zero delay).
  int SendRouted(int from, int to, Message msg);

  /// Hop distance between two nodes (shortest path; -1 if disconnected).
  int HopDistance(int from, int to);

  /// Schedules HandleTimer(timer_id) on node `id` after `delay`.
  void SetTimer(int id, double delay, int timer_id);

  /// Schedules an arbitrary callback (driver code, not charged).  Accepts
  /// any void() callable, including move-only closures.
  void ScheduleAfter(double delay, EventQueue::Callback cb);

  double Now() const { return queue_.Now(); }

  /// Runs until the event queue drains or `max_events` dispatches.  Returns
  /// the number of events dispatched; when the cap was hit with work still
  /// queued (a runaway/livelocked protocol), hit_event_cap() reports it and
  /// a warning is logged — callers turn that into a Status instead of the
  /// process aborting.
  uint64_t Run(uint64_t max_events = 200'000'000ULL);

  /// Mid-run checkpoint seam for the snapshot layer (proto/snapshot.h).
  ///
  /// While armed, every Network on the arming thread counts the events it
  /// dispatches into `dispatched`; when the cumulative count reaches the
  /// initial `countdown`, `on_fire` runs once, from inside Run between two
  /// events, with the Network that crossed the threshold.  The callback is
  /// a read-only witness: it must not send, schedule, or draw randomness —
  /// runs with and without an armed checkpoint are byte-identical.
  ///
  /// Armed Run calls drain in two RunAll chunks instead of one (RunAll is
  /// resumable mid-bucket, so the split is unobservable); disarmed runs
  /// pay one thread-local load per Run call and nothing per event.
  struct RunCheckpoint {
    /// Events still to dispatch before firing (UINT64_MAX: never fire —
    /// pure event counting).
    uint64_t countdown = UINT64_MAX;
    /// Total events dispatched while this checkpoint was armed.
    uint64_t dispatched = 0;
    bool fired = false;
    std::function<void(Network&)> on_fire;
  };

  /// Arms `cp` for the calling thread (nullptr disarms).  The caller owns
  /// the checkpoint and must disarm before it goes out of scope.
  static void ArmCheckpoint(RunCheckpoint* cp);
  static RunCheckpoint* armed_checkpoint();

  /// True when the last Run() stopped at the event cap with events pending.
  bool hit_event_cap() const { return hit_event_cap_; }

  Node* node(int id) { return nodes_[id].get(); }
  /// The payload arena (exposed for tests/diagnostics; empty when the run
  /// uses heap-backed messages).
  const MessageArena& arena() const { return arena_; }
  MessageStats& stats() { return stats_; }
  const MessageStats& stats() const { return stats_; }
  Rng& rng() { return rng_; }
  const FaultInjector& fault() const { return fault_; }
  const ChurnSchedule& churn() const { return churn_; }

  /// True when `id` is deployed right now under the churn plan (joined, not
  /// left, not in a churn crash window).  Fault-plan crashes do NOT count:
  /// they are protocol-invisible.  Always true without churn.  This is the
  /// directory knowledge a membership layer would give protocols — it is
  /// deterministic and consumes no randomness.
  bool IsPresent(int id) const {
    return !churn_.enabled() || !churn_.IsAbsent(id, queue_.Now());
  }

  /// Transmissions lost because of churn (absent endpoint or removed link).
  /// A transmission that would also have been lost to the fault plan still
  /// counts here, so `stats().dropped_sends() == churn_drops()` identifies
  /// runs whose only losses were topological.
  uint64_t churn_drops() const { return churn_drops_; }

  /// Installs (or clears, with nullptr) the observability hook.  Observers
  /// are read-only witnesses: attaching one never changes a run's outcome,
  /// and with none attached every emission site is a single null check.
  void set_observer(SimObserver* observer) { observer_ = observer; }
  SimObserver* observer() const { return observer_; }

  /// Counts a delivered-but-undecodable frame against `category` and reports
  /// it to the observer.  `node` is the rejecting receiver.
  void NoteDecodeError(int node, const std::string& category) {
    stats_.RecordDecodeError(category);
    if (observer_ != nullptr) {
      observer_->OnDecodeError(queue_.Now(), node, category);
    }
  }

 private:
  double NextHopDelay();
  const RoutingTable& TableFor(int root);
  /// True when (from, to) is an edge of the *current* (churn-edited)
  /// adjacency.  Only meaningful while churn is enabled.
  bool HasLiveEdge(int from, int to) const;
  /// Applies one scheduled churn event: restarts/notifies nodes, edits the
  /// live adjacency, invalidates routing tables, reports to the observer.
  void ApplyChurnEvent(const ChurnSchedule::Event& ev);
  /// Bumps `node`'s restart generation (orphaning its pending timers) and
  /// invokes Node::OnRestart.
  void RestartNode(int node);
  /// Delivers OnNeighborChange(node, up) to every present live neighbor.
  void NotifyNeighbors(int node, bool up);
  /// Applies the fault plan's in-flight payload truncation to `msg` (no-op
  /// unless the plan enables it; draws from the fault RNG stream only then).
  void MaybeTruncate(Message* msg);
  /// One fan-out leg of a Broadcast (heap path): identical charging/fault/
  /// delay logic to Send, but the delivery closure holds a reference to the
  /// shared payload instead of its own Message copy.  `msg_id` is the
  /// fan-out's shared causal message id (0 when untraced).
  void SendShared(int from, int to, const std::shared_ptr<const Message>& msg,
                  uint64_t msg_id);
  /// One fan-out leg of a Broadcast (arena path): `shared` is the arena
  /// payload every intact leg references; a truncated leg gets a private
  /// arena copy.  Charging/fault/delay logic mirrors Send exactly.
  void SendSharedArena(int from, int to, MessageArena::Slot* shared);
  /// Schedules the final delivery of `msg` (already charged and fault-
  /// cleared): an inline arena-backed POD event, or — with arena_messages
  /// off — the legacy heap-backed closure.  `msg_id` rides along so the
  /// delivery can report which traced message it completes.
  void ScheduleDelivery(double delay, int from, int to, Message&& msg,
                        uint64_t msg_id);
  /// Heap-path delivery body: emits the causal/deliver annotations and runs
  /// the handler, consuming ids in exactly the order the arena path does.
  void DeliverHeap(int from, int to, const Message& msg, uint64_t msg_id);
  /// Inline-event trampolines installed into the EventQueue.
  static void OnDeliveryEvent(void* ctx, int from, int to, void* payload);
  static void OnTimerEvent(void* ctx, int node, int timer_id, uint64_t aux);

  /// Next causal id.  Ids are dense from 1 and drawn only inside
  /// observer-attached branches, so untraced runs never touch the counter
  /// and traced same-seed runs draw identical id streams.  Purely
  /// observational: no simulation decision depends on an id.
  uint64_t NewCauseId() { return ++next_cause_id_; }

  Topology topology_;
  Config config_;
  EventQueue queue_;
  MessageArena arena_;
  Rng rng_;
  FaultInjector fault_;
  ChurnSchedule churn_;
  // Deployment adjacency with churn link changes applied; populated (and
  // consulted) only while churn is enabled.  Neighbor lists stay sorted
  // ascending, matching Topology::adjacency's contract.
  std::vector<std::vector<int>> live_adjacency_;
  // Per-node restart generation: bumped by RestartNode so timers set before
  // a restart are orphaned instead of firing on the new incarnation.
  std::vector<uint32_t> restart_gen_;
  uint64_t churn_drops_ = 0;
  // Causal-trace plumbing (all of it dormant without an observer).
  // `timer_cause_pool_` parks the arming handler's id for each in-flight
  // traced timer; the pool slot index (+1, 0 meaning "no parent") rides in
  // the high half of the timer event's aux word and is recycled when the
  // timer fires, is suppressed, or is orphaned by a restart generation
  // bump... the last of which cannot be detected at arm time, so orphaned
  // slots are reclaimed at fire time like every other.
  uint64_t next_cause_id_ = 0;
  std::vector<uint64_t> timer_cause_pool_;
  std::vector<uint32_t> free_timer_slots_;
  std::vector<std::unique_ptr<Node>> nodes_;
  MessageStats stats_;
  SimObserver* observer_ = nullptr;
  bool hit_event_cap_ = false;
  // Lazily built per-destination routing tables for SendRouted/HopDistance,
  // indexed by destination node id (built at most once per destination).
  std::vector<std::unique_ptr<RoutingTable>> routing_tables_;

  static bool default_arena_messages_;
};

}  // namespace elink

#endif  // ELINK_SIM_NETWORK_H_
