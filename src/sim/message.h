// Messages exchanged between simulated sensor nodes.
#ifndef ELINK_SIM_MESSAGE_H_
#define ELINK_SIM_MESSAGE_H_

#include <string>
#include <vector>

namespace elink {

/// \brief A protocol message.
///
/// `type` dispatches inside a protocol's message handler; `category` labels
/// the message for cost accounting (MessageStats) so experiments can break
/// down communication by expand/ack/phase/query/... as Section 8.2 does.
/// `doubles` carries feature coefficients or data values; `ints` carries ids
/// and levels.
struct Message {
  int type = 0;
  std::string category;
  std::vector<double> doubles;
  std::vector<long long> ints;

  // Reliable-transport envelope (sim/reliable.h).  rel_seq < 0 marks a plain
  // unacknowledged message; the fields ride along for free (paper Section 8.2
  // charges only data payload).
  long long rel_seq = -1;  // Sender-local sequence number.
  int rel_from = -1;       // Logical originator (routed acks go back here).
  bool rel_ack = false;    // True for the transport-level acknowledgment.

  /// Number of "paper messages" one hop of this message costs.  The paper
  /// charges one message per coefficient or data value (Section 8.2); id and
  /// level fields ride along for free.  Control messages with no payload
  /// still cost one message.
  int CostUnits() const {
    return doubles.empty() ? 1 : static_cast<int>(doubles.size());
  }
};

}  // namespace elink

#endif  // ELINK_SIM_MESSAGE_H_
