#include "sim/fault.h"

namespace elink {

namespace {
// Stream id for the injector's private RNG fork; any fixed constant works,
// it only has to differ from the forks other components use.
constexpr uint64_t kFaultStream = 0xFA17B0D5ULL;
}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t seed)
    : enabled_(plan.enabled()), plan_(plan), rng_(Rng(seed).Fork(kFaultStream)) {
  for (const auto& o : plan_.link_overrides) {
    override_p_[{o.from, o.to}] = o.drop_probability;
    if (!o.directed) override_p_[{o.to, o.from}] = o.drop_probability;
  }
  for (const auto& c : plan_.node_crashes) {
    crash_intervals_[c.node].emplace_back(c.crash_at, c.recover_at);
  }
}

bool FaultInjector::IsCrashed(int node, double now) const {
  auto it = crash_intervals_.find(node);
  if (it == crash_intervals_.end()) return false;
  for (const auto& [crash_at, recover_at] : it->second) {
    if (now >= crash_at && now < recover_at) return true;
  }
  return false;
}

bool FaultInjector::LinkDown(int from, int to, double now) const {
  for (const auto& o : plan_.link_outages) {
    const bool matches = (o.from == from && o.to == to) ||
                         (!o.directed && o.from == to && o.to == from);
    if (matches && now >= o.down_at && now < o.up_at) return true;
  }
  return false;
}

double FaultInjector::LinkDropProbability(int from, int to) const {
  auto it = override_p_.find({from, to});
  return it == override_p_.end() ? plan_.drop_probability : it->second;
}

bool FaultInjector::DropTransmission(int from, int to, double now) {
  if (LinkDown(from, to, now)) return true;
  const double p = LinkDropProbability(from, to);
  if (p <= 0.0) return false;
  return rng_.Bernoulli(p);
}

}  // namespace elink
