#include "sim/fault.h"

#include <algorithm>

namespace elink {

namespace {
// Stream id for the injector's private RNG fork; any fixed constant works,
// it only has to differ from the forks other components use.
constexpr uint64_t kFaultStream = 0xFA17B0D5ULL;
}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t seed)
    : enabled_(plan.enabled()), plan_(plan), rng_(Rng(seed).Fork(kFaultStream)) {
  // Later plan entries for the same directed link override earlier ones
  // (the std::map this replaces had last-writer-wins semantics).
  auto upsert = [this](int from, int to, double p) {
    for (LinkProb& lp : override_p_) {
      if (lp.from == from && lp.to == to) {
        lp.p = p;
        return;
      }
    }
    override_p_.push_back({from, to, p});
  };
  for (const auto& o : plan_.link_overrides) {
    upsert(o.from, o.to, o.drop_probability);
    if (!o.directed) upsert(o.to, o.from, o.drop_probability);
  }
  std::sort(override_p_.begin(), override_p_.end());

  for (const auto& c : plan_.node_crashes) {
    crash_intervals_.push_back({c.node, c.crash_at, c.recover_at});
  }
  // Stable: a node's intervals keep their plan order.
  std::stable_sort(
      crash_intervals_.begin(), crash_intervals_.end(),
      [](const CrashInterval& a, const CrashInterval& b) {
        return a.node < b.node;
      });
}

bool FaultInjector::IsCrashed(int node, double now) const {
  auto it = std::lower_bound(
      crash_intervals_.begin(), crash_intervals_.end(), node,
      [](const CrashInterval& c, int n) { return c.node < n; });
  for (; it != crash_intervals_.end() && it->node == node; ++it) {
    if (now >= it->crash_at && now < it->recover_at) return true;
  }
  return false;
}

bool FaultInjector::LinkDown(int from, int to, double now) const {
  for (const auto& o : plan_.link_outages) {
    const bool matches = (o.from == from && o.to == to) ||
                         (!o.directed && o.from == to && o.to == from);
    if (matches && now >= o.down_at && now < o.up_at) return true;
  }
  return false;
}

double FaultInjector::LinkDropProbability(int from, int to) const {
  const LinkProb key{from, to, 0.0};
  auto it = std::lower_bound(override_p_.begin(), override_p_.end(), key);
  if (it != override_p_.end() && it->from == from && it->to == to) {
    return it->p;
  }
  return plan_.drop_probability;
}

bool FaultInjector::TruncatePayload(size_t num_ints, size_t num_doubles,
                                    size_t* keep_ints, size_t* keep_doubles) {
  if (plan_.truncate_probability <= 0.0) return false;
  if (num_ints == 0 && num_doubles == 0) return false;  // Nothing to chop.
  if (!rng_.Bernoulli(plan_.truncate_probability)) return false;
  // UniformInt(n) is in [0, n), so any populated array genuinely shrinks.
  *keep_ints = num_ints == 0 ? 0 : static_cast<size_t>(rng_.UniformInt(num_ints));
  *keep_doubles =
      num_doubles == 0 ? 0 : static_cast<size_t>(rng_.UniformInt(num_doubles));
  return true;
}

bool FaultInjector::DropTransmission(int from, int to, double now) {
  if (LinkDown(from, to, now)) return true;
  const double p = LinkDropProbability(from, to);
  if (p <= 0.0) return false;
  return rng_.Bernoulli(p);
}

}  // namespace elink
