// Deterministic topology churn for the simulated network.
//
// A ChurnPlan describes, per run, how the deployment itself changes over
// time: nodes joining late, leaving for good, crashing and later being
// repaired, and radio links appearing or disappearing.  It complements
// FaultPlan (sim/fault.h), which models *message-level* misbehavior on a
// frozen topology; churn changes the topology the protocols run on.
//
// Semantics:
//  * NodeJoin   — the node is absent during [0, at) and present afterwards.
//    On join the node's protocol state is reset through Node::OnRestart.
//  * NodeLeave  — the node is present until `at` and absent forever after.
//  * NodeCrash  — absent during [crash_at, recover_at); a finite recover_at
//    is a *repair*: the node restarts with reset protocol state (OnRestart)
//    instead of silently resuming, and its live neighbors are notified.
//  * LinkChange — the (u, v) radio edge is added or removed at `at`.
//
// Unlike fault injection, churn evaluation consumes no randomness at all —
// plans are fully scheduled — so enabling churn never perturbs the delay,
// drop, or truncation RNG streams.  A default-constructed plan is inert:
// the Network skips the churn layer entirely and runs byte-identically to a
// build without it.
#ifndef ELINK_SIM_CHURN_H_
#define ELINK_SIM_CHURN_H_

#include <limits>
#include <vector>

namespace elink {

/// \brief Declarative description of the topology dynamics of one run.
struct ChurnPlan {
  /// The node is absent during [0, at); it joins (with fresh protocol
  /// state) at `at`.
  struct NodeJoin {
    int node = -1;
    double at = 0.0;
  };
  std::vector<NodeJoin> joins;

  /// The node departs permanently at `at`.
  struct NodeLeave {
    int node = -1;
    double at = 0.0;
  };
  std::vector<NodeLeave> leaves;

  /// The node is absent during [crash_at, recover_at).  A finite recover_at
  /// repairs the node: protocol state is reset via Node::OnRestart.  Omit
  /// recover_at for a permanent crash (equivalent to a leave, kept separate
  /// so plans read like their scenario).
  struct NodeCrash {
    int node = -1;
    double crash_at = 0.0;
    double recover_at = std::numeric_limits<double>::infinity();
  };
  std::vector<NodeCrash> crashes;

  /// The undirected (u, v) radio edge is added (`add`) or removed at `at`.
  struct LinkChange {
    int u = -1;
    int v = -1;
    double at = 0.0;
    bool add = false;
  };
  std::vector<LinkChange> link_changes;

  /// True when the plan can affect any run at all.
  bool enabled() const {
    return !joins.empty() || !leaves.empty() || !crashes.empty() ||
           !link_changes.empty();
  }
};

/// \brief Evaluates a ChurnPlan during a simulation run.
///
/// Two query surfaces: interval evaluation (IsAbsent, consulted on every
/// send/timer like FaultInjector::IsCrashed) and a deterministic, time-sorted
/// event timeline the Network schedules once at construction (neighbor
/// notifications, restarts, link edits, observer emissions).
class ChurnSchedule {
 public:
  struct Event {
    enum Kind { kJoin, kLeave, kCrash, kRepair, kLinkAdd, kLinkRemove };
    Kind kind = kJoin;
    double at = 0.0;
    int a = -1;  // The node (or link endpoint u).
    int b = -1;  // Link endpoint v; -1 for node events.
  };

  ChurnSchedule() = default;
  /// `num_nodes` bounds-checks the plan's node ids (dies on violations,
  /// exactly like a malformed FaultPlan would surface as a CHECK).
  ChurnSchedule(const ChurnPlan& plan, int num_nodes);

  /// False for an inert plan; callers skip all other queries then.
  bool enabled() const { return enabled_; }

  /// True when `node` is absent (not yet joined, left, or crashed) at `now`.
  bool IsAbsent(int node, double now) const;

  /// All plan events sorted by time (stable within one timestamp: joins,
  /// leaves, crashes, repairs, link changes in plan order).
  const std::vector<Event>& events() const { return events_; }

  /// "join", "leave", "crash", "repair", "link_add", "link_remove" — the
  /// spelling used by SimObserver::OnChurn and the telemetry counters.
  static const char* KindName(Event::Kind kind);

 private:
  /// One absence interval [from, to) of `node`; sorted by node (stable, so a
  /// node's intervals stay in plan order), mirroring FaultInjector's layout.
  struct AbsenceInterval {
    int node;
    double from;
    double to;
  };

  bool enabled_ = false;
  std::vector<AbsenceInterval> absences_;
  std::vector<Event> events_;
};

}  // namespace elink

#endif  // ELINK_SIM_CHURN_H_
