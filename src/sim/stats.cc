#include "sim/stats.h"

#include <algorithm>

#include "common/strings.h"

namespace elink {

MessageStats::CategoryId MessageStats::Intern(const std::string& category) {
  auto [it, inserted] =
      index_.emplace(category, static_cast<CategoryId>(names_.size()));
  if (inserted) {
    names_.push_back(category);
    counters_.emplace_back();
  }
  return it->second;
}

const MessageStats::Counters* MessageStats::Find(
    const std::string& category) const {
  auto it = index_.find(category);
  return it == index_.end() ? nullptr : &counters_[it->second];
}

void MessageStats::Record(const std::string& category, int units,
                          uint64_t bytes) {
  total_sends_ += 1;
  total_units_ += static_cast<uint64_t>(units);
  total_bytes_ += bytes;
  Counters& c = counters_[Intern(category)];
  c.units += static_cast<uint64_t>(units);
  c.sends += 1;
  c.bytes += bytes;
  views_dirty_ = true;
}

void MessageStats::RecordDropped(const std::string& category, int units,
                                 uint64_t bytes) {
  dropped_sends_ += 1;
  dropped_units_ += static_cast<uint64_t>(units);
  dropped_bytes_ += bytes;
  Counters& c = counters_[Intern(category)];
  c.dropped_units += static_cast<uint64_t>(units);
  c.dropped_sends += 1;
  c.dropped_bytes += bytes;
  views_dirty_ = true;
}

void MessageStats::RecordDecodeError(const std::string& category) {
  decode_errors_ += 1;
  counters_[Intern(category)].decode_errors += 1;
  views_dirty_ = true;
}

uint64_t MessageStats::decode_errors(const std::string& category) const {
  const Counters* c = Find(category);
  return c == nullptr ? 0 : c->decode_errors;
}

uint64_t MessageStats::units(const std::string& category) const {
  const Counters* c = Find(category);
  return c == nullptr ? 0 : c->units;
}

uint64_t MessageStats::sends(const std::string& category) const {
  const Counters* c = Find(category);
  return c == nullptr ? 0 : c->sends;
}

uint64_t MessageStats::dropped(const std::string& category) const {
  const Counters* c = Find(category);
  return c == nullptr ? 0 : c->dropped_units;
}

uint64_t MessageStats::bytes(const std::string& category) const {
  const Counters* c = Find(category);
  return c == nullptr ? 0 : c->bytes;
}

uint64_t MessageStats::dropped_sends(const std::string& category) const {
  const Counters* c = Find(category);
  return c == nullptr ? 0 : c->dropped_sends;
}

std::vector<MessageStats::CategorySnapshot> MessageStats::Snapshot() const {
  std::vector<CategorySnapshot> out;
  out.reserve(names_.size());
  for (size_t id = 0; id < names_.size(); ++id) {
    const Counters& c = counters_[id];
    if (c.sends == 0 && c.dropped_sends == 0 && c.decode_errors == 0) {
      continue;
    }
    out.push_back(CategorySnapshot{names_[id], c.units, c.sends, c.bytes,
                                   c.dropped_units, c.dropped_sends,
                                   c.dropped_bytes, c.decode_errors});
  }
  std::sort(out.begin(), out.end(),
            [](const CategorySnapshot& a, const CategorySnapshot& b) {
              return a.category < b.category;
            });
  return out;
}

const std::map<std::string, uint64_t>& MessageStats::units_by_category()
    const {
  if (views_dirty_) {
    units_view_.clear();
    dropped_view_.clear();
    for (size_t id = 0; id < names_.size(); ++id) {
      if (counters_[id].sends > 0) units_view_[names_[id]] = counters_[id].units;
      if (counters_[id].dropped_sends > 0) {
        dropped_view_[names_[id]] = counters_[id].dropped_units;
      }
    }
    views_dirty_ = false;
  }
  return units_view_;
}

const std::map<std::string, uint64_t>& MessageStats::dropped_by_category()
    const {
  units_by_category();  // Rebuilds both views when dirty.
  return dropped_view_;
}

void MessageStats::Reset() {
  total_sends_ = 0;
  total_units_ = 0;
  total_bytes_ = 0;
  dropped_sends_ = 0;
  dropped_units_ = 0;
  dropped_bytes_ = 0;
  decode_errors_ = 0;
  // The intern table survives a Reset (categories recur across runs); only
  // the counters are zeroed, so nothing is "recorded" afterwards.
  for (Counters& c : counters_) c = Counters{};
  units_view_.clear();
  dropped_view_.clear();
  views_dirty_ = false;
}

void MessageStats::Merge(const MessageStats& other) {
  total_sends_ += other.total_sends_;
  total_units_ += other.total_units_;
  total_bytes_ += other.total_bytes_;
  dropped_sends_ += other.dropped_sends_;
  dropped_units_ += other.dropped_units_;
  dropped_bytes_ += other.dropped_bytes_;
  decode_errors_ += other.decode_errors_;
  for (size_t id = 0; id < other.names_.size(); ++id) {
    const Counters& oc = other.counters_[id];
    if (oc.sends == 0 && oc.dropped_sends == 0 && oc.decode_errors == 0) {
      continue;
    }
    Counters& c = counters_[Intern(other.names_[id])];
    c.units += oc.units;
    c.sends += oc.sends;
    c.bytes += oc.bytes;
    c.dropped_units += oc.dropped_units;
    c.dropped_sends += oc.dropped_sends;
    c.dropped_bytes += oc.dropped_bytes;
    c.decode_errors += oc.decode_errors;
  }
  views_dirty_ = true;
}

std::string MessageStats::ToString() const {
  std::string out = StringPrintf("sends=%llu units=%llu",
                                 static_cast<unsigned long long>(total_sends_),
                                 static_cast<unsigned long long>(total_units_));
  const auto& by_units = units_by_category();
  if (!by_units.empty()) {
    out += " (";
    bool first = true;
    for (const auto& [k, v] : by_units) {
      if (!first) out += ", ";
      first = false;
      out += k + "=" + StringPrintf("%llu", static_cast<unsigned long long>(v));
    }
    out += ")";
  }
  // Fault-free runs render exactly as before; losses append a suffix.
  if (dropped_sends_ > 0) {
    out += StringPrintf(" dropped=%llu/%llu",
                        static_cast<unsigned long long>(dropped_sends_),
                        static_cast<unsigned long long>(dropped_units_));
  }
  if (decode_errors_ > 0) {
    out += StringPrintf(" decode_errors=%llu",
                        static_cast<unsigned long long>(decode_errors_));
  }
  return out;
}

}  // namespace elink
