#include "sim/stats.h"

#include "common/strings.h"

namespace elink {

void MessageStats::Record(const std::string& category, int units) {
  total_sends_ += 1;
  total_units_ += static_cast<uint64_t>(units);
  units_by_category_[category] += static_cast<uint64_t>(units);
  sends_by_category_[category] += 1;
}

void MessageStats::RecordDropped(const std::string& category, int units) {
  dropped_sends_ += 1;
  dropped_units_ += static_cast<uint64_t>(units);
  dropped_by_category_[category] += static_cast<uint64_t>(units);
}

uint64_t MessageStats::dropped(const std::string& category) const {
  auto it = dropped_by_category_.find(category);
  return it == dropped_by_category_.end() ? 0 : it->second;
}

uint64_t MessageStats::units(const std::string& category) const {
  auto it = units_by_category_.find(category);
  return it == units_by_category_.end() ? 0 : it->second;
}

uint64_t MessageStats::sends(const std::string& category) const {
  auto it = sends_by_category_.find(category);
  return it == sends_by_category_.end() ? 0 : it->second;
}

void MessageStats::Reset() {
  total_sends_ = 0;
  total_units_ = 0;
  dropped_sends_ = 0;
  dropped_units_ = 0;
  units_by_category_.clear();
  sends_by_category_.clear();
  dropped_by_category_.clear();
}

void MessageStats::Merge(const MessageStats& other) {
  total_sends_ += other.total_sends_;
  total_units_ += other.total_units_;
  for (const auto& [k, v] : other.units_by_category_) {
    units_by_category_[k] += v;
  }
  for (const auto& [k, v] : other.sends_by_category_) {
    sends_by_category_[k] += v;
  }
  dropped_sends_ += other.dropped_sends_;
  dropped_units_ += other.dropped_units_;
  for (const auto& [k, v] : other.dropped_by_category_) {
    dropped_by_category_[k] += v;
  }
}

std::string MessageStats::ToString() const {
  std::string out = StringPrintf("sends=%llu units=%llu",
                                 static_cast<unsigned long long>(total_sends_),
                                 static_cast<unsigned long long>(total_units_));
  if (!units_by_category_.empty()) {
    out += " (";
    bool first = true;
    for (const auto& [k, v] : units_by_category_) {
      if (!first) out += ", ";
      first = false;
      out += k + "=" + StringPrintf("%llu", static_cast<unsigned long long>(v));
    }
    out += ")";
  }
  // Fault-free runs render exactly as before; losses append a suffix.
  if (dropped_sends_ > 0) {
    out += StringPrintf(" dropped=%llu/%llu",
                        static_cast<unsigned long long>(dropped_sends_),
                        static_cast<unsigned long long>(dropped_units_));
  }
  return out;
}

}  // namespace elink
