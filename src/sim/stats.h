// Communication accounting (paper Section 8.2).
//
// Every single-hop transmission is tallied here, both as a raw send count and
// as "units" (one per coefficient/data value carried, the paper's definition
// of a message), broken down by protocol category.
//
// Hot-path layout: category strings are interned into dense CategoryIds at
// first use (one hash lookup per Record instead of a std::map string-compare
// walk) and all counters live in flat vectors indexed by id.  The
// string-keyed accessors keep their original signatures; the by-category
// map views are materialized lazily on read and cached until the next write.
// MessageStats is not thread-safe; parallel trial runners keep one ledger
// per worker and Merge them afterwards.
#ifndef ELINK_SIM_STATS_H_
#define ELINK_SIM_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace elink {

/// \brief Ledger of message costs by category.
class MessageStats {
 public:
  /// Records one single-hop transmission of `units` payload units under
  /// `category`.  `bytes` is the encoded frame length on the air
  /// (wire::FrameSize); callers accounting outside the Network pass 0 —
  /// the byte columns then simply report "never framed".
  void Record(const std::string& category, int units, uint64_t bytes = 0);

  /// Records one transmission of `units` under `category` that was lost to
  /// fault injection (link loss, outage, or a crashed endpoint).  Dropped
  /// sends are tallied separately and never enter the delivered totals.
  void RecordDropped(const std::string& category, int units,
                     uint64_t bytes = 0);

  /// Records one delivered message that the receiving protocol could not
  /// decode (truncated or malformed payload).  Decode failures are a
  /// protocol-level error, tallied separately from sends/units; the message
  /// was already charged at send time.
  void RecordDecodeError(const std::string& category);

  /// Raw transmissions (sends over one hop).
  uint64_t total_sends() const { return total_sends_; }

  /// Paper-style message units (coefficients/data values, >= sends).
  uint64_t total_units() const { return total_units_; }

  /// Real bytes-on-wire of all delivered transmissions (frame encoding of
  /// every charged hop; 0 contributions from out-of-network bookkeeping).
  uint64_t total_bytes() const { return total_bytes_; }

  /// Bytes-on-wire lost to fault injection.
  uint64_t dropped_bytes() const { return dropped_bytes_; }

  /// Units recorded under one category (0 when absent).
  uint64_t units(const std::string& category) const;

  /// Sends recorded under one category (0 when absent).
  uint64_t sends(const std::string& category) const;

  /// Bytes-on-wire recorded under one category (0 when absent).
  uint64_t bytes(const std::string& category) const;

  /// Dropped sends recorded under one category (0 when absent).
  uint64_t dropped_sends(const std::string& category) const;

  /// All categories and their unit counts (materialized view, valid until
  /// the next mutation).
  const std::map<std::string, uint64_t>& units_by_category() const;

  /// Transmissions lost to fault injection (not counted in total_sends()).
  uint64_t dropped_sends() const { return dropped_sends_; }

  /// Units lost to fault injection (not counted in total_units()).
  uint64_t dropped_units() const { return dropped_units_; }

  /// Delivered messages the receiving protocol rejected as undecodable.
  uint64_t decode_errors() const { return decode_errors_; }

  /// Decode errors recorded under one category (0 when absent).
  uint64_t decode_errors(const std::string& category) const;

  /// Dropped units recorded under one category (0 when absent).
  uint64_t dropped(const std::string& category) const;

  /// All categories with losses and their dropped unit counts (materialized
  /// view, valid until the next mutation).
  const std::map<std::string, uint64_t>& dropped_by_category() const;

  /// Zeroes all counters.
  void Reset();

  /// Adds another ledger into this one.
  void Merge(const MessageStats& other);

  /// One-line rendering "total=... (cat1=..., cat2=...)".  Byte counters are
  /// deliberately not rendered: the determinism goldens pin this string.
  std::string ToString() const;

  /// Full per-category counter dump, sorted by category name — the
  /// serialization/reporting view (snapshot sections, bench byte columns).
  struct CategorySnapshot {
    std::string category;
    uint64_t units = 0;
    uint64_t sends = 0;
    uint64_t bytes = 0;
    uint64_t dropped_units = 0;
    uint64_t dropped_sends = 0;
    uint64_t dropped_bytes = 0;
    uint64_t decode_errors = 0;
  };
  std::vector<CategorySnapshot> Snapshot() const;

 private:
  /// Dense id of an interned category name.
  using CategoryId = uint32_t;

  /// Per-category counters, indexed by CategoryId.  A category appears in
  /// the delivered (resp. dropped) map view iff its sends (resp.
  /// dropped_sends) counter is non-zero — Record always bumps sends by one,
  /// so that is exactly "Record was called", matching the old map behavior.
  struct Counters {
    uint64_t units = 0;
    uint64_t sends = 0;
    uint64_t bytes = 0;
    uint64_t dropped_units = 0;
    uint64_t dropped_sends = 0;
    uint64_t dropped_bytes = 0;
    uint64_t decode_errors = 0;
  };

  /// Returns the id for `category`, interning it on first use.
  CategoryId Intern(const std::string& category);

  /// Returns the counters for `category`, or nullptr when never seen.
  const Counters* Find(const std::string& category) const;

  uint64_t total_sends_ = 0;
  uint64_t total_units_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t dropped_sends_ = 0;
  uint64_t dropped_units_ = 0;
  uint64_t dropped_bytes_ = 0;
  uint64_t decode_errors_ = 0;

  std::vector<std::string> names_;   // CategoryId -> name.
  std::vector<Counters> counters_;   // CategoryId -> flat counters.
  std::unordered_map<std::string, CategoryId> index_;

  // Lazily rebuilt map views behind the by-category accessors.
  mutable std::map<std::string, uint64_t> units_view_;
  mutable std::map<std::string, uint64_t> dropped_view_;
  mutable bool views_dirty_ = false;
};

}  // namespace elink

#endif  // ELINK_SIM_STATS_H_
