// Communication accounting (paper Section 8.2).
//
// Every single-hop transmission is tallied here, both as a raw send count and
// as "units" (one per coefficient/data value carried, the paper's definition
// of a message), broken down by protocol category.
#ifndef ELINK_SIM_STATS_H_
#define ELINK_SIM_STATS_H_

#include <cstdint>
#include <map>
#include <string>

namespace elink {

/// \brief Ledger of message costs by category.
class MessageStats {
 public:
  /// Records one single-hop transmission of `units` payload units under
  /// `category`.
  void Record(const std::string& category, int units);

  /// Records one transmission of `units` under `category` that was lost to
  /// fault injection (link loss, outage, or a crashed endpoint).  Dropped
  /// sends are tallied separately and never enter the delivered totals.
  void RecordDropped(const std::string& category, int units);

  /// Raw transmissions (sends over one hop).
  uint64_t total_sends() const { return total_sends_; }

  /// Paper-style message units (coefficients/data values, >= sends).
  uint64_t total_units() const { return total_units_; }

  /// Units recorded under one category (0 when absent).
  uint64_t units(const std::string& category) const;

  /// Sends recorded under one category (0 when absent).
  uint64_t sends(const std::string& category) const;

  /// All categories and their unit counts.
  const std::map<std::string, uint64_t>& units_by_category() const {
    return units_by_category_;
  }

  /// Transmissions lost to fault injection (not counted in total_sends()).
  uint64_t dropped_sends() const { return dropped_sends_; }

  /// Units lost to fault injection (not counted in total_units()).
  uint64_t dropped_units() const { return dropped_units_; }

  /// Dropped units recorded under one category (0 when absent).
  uint64_t dropped(const std::string& category) const;

  /// All categories with losses and their dropped unit counts.
  const std::map<std::string, uint64_t>& dropped_by_category() const {
    return dropped_by_category_;
  }

  /// Zeroes all counters.
  void Reset();

  /// Adds another ledger into this one.
  void Merge(const MessageStats& other);

  /// One-line rendering "total=... (cat1=..., cat2=...)".
  std::string ToString() const;

 private:
  uint64_t total_sends_ = 0;
  uint64_t total_units_ = 0;
  uint64_t dropped_sends_ = 0;
  uint64_t dropped_units_ = 0;
  std::map<std::string, uint64_t> units_by_category_;
  std::map<std::string, uint64_t> sends_by_category_;
  std::map<std::string, uint64_t> dropped_by_category_;
};

}  // namespace elink

#endif  // ELINK_SIM_STATS_H_
