// Slab arena for in-flight message payloads.
//
// Every Network transmission used to park its payload either inside a
// heap-allocated delivery closure (unicast: the captured Message pushed the
// closure past the event queue's inline buffer) or behind a
// shared_ptr<const Message> control block (broadcast fan-out).  That is one
// or two heap round-trips per send on the hottest path in the simulator.
//
// MessageArena replaces both: payloads are placement-constructed into
// bump-pointer slabs and handed around as raw Slot pointers with an
// intrusive reference count — one count per scheduled delivery, exactly the
// shared-immutable-payload semantics Broadcast already promised.  The last
// delivery (or drop) of a payload destroys it; a slab whose payloads are all
// dead is recycled wholesale (epoch-style: no per-slot free list, the bump
// pointer simply rewinds when the slab's live count reaches zero).  In the
// steady state of a run, allocation is a pointer bump and reclamation is a
// decrement — the heap is only touched when the in-flight high-water mark
// grows past all existing slabs.
//
// Not thread-safe by design: an arena belongs to one Network, which is
// single-threaded per trial (parallel trial runners hold one Network — and
// so one arena — per worker).
#ifndef ELINK_SIM_MSG_ARENA_H_
#define ELINK_SIM_MSG_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/message.h"

namespace elink {

/// \brief Bump-pointer slab allocator for refcounted immutable messages.
class MessageArena {
 public:
  /// One arena-resident payload.  `msg` is immutable after Create; `refs`
  /// counts scheduled deliveries plus the creator's transient reference.
  /// `msg_id` is the causal-trace message id (0 when no observer is
  /// attached); the Network stamps it after Create so every delivery of a
  /// shared payload reports the same id.
  struct Slot {
    Message msg;
    uint32_t refs;
    uint32_t slab;
    uint64_t msg_id;
  };

  MessageArena() = default;
  MessageArena(const MessageArena&) = delete;
  MessageArena& operator=(const MessageArena&) = delete;

  /// Destroys any payloads still in flight (e.g. events pending in a queue
  /// that was torn down mid-run).
  ~MessageArena();

  /// Moves `msg` into the arena; the returned slot starts with one
  /// reference owned by the caller.
  Slot* Create(Message&& msg);

  /// Adds a reference (one per additionally scheduled delivery).
  static void AddRef(Slot* slot) { ++slot->refs; }

  /// Drops one reference; the last release destroys the payload and, when
  /// it was its slab's final live payload, rewinds the slab for reuse.
  void Release(Slot* slot);

  /// Live payloads across all slabs.
  size_t live() const { return live_; }
  /// Slabs ever allocated from the heap.
  size_t slabs_allocated() const { return slabs_.size(); }
  /// Times a drained slab was rewound and handed back into bump service.
  uint64_t slab_recycles() const { return slab_recycles_; }

  /// Payload capacity of one slab.
  static constexpr size_t kSlotsPerSlab = 256;

 private:
  struct Slab {
    // Raw storage: slots are placement-constructed on Create and destroyed
    // on final Release (or by ~MessageArena for in-flight leftovers).
    std::unique_ptr<unsigned char[]> storage;
    uint32_t bump = 0;  // Slots handed out since the last rewind.
    uint32_t live = 0;  // Slots not yet fully released.
  };

  Slot* SlabSlot(Slab& slab, uint32_t i) {
    return reinterpret_cast<Slot*>(slab.storage.get() + i * sizeof(Slot));
  }

  /// Makes `active_` a slab with spare capacity (recycling a drained slab
  /// before allocating a fresh one).
  void EnsureActiveSlab();

  std::vector<Slab> slabs_;
  // One byte per slot across all slabs: 1 while the slot holds a constructed
  // payload.  Only the destructor reads it (to tear down in-flight
  // leftovers); Create/Release keep it current with one byte store each.
  std::vector<uint8_t> live_mask_;
  std::vector<uint32_t> drained_;  // Fully-released slabs awaiting reuse.
  size_t active_ = 0;
  size_t live_ = 0;
  uint64_t slab_recycles_ = 0;
};

}  // namespace elink

#endif  // ELINK_SIM_MSG_ARENA_H_
