#include "sim/graph.h"

#include <algorithm>
#include <deque>

namespace elink {

std::vector<int> HopDistancesFrom(const AdjacencyList& adj, int src) {
  std::vector<int> dist(adj.size(), -1);
  std::deque<int> queue;
  dist[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int v : adj[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<int> BfsTreeParents(const AdjacencyList& adj, int src) {
  std::vector<int> parent(adj.size(), -1);
  std::deque<int> queue;
  parent[src] = src;
  queue.push_back(src);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int v : adj[u]) {
      if (parent[v] < 0) {
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  return parent;
}

bool IsConnected(const AdjacencyList& adj) {
  if (adj.empty()) return true;
  const std::vector<int> dist = HopDistancesFrom(adj, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](int d) { return d < 0; });
}

std::vector<int> ConnectedComponents(const AdjacencyList& adj) {
  std::vector<int> comp(adj.size(), -1);
  int next = 0;
  for (size_t start = 0; start < adj.size(); ++start) {
    if (comp[start] >= 0) continue;
    const int id = next++;
    std::deque<int> queue{static_cast<int>(start)};
    comp[start] = id;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (int v : adj[u]) {
        if (comp[v] < 0) {
          comp[v] = id;
          queue.push_back(v);
        }
      }
    }
  }
  return comp;
}

std::vector<int> InducedComponents(const AdjacencyList& adj,
                                   const std::vector<char>& members) {
  std::vector<int> comp(adj.size(), -1);
  int next = 0;
  for (size_t start = 0; start < adj.size(); ++start) {
    if (!members[start] || comp[start] >= 0) continue;
    const int id = next++;
    std::deque<int> queue{static_cast<int>(start)};
    comp[start] = id;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (int v : adj[u]) {
        if (members[v] && comp[v] < 0) {
          comp[v] = id;
          queue.push_back(v);
        }
      }
    }
  }
  return comp;
}

bool IsInducedConnected(const AdjacencyList& adj,
                        const std::vector<char>& members) {
  const std::vector<int> comp = InducedComponents(adj, members);
  int max_comp = -1;
  for (size_t i = 0; i < adj.size(); ++i) {
    if (members[i]) max_comp = std::max(max_comp, comp[i]);
  }
  return max_comp <= 0;
}

std::vector<int> ShortestHopPath(const AdjacencyList& adj, int src, int dst) {
  const std::vector<int> parent = BfsTreeParents(adj, src);
  if (parent[dst] < 0) return {};
  std::vector<int> path;
  for (int cur = dst; cur != src; cur = parent[cur]) path.push_back(cur);
  path.push_back(src);
  std::reverse(path.begin(), path.end());
  return path;
}

RoutingTable::RoutingTable(const AdjacencyList& adj, int root)
    : root_(root),
      dist_(HopDistancesFrom(adj, root)),
      parent_(BfsTreeParents(adj, root)) {
  parent_[root] = -1;
  for (size_t i = 0; i < adj.size(); ++i) {
    if (dist_[i] < 0) parent_[i] = -1;
  }
}

}  // namespace elink
