#include "sim/topology.h"

#include <algorithm>
#include <cmath>

#include "sim/graph.h"

namespace elink {

bool Topology::HasEdge(int u, int v) const {
  const auto& nb = adjacency[u];
  return std::binary_search(nb.begin(), nb.end(), v);
}

int Topology::num_edges() const {
  size_t twice = 0;
  for (const auto& nb : adjacency) twice += nb.size();
  return static_cast<int>(twice / 2);
}

double Topology::average_degree() const {
  if (positions.empty()) return 0.0;
  return 2.0 * num_edges() / static_cast<double>(positions.size());
}

int Topology::max_degree() const {
  size_t d = 0;
  for (const auto& nb : adjacency) d = std::max(d, nb.size());
  return static_cast<int>(d);
}

Topology MakeGridTopology(int rows, int cols, double spacing) {
  ELINK_CHECK(rows > 0 && cols > 0 && spacing > 0);
  Topology t;
  t.width = (cols - 1) * spacing;
  t.height = (rows - 1) * spacing;
  t.positions.resize(static_cast<size_t>(rows) * cols);
  t.adjacency.resize(t.positions.size());
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int id = r * cols + c;
      t.positions[id] = {c * spacing, r * spacing};
      if (r > 0) t.adjacency[id].push_back(id - cols);
      if (c > 0) t.adjacency[id].push_back(id - 1);
      if (c + 1 < cols) t.adjacency[id].push_back(id + 1);
      if (r + 1 < rows) t.adjacency[id].push_back(id + cols);
    }
  }
  for (auto& nb : t.adjacency) std::sort(nb.begin(), nb.end());
  return t;
}

namespace {

// Builds unit-disk adjacency for the given positions and range.
void BuildDiskAdjacency(Topology* t, double range) {
  const int n = t->num_nodes();
  t->adjacency.assign(n, {});
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (EuclideanDistance(t->positions[i], t->positions[j]) <= range) {
        t->adjacency[i].push_back(j);
        t->adjacency[j].push_back(i);
      }
    }
  }
  for (auto& nb : t->adjacency) std::sort(nb.begin(), nb.end());
}

}  // namespace

Result<Topology> MakeRandomTopology(int n, double side, double radio_range,
                                    Rng* rng, bool force_connectivity) {
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  if (side <= 0 || radio_range <= 0) {
    return Status::InvalidArgument("side and radio_range must be positive");
  }
  ELINK_CHECK(rng != nullptr);
  Topology t;
  t.width = side;
  t.height = side;
  t.positions.resize(n);
  for (auto& p : t.positions) {
    p = {rng->Uniform(0, side), rng->Uniform(0, side)};
  }
  double range = radio_range;
  BuildDiskAdjacency(&t, range);
  if (force_connectivity) {
    // Grow the range until the unit-disk graph is connected.  The diagonal
    // of the region is a hard upper bound, so this always terminates.
    const double max_range = std::sqrt(2.0) * side + 1.0;
    while (!IsConnected(t.adjacency) && range < max_range) {
      range *= 1.1;
      BuildDiskAdjacency(&t, range);
    }
    if (!IsConnected(t.adjacency)) {
      return Status::Internal("failed to connect random topology");
    }
  }
  return t;
}

Result<Topology> MakeRandomTopologyWithDegree(int n, double density,
                                              double target_avg_degree,
                                              Rng* rng) {
  if (density <= 0 || target_avg_degree <= 0) {
    return Status::InvalidArgument("density and degree must be positive");
  }
  const double side = std::sqrt(n / density);
  // For a Poisson process of intensity `density`, the expected number of
  // neighbors within radius r is density * pi * r^2; invert for r.
  const double range =
      std::sqrt(target_avg_degree / (density * M_PI));
  return MakeRandomTopology(n, side, range, rng, /*force_connectivity=*/true);
}

}  // namespace elink
