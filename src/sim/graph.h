// Graph utilities over adjacency lists: BFS distances/trees, connectivity,
// connected components (optionally restricted to a node subset), and
// multi-hop route extraction.  Shared by the clustering algorithms, the
// index/query layer, and the cost accounting of the baselines.
#ifndef ELINK_SIM_GRAPH_H_
#define ELINK_SIM_GRAPH_H_

#include <vector>

#include "common/status.h"

namespace elink {

using AdjacencyList = std::vector<std::vector<int>>;

/// Hop distances from `src` to every node; unreachable nodes get -1.
std::vector<int> HopDistancesFrom(const AdjacencyList& adj, int src);

/// BFS tree parents rooted at `src`: parent[src] = src, unreachable = -1.
std::vector<int> BfsTreeParents(const AdjacencyList& adj, int src);

/// True when the whole graph is connected (empty graphs count as connected).
bool IsConnected(const AdjacencyList& adj);

/// Connected components over the full node set; returns component id per
/// node, ids are dense starting at 0 in discovery order.
std::vector<int> ConnectedComponents(const AdjacencyList& adj);

/// Connected components of the subgraph induced by `members` (a 0/1 mask of
/// size adj.size()).  Nodes outside the mask get component -1.
std::vector<int> InducedComponents(const AdjacencyList& adj,
                                   const std::vector<char>& members);

/// True when the subgraph induced by the masked nodes is connected (an empty
/// mask counts as connected).
bool IsInducedConnected(const AdjacencyList& adj,
                        const std::vector<char>& members);

/// Shortest hop path from `src` to `dst` (inclusive of both endpoints);
/// empty when unreachable.
std::vector<int> ShortestHopPath(const AdjacencyList& adj, int src, int dst);

/// \brief Precomputed single-source BFS answers for repeated routing to/from
/// one node (e.g. the base station of the centralized baseline).
class RoutingTable {
 public:
  RoutingTable(const AdjacencyList& adj, int root);

  int root() const { return root_; }
  /// Hop distance from `node` to the root (-1 when unreachable).
  int HopsToRoot(int node) const { return dist_[node]; }
  /// Next hop from `node` towards the root (-1 at the root / unreachable).
  int NextHopToRoot(int node) const { return parent_[node]; }

 private:
  int root_;
  std::vector<int> dist_;
  std::vector<int> parent_;
};

}  // namespace elink

#endif  // ELINK_SIM_GRAPH_H_
