#include "sim/network.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "proto/wire.h"

namespace elink {

bool Network::default_arena_messages_ = true;

namespace {

// The armed-checkpoint slot lives behind this out-of-line accessor: a
// class-static thread_local inlined into other translation units goes
// through GCC's TLS wrapper, which UBSan flags as a null-pointer store.
Network::RunCheckpoint*& CheckpointSlot() {
  static thread_local Network::RunCheckpoint* slot = nullptr;
  return slot;
}

}  // namespace

void Network::ArmCheckpoint(RunCheckpoint* cp) { CheckpointSlot() = cp; }
Network::RunCheckpoint* Network::armed_checkpoint() { return CheckpointSlot(); }

namespace {

// Real bytes one hop of `msg` occupies on the air.  wire.h is a leaf header
// (message + status only), so charging actual frame lengths here does not
// create a sim <-> proto link cycle.
inline uint64_t FrameBytes(const Message& msg) {
  return static_cast<uint64_t>(wire::FrameSize(msg));
}

}  // namespace

Network::Network(Topology topology, Config config)
    : topology_(std::move(topology)),
      config_(std::move(config)),
      rng_(config_.seed),
      fault_(config_.fault, config_.seed),
      churn_(config_.churn, topology_.num_nodes()),
      restart_gen_(topology_.num_nodes(), 0),
      nodes_(topology_.num_nodes()),
      routing_tables_(topology_.num_nodes()) {
  ELINK_CHECK(config_.async_delay_min > 0.0);
  ELINK_CHECK(config_.async_delay_max >= config_.async_delay_min);
  queue_.SetInlineHandlers(&Network::OnDeliveryEvent, &Network::OnTimerEvent,
                           this);
  if (churn_.enabled()) {
    live_adjacency_ = topology_.adjacency;
    // The whole plan is scheduled up front; event callbacks draw no
    // randomness, so enabling churn perturbs no RNG stream.
    for (const ChurnSchedule::Event& ev : churn_.events()) {
      queue_.ScheduleAfter(ev.at, [this, ev]() { ApplyChurnEvent(ev); });
    }
    // Neighbors of a late joiner see it down from the start; scheduled at
    // t=0 (before any protocol event: the constructor runs first) rather
    // than called here because nodes are not installed yet.
    for (const ChurnSchedule::Event& ev : churn_.events()) {
      if (ev.kind == ChurnSchedule::Event::kJoin && ev.at > 0.0) {
        queue_.ScheduleAfter(
            0.0, [this, n = ev.a]() { NotifyNeighbors(n, /*up=*/false); });
      }
    }
  }
  if (fault_.enabled()) {
    // A fault-plan crash with a finite recover_at is a repair: the node
    // restarts with reset protocol state (and no stale pre-crash timers)
    // instead of silently resuming where it left off.  Unlike churn, the
    // repair is not announced to neighbors — fault-plan crashes stay
    // protocol-invisible.
    for (const FaultPlan::NodeCrash& c : config_.fault.node_crashes) {
      if (c.recover_at < std::numeric_limits<double>::infinity()) {
        queue_.ScheduleAfter(c.recover_at,
                             [this, n = c.node]() { RestartNode(n); });
      }
    }
  }
}

bool Network::HasLiveEdge(int from, int to) const {
  const std::vector<int>& adj = live_adjacency_[from];
  return std::binary_search(adj.begin(), adj.end(), to);
}

void Network::RestartNode(int node) {
  ++restart_gen_[node];
  if (nodes_[node] != nullptr) nodes_[node]->OnRestart();
}

void Network::NotifyNeighbors(int node, bool up) {
  for (int nb : neighbors(node)) {
    if (churn_.IsAbsent(nb, Now())) continue;
    if (nodes_[nb] != nullptr) nodes_[nb]->OnNeighborChange(node, up);
  }
}

void Network::ApplyChurnEvent(const ChurnSchedule::Event& ev) {
  using Event = ChurnSchedule::Event;
  switch (ev.kind) {
    case Event::kJoin:
    case Event::kRepair:
      // The absence set changed, so cached routes (which must not relay
      // through absent nodes) are stale.
      for (std::unique_ptr<RoutingTable>& t : routing_tables_) t.reset();
      RestartNode(ev.a);
      NotifyNeighbors(ev.a, /*up=*/true);
      break;
    case Event::kLeave:
    case Event::kCrash:
      for (std::unique_ptr<RoutingTable>& t : routing_tables_) t.reset();
      NotifyNeighbors(ev.a, /*up=*/false);
      break;
    case Event::kLinkAdd:
    case Event::kLinkRemove: {
      const bool add = ev.kind == Event::kLinkAdd;
      auto edit = [add](std::vector<int>* adj, int other) {
        auto it = std::lower_bound(adj->begin(), adj->end(), other);
        if (add && (it == adj->end() || *it != other)) {
          adj->insert(it, other);
        } else if (!add && it != adj->end() && *it == other) {
          adj->erase(it);
        }
      };
      edit(&live_adjacency_[ev.a], ev.b);
      edit(&live_adjacency_[ev.b], ev.a);
      // Routed paths must not cross a removed edge (or miss a shortcut), so
      // every cached table is rebuilt on demand from the edited adjacency.
      for (std::unique_ptr<RoutingTable>& t : routing_tables_) t.reset();
      if (!churn_.IsAbsent(ev.a, Now()) && nodes_[ev.a] != nullptr) {
        nodes_[ev.a]->OnNeighborChange(ev.b, add);
      }
      if (!churn_.IsAbsent(ev.b, Now()) && nodes_[ev.b] != nullptr) {
        nodes_[ev.b]->OnNeighborChange(ev.a, add);
      }
      break;
    }
  }
  if (observer_ != nullptr) {
    observer_->OnChurn(Now(), ChurnSchedule::KindName(ev.kind), ev.a, ev.b);
  }
}

void Network::InstallNode(int id, std::unique_ptr<Node> node) {
  ELINK_CHECK(id >= 0 && id < num_nodes());
  ELINK_CHECK(node != nullptr);
  node->network_ = this;
  node->id_ = id;
  nodes_[id] = std::move(node);
  nodes_[id]->OnInstall();
}

void Network::InstallNodes(
    const std::function<std::unique_ptr<Node>(int)>& factory) {
  for (int id = 0; id < num_nodes(); ++id) InstallNode(id, factory(id));
}

double Network::NextHopDelay() {
  if (config_.synchronous) return 1.0;
  return rng_.Uniform(config_.async_delay_min, config_.async_delay_max);
}

void Network::MaybeTruncate(Message* msg) {
  size_t keep_ints = 0, keep_doubles = 0;
  if (fault_.truncates() &&
      fault_.TruncatePayload(msg->ints.size(), msg->doubles.size(), &keep_ints,
                             &keep_doubles)) {
    msg->ints.resize(keep_ints);
    msg->doubles.resize(keep_doubles);
  }
}

void Network::Send(int from, int to, Message msg) {
  // Under churn a protocol may legitimately address a link that no longer
  // (or does not yet) exist — that transmission is lost below, not a bug.
  ELINK_CHECK(topology_.HasEdge(from, to) ||
              (churn_.enabled() && HasLiveEdge(from, to)));
  ELINK_CHECK(nodes_[to] != nullptr);
  const double delay = NextHopDelay();
  // Truncation is decided first (the chopped frame is what is on the air, so
  // drop charges reflect it), then loss.  Each fault stream draw happens in
  // the same order here and in SendShared, keeping Broadcast bit-identical
  // to the N Sends it replaces.
  if (fault_.enabled()) MaybeTruncate(&msg);
  // All fault decisions are made at send time (the receiver's crash state is
  // evaluated at the arrival instant), so runs stay deterministic and the
  // drop is charged to the ledger exactly once.  The fault decision is
  // always evaluated first — churn is schedule-only and draws nothing, so
  // adding it cannot perturb the fault RNG stream.
  const bool fault_drop =
      fault_.enabled() && (fault_.IsCrashed(from, Now()) ||
                           fault_.DropTransmission(from, to, Now()) ||
                           fault_.IsCrashed(to, Now() + delay));
  const bool churn_drop =
      churn_.enabled() &&
      (churn_.IsAbsent(from, Now()) || churn_.IsAbsent(to, Now() + delay) ||
       !HasLiveEdge(from, to));
  if (fault_drop || churn_drop) {
    if (churn_drop) ++churn_drops_;
    stats_.RecordDropped(msg.category, msg.CostUnits(), FrameBytes(msg));
    if (observer_ != nullptr) {
      observer_->OnCausal({0, NewCauseId(), queue_.active_cause()});
      observer_->OnDrop(Now(), from, to, msg);
    }
    return;
  }
  stats_.Record(msg.category, msg.CostUnits(), FrameBytes(msg));
  uint64_t mid = 0;
  if (observer_ != nullptr) {
    mid = NewCauseId();
    observer_->OnCausal({0, mid, queue_.active_cause()});
    observer_->OnSend(Now(), from, to, msg, delay);
  }
  ScheduleDelivery(delay, from, to, std::move(msg), mid);
}

void Network::ScheduleDelivery(double delay, int from, int to, Message&& msg,
                               uint64_t msg_id) {
  if (config_.arena_messages) {
    MessageArena::Slot* slot = arena_.Create(std::move(msg));
    slot->msg_id = msg_id;
    queue_.ScheduleDeliveryAfter(delay, from, to, slot);
  } else {
    queue_.ScheduleAfter(delay, [this, from, to, msg_id,
                                 m = std::move(msg)]() {
      DeliverHeap(from, to, m, msg_id);
    });
  }
}

void Network::DeliverHeap(int from, int to, const Message& msg,
                          uint64_t msg_id) {
  if (observer_ != nullptr) {
    const uint64_t self = NewCauseId();
    queue_.set_active_cause(self);
    observer_->OnCausal({self, msg_id, 0});
    observer_->OnDeliver(Now(), from, to, msg);
  }
  nodes_[to]->HandleMessage(from, msg);
}

void Network::OnDeliveryEvent(void* ctx, int from, int to, void* payload) {
  Network* net = static_cast<Network*>(ctx);
  auto* slot = static_cast<MessageArena::Slot*>(payload);
  if (net->observer_ != nullptr) {
    const uint64_t self = net->NewCauseId();
    net->queue_.set_active_cause(self);
    net->observer_->OnCausal({self, slot->msg_id, 0});
    net->observer_->OnDeliver(net->Now(), from, to, slot->msg);
  }
  net->nodes_[to]->HandleMessage(from, slot->msg);
  net->arena_.Release(slot);
}

void Network::OnTimerEvent(void* ctx, int node, int timer_id, uint64_t aux) {
  Network* net = static_cast<Network*>(ctx);
  // Unpack the aux word: restart generation below, traced causal-parent
  // pool slot (+1; 0 = untraced or genesis) above.  The pool slot is
  // reclaimed on every fire outcome — including generation-orphaned and
  // crash/absence-suppressed timers — so the pool's occupancy tracks timers
  // actually in flight.
  const uint32_t gen = static_cast<uint32_t>(aux);
  const uint32_t cause_slot = static_cast<uint32_t>(aux >> 32);
  uint64_t parent = 0;
  if (cause_slot != 0) {
    parent = net->timer_cause_pool_[cause_slot - 1];
    net->free_timer_slots_.push_back(cause_slot - 1);
  }
  // Timers set before a restart (churn join/repair, or a fault-plan crash
  // recovery) belong to the previous incarnation and never fire — the
  // restart bumped the node's generation.  OnRestart re-arms whatever the
  // new incarnation needs.
  if (net->restart_gen_[node] != gen) return;
  // A crashed/absent node's timers are suppressed (it recovers with no
  // pending timers; protocols re-arm on recovery if they support it).
  const double now = net->queue_.Now();
  if (net->fault_.enabled() && net->fault_.IsCrashed(node, now)) return;
  if (net->churn_.enabled() && net->churn_.IsAbsent(node, now)) return;
  if (net->observer_ != nullptr) {
    const uint64_t self = net->NewCauseId();
    net->queue_.set_active_cause(self);
    net->observer_->OnCausal({self, 0, parent});
    net->observer_->OnTimerFire(now, node, timer_id);
  }
  net->nodes_[node]->HandleTimer(timer_id);
}

void Network::SendShared(int from, int to,
                         const std::shared_ptr<const Message>& msg,
                         uint64_t msg_id) {
  ELINK_CHECK(topology_.HasEdge(from, to) ||
              (churn_.enabled() && HasLiveEdge(from, to)));
  ELINK_CHECK(nodes_[to] != nullptr);
  // Mirrors Send exactly — same RNG draw order (delay first, then truncate,
  // then loss), same charging — so a Broadcast is bit-identical to the N
  // independent Sends it replaces.  A truncated leg falls back to a private
  // copy of the payload; intact legs keep sharing the immutable message.
  const double delay = NextHopDelay();
  Message chopped;
  const Message* wire = msg.get();
  size_t keep_ints = 0, keep_doubles = 0;
  if (fault_.enabled() && fault_.truncates() &&
      fault_.TruncatePayload(msg->ints.size(), msg->doubles.size(), &keep_ints,
                             &keep_doubles)) {
    chopped = *msg;
    chopped.ints.resize(keep_ints);
    chopped.doubles.resize(keep_doubles);
    wire = &chopped;
  }
  const bool fault_drop =
      fault_.enabled() && (fault_.IsCrashed(from, Now()) ||
                           fault_.DropTransmission(from, to, Now()) ||
                           fault_.IsCrashed(to, Now() + delay));
  const bool churn_drop =
      churn_.enabled() &&
      (churn_.IsAbsent(from, Now()) || churn_.IsAbsent(to, Now() + delay) ||
       !HasLiveEdge(from, to));
  if (fault_drop || churn_drop) {
    if (churn_drop) ++churn_drops_;
    stats_.RecordDropped(wire->category, wire->CostUnits(),
                         FrameBytes(*wire));
    if (observer_ != nullptr) {
      observer_->OnCausal({0, msg_id, queue_.active_cause()});
      observer_->OnDrop(Now(), from, to, *wire);
    }
    return;
  }
  stats_.Record(wire->category, wire->CostUnits(), FrameBytes(*wire));
  if (observer_ != nullptr) {
    observer_->OnCausal({0, msg_id, queue_.active_cause()});
    observer_->OnSend(Now(), from, to, *wire, delay);
  }
  if (wire == &chopped) {
    queue_.ScheduleAfter(delay, [this, from, to, msg_id,
                                 m = std::move(chopped)]() {
      DeliverHeap(from, to, m, msg_id);
    });
  } else {
    queue_.ScheduleAfter(delay, [this, from, to, msg, msg_id]() {
      DeliverHeap(from, to, *msg, msg_id);
    });
  }
}

void Network::SendSharedArena(int from, int to, MessageArena::Slot* shared) {
  ELINK_CHECK(topology_.HasEdge(from, to) ||
              (churn_.enabled() && HasLiveEdge(from, to)));
  ELINK_CHECK(nodes_[to] != nullptr);
  // Mirrors Send (and the heap-path SendShared) exactly — same RNG draw
  // order (delay first, then truncate, then loss), same charging — so a
  // Broadcast is bit-identical to the N independent Sends it replaces.  A
  // truncated leg gets a private arena copy of the payload; intact legs
  // reference the shared slot (one AddRef per scheduled delivery).
  const Message& msg = shared->msg;
  const double delay = NextHopDelay();
  Message chopped;
  const Message* wire = &msg;
  size_t keep_ints = 0, keep_doubles = 0;
  bool truncated = false;
  if (fault_.enabled() && fault_.truncates() &&
      fault_.TruncatePayload(msg.ints.size(), msg.doubles.size(), &keep_ints,
                             &keep_doubles)) {
    chopped = msg;
    chopped.ints.resize(keep_ints);
    chopped.doubles.resize(keep_doubles);
    wire = &chopped;
    truncated = true;
  }
  const bool fault_drop =
      fault_.enabled() && (fault_.IsCrashed(from, Now()) ||
                           fault_.DropTransmission(from, to, Now()) ||
                           fault_.IsCrashed(to, Now() + delay));
  const bool churn_drop =
      churn_.enabled() &&
      (churn_.IsAbsent(from, Now()) || churn_.IsAbsent(to, Now() + delay) ||
       !HasLiveEdge(from, to));
  if (fault_drop || churn_drop) {
    // The leg never schedules, so it takes no reference: a fan-out whose
    // legs all drop releases the payload when Broadcast drops its own ref.
    if (churn_drop) ++churn_drops_;
    stats_.RecordDropped(wire->category, wire->CostUnits(),
                         FrameBytes(*wire));
    if (observer_ != nullptr) {
      observer_->OnCausal({0, shared->msg_id, queue_.active_cause()});
      observer_->OnDrop(Now(), from, to, *wire);
    }
    return;
  }
  stats_.Record(wire->category, wire->CostUnits(), FrameBytes(*wire));
  if (observer_ != nullptr) {
    observer_->OnCausal({0, shared->msg_id, queue_.active_cause()});
    observer_->OnSend(Now(), from, to, *wire, delay);
  }
  if (truncated) {
    // The truncated leg's private payload is still the same logical
    // transmission, so it keeps the fan-out's message id — the (id, to)
    // pair stays unique across legs either way.
    MessageArena::Slot* priv = arena_.Create(std::move(chopped));
    priv->msg_id = shared->msg_id;
    queue_.ScheduleDeliveryAfter(delay, from, to, priv);
  } else {
    MessageArena::AddRef(shared);
    queue_.ScheduleDeliveryAfter(delay, from, to, shared);
  }
}

void Network::Broadcast(int from, Message msg) {
  const std::vector<int>& nbrs = neighbors(from);
  if (nbrs.empty()) return;
  // One immutable payload shared by every fan-out leg; receivers get a
  // const& into it, so nothing is copied per neighbor.
  if (config_.arena_messages) {
    MessageArena::Slot* shared = arena_.Create(std::move(msg));
    if (observer_ != nullptr) shared->msg_id = NewCauseId();
    for (int nb : nbrs) SendSharedArena(from, nb, shared);
    // Drop the creator's reference; the payload now lives exactly as long
    // as its last scheduled delivery (or dies here if every leg dropped).
    arena_.Release(shared);
  } else {
    const auto shared = std::make_shared<const Message>(std::move(msg));
    const uint64_t mid = observer_ != nullptr ? NewCauseId() : 0;
    for (int nb : nbrs) SendShared(from, nb, shared, mid);
  }
}

const RoutingTable& Network::TableFor(int root) {
  std::unique_ptr<RoutingTable>& slot = routing_tables_[root];
  if (slot == nullptr) {
    if (!churn_.enabled()) {
      slot = std::make_unique<RoutingTable>(topology_.adjacency, root);
    } else {
      // Routes must not relay through churn-absent nodes: an absent relay
      // sinks every frame that crosses it, so a path "through" one is no
      // path at all.  Build over the live links between present nodes; the
      // table cache is invalidated on every churn event (link or node).
      AdjacencyList live(live_adjacency_.size());
      for (int u = 0; u < static_cast<int>(live_adjacency_.size()); ++u) {
        if (churn_.IsAbsent(u, Now())) continue;
        for (int v : live_adjacency_[u]) {
          if (!churn_.IsAbsent(v, Now())) live[u].push_back(v);
        }
      }
      slot = std::make_unique<RoutingTable>(live, root);
    }
  }
  return *slot;
}

int Network::SendRouted(int from, int to, Message msg) {
  ELINK_CHECK(nodes_[to] != nullptr);
  if (from == to) {
    if (fault_.enabled() && fault_.IsCrashed(to, Now())) return 0;
    if (churn_.enabled() && churn_.IsAbsent(to, Now())) return 0;
    uint64_t mid = 0;
    if (observer_ != nullptr) {
      mid = NewCauseId();
      observer_->OnCausal({0, mid, queue_.active_cause()});
      observer_->OnSend(Now(), from, to, msg, 0.0);
    }
    ScheduleDelivery(0.0, from, to, std::move(msg), mid);
    return 0;
  }
  const RoutingTable& table = TableFor(to);
  const int hops = table.HopsToRoot(from);
  if (churn_.enabled() && hops <= 0) {
    // Churn link removals can partition the live graph; a routed message
    // with no path is lost (and charged once, like any other lost frame).
    ++churn_drops_;
    stats_.RecordDropped(msg.category, msg.CostUnits(), FrameBytes(msg));
    if (observer_ != nullptr) {
      observer_->OnCausal({0, NewCauseId(), queue_.active_cause()});
      observer_->OnDrop(Now(), from, to, msg);
    }
    return 0;
  }
  ELINK_CHECK(hops > 0);  // Connected networks only.
  // End-to-end payload corruption: one truncation decision per routed
  // message, drawn before the per-hop loss draws.
  if (fault_.enabled()) MaybeTruncate(&msg);
  // The identical frame is on the air at every hop, so its length is
  // computed once per routed message, not once per relay.
  const uint64_t frame_bytes = FrameBytes(msg);
  // One message id covers the whole routed journey — every relay hop is the
  // same frame in flight.  The causal parent is pinned here: the hop loop
  // below runs synchronously inside the caller's handler, so the active
  // cause cannot change mid-walk.
  uint64_t mid = 0;
  uint64_t cause = 0;
  if (observer_ != nullptr) {
    mid = NewCauseId();
    cause = queue_.active_cause();
  }
  // Walk the path hop by hop: each relay transmission is charged when it
  // happens and any hop can lose the message (relay crashed, link down or
  // lossy, next relay dead on arrival).  Fault-free, this performs exactly
  // the per-hop charges and single end-delivery of the original code.
  double delay = 0.0;
  int cur = from;
  int prev = from;
  while (cur != to) {
    const int next = table.NextHopToRoot(cur);
    const double hop_delay = NextHopDelay();
    const bool fault_drop =
        fault_.enabled() &&
        (fault_.IsCrashed(cur, Now() + delay) ||
         fault_.DropTransmission(cur, next, Now() + delay) ||
         fault_.IsCrashed(next, Now() + delay + hop_delay));
    // The routing table reflects live links at send time, so only endpoint
    // absence (at the hop's own instants) can sink a hop here.
    const bool churn_drop =
        churn_.enabled() &&
        (churn_.IsAbsent(cur, Now() + delay) ||
         churn_.IsAbsent(next, Now() + delay + hop_delay));
    if (fault_drop || churn_drop) {
      if (churn_drop) ++churn_drops_;
      stats_.RecordDropped(msg.category, msg.CostUnits(), frame_bytes);
      if (observer_ != nullptr) {
        observer_->OnCausal({0, mid, cause});
        observer_->OnDrop(Now() + delay, cur, next, msg);
      }
      return hops;
    }
    stats_.Record(msg.category, msg.CostUnits(), frame_bytes);
    if (observer_ != nullptr) {
      observer_->OnCausal({0, mid, cause});
      observer_->OnHop(Now() + delay, cur, next, msg);
    }
    delay += hop_delay;
    prev = cur;
    cur = next;
  }
  if (observer_ != nullptr) {
    observer_->OnCausal({0, mid, cause});
    observer_->OnSend(Now(), from, to, msg, delay);
  }
  // The penultimate node on the path is the sender seen by `to`.
  ScheduleDelivery(delay, prev, to, std::move(msg), mid);
  return hops;
}

int Network::HopDistance(int from, int to) {
  if (from == to) return 0;
  return TableFor(to).HopsToRoot(from);
}

void Network::SetTimer(int id, double delay, int timer_id) {
  ELINK_CHECK(nodes_[id] != nullptr);
  // Inline POD event: the generation/crash/absence gating lives in
  // OnTimerEvent, so no closure is built per timer.  While traced and armed
  // from inside a handler, the arming cause parks in the pool and its slot
  // rides the aux word's high half (shifted +1 so 0 keeps meaning "none").
  uint64_t aux = restart_gen_[id];
  if (observer_ != nullptr) {
    const uint64_t cause = queue_.active_cause();
    if (cause != 0) {
      uint32_t slot;
      if (free_timer_slots_.empty()) {
        slot = static_cast<uint32_t>(timer_cause_pool_.size());
        timer_cause_pool_.push_back(cause);
      } else {
        slot = free_timer_slots_.back();
        free_timer_slots_.pop_back();
        timer_cause_pool_[slot] = cause;
      }
      aux |= (static_cast<uint64_t>(slot) + 1) << 32;
    }
  }
  queue_.ScheduleTimerAfter(delay, id, timer_id, aux);
}

void Network::ScheduleAfter(double delay, EventQueue::Callback cb) {
  queue_.ScheduleAfter(delay, std::move(cb));
}

uint64_t Network::Run(uint64_t max_events) {
  for (int id = 0; id < num_nodes(); ++id) {
    ELINK_CHECK(nodes_[id] != nullptr);
  }
  hit_event_cap_ = false;
  // Driver code brackets the drain: anything it sends before or after is a
  // causal genesis, never a child of whichever handler ran last.
  queue_.set_active_cause(0);
  uint64_t dispatched = 0;
  RunCheckpoint* cp = armed_checkpoint();
  if (cp == nullptr) {
    dispatched = queue_.RunAll(max_events);
  } else {
    // Chunked drain around the checkpoint: RunAll is resumable mid-bucket,
    // so splitting one drain into two is unobservable to the simulation.
    while (dispatched < max_events) {
      uint64_t budget = max_events - dispatched;
      if (!cp->fired && cp->countdown < budget) budget = cp->countdown;
      const uint64_t ran = budget == 0 ? 0 : queue_.RunAll(budget);
      dispatched += ran;
      cp->dispatched += ran;
      if (!cp->fired) {
        cp->countdown -= ran;
        if (cp->countdown == 0) {
          cp->fired = true;
          if (cp->on_fire) cp->on_fire(*this);
        }
      }
      // A short chunk means the queue drained; the checkpoint (if still
      // unfired) stays armed for the thread's next Run.
      if (ran < budget) break;
    }
  }
  queue_.set_active_cause(0);
  if (dispatched >= max_events && !queue_.Empty()) {
    hit_event_cap_ = true;
    ELINK_LOG(Warning) << "Network::Run hit the event cap (" << max_events
                       << " dispatched, " << queue_.Size()
                       << " pending); protocol is livelocked or runaway";
  }
  return dispatched;
}

}  // namespace elink
