#include "sim/network.h"

#include <utility>

namespace elink {

Network::Network(Topology topology, Config config)
    : topology_(std::move(topology)),
      config_(config),
      rng_(config.seed),
      nodes_(topology_.num_nodes()) {
  ELINK_CHECK(config_.async_delay_min > 0.0);
  ELINK_CHECK(config_.async_delay_max >= config_.async_delay_min);
}

void Network::InstallNode(int id, std::unique_ptr<Node> node) {
  ELINK_CHECK(id >= 0 && id < num_nodes());
  ELINK_CHECK(node != nullptr);
  node->network_ = this;
  node->id_ = id;
  nodes_[id] = std::move(node);
}

void Network::InstallNodes(
    const std::function<std::unique_ptr<Node>(int)>& factory) {
  for (int id = 0; id < num_nodes(); ++id) InstallNode(id, factory(id));
}

double Network::NextHopDelay() {
  if (config_.synchronous) return 1.0;
  return rng_.Uniform(config_.async_delay_min, config_.async_delay_max);
}

void Network::Send(int from, int to, Message msg) {
  ELINK_CHECK(topology_.HasEdge(from, to));
  ELINK_CHECK(nodes_[to] != nullptr);
  stats_.Record(msg.category, msg.CostUnits());
  const double delay = NextHopDelay();
  queue_.ScheduleAfter(delay, [this, from, to, m = std::move(msg)]() {
    nodes_[to]->HandleMessage(from, m);
  });
}

void Network::Broadcast(int from, Message msg) {
  for (int nb : topology_.adjacency[from]) {
    Send(from, nb, msg);
  }
}

const RoutingTable& Network::TableFor(int root) {
  auto it = routing_tables_.find(root);
  if (it == routing_tables_.end()) {
    it = routing_tables_
             .emplace(root, RoutingTable(topology_.adjacency, root))
             .first;
  }
  return it->second;
}

int Network::SendRouted(int from, int to, Message msg) {
  ELINK_CHECK(nodes_[to] != nullptr);
  if (from == to) {
    queue_.ScheduleAfter(0.0, [this, from, to, m = std::move(msg)]() {
      nodes_[to]->HandleMessage(from, m);
    });
    return 0;
  }
  const RoutingTable& table = TableFor(to);
  const int hops = table.HopsToRoot(from);
  ELINK_CHECK(hops > 0);  // Connected networks only.
  // Charge every hop and accumulate the end-to-end delay.
  double delay = 0.0;
  for (int h = 0; h < hops; ++h) {
    stats_.Record(msg.category, msg.CostUnits());
    delay += NextHopDelay();
  }
  // The penultimate node on the path is the sender seen by `to`.
  int penultimate = to == from ? from : [&] {
    // Walk from `from` towards `to`; the node whose next hop is `to`.
    int cur = from;
    while (table.NextHopToRoot(cur) != to) cur = table.NextHopToRoot(cur);
    return cur;
  }();
  queue_.ScheduleAfter(delay,
                       [this, penultimate, to, m = std::move(msg)]() {
                         nodes_[to]->HandleMessage(penultimate, m);
                       });
  return hops;
}

int Network::HopDistance(int from, int to) {
  if (from == to) return 0;
  return TableFor(to).HopsToRoot(from);
}

void Network::SetTimer(int id, double delay, int timer_id) {
  ELINK_CHECK(nodes_[id] != nullptr);
  queue_.ScheduleAfter(delay,
                       [this, id, timer_id]() { nodes_[id]->HandleTimer(timer_id); });
}

void Network::ScheduleAfter(double delay, std::function<void()> cb) {
  queue_.ScheduleAfter(delay, std::move(cb));
}

uint64_t Network::Run(uint64_t max_events) {
  for (int id = 0; id < num_nodes(); ++id) {
    ELINK_CHECK(nodes_[id] != nullptr);
  }
  const uint64_t dispatched = queue_.RunAll(max_events);
  ELINK_CHECK(dispatched < max_events);  // Cap hit => runaway protocol.
  return dispatched;
}

}  // namespace elink
