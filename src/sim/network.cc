#include "sim/network.h"

#include <utility>

#include "common/logging.h"

namespace elink {

Network::Network(Topology topology, Config config)
    : topology_(std::move(topology)),
      config_(config),
      rng_(config.seed),
      fault_(config.fault, config.seed),
      nodes_(topology_.num_nodes()),
      routing_tables_(topology_.num_nodes()) {
  ELINK_CHECK(config_.async_delay_min > 0.0);
  ELINK_CHECK(config_.async_delay_max >= config_.async_delay_min);
}

void Network::InstallNode(int id, std::unique_ptr<Node> node) {
  ELINK_CHECK(id >= 0 && id < num_nodes());
  ELINK_CHECK(node != nullptr);
  node->network_ = this;
  node->id_ = id;
  nodes_[id] = std::move(node);
  nodes_[id]->OnInstall();
}

void Network::InstallNodes(
    const std::function<std::unique_ptr<Node>(int)>& factory) {
  for (int id = 0; id < num_nodes(); ++id) InstallNode(id, factory(id));
}

double Network::NextHopDelay() {
  if (config_.synchronous) return 1.0;
  return rng_.Uniform(config_.async_delay_min, config_.async_delay_max);
}

void Network::MaybeTruncate(Message* msg) {
  size_t keep_ints = 0, keep_doubles = 0;
  if (fault_.truncates() &&
      fault_.TruncatePayload(msg->ints.size(), msg->doubles.size(), &keep_ints,
                             &keep_doubles)) {
    msg->ints.resize(keep_ints);
    msg->doubles.resize(keep_doubles);
  }
}

void Network::Send(int from, int to, Message msg) {
  ELINK_CHECK(topology_.HasEdge(from, to));
  ELINK_CHECK(nodes_[to] != nullptr);
  const double delay = NextHopDelay();
  // Truncation is decided first (the chopped frame is what is on the air, so
  // drop charges reflect it), then loss.  Each fault stream draw happens in
  // the same order here and in SendShared, keeping Broadcast bit-identical
  // to the N Sends it replaces.
  if (fault_.enabled()) MaybeTruncate(&msg);
  // All fault decisions are made at send time (the receiver's crash state is
  // evaluated at the arrival instant), so runs stay deterministic and the
  // drop is charged to the ledger exactly once.
  if (fault_.enabled() &&
      (fault_.IsCrashed(from, Now()) ||
       fault_.DropTransmission(from, to, Now()) ||
       fault_.IsCrashed(to, Now() + delay))) {
    stats_.RecordDropped(msg.category, msg.CostUnits());
    if (observer_ != nullptr) observer_->OnDrop(Now(), from, to, msg);
    return;
  }
  stats_.Record(msg.category, msg.CostUnits());
  if (observer_ != nullptr) observer_->OnSend(Now(), from, to, msg, delay);
  queue_.ScheduleAfter(delay, [this, from, to, m = std::move(msg)]() {
    if (observer_ != nullptr) observer_->OnDeliver(Now(), from, to, m);
    nodes_[to]->HandleMessage(from, m);
  });
}

void Network::SendShared(int from, int to,
                         const std::shared_ptr<const Message>& msg) {
  ELINK_CHECK(topology_.HasEdge(from, to));
  ELINK_CHECK(nodes_[to] != nullptr);
  // Mirrors Send exactly — same RNG draw order (delay first, then truncate,
  // then loss), same charging — so a Broadcast is bit-identical to the N
  // independent Sends it replaces.  A truncated leg falls back to a private
  // copy of the payload; intact legs keep sharing the immutable message.
  const double delay = NextHopDelay();
  Message chopped;
  const Message* wire = msg.get();
  size_t keep_ints = 0, keep_doubles = 0;
  if (fault_.enabled() && fault_.truncates() &&
      fault_.TruncatePayload(msg->ints.size(), msg->doubles.size(), &keep_ints,
                             &keep_doubles)) {
    chopped = *msg;
    chopped.ints.resize(keep_ints);
    chopped.doubles.resize(keep_doubles);
    wire = &chopped;
  }
  if (fault_.enabled() &&
      (fault_.IsCrashed(from, Now()) ||
       fault_.DropTransmission(from, to, Now()) ||
       fault_.IsCrashed(to, Now() + delay))) {
    stats_.RecordDropped(wire->category, wire->CostUnits());
    if (observer_ != nullptr) observer_->OnDrop(Now(), from, to, *wire);
    return;
  }
  stats_.Record(wire->category, wire->CostUnits());
  if (observer_ != nullptr) observer_->OnSend(Now(), from, to, *wire, delay);
  if (wire == &chopped) {
    queue_.ScheduleAfter(delay, [this, from, to, m = std::move(chopped)]() {
      if (observer_ != nullptr) observer_->OnDeliver(Now(), from, to, m);
      nodes_[to]->HandleMessage(from, m);
    });
  } else {
    queue_.ScheduleAfter(delay, [this, from, to, msg]() {
      if (observer_ != nullptr) observer_->OnDeliver(Now(), from, to, *msg);
      nodes_[to]->HandleMessage(from, *msg);
    });
  }
}

void Network::Broadcast(int from, Message msg) {
  const std::vector<int>& nbrs = topology_.adjacency[from];
  if (nbrs.empty()) return;
  // One immutable payload shared by every fan-out leg; receivers get a
  // const& into it, so nothing is copied per neighbor.
  const auto shared = std::make_shared<const Message>(std::move(msg));
  for (int nb : nbrs) SendShared(from, nb, shared);
}

const RoutingTable& Network::TableFor(int root) {
  std::unique_ptr<RoutingTable>& slot = routing_tables_[root];
  if (slot == nullptr) {
    slot = std::make_unique<RoutingTable>(topology_.adjacency, root);
  }
  return *slot;
}

int Network::SendRouted(int from, int to, Message msg) {
  ELINK_CHECK(nodes_[to] != nullptr);
  if (from == to) {
    if (fault_.enabled() && fault_.IsCrashed(to, Now())) return 0;
    if (observer_ != nullptr) observer_->OnSend(Now(), from, to, msg, 0.0);
    queue_.ScheduleAfter(0.0, [this, from, to, m = std::move(msg)]() {
      if (observer_ != nullptr) observer_->OnDeliver(Now(), from, to, m);
      nodes_[to]->HandleMessage(from, m);
    });
    return 0;
  }
  const RoutingTable& table = TableFor(to);
  const int hops = table.HopsToRoot(from);
  ELINK_CHECK(hops > 0);  // Connected networks only.
  // End-to-end payload corruption: one truncation decision per routed
  // message, drawn before the per-hop loss draws.
  if (fault_.enabled()) MaybeTruncate(&msg);
  // Walk the path hop by hop: each relay transmission is charged when it
  // happens and any hop can lose the message (relay crashed, link down or
  // lossy, next relay dead on arrival).  Fault-free, this performs exactly
  // the per-hop charges and single end-delivery of the original code.
  double delay = 0.0;
  int cur = from;
  int prev = from;
  while (cur != to) {
    const int next = table.NextHopToRoot(cur);
    const double hop_delay = NextHopDelay();
    if (fault_.enabled() &&
        (fault_.IsCrashed(cur, Now() + delay) ||
         fault_.DropTransmission(cur, next, Now() + delay) ||
         fault_.IsCrashed(next, Now() + delay + hop_delay))) {
      stats_.RecordDropped(msg.category, msg.CostUnits());
      if (observer_ != nullptr) {
        observer_->OnDrop(Now() + delay, cur, next, msg);
      }
      return hops;
    }
    stats_.Record(msg.category, msg.CostUnits());
    if (observer_ != nullptr) observer_->OnHop(Now() + delay, cur, next, msg);
    delay += hop_delay;
    prev = cur;
    cur = next;
  }
  if (observer_ != nullptr) observer_->OnSend(Now(), from, to, msg, delay);
  // The penultimate node on the path is the sender seen by `to`.
  queue_.ScheduleAfter(delay, [this, prev, to, m = std::move(msg)]() {
    if (observer_ != nullptr) observer_->OnDeliver(Now(), prev, to, m);
    nodes_[to]->HandleMessage(prev, m);
  });
  return hops;
}

int Network::HopDistance(int from, int to) {
  if (from == to) return 0;
  return TableFor(to).HopsToRoot(from);
}

void Network::SetTimer(int id, double delay, int timer_id) {
  ELINK_CHECK(nodes_[id] != nullptr);
  queue_.ScheduleAfter(delay, [this, id, timer_id]() {
    // A crashed node's timers are suppressed (it recovers with no pending
    // timers; protocols re-arm on recovery if they support it).
    if (fault_.enabled() && fault_.IsCrashed(id, queue_.Now())) return;
    if (observer_ != nullptr) observer_->OnTimerFire(queue_.Now(), id, timer_id);
    nodes_[id]->HandleTimer(timer_id);
  });
}

void Network::ScheduleAfter(double delay, EventQueue::Callback cb) {
  queue_.ScheduleAfter(delay, std::move(cb));
}

uint64_t Network::Run(uint64_t max_events) {
  for (int id = 0; id < num_nodes(); ++id) {
    ELINK_CHECK(nodes_[id] != nullptr);
  }
  hit_event_cap_ = false;
  const uint64_t dispatched = queue_.RunAll(max_events);
  if (dispatched >= max_events && !queue_.Empty()) {
    hit_event_cap_ = true;
    ELINK_LOG(Warning) << "Network::Run hit the event cap (" << max_events
                       << " dispatched, " << queue_.Size()
                       << " pending); protocol is livelocked or runaway";
  }
  return dispatched;
}

}  // namespace elink
