#include "sim/churn.h"

#include <algorithm>

#include "common/status.h"

namespace elink {
namespace {

bool EventBefore(const ChurnSchedule::Event& a, const ChurnSchedule::Event& b) {
  return a.at < b.at;
}

}  // namespace

ChurnSchedule::ChurnSchedule(const ChurnPlan& plan, int num_nodes) {
  enabled_ = plan.enabled();
  if (!enabled_) return;

  auto check_node = [num_nodes](int node) {
    ELINK_CHECK(node >= 0 && node < num_nodes);
  };

  for (const ChurnPlan::NodeJoin& j : plan.joins) {
    check_node(j.node);
    ELINK_CHECK(j.at >= 0.0);
    absences_.push_back({j.node, 0.0, j.at});
    events_.push_back({Event::kJoin, j.at, j.node, -1});
  }
  for (const ChurnPlan::NodeLeave& l : plan.leaves) {
    check_node(l.node);
    ELINK_CHECK(l.at >= 0.0);
    absences_.push_back(
        {l.node, l.at, std::numeric_limits<double>::infinity()});
    events_.push_back({Event::kLeave, l.at, l.node, -1});
  }
  for (const ChurnPlan::NodeCrash& c : plan.crashes) {
    check_node(c.node);
    ELINK_CHECK(c.recover_at > c.crash_at);
    absences_.push_back({c.node, c.crash_at, c.recover_at});
    events_.push_back({Event::kCrash, c.crash_at, c.node, -1});
    if (c.recover_at < std::numeric_limits<double>::infinity()) {
      events_.push_back({Event::kRepair, c.recover_at, c.node, -1});
    }
  }
  for (const ChurnPlan::LinkChange& lc : plan.link_changes) {
    check_node(lc.u);
    check_node(lc.v);
    ELINK_CHECK(lc.u != lc.v);
    ELINK_CHECK(lc.at >= 0.0);
    events_.push_back(
        {lc.add ? Event::kLinkAdd : Event::kLinkRemove, lc.at, lc.u, lc.v});
  }

  std::stable_sort(absences_.begin(), absences_.end(),
                   [](const AbsenceInterval& a, const AbsenceInterval& b) {
                     return a.node < b.node;
                   });
  std::stable_sort(events_.begin(), events_.end(), EventBefore);
}

bool ChurnSchedule::IsAbsent(int node, double now) const {
  if (!enabled_) return false;
  auto it = std::lower_bound(absences_.begin(), absences_.end(), node,
                             [](const AbsenceInterval& iv, int target) {
                               return iv.node < target;
                             });
  for (; it != absences_.end() && it->node == node; ++it) {
    if (now >= it->from && now < it->to) return true;
  }
  return false;
}

const char* ChurnSchedule::KindName(Event::Kind kind) {
  switch (kind) {
    case Event::kJoin:
      return "join";
    case Event::kLeave:
      return "leave";
    case Event::kCrash:
      return "crash";
    case Event::kRepair:
      return "repair";
    case Event::kLinkAdd:
      return "link_add";
    case Event::kLinkRemove:
      return "link_remove";
  }
  return "unknown";
}

}  // namespace elink
