// 2-D geometry for sensor deployments.
#ifndef ELINK_SIM_POINT_H_
#define ELINK_SIM_POINT_H_

#include <cmath>

namespace elink {

/// A point (or sensor position) on the deployment plane.
struct Point2D {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance between two points.
inline double EuclideanDistance(const Point2D& a, const Point2D& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace elink

#endif  // ELINK_SIM_POINT_H_
