#include "sim/event_queue.h"

namespace elink {

namespace {

// SplitMix64 finalizer.  Timestamps are IEEE-754 bit patterns whose low
// mantissa bits are frequently all-zero (integer times, dyadic delays), so
// masking raw bits would pile every key on one probe chain.
inline uint64_t HashBits(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

constexpr size_t kInitialTableSize = 16;  // power of two
constexpr uint32_t kMaxSlots = 0xFFFFFFFFu;

}  // namespace

uint32_t EventQueue::AllocSlot() {
  if (free_slots_.empty()) {
    ELINK_CHECK(slots_in_use_ < kMaxSlots);
    if ((slots_in_use_ >> kSlotChunkShift) >= slot_chunks_.size()) {
      slot_chunks_.push_back(std::make_unique<Callback[]>(kSlotChunkSize));
    }
    return slots_in_use_++;
  }
  const uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

void EventQueue::Enqueue(uint64_t time_bits, Item item) {
  uint32_t b;
  if (time_bits == memo_time_bits_) {
    b = memo_bucket_;
  } else {
    b = BucketFor(time_bits);
    memo_time_bits_ = time_bits;
    memo_bucket_ = b;
  }
  buckets_[b].items.push_back(item);
  ++size_;
  if (size_ > peak_size_) peak_size_ = size_;
}

uint32_t EventQueue::BucketFor(uint64_t time_bits) {
  if ((table_used_ + 1) * 10 >= table_.size() * 7) GrowTable();
  const size_t mask = table_.size() - 1;
  size_t i = HashBits(time_bits) & mask;
  while (table_[i].occupied) {
    if (table_[i].time_bits == time_bits) return table_[i].bucket;
    i = (i + 1) & mask;
  }
  // First event at this timestamp: open a bucket and enter it in the heap.
  uint32_t b;
  if (free_buckets_.empty()) {
    buckets_.emplace_back();
    b = static_cast<uint32_t>(buckets_.size() - 1);
  } else {
    b = free_buckets_.back();
    free_buckets_.pop_back();
  }
  table_[i] = TableEntry{time_bits, b, 1};
  ++table_used_;
  heap_.push_back(TimeEntry{time_bits, b});
  SiftUp(heap_.size() - 1);
  return b;
}

void EventQueue::GrowTable() {
  const size_t new_size =
      table_.empty() ? kInitialTableSize : table_.size() * 2;
  std::vector<TableEntry> old = std::move(table_);
  table_.assign(new_size, TableEntry{0, 0, 0});
  const size_t mask = new_size - 1;
  for (const TableEntry& e : old) {
    if (!e.occupied) continue;
    size_t i = HashBits(e.time_bits) & mask;
    while (table_[i].occupied) i = (i + 1) & mask;
    table_[i] = e;
  }
}

void EventQueue::TableErase(uint64_t time_bits) {
  const size_t mask = table_.size() - 1;
  size_t i = HashBits(time_bits) & mask;
  while (table_[i].time_bits != time_bits || !table_[i].occupied) {
    i = (i + 1) & mask;
  }
  table_[i].occupied = 0;
  --table_used_;
  // Backward-shift deletion keeps probe chains gap-free without tombstones.
  size_t j = i;
  for (;;) {
    j = (j + 1) & mask;
    if (!table_[j].occupied) break;
    const size_t home = HashBits(table_[j].time_bits) & mask;
    const bool movable =
        (j > i) ? (home <= i || home > j) : (home <= i && home > j);
    if (movable) {
      table_[i] = table_[j];
      table_[j].occupied = 0;
      i = j;
    }
  }
}

void EventQueue::SiftUp(size_t i) {
  if (i == 0) return;
  size_t parent = (i - 1) / 4;
  if (heap_[i].time_bits >= heap_[parent].time_bits) return;
  // Hole insertion: shift ancestors down over the hole, place once.
  const TimeEntry entry = heap_[i];
  do {
    heap_[i] = heap_[parent];
    i = parent;
    parent = (i - 1) / 4;
  } while (i > 0 && entry.time_bits < heap_[parent].time_bits);
  heap_[i] = entry;
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  const TimeEntry entry = heap_[i];
  for (;;) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    // Smallest of up to four children.
    size_t best = first_child;
    const size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].time_bits < heap_[best].time_bits) best = c;
    }
    if (heap_[best].time_bits >= entry.time_bits) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

void EventQueue::Dispatch(const Item& item) {
  switch (item.a >> kKindShift) {
    case kKindCallback: {
      // Invoked *in place*: slot chunks never move, so reentrant scheduling
      // from inside the closure cannot invalidate it.  InvokeOnce fuses the
      // call with the closure's destruction.  Generic callbacks are genesis
      // events causally — they come from driver code, not a handler.
      active_cause_ = 0;
      const uint32_t slot = item.b;
      SlotRef(slot).InvokeOnce();
      free_slots_.push_back(slot);
      break;
    }
    case kKindDelivery:
      on_delivery_(handler_ctx_, static_cast<int>(item.a & kArgMask),
                   static_cast<int>(item.b),
                   reinterpret_cast<void*>(item.c));
      break;
    default:
      on_timer_(handler_ctx_, static_cast<int>(item.a & kArgMask),
                static_cast<int>(item.b), item.c);
      break;
  }
}

void EventQueue::RetireFrontBucket(uint64_t time_bits, uint32_t bucket) {
  Bucket& bk = buckets_[bucket];
  bk.items.clear();
  bk.cursor = 0;
  free_buckets_.push_back(bucket);
  // The retired bucket id may be recycled for a different timestamp.
  if (memo_time_bits_ == time_bits) memo_time_bits_ = ~0ULL;
  TableErase(time_bits);
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

bool EventQueue::RunOne() {
  if (size_ == 0) return false;
  const TimeEntry top = heap_.front();
  Bucket& bk = buckets_[top.bucket];
  const Item item = bk.items[bk.cursor++];
  --size_;
  if (bk.cursor == bk.items.size()) {
    // Timestamp exhausted: retire the bucket *before* dispatch, so a callback
    // scheduling at exactly Now() opens a fresh bucket (which sorts ahead of
    // every strictly-later pending time, preserving (time, seq) order).
    RetireFrontBucket(top.time_bits, top.bucket);
  }
  now_ = TimeFromBits(top.time_bits);
  Dispatch(item);
  return true;
}

uint64_t EventQueue::RunAll(uint64_t max_events) {
  // Bulk-synchronous drain: resolve the front bucket once per distinct
  // timestamp and sweep its FIFO.  Dispatch can append to the *current*
  // bucket (a callback scheduling at exactly Now()): the size is re-read
  // every iteration and append order is (time, seq) order, so such events
  // fire in this same sweep, exactly as the one-at-a-time path would.
  // Dispatch can also grow buckets_/heap_ (scheduling at new timestamps),
  // so the bucket is re-resolved by index after every dispatch.
  uint64_t n = 0;
  while (size_ != 0 && n < max_events) {
    const TimeEntry top = heap_.front();
    now_ = TimeFromBits(top.time_bits);
    for (;;) {
      Bucket& bk = buckets_[top.bucket];
      const uint32_t cursor = bk.cursor;
      if (cursor >= bk.items.size()) {
        RetireFrontBucket(top.time_bits, top.bucket);
        break;
      }
      if (n >= max_events) return n;  // Bucket stays front, cursor kept.
      bk.cursor = cursor + 1;
      const Item item = bk.items[cursor];
      --size_;
      ++n;
      Dispatch(item);
    }
  }
  return n;
}

uint64_t EventQueue::RunUntil(double until) {
  const uint64_t until_bits = TimeBits(until);
  uint64_t n = 0;
  while (size_ != 0 && heap_.front().time_bits <= until_bits) {
    // Same bucket-at-a-time drain as RunAll; the horizon check happens once
    // per distinct timestamp, not once per event.
    const TimeEntry top = heap_.front();
    now_ = TimeFromBits(top.time_bits);
    for (;;) {
      Bucket& bk = buckets_[top.bucket];
      const uint32_t cursor = bk.cursor;
      if (cursor >= bk.items.size()) {
        RetireFrontBucket(top.time_bits, top.bucket);
        break;
      }
      bk.cursor = cursor + 1;
      const Item item = bk.items[cursor];
      --size_;
      ++n;
      Dispatch(item);
    }
  }
  // Advance to the horizon: the caller simulated "up to `until`", so that is
  // the current time even when the last event fired earlier (or none did).
  if (until > now_) now_ = until;
  return n;
}

}  // namespace elink
