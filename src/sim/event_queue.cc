#include "sim/event_queue.h"

namespace elink {

void EventQueue::ScheduleAt(double time, Callback cb) {
  ELINK_CHECK(time >= now_);
  heap_.push(Event{time, next_seq_++, std::move(cb)});
}

void EventQueue::ScheduleAfter(double delay, Callback cb) {
  ELINK_CHECK(delay >= 0.0);
  ScheduleAt(now_ + delay, std::move(cb));
}

bool EventQueue::RunOne() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-adjacent,
  // so copy the callback handle (std::function copy) before popping.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.time;
  ev.cb();
  return true;
}

uint64_t EventQueue::RunAll(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && RunOne()) ++n;
  return n;
}

uint64_t EventQueue::RunUntil(double until) {
  uint64_t n = 0;
  while (!heap_.empty() && heap_.top().time <= until && RunOne()) ++n;
  return n;
}

}  // namespace elink
