#include "sim/msg_arena.h"

#include "common/status.h"

namespace elink {

MessageArena::~MessageArena() {
  // Payloads still referenced here were scheduled but never dispatched (a
  // queue torn down with events pending).  The arena owns their storage, so
  // it destroys them; live_mask_ marks exactly the constructed slots.
  for (size_t s = 0; s < slabs_.size(); ++s) {
    Slab& slab = slabs_[s];
    if (slab.live == 0) continue;
    for (uint32_t i = 0; i < slab.bump; ++i) {
      if (live_mask_[s * kSlotsPerSlab + i]) SlabSlot(slab, i)->~Slot();
    }
  }
}

void MessageArena::EnsureActiveSlab() {
  if (!slabs_.empty() && slabs_[active_].bump < kSlotsPerSlab) return;
  if (!drained_.empty()) {
    active_ = drained_.back();
    drained_.pop_back();
    ++slab_recycles_;
    return;
  }
  Slab slab;
  slab.storage =
      std::make_unique<unsigned char[]>(kSlotsPerSlab * sizeof(Slot));
  slabs_.push_back(std::move(slab));
  live_mask_.resize(slabs_.size() * kSlotsPerSlab, 0);
  active_ = slabs_.size() - 1;
}

MessageArena::Slot* MessageArena::Create(Message&& msg) {
  EnsureActiveSlab();
  Slab& slab = slabs_[active_];
  Slot* slot = SlabSlot(slab, slab.bump);
  ::new (static_cast<void*>(slot))
      Slot{std::move(msg), 1, static_cast<uint32_t>(active_), 0};
  live_mask_[active_ * kSlotsPerSlab + slab.bump] = 1;
  ++slab.bump;
  ++slab.live;
  ++live_;
  return slot;
}

void MessageArena::Release(Slot* slot) {
  if (--slot->refs != 0) return;
  const uint32_t s = slot->slab;
  Slab& slab = slabs_[s];
  const uint32_t i = static_cast<uint32_t>(
      (reinterpret_cast<unsigned char*>(slot) - slab.storage.get()) /
      sizeof(Slot));
  slot->~Slot();
  live_mask_[s * kSlotsPerSlab + i] = 0;
  --live_;
  ELINK_CHECK(slab.live > 0);
  if (--slab.live == 0) {
    // Epoch flip: every payload bump-allocated from this slab has been
    // delivered (or dropped), so the whole slab rewinds at once.
    slab.bump = 0;
    if (s != active_) drained_.push_back(s);
  }
}

}  // namespace elink
