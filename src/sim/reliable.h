// Reliable transport over the lossy simulated network.
//
// ReliableChannel wraps Network::Send / Network::SendRouted with sequence
// numbers, acknowledgments, duplicate suppression, and retransmit timers
// with exponential backoff and a bounded retry budget.  One channel lives
// inside each protocol node; the node forwards HandleMessage / HandleTimer
// into OnMessage / OnTimer so the channel can consume its own traffic.  All
// timing goes through the owning Network's event queue, so runs remain
// bit-reproducible for a fixed (seed, FaultPlan) pair.
//
// Cost accounting: the first copy of a message is charged under its own
// category, every retransmission under "<category>.retx", and transport acks
// under "<category>.ack" — so the overhead of reliability is measurable in
// the Section-8.2 ledger.
#ifndef ELINK_SIM_RELIABLE_H_
#define ELINK_SIM_RELIABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "sim/message.h"
#include "sim/network.h"

namespace elink {

/// \brief Per-node ack/retransmit wrapper over single-hop and routed sends.
class ReliableChannel {
 public:
  struct Config {
    /// Initial retransmit timeout.  Should exceed one round trip: two hop
    /// delays for neighbor sends, 2 * diameter for routed sends.
    double rto = 8.0;
    /// Multiplier applied to the timeout after every retransmission.
    double backoff = 2.0;
    /// Retransmissions attempted after the initial send before giving up.
    int max_retries = 5;
    /// HandleTimer ids at or above this value belong to the channel; must
    /// not collide with the owning protocol's own timer ids.
    int timer_id_base = 1 << 20;
  };

  /// Invoked when a message exhausts its retry budget (the destination is
  /// unreachable or dead).  The protocol decides what the loss means.
  using GiveUpCallback = std::function<void(int to, const Message& msg)>;

  ReliableChannel() = default;

  /// Binds the channel to its owning node.  Call from Node::OnInstall().
  void Attach(Network* network, int self, Config config);

  void set_give_up(GiveUpCallback cb) { give_up_ = std::move(cb); }

  bool attached() const { return network_ != nullptr; }

  /// Reliable single-hop send to neighbor `to`.
  void Send(int to, Message msg);

  /// Reliable end-to-end routed send to arbitrary node `to` (the ack routes
  /// back from the destination, so every relay loss triggers a retransmit).
  void SendRouted(int to, Message msg);

  /// Filters an incoming message.  Returns true when the channel consumed it
  /// (a transport ack, or a duplicate delivery); the caller processes the
  /// message normally when false.  First deliveries are acknowledged before
  /// being handed to the caller; duplicates are re-acknowledged (the first
  /// ack may itself have been lost) and swallowed.
  bool OnMessage(int from, const Message& msg);

  /// Filters a timer.  Returns true when `timer_id` belongs to the channel
  /// (a retransmit deadline, handled internally).
  bool OnTimer(int timer_id);

  /// Drops all in-flight sends without retransmitting or invoking give-up —
  /// the node restarted (churn repair/join) and its previous incarnation's
  /// traffic is void.  Delivery history and the sequence counter survive, so
  /// pre-restart duplicates stay suppressed and new sends stay unique.
  void Reset() { pending_.clear(); }

  /// Messages currently awaiting acknowledgment.
  size_t in_flight() const { return pending_.size(); }

  /// Appends the channel's full transport state — sequence counter,
  /// in-flight sends (with their payloads as encoded wire frames), delivery
  /// history — to `out`, for a whole-network snapshot (proto/snapshot.h).
  /// Deterministic: equal states emit equal bytes (both maps iterate in key
  /// order), which is what lets the restore path prove equality by byte
  /// comparison.
  void EncodeSnapshotState(std::vector<uint8_t>* out) const;

  /// Total retransmissions performed.
  uint64_t retransmissions() const { return retransmissions_; }

  /// Messages abandoned after exhausting the retry budget.
  uint64_t gave_up() const { return gave_up_count_; }

 private:
  struct Pending {
    int to = -1;
    bool routed = false;
    int attempts = 0;     // Retransmissions so far.
    double timeout = 0.0; // Next backoff interval.
    Message msg;          // Original, with envelope fields set.
    std::string retx_category;
  };

  void Dispatch(int to, bool routed, const Message& msg);
  void Enqueue(int to, bool routed, Message msg);

  Network* network_ = nullptr;
  int self_ = -1;
  Config config_;
  GiveUpCallback give_up_;
  long long next_seq_ = 0;
  uint64_t retransmissions_ = 0;
  uint64_t gave_up_count_ = 0;
  std::map<long long, Pending> pending_;
  // Per-originator seqs already delivered to the protocol (dup suppression).
  std::map<int, std::set<long long>> delivered_;
};

}  // namespace elink

#endif  // ELINK_SIM_RELIABLE_H_
