// Observability seam of the simulator core.
//
// SimObserver is the single hook through which the discrete-event machinery
// reports what it is doing: message sends/hops/deliveries/drops, timer
// fires, decode errors, reliable-transport retransmissions/acks/give-ups,
// protocol phase transitions, and the run harness's watchdog.  The default
// implementation of every callback is a no-op, and every emission site is
// guarded by a null check on the installed pointer — a run with no observer
// attached pays one predictable branch per event and nothing else (the
// perf_simcore gate enforces this stays true).
//
// Determinism contract: observers are *read-only* witnesses.  They are
// invoked at deterministic points in the event schedule with deterministic
// arguments, never consult the RNG, and must not feed anything back into the
// simulation — so attaching or detaching an observer cannot change a run's
// outcome, and two same-seed runs present byte-identical event streams.
#ifndef ELINK_SIM_OBSERVER_H_
#define ELINK_SIM_OBSERVER_H_

#include <cstdint>
#include <string>

#include "sim/message.h"

namespace elink {

/// \brief No-op base class for simulation observers (tracers, telemetry).
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  // -- Causal plane (Network) --------------------------------------------
  /// Causal annotation for the *next* callback on this observer.  Ids are
  /// assigned deterministically by the Network (dense, starting at 1; 0
  /// means "none"), and are only consumed while an observer is attached, so
  /// two same-seed runs with the same observer configuration see identical
  /// ids — and detaching the observer still changes no simulation outcome.
  struct CausalInfo {
    /// Fresh id of the handler activation this event *is* (a delivery
    /// dispatch or an actual timer fire); 0 for send/hop/drop annotations.
    uint64_t self = 0;
    /// Stable id of the in-flight message (send/hop/drop/deliver); one id
    /// per logical message — broadcast fan-out legs and every relay hop of
    /// a routed send share it.  0 when the event has no message.
    uint64_t msg = 0;
    /// Id of the causing handler activation: for sends/hops/drops the
    /// delivery or timer handler that was running when the message went on
    /// the air; for timer fires the handler that armed the timer.  0 means
    /// genesis (driver code outside any handler).
    uint64_t parent = 0;
  };
  /// Emitted immediately before the OnSend/OnHop/OnDeliver/OnDrop/
  /// OnTimerFire callback it annotates.  Observers that do not record
  /// causality ignore it (but chained observers must forward it).
  virtual void OnCausal(const CausalInfo& info) { (void)info; }

  // -- Message plane (Network) -------------------------------------------
  /// A message was charged and scheduled for delivery.  `delay` is the full
  /// send-to-deliver latency (all hops for routed sends), so message-delay
  /// distributions can be recorded at send time.
  virtual void OnSend(double now, int from, int to, const Message& msg,
                      double delay) {
    (void)now, (void)from, (void)to, (void)msg, (void)delay;
  }
  /// One relay transmission of a routed message (charged like a send);
  /// `at` is the simulated time the hop goes on the air.
  virtual void OnHop(double at, int from, int to, const Message& msg) {
    (void)at, (void)from, (void)to, (void)msg;
  }
  /// A message reached its destination's handler.
  virtual void OnDeliver(double now, int from, int to, const Message& msg) {
    (void)now, (void)from, (void)to, (void)msg;
  }
  /// A transmission was lost to fault injection (loss, outage, crash).
  virtual void OnDrop(double at, int from, int to, const Message& msg) {
    (void)at, (void)from, (void)to, (void)msg;
  }
  /// A protocol timer fired on `node` (suppressed timers of crashed nodes
  /// are not reported: they never fire).
  virtual void OnTimerFire(double now, int node, int timer_id) {
    (void)now, (void)node, (void)timer_id;
  }
  /// A delivered frame was rejected by the receiving protocol (truncated,
  /// malformed, or failing protocol-level field validation).
  virtual void OnDecodeError(double now, int node,
                             const std::string& category) {
    (void)now, (void)node, (void)category;
  }

  // -- Transport plane (ReliableChannel) ---------------------------------
  /// `node` retransmitted an unacknowledged message to `to` (attempt n).
  virtual void OnRetransmit(double now, int node, int to, const Message& msg,
                            int attempt) {
    (void)now, (void)node, (void)to, (void)msg, (void)attempt;
  }
  /// `node` acknowledged delivery `seq` back to originator `to`.
  virtual void OnTransportAck(double now, int node, int to, long long seq) {
    (void)now, (void)node, (void)to, (void)seq;
  }
  /// `node` abandoned a message to `to` after exhausting its retry budget.
  virtual void OnTransportGiveUp(double now, int node, int to,
                                 const Message& msg) {
    (void)now, (void)node, (void)to, (void)msg;
  }

  // -- Topology plane (Network, churn) -----------------------------------
  /// A scheduled ChurnPlan event took effect.  `kind` is one of the
  /// ChurnSchedule::KindName spellings ("join", "leave", "crash", "repair",
  /// "link_add", "link_remove"); `a` is the node (or link endpoint u) and
  /// `b` the other link endpoint (-1 for node events).  Fault-plan crash
  /// recoveries are NOT reported here — only first-class churn.
  virtual void OnChurn(double now, const char* kind, int a, int b) {
    (void)now, (void)kind, (void)a, (void)b;
  }

  // -- Protocol plane (drivers, via ProtocolNode::TracePhase) ------------
  /// A named protocol phase transition on `node` (ELink round starts and
  /// completions, maintenance detach/adopt, query fan-out/collect, ...).
  virtual void OnPhase(double now, int node, const char* phase,
                       long long value) {
    (void)now, (void)node, (void)phase, (void)value;
  }

  // -- Run harness -------------------------------------------------------
  /// The quiet-period watchdog (re-)armed for a `window`-long wait.
  virtual void OnWatchdogArm(double now, double window) {
    (void)now, (void)window;
  }
  /// The watchdog saw a full quiet window and declared the run timed out.
  virtual void OnWatchdogFire(double now) { (void)now; }
  /// One RunHarness::Run drained (or hit its cap).
  virtual void OnRunEnd(double end_time, uint64_t events, bool timed_out,
                        bool hit_event_cap) {
    (void)end_time, (void)events, (void)timed_out, (void)hit_event_cap;
  }
};

}  // namespace elink

#endif  // ELINK_SIM_OBSERVER_H_
