#include "baselines/spanning_forest.h"

#include <algorithm>

#include "proto/wire.h"

namespace elink {

Result<SpanningForestResult> SpanningForestClustering(
    const AdjacencyList& adjacency, const std::vector<Feature>& features,
    const DistanceMetric& metric, double delta) {
  const int n = static_cast<int>(adjacency.size());
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (features.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument("features size mismatch");
  }
  if (delta < 0) return Status::InvalidArgument("delta must be non-negative");

  SpanningForestResult result;
  const int dim = static_cast<int>(features[0].size());

  // ---- Phase 1: forest construction. --------------------------------------
  // Every node broadcasts its feature once so neighbors can compute feature
  // distances, then picks the nearest smaller-id neighbor as parent.
  result.forest_parent.assign(n, -1);
  // One indexed batch per node over its smaller-id neighbors; the selection
  // loop then replays the original order and tie-breaks over bit-identical
  // distances, so the forest is unchanged.
  const FeaturePool pool(features);
  std::vector<int> cand;
  std::vector<double> dists;
  for (int i = 0; i < n; ++i) {
    for (size_t nb = 0; nb < adjacency[i].size(); ++nb) {
      result.stats.Record("sf_feature_exchange", dim,
                          wire::NominalFrameSize(0, dim));
    }
    cand.clear();
    for (int j : adjacency[i]) {
      if (j < i) cand.push_back(j);
    }
    int parent = i;  // Forest root by default.
    double best = 0.0;
    if (!cand.empty()) {
      dists.resize(cand.size());
      metric.BatchDistanceIndexed(features[i], pool, cand.data(), cand.size(),
                                  dists.data());
      for (size_t c = 0; c < cand.size(); ++c) {
        const int j = cand[c];
        const double d = dists[c];
        if (parent == i || d < best || (d == best && j < parent)) {
          parent = j;
          best = d;
        }
      }
    }
    result.forest_parent[i] = parent;
  }

  // ---- Phase 2: bottom-up delta-compactness check. -------------------------
  // Since parents have smaller ids, descending id order visits all children
  // before their parent.
  // Accepted branch heights per node.  The paper's pseudo-code keeps only
  // the single highest branch, which can let a *second*-highest accepted
  // branch pair with a later arrival to exceed delta after a detach; keeping
  // all accepted branches (still O(total children) work) closes that gap so
  // the output always satisfies Definition 1.
  std::vector<std::vector<std::pair<double, int>>> branches(n);
  std::vector<double> height(n, 0.0);
  std::vector<char> is_cluster_root(n, 0);
  for (int i = 0; i < n; ++i) {
    if (result.forest_parent[i] == i) is_cluster_root[i] = 1;
  }
  auto max_branch = [&](int p) {
    double best = 0.0;
    for (const auto& [h, c] : branches[p]) best = std::max(best, h);
    return best;
  };

  for (int i = n - 1; i >= 0; --i) {
    const int p = result.forest_parent[i];
    if (p == i) continue;  // Forest root sends nothing.
    // Child i reports (height, feature) to its parent: height + dim units.
    result.stats.Record("sf_height_report", 1 + dim,
                        wire::NominalFrameSize(0, 1 + dim));
    const double h = height[i] + metric.Distance(features[i], features[p]);
    bool detach_self = false;
    while (h + height[p] > delta + 1e-12) {
      if (h >= height[p] || branches[p].empty()) {
        // The new branch is the heavier one: detach the arriving subtree.
        is_cluster_root[i] = 1;
        result.stats.Record("sf_detach", 1);
        detach_self = true;
        break;
      }
      // Detach the heaviest accepted branch and re-check.
      auto it = std::max_element(branches[p].begin(), branches[p].end());
      is_cluster_root[it->second] = 1;
      result.stats.Record("sf_detach", 1);
      branches[p].erase(it);
      height[p] = max_branch(p);
    }
    if (!detach_self) {
      branches[p].emplace_back(h, i);
      height[p] = std::max(height[p], h);
    }
  }

  // Cluster roots are forest roots plus detach points; every node belongs to
  // the cluster of its nearest non-detached ancestor.
  result.clustering.root_of.assign(n, -1);
  // Ascending ids: parents are resolved before children.
  for (int i = 0; i < n; ++i) {
    if (is_cluster_root[i]) {
      result.clustering.root_of[i] = i;
    } else {
      result.clustering.root_of[i] =
          result.clustering.root_of[result.forest_parent[i]];
    }
  }
  return result;
}

}  // namespace elink
