// k-medoids (PAM-style) delta-clustering — the Section-9 alternative.
//
// The paper's related-work section argues that distributed k-medoids "would
// be communication intensive because in every iteration, all the medoids
// would have to be broadcast throughout the network so that every node
// computes its closest medoid".  This module implements the algorithm
// centrally (assignment + swap improvement, searched over k like the
// spectral baseline) and *accounts* the communication its distributed
// execution would require, so the claim can be measured rather than assumed
// (see bench/ablation_alternatives).
#ifndef ELINK_BASELINES_KMEDOIDS_H_
#define ELINK_BASELINES_KMEDOIDS_H_

#include "cluster/clustering.h"
#include "common/rng.h"
#include "common/status.h"
#include "metric/distance.h"
#include "sim/stats.h"

namespace elink {

/// Tunables of the k-medoids baseline.
struct KMedoidsConfig {
  double delta = 1.0;
  int max_swap_rounds = 20;
  uint64_t seed = 29;
};

/// Result of the k-medoids search.
struct KMedoidsResult {
  Clustering clustering;
  int chosen_k = 0;
  /// Total PAM iterations across the k search (each costs one network-wide
  /// medoid broadcast in the distributed execution).
  int total_iterations = 0;
  /// Hypothetical distributed communication: every iteration floods the k
  /// current medoid features through the whole network (k * dim units per
  /// node transmission, N - 1 tree transmissions per flood).
  MessageStats hypothetical_stats;
};

/// Searches k = 1.. for the smallest k whose PAM clustering — split into
/// connected components, like every baseline here — satisfies the
/// delta-condition, keeping the best (fewest-cluster) outcome.
Result<KMedoidsResult> KMedoidsDeltaClustering(
    const AdjacencyList& adjacency, const std::vector<Feature>& features,
    const DistanceMetric& metric, const KMedoidsConfig& config);

}  // namespace elink

#endif  // ELINK_BASELINES_KMEDOIDS_H_
