#include "baselines/kmedoids.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

namespace elink {

namespace {

/// One PAM run for a fixed k: greedy k-medoids++ seeding, then swap
/// improvement until no swap reduces the total assignment cost (or the round
/// budget is exhausted).  Returns the assignment and the iteration count.
struct PamOutcome {
  std::vector<int> medoids;
  std::vector<int> assignment;
  int iterations = 0;
};

PamOutcome RunPam(const std::vector<Feature>& features,
                  const FeaturePool& pool, const DistanceMetric& metric, int k,
                  int max_rounds, Rng* rng) {
  const int n = static_cast<int>(features.size());
  PamOutcome out;
  // Seeding: first medoid uniform, then farthest-point-style proportional
  // to distance from the nearest chosen medoid.  Each candidate medoid is
  // measured against the whole set with one batch scan (bit-identical
  // distances, so seeding draws and picks are unchanged).
  out.medoids.push_back(static_cast<int>(rng->UniformInt(n)));
  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  std::vector<double> d_medoid(n);
  while (static_cast<int>(out.medoids.size()) < k) {
    metric.BatchDistance(features[out.medoids.back()], pool, d_medoid.data());
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      nearest[i] = std::min(nearest[i], d_medoid[i]);
      total += nearest[i];
    }
    if (total <= 0) {
      out.medoids.push_back(static_cast<int>(rng->UniformInt(n)));
      continue;
    }
    double target = rng->Uniform01() * total;
    int pick = n - 1;
    for (int i = 0; i < n; ++i) {
      target -= nearest[i];
      if (target <= 0) {
        pick = i;
        break;
      }
    }
    out.medoids.push_back(pick);
  }

  // k whole-set batch scans (one per medoid), then the same nearest-medoid
  // selection loop in the same c order — identical ties, identical
  // assignment.
  std::vector<double> d_all(static_cast<size_t>(k) * n);
  auto assign_cost = [&](const std::vector<int>& medoids,
                         std::vector<int>* assignment) {
    for (int c = 0; c < k; ++c) {
      metric.BatchDistance(features[medoids[c]], pool,
                           d_all.data() + static_cast<size_t>(c) * n);
    }
    double cost = 0.0;
    assignment->assign(n, 0);
    for (int i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d = d_all[static_cast<size_t>(c) * n + i];
        if (d < best) {
          best = d;
          (*assignment)[i] = c;
        }
      }
      cost += best;
    }
    return cost;
  };

  double cost = assign_cost(out.medoids, &out.assignment);
  for (int round = 0; round < max_rounds; ++round) {
    ++out.iterations;
    bool improved = false;
    // Swap each medoid with the best in-cluster candidate.
    for (int c = 0; c < k && !improved; ++c) {
      for (int cand = 0; cand < n; ++cand) {
        if (out.assignment[cand] != c || cand == out.medoids[c]) continue;
        std::vector<int> trial = out.medoids;
        trial[c] = cand;
        std::vector<int> trial_assignment;
        const double trial_cost = assign_cost(trial, &trial_assignment);
        if (trial_cost + 1e-12 < cost) {
          cost = trial_cost;
          out.medoids = std::move(trial);
          out.assignment = std::move(trial_assignment);
          improved = true;
          break;
        }
      }
    }
    if (!improved) break;
  }
  return out;
}

}  // namespace

Result<KMedoidsResult> KMedoidsDeltaClustering(
    const AdjacencyList& adjacency, const std::vector<Feature>& features,
    const DistanceMetric& metric, const KMedoidsConfig& config) {
  const int n = static_cast<int>(adjacency.size());
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (features.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument("features size mismatch");
  }
  if (config.delta < 0) {
    return Status::InvalidArgument("delta must be non-negative");
  }
  Rng rng(config.seed);
  const FeaturePool pool(features);
  const int dim = static_cast<int>(features[0].size());

  KMedoidsResult result;
  result.chosen_k = 0;
  int best_count = n + 1;

  // Validates a partition the same way the spectral baseline does: split
  // each group into connected components, require pairwise compactness.
  auto evaluate = [&](const std::vector<int>& assignment, int k,
                      Clustering* out) {
    std::vector<std::vector<int>> groups(k);
    for (int i = 0; i < n; ++i) groups[assignment[i]].push_back(i);
    out->root_of.assign(n, -1);
    for (const auto& group : groups) {
      if (group.empty()) continue;
      std::vector<char> mask(n, 0);
      for (int m : group) mask[m] = 1;
      const std::vector<int> comp = InducedComponents(adjacency, mask);
      std::map<int, std::vector<int>> comps;
      for (int m : group) comps[comp[m]].push_back(m);
      for (const auto& [cid, members] : comps) {
        (void)cid;
        for (size_t a = 0; a < members.size(); ++a) {
          for (size_t b = a + 1; b < members.size(); ++b) {
            if (metric.Distance(features[members[a]], features[members[b]]) >
                config.delta + 1e-12) {
              return false;
            }
          }
        }
        for (int m : members) out->root_of[m] = members.front();
      }
    }
    return true;
  };

  const int k_cap = std::min(n, 128);
  for (int k = 1; k <= k_cap && k < best_count; ++k) {
    const PamOutcome pam =
        RunPam(features, pool, metric, k, config.max_swap_rounds, &rng);
    result.total_iterations += pam.iterations;
    // Distributed cost of this k: every iteration floods the k medoid
    // features through the network (N - 1 spanning-tree transmissions per
    // flood, k * dim units each), plus each node reporting its choice
    // (1 unit up the tree).
    for (int it = 0; it < pam.iterations; ++it) {
      for (int e = 0; e + 1 < n; ++e) {
        result.hypothetical_stats.Record("kmedoids_broadcast", k * dim);
        result.hypothetical_stats.Record("kmedoids_report", 1);
      }
    }
    Clustering out;
    if (evaluate(pam.assignment, k, &out)) {
      const int count = out.num_clusters();
      if (count < best_count) {
        best_count = count;
        result.clustering = std::move(out);
        result.chosen_k = k;
      }
    }
  }
  if (result.chosen_k == 0) {
    // Fall back to singletons (always valid).
    result.clustering.root_of.resize(n);
    for (int i = 0; i < n; ++i) result.clustering.root_of[i] = i;
    result.chosen_k = n;
  }
  return result;
}

}  // namespace elink
