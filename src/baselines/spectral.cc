#include "baselines/spectral.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "linalg/kmeans.h"

namespace elink {

namespace {

/// Modified Gram-Schmidt orthonormalization of the columns of m (in place).
/// Columns that collapse to zero are re-randomized.
void Orthonormalize(Matrix* m, Rng* rng) {
  const size_t n = m->rows();
  const size_t k = m->cols();
  for (size_t c = 0; c < k; ++c) {
    for (size_t prev = 0; prev < c; ++prev) {
      double dot = 0.0;
      for (size_t r = 0; r < n; ++r) dot += (*m)(r, c) * (*m)(r, prev);
      for (size_t r = 0; r < n; ++r) (*m)(r, c) -= dot * (*m)(r, prev);
    }
    double norm = 0.0;
    for (size_t r = 0; r < n; ++r) norm += (*m)(r, c) * (*m)(r, c);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      for (size_t r = 0; r < n; ++r) (*m)(r, c) = rng->Normal();
      // Re-orthogonalize this column once against the previous ones.
      for (size_t prev = 0; prev < c; ++prev) {
        double dot = 0.0;
        for (size_t r = 0; r < n; ++r) dot += (*m)(r, c) * (*m)(r, prev);
        for (size_t r = 0; r < n; ++r) (*m)(r, c) -= dot * (*m)(r, prev);
      }
      norm = 0.0;
      for (size_t r = 0; r < n; ++r) norm += (*m)(r, c) * (*m)(r, c);
      norm = std::sqrt(std::max(norm, 1e-12));
    }
    for (size_t r = 0; r < n; ++r) (*m)(r, c) /= norm;
  }
}

}  // namespace

Result<Matrix> TopEigenvectorsOfNormalizedAffinity(
    const AdjacencyList& adjacency,
    const std::function<double(int, int)>& affinity, int k, Rng* rng,
    int iterations) {
  const int n = static_cast<int>(adjacency.size());
  if (k <= 0 || k > n) {
    return Status::InvalidArgument("subspace size k out of range");
  }
  // Degrees of the affinity-weighted graph; isolated nodes get degree 1 so
  // the normalization stays finite (their rows are zero anyway).
  std::vector<double> degree(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j : adjacency[i]) degree[i] += affinity(i, j);
    if (degree[i] <= 1e-12) degree[i] = 1.0;
  }
  std::vector<double> inv_sqrt_deg(n);
  for (int i = 0; i < n; ++i) inv_sqrt_deg[i] = 1.0 / std::sqrt(degree[i]);

  // Operator application: y = (I + D^-1/2 A D^-1/2) x, columnwise.
  auto apply = [&](const Matrix& x, Matrix* y) {
    const size_t cols = x.cols();
    *y = x;  // The I term.
    for (int i = 0; i < n; ++i) {
      for (int j : adjacency[i]) {
        const double w = affinity(i, j) * inv_sqrt_deg[i] * inv_sqrt_deg[j];
        for (size_t c = 0; c < cols; ++c) (*y)(i, c) += w * x(j, c);
      }
    }
  };

  Matrix x(n, k);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < k; ++c) x(r, c) = rng->Normal();
  }
  Orthonormalize(&x, rng);
  Matrix y;
  for (int it = 0; it < iterations; ++it) {
    apply(x, &y);
    x = y;
    Orthonormalize(&x, rng);
  }
  return x;
}

Result<SpectralResult> SpectralDeltaClustering(
    const AdjacencyList& adjacency, const std::vector<Feature>& features,
    const DistanceMetric& metric, const SpectralConfig& config) {
  const int n = static_cast<int>(adjacency.size());
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (features.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument("features size mismatch");
  }
  if (config.delta < 0) {
    return Status::InvalidArgument("delta must be non-negative");
  }
  Rng rng(config.seed);

  const double sigma = std::max(config.sigma_fraction * config.delta, 1e-9);
  auto affinity = [&](int i, int j) {
    const double d = metric.Distance(features[i], features[j]);
    if (config.paper_literal_affinity) return d;
    return std::exp(-d * d / (2.0 * sigma * sigma));
  };

  // Recursive spectral bisection: a connected component that satisfies the
  // pairwise delta-condition becomes one cluster; otherwise it is split in
  // two by k-means (k = 2) on its own NJW embedding and the connected pieces
  // recurse.  This realizes the paper's "repeat with different k until every
  // cluster satisfies the delta-condition" search in its strongest form.
  SpectralResult result;
  result.clustering.root_of.assign(n, -1);
  result.chosen_k = 0;

  // Emits `members` as one final cluster rooted at its medoid.
  auto emit = [&](const std::vector<int>& members) {
    int root = members[0];
    double best = 1e300;
    for (int cand : members) {
      double worst = 0.0;
      for (int other : members) {
        worst =
            std::max(worst, metric.Distance(features[cand], features[other]));
      }
      if (worst < best) {
        best = worst;
        root = cand;
      }
    }
    for (int m : members) result.clustering.root_of[m] = root;
    ++result.chosen_k;
  };

  // Returns the farthest-from-`from` member (ties to smaller id).
  auto farthest = [&](const std::vector<int>& members, int from) {
    int best = members[0];
    double best_d = -1.0;
    for (int m : members) {
      const double d = metric.Distance(features[from], features[m]);
      if (d > best_d) {
        best_d = d;
        best = m;
      }
    }
    return best;
  };

  std::vector<std::vector<int>> work;
  // Seed the recursion with the connected components of the whole graph.
  {
    const std::vector<int> comp = ConnectedComponents(adjacency);
    std::map<int, std::vector<int>> groups;
    for (int i = 0; i < n; ++i) groups[comp[i]].push_back(i);
    for (auto& [id, members] : groups) {
      (void)id;
      work.push_back(std::move(members));
    }
  }

  while (!work.empty()) {
    std::vector<int> members = std::move(work.back());
    work.pop_back();
    // Compact already?
    bool compact = true;
    for (size_t a = 0; a < members.size() && compact; ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        if (metric.Distance(features[members[a]], features[members[b]]) >
            config.delta + 1e-12) {
          compact = false;
          break;
        }
      }
    }
    if (compact) {
      emit(members);
      continue;
    }

    // Induced subgraph in local indices.
    const int m = static_cast<int>(members.size());
    std::map<int, int> local;
    for (int i = 0; i < m; ++i) local[members[i]] = i;
    AdjacencyList sub(m);
    for (int i = 0; i < m; ++i) {
      for (int nb : adjacency[members[i]]) {
        auto it = local.find(nb);
        if (it != local.end()) sub[i].push_back(it->second);
      }
    }
    auto sub_affinity = [&](int i, int j) {
      return affinity(members[i], members[j]);
    };

    // 2-way NJW split.
    std::vector<int> assignment(m, 0);
    bool split_ok = false;
    Result<Matrix> vecs = TopEigenvectorsOfNormalizedAffinity(
        sub, sub_affinity, std::min(2, m), &rng, 150);
    if (vecs.ok() && m >= 2) {
      const int dim = static_cast<int>(vecs.value().cols());
      std::vector<Vector> points(m, Vector(dim, 0.0));
      for (int i = 0; i < m; ++i) {
        double norm = 0.0;
        for (int c = 0; c < dim; ++c) {
          norm += vecs.value()(i, c) * vecs.value()(i, c);
        }
        norm = std::sqrt(std::max(norm, 1e-12));
        for (int c = 0; c < dim; ++c) {
          points[i][c] = vecs.value()(i, c) / norm;
        }
      }
      Result<KMeansResult> km =
          KMeans(points, 2, &rng, 100, config.kmeans_restarts);
      if (km.ok()) {
        assignment = km.value().assignment;
        int count0 = 0;
        for (int a : assignment) count0 += a == 0 ? 1 : 0;
        split_ok = count0 > 0 && count0 < m;
      }
    }
    if (!split_ok) {
      // Fallback that always makes progress: bipartition around the two
      // mutually farthest features (they exist: the component violates
      // delta, so its diameter is positive).
      const int p1 = farthest(members, members[0]);
      const int p2 = farthest(members, p1);
      for (int i = 0; i < m; ++i) {
        const double d1 = metric.Distance(features[members[i]], features[p1]);
        const double d2 = metric.Distance(features[members[i]], features[p2]);
        assignment[i] = d1 <= d2 ? 0 : 1;
      }
    }

    // Connected components of each side recurse.
    for (int side = 0; side < 2; ++side) {
      std::vector<char> mask(n, 0);
      bool any = false;
      for (int i = 0; i < m; ++i) {
        if (assignment[i] == side) {
          mask[members[i]] = 1;
          any = true;
        }
      }
      if (!any) continue;
      const std::vector<int> comp = InducedComponents(adjacency, mask);
      std::map<int, std::vector<int>> groups;
      for (int i = 0; i < m; ++i) {
        if (assignment[i] == side) groups[comp[members[i]]].push_back(members[i]);
      }
      for (auto& [id, g] : groups) {
        (void)id;
        work.push_back(std::move(g));
      }
    }
  }

  // Merge-back pass: top-down bisection can overshoot, so greedily re-merge
  // adjacent clusters whenever the union still satisfies the
  // delta-condition, smallest union diameter first.  The base station has
  // all features, so this is free for the centralized algorithm.
  for (;;) {
    auto groups = result.clustering.Groups();
    // Adjacent root pairs.
    std::set<std::pair<int, int>> adjacent;
    for (int u = 0; u < n; ++u) {
      for (int v : adjacency[u]) {
        const int ru = result.clustering.root_of[u];
        const int rv = result.clustering.root_of[v];
        if (ru != rv) adjacent.insert(std::minmax(ru, rv));
      }
    }
    std::map<int, const std::vector<int>*> members_of;
    for (const auto& [root, members] : groups) members_of[root] = &members;
    double best_diameter = 1e300;
    std::pair<int, int> best_pair{-1, -1};
    for (const auto& [ra, rb] : adjacent) {
      double diameter = 0.0;
      bool ok = true;
      const auto& ma = *members_of[ra];
      const auto& mb = *members_of[rb];
      for (size_t a = 0; a < ma.size() && ok; ++a) {
        for (size_t b = 0; b < mb.size(); ++b) {
          const double d =
              metric.Distance(features[ma[a]], features[mb[b]]);
          diameter = std::max(diameter, d);
          if (d > config.delta + 1e-12) {
            ok = false;
            break;
          }
        }
      }
      if (ok && diameter < best_diameter) {
        best_diameter = diameter;
        best_pair = {ra, rb};
      }
    }
    if (best_pair.first < 0) break;
    // Merge rb into ra; re-root at the union's medoid.
    std::vector<int> merged = *members_of[best_pair.first];
    merged.insert(merged.end(), members_of[best_pair.second]->begin(),
                  members_of[best_pair.second]->end());
    --result.chosen_k;
    int root = merged[0];
    double best = 1e300;
    for (int cand : merged) {
      double worst = 0.0;
      for (int other : merged) {
        worst =
            std::max(worst, metric.Distance(features[cand], features[other]));
      }
      if (worst < best) {
        best = worst;
        root = cand;
      }
    }
    for (int m : merged) result.clustering.root_of[m] = root;
  }
  return result;
}

}  // namespace elink
