// Distributed hierarchical clustering baseline (paper Section 8.3).
//
// Every node starts as a singleton cluster; in each round, spatially
// neighboring clusters evaluate merger candidates.  A pair (Ci, Cj) is a
// candidate when the safe bound m_i + d(F_ri, F_rj) + m_j <= delta holds
// (m is the cluster's feature diameter), its fitness is the paper's merged
// diameter estimate m_ij, and two clusters merge when each is the other's
// best candidate.  Rounds repeat until no merger is possible.
//
// Message accounting follows the paper's discussion of Fig. 13: boundary
// nodes exchange (root feature, diameter) with each adjacent cluster, every
// candidate evaluation is propagated to the cluster leader over the cluster's
// internal tree, and merge decisions are broadcast to all members — which is
// why this algorithm's communication scales as O(N^2).
#ifndef ELINK_BASELINES_HIERARCHICAL_H_
#define ELINK_BASELINES_HIERARCHICAL_H_

#include "cluster/clustering.h"
#include "common/status.h"
#include "metric/distance.h"
#include "sim/stats.h"

namespace elink {

/// Result of the hierarchical algorithm.
struct HierarchicalResult {
  Clustering clustering;
  MessageStats stats;
  int rounds = 0;
  int merges = 0;
};

/// Runs hierarchical merging to a fixed point.  The output is a valid
/// delta-clustering: merges only happen under the safe diameter bound, and
/// stored diameters are maintained exactly, so pairwise compactness holds.
Result<HierarchicalResult> HierarchicalClustering(
    const AdjacencyList& adjacency, const std::vector<Feature>& features,
    const DistanceMetric& metric, double delta);

}  // namespace elink

#endif  // ELINK_BASELINES_HIERARCHICAL_H_
