// Communication cost models of the centralized baselines (Section 8.3/8.5).
//
// Two centralized variants are compared in the paper:
//  * raw:   every new measurement is forwarded to the base station
//           (the upper curve of Fig. 12);
//  * model: each node fits its model locally and transmits the coefficients
//           only when they drift beyond the slack threshold [25]
//           (the "centralized" curve of Figs. 10, 12, 13).
// Each transmission costs its payload units per hop on the shortest path to
// the base station.
#ifndef ELINK_BASELINES_CENTRALIZED_COST_H_
#define ELINK_BASELINES_CENTRALIZED_COST_H_

#include <memory>
#include <vector>

#include "metric/distance.h"
#include "sim/graph.h"
#include "sim/stats.h"
#include "sim/topology.h"

namespace elink {

/// The node nearest the deployment centroid — the conventional base-station
/// placement for centralized collection.
int PickBaseStation(const Topology& topology);

/// \brief Raw-data centralized baseline: every measurement travels to the
/// base station.
class CentralizedRawUpdater {
 public:
  CentralizedRawUpdater(const Topology& topology, int base_station);

  /// Records one raw measurement from `node` (one data value per hop).
  void Measurement(int node);

  const MessageStats& stats() const { return stats_; }

 private:
  RoutingTable routes_;
  MessageStats stats_;
};

/// \brief Model-coefficient centralized baseline with slack: a node re-sends
/// its coefficients when they drift more than `slack` from the last value
/// the base station has (Olston-style adaptive precision [25]).
class CentralizedModelUpdater {
 public:
  CentralizedModelUpdater(const Topology& topology, int base_station,
                          std::shared_ptr<const DistanceMetric> metric,
                          double slack,
                          std::vector<Feature> initial_features);

  /// Applies a feature update at `node`; transmits if the slack is violated.
  /// Returns true when a transmission happened.
  bool UpdateFeature(int node, const Feature& updated);

  const MessageStats& stats() const { return stats_; }

  /// The base station's current view of all features (for clustering there).
  const std::vector<Feature>& base_station_view() const { return last_sent_; }

 private:
  RoutingTable routes_;
  std::shared_ptr<const DistanceMetric> metric_;
  double slack_;
  std::vector<Feature> last_sent_;
  MessageStats stats_;
};

}  // namespace elink

#endif  // ELINK_BASELINES_CENTRALIZED_COST_H_
