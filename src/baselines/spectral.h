// Centralized spectral clustering baseline (paper Section 8.3).
//
// All model coefficients are collected at a base station, which runs the
// Ng-Jordan-Weiss spectral algorithm [22] on the communication graph's
// affinity matrix: normalized Laplacian, top-k eigenvectors, k-means on the
// row-normalized embedding.  The algorithm is repeated with growing k and the
// smallest k is kept such that every resulting cluster satisfies the
// delta-condition (clusters are additionally split into connected components,
// as Definition 1 requires connectivity).
//
// Affinity: we default to the standard NJW Gaussian kernel
// exp(-d^2 / (2 sigma^2)) on communication-graph edges.  The paper's printed
// formula (a(i,j) = d itself on edges) inverts similarity — an apparent typo
// — but is available behind `paper_literal_affinity` for comparison.
#ifndef ELINK_BASELINES_SPECTRAL_H_
#define ELINK_BASELINES_SPECTRAL_H_

#include <functional>

#include "cluster/clustering.h"
#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "metric/distance.h"
#include "sim/graph.h"

namespace elink {

/// Tunables of the spectral baseline.
struct SpectralConfig {
  double delta = 1.0;
  /// Gaussian affinity bandwidth as a fraction of delta.
  double sigma_fraction = 1.0;
  /// Use the paper's literal affinity a(i,j) = d(F_i, F_j) on edges.
  bool paper_literal_affinity = false;
  /// Cap on the k search (and on the eigen-subspace size); the search grows
  /// the subspace on demand up to the network size.
  int initial_k_cap = 32;
  int kmeans_restarts = 4;
  uint64_t seed = 17;
};

/// Result of the spectral search.
struct SpectralResult {
  Clustering clustering;
  /// The k at which the delta-condition was first satisfied.
  int chosen_k = 0;
};

/// Runs the NJW + smallest-k search.  The returned clustering is a valid
/// delta-clustering (components are delta-compact and connected).
Result<SpectralResult> SpectralDeltaClustering(
    const AdjacencyList& adjacency, const std::vector<Feature>& features,
    const DistanceMetric& metric, const SpectralConfig& config);

/// Top-k eigenvectors (by algebraically largest eigenvalue) of the shifted
/// normalized affinity operator I + D^{-1/2} A D^{-1/2}, computed by
/// orthogonal (subspace) iteration against the sparse edge structure.
/// `affinity(i, j)` is consulted only for communication-graph edges.
/// Exposed for tests.  Returns an n x k column matrix.
Result<Matrix> TopEigenvectorsOfNormalizedAffinity(
    const AdjacencyList& adjacency,
    const std::function<double(int, int)>& affinity, int k, Rng* rng,
    int iterations = 200);

}  // namespace elink

#endif  // ELINK_BASELINES_SPECTRAL_H_
