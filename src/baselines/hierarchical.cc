#include "baselines/hierarchical.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <set>

#include "proto/wire.h"

namespace elink {

namespace {

/// Hop distance from `node` to `root` inside the cluster's induced subgraph.
int ClusterTreeHops(const AdjacencyList& adjacency,
                    const std::vector<int>& root_of, int node, int root) {
  if (node == root) return 0;
  std::vector<int> dist(adjacency.size(), -1);
  std::deque<int> queue{root};
  dist[root] = 0;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    if (u == node) return dist[u];
    for (int v : adjacency[u]) {
      if (dist[v] < 0 && root_of[v] == root_of[root]) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  ELINK_CHECK(false);  // Clusters are connected by construction.
  return -1;
}

}  // namespace

Result<HierarchicalResult> HierarchicalClustering(
    const AdjacencyList& adjacency, const std::vector<Feature>& features,
    const DistanceMetric& metric, double delta) {
  const int n = static_cast<int>(adjacency.size());
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (features.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument("features size mismatch");
  }
  if (delta < 0) return Status::InvalidArgument("delta must be non-negative");

  HierarchicalResult result;
  const int dim = static_cast<int>(features[0].size());

  // Cluster state: root per node, and per root the paper's "feature
  // diameter" m -- which its merge formula max(m_i, m_j + d(r_i, r_j))
  // reveals to be the cluster *radius* around the leader's feature.  The
  // candidate screen m_i + d + m_j <= delta then bounds every cross-cluster
  // pair, and induction over merges bounds all pairs by delta.
  std::vector<int> root_of(n);
  std::map<int, double> radius;
  std::map<int, std::vector<int>> members;
  for (int i = 0; i < n; ++i) {
    root_of[i] = i;
    radius[i] = 0.0;
    members[i] = {i};
  }

  for (;;) {
    ++result.rounds;
    // Adjacent cluster pairs and one witnessing boundary edge per pair.
    std::map<std::pair<int, int>, std::pair<int, int>> boundary;
    for (int u = 0; u < n; ++u) {
      for (int v : adjacency[u]) {
        const int ru = root_of[u];
        const int rv = root_of[v];
        if (ru == rv || u > v) continue;
        // Witness endpoints stored in the same order as the sorted root key.
        const auto key = std::minmax(ru, rv);
        const auto witness_pair = ru <= rv ? std::make_pair(u, v)
                                           : std::make_pair(v, u);
        boundary.emplace(std::make_pair(key.first, key.second), witness_pair);
      }
    }

    // Candidate evaluation with message accounting.
    std::map<int, std::pair<double, int>> best;  // root -> (fitness, partner)
    for (const auto& [pair, witness] : boundary) {
      const auto [ri, rj] = pair;
      // Boundary nodes exchange (root feature, diameter) across the edge:
      // dim + 1 coefficients framed with the sender's root id.
      const uint64_t exchange_frame = wire::NominalFrameSize(1, dim + 1);
      result.stats.Record("hc_boundary_exchange", dim + 1, exchange_frame);
      result.stats.Record("hc_boundary_exchange", dim + 1, exchange_frame);
      // Each side relays the candidate info to its cluster leader.
      const int hops_i =
          ClusterTreeHops(adjacency, root_of, witness.first, ri);
      const int hops_j =
          ClusterTreeHops(adjacency, root_of, witness.second, rj);
      for (int h = 0; h < hops_i; ++h) {
        result.stats.Record("hc_leader_relay", dim + 1, exchange_frame);
      }
      for (int h = 0; h < hops_j; ++h) {
        result.stats.Record("hc_leader_relay", dim + 1, exchange_frame);
      }
      const double d_roots =
          metric.Distance(features[ri], features[rj]);
      if (radius[ri] + d_roots + radius[rj] > delta + 1e-12) {
        continue;  // Ruled out: merger could violate the delta-condition.
      }
      // Fitness: the paper's merged-radius estimate.
      const double mi = radius[ri];
      const double mj = radius[rj];
      const double fitness = mi >= mj ? std::max(mi, mj + d_roots)
                                      : std::max(mj, mi + d_roots);
      auto consider = [&](int self, int partner) {
        auto it = best.find(self);
        if (it == best.end() || fitness < it->second.first ||
            (fitness == it->second.first && partner < it->second.second)) {
          best[self] = {fitness, partner};
        }
      };
      consider(ri, rj);
      consider(rj, ri);
    }

    // Mutual best candidates merge.
    std::vector<std::pair<int, int>> merges;
    for (const auto& [ri, choice] : best) {
      const int rj = choice.second;
      auto it = best.find(rj);
      if (it != best.end() && it->second.second == ri && ri < rj) {
        merges.emplace_back(ri, rj);
      }
    }
    if (merges.empty()) break;

    std::set<int> merged_this_round;
    for (const auto& [ri, rj] : merges) {
      // A cluster can appear in at most one mutual pair, but guard anyway.
      if (merged_this_round.count(ri) || merged_this_round.count(rj)) {
        continue;
      }
      merged_this_round.insert(ri);
      merged_this_round.insert(rj);
      ++result.merges;
      // The surviving root is the one of the larger-radius cluster (ties
      // break to the smaller id), matching the paper's fitness asymmetry.
      int keep = ri, drop = rj;
      if (radius[rj] > radius[ri] ||
          (radius[rj] == radius[ri] && rj < ri)) {
        std::swap(keep, drop);
      }
      // Merge-decision broadcast: every member of both clusters learns the
      // new leader (one message per member over the cluster trees).
      const size_t total =
          members[keep].size() + members[drop].size();
      for (size_t m = 0; m + 1 < total + 1; ++m) {
        result.stats.Record("hc_merge_broadcast", 1,
                            wire::NominalFrameSize(1, 0));
      }
      // Radius update per the paper's fitness formula: the new leader's
      // radius bound is max(m_keep, m_drop + d(r_keep, r_drop)).  Validity
      // follows inductively: every cross-cluster pair was bounded by
      // m_i + d + m_j <= delta at its merge.
      const double d_roots =
          metric.Distance(features[keep], features[drop]);
      const double merged_radius =
          std::max(radius[keep], radius[drop] + d_roots);
      for (int m : members[drop]) root_of[m] = keep;
      members[keep].insert(members[keep].end(), members[drop].begin(),
                           members[drop].end());
      members.erase(drop);
      radius.erase(drop);
      radius[keep] = merged_radius;
    }
  }

  result.clustering.root_of = std::move(root_of);
  return result;
}

}  // namespace elink
