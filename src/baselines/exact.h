// Exact optimal delta-clustering for small instances.
//
// Theorem 1 shows minimizing the number of delta-clusters is NP-complete and
// inapproximable, so no polynomial algorithm exists; this branch-and-bound
// searches all partitions for instances of a dozen-odd nodes.  It provides
// the ground-truth lower bound that the quality tests compare ELink and the
// baselines against.
#ifndef ELINK_BASELINES_EXACT_H_
#define ELINK_BASELINES_EXACT_H_

#include "cluster/clustering.h"
#include "common/status.h"
#include "metric/distance.h"

namespace elink {

/// Finds a minimum-cardinality valid delta-clustering by exhaustive
/// branch-and-bound over node-to-cluster assignments (pruned by pairwise
/// compactness and by the best count found so far; connectivity is checked
/// at complete assignments).  Errors for graphs larger than `max_nodes`.
Result<Clustering> ExactOptimalClustering(const AdjacencyList& adjacency,
                                          const std::vector<Feature>& features,
                                          const DistanceMetric& metric,
                                          double delta, int max_nodes = 14);

}  // namespace elink

#endif  // ELINK_BASELINES_EXACT_H_
