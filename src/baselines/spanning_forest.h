// Spanning-forest clustering baseline (paper Section 8.3).
//
// Phase 1 decomposes the network into a forest: every node picks, among its
// neighbors with a *smaller id* (a partial order that prevents cycles), the
// one with the smallest feature distance as its parent.  Phase 2 checks each
// tree for delta-compactness bottom-up: every node tracks `height`, an upper
// bound on the path-sum feature distance to any leaf of its cluster subtree,
// and when two branches meeting at a node could put two members more than
// delta apart, the heavier branch is detached as a new cluster.
//
// Time and message complexity O(N).  Greedy and suboptimal: this is the
// "cheap but coarse" end of the comparison in Figs. 8-9.
#ifndef ELINK_BASELINES_SPANNING_FOREST_H_
#define ELINK_BASELINES_SPANNING_FOREST_H_

#include "cluster/clustering.h"
#include "common/status.h"
#include "metric/distance.h"
#include "sim/stats.h"

namespace elink {

/// Result of the spanning-forest algorithm.
struct SpanningForestResult {
  Clustering clustering;
  /// Phase-1 feature exchanges plus phase-2 height reports and detach
  /// instructions, in paper message units.
  MessageStats stats;
  /// Forest parent per node after phase 1 (parent[i] == i at forest roots).
  std::vector<int> forest_parent;
};

/// Runs both phases.  The output is a valid delta-clustering: tree edges are
/// communication edges (connectivity) and the height bound enforces pairwise
/// compactness via the triangle inequality.
Result<SpanningForestResult> SpanningForestClustering(
    const AdjacencyList& adjacency, const std::vector<Feature>& features,
    const DistanceMetric& metric, double delta);

}  // namespace elink

#endif  // ELINK_BASELINES_SPANNING_FOREST_H_
