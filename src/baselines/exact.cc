#include "baselines/exact.h"

#include <vector>

namespace elink {

namespace {

class ExactSearch {
 public:
  ExactSearch(const AdjacencyList& adjacency,
              const std::vector<Feature>& features,
              const DistanceMetric& metric, double delta)
      : adjacency_(adjacency),
        features_(features),
        metric_(metric),
        pool_(features),
        delta_(delta),
        n_(static_cast<int>(adjacency.size())),
        assignment_(n_, -1),
        best_count_(n_ + 1) {}

  Clustering Run() {
    Recurse(0, 0);
    Clustering out;
    out.root_of.assign(n_, -1);
    // Root of each cluster: its smallest member.
    std::vector<int> cluster_root(best_count_, -1);
    for (int i = 0; i < n_; ++i) {
      const int c = best_assignment_[i];
      if (cluster_root[c] < 0) cluster_root[c] = i;
      out.root_of[i] = cluster_root[c];
    }
    return out;
  }

 private:
  void Recurse(int node, int clusters_used) {
    if (clusters_used >= best_count_) return;  // Cannot improve.
    if (node == n_) {
      if (AllClustersConnected(clusters_used)) {
        best_count_ = clusters_used;
        best_assignment_ = assignment_;
      }
      return;
    }
    // Try joining each existing cluster (compactness pruning).
    for (int c = 0; c < clusters_used; ++c) {
      if (!CompatibleWithCluster(node, c)) continue;
      assignment_[node] = c;
      Recurse(node + 1, clusters_used);
    }
    // Open a new cluster.
    assignment_[node] = clusters_used;
    Recurse(node + 1, clusters_used + 1);
    assignment_[node] = -1;
  }

  bool CompatibleWithCluster(int node, int c) const {
    // One indexed batch over the cluster's current members (bit-identical
    // distances, so the search explores exactly the same tree).
    scratch_idx_.clear();
    for (int j = 0; j < node; ++j) {
      if (assignment_[j] == c) scratch_idx_.push_back(j);
    }
    if (scratch_idx_.empty()) return true;
    scratch_dist_.resize(scratch_idx_.size());
    metric_.BatchDistanceIndexed(features_[node], pool_, scratch_idx_.data(),
                                 scratch_idx_.size(), scratch_dist_.data());
    for (const double d : scratch_dist_) {
      if (d > delta_ + 1e-12) return false;
    }
    return true;
  }

  bool AllClustersConnected(int clusters_used) const {
    for (int c = 0; c < clusters_used; ++c) {
      std::vector<char> mask(n_, 0);
      for (int i = 0; i < n_; ++i) {
        if (assignment_[i] == c) mask[i] = 1;
      }
      if (!IsInducedConnected(adjacency_, mask)) return false;
    }
    return true;
  }

  const AdjacencyList& adjacency_;
  const std::vector<Feature>& features_;
  const DistanceMetric& metric_;
  const FeaturePool pool_;
  mutable std::vector<int> scratch_idx_;
  mutable std::vector<double> scratch_dist_;
  const double delta_;
  const int n_;
  std::vector<int> assignment_;
  std::vector<int> best_assignment_;
  int best_count_;
};

}  // namespace

Result<Clustering> ExactOptimalClustering(const AdjacencyList& adjacency,
                                          const std::vector<Feature>& features,
                                          const DistanceMetric& metric,
                                          double delta, int max_nodes) {
  const int n = static_cast<int>(adjacency.size());
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (n > max_nodes) {
    return Status::InvalidArgument(
        "instance too large for exact search (Theorem 1: NP-complete)");
  }
  if (features.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument("features size mismatch");
  }
  ExactSearch search(adjacency, features, metric, delta);
  return search.Run();
}

}  // namespace elink
