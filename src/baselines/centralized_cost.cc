#include "baselines/centralized_cost.h"

#include "proto/wire.h"
#include "sim/point.h"

namespace elink {

int PickBaseStation(const Topology& topology) {
  ELINK_CHECK(topology.num_nodes() > 0);
  const Point2D center{topology.width / 2.0, topology.height / 2.0};
  int best = 0;
  double best_d = EuclideanDistance(topology.positions[0], center);
  for (int i = 1; i < topology.num_nodes(); ++i) {
    const double d = EuclideanDistance(topology.positions[i], center);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

CentralizedRawUpdater::CentralizedRawUpdater(const Topology& topology,
                                             int base_station)
    : routes_(topology.adjacency, base_station) {}

void CentralizedRawUpdater::Measurement(int node) {
  const int hops = routes_.HopsToRoot(node);
  ELINK_CHECK(hops >= 0);
  // One raw measurement per hop: a minimal frame with a single coefficient.
  const uint64_t frame = wire::NominalFrameSize(0, 1);
  for (int h = 0; h < hops; ++h) stats_.Record("central_raw", 1, frame);
}

CentralizedModelUpdater::CentralizedModelUpdater(
    const Topology& topology, int base_station,
    std::shared_ptr<const DistanceMetric> metric, double slack,
    std::vector<Feature> initial_features)
    : routes_(topology.adjacency, base_station),
      metric_(std::move(metric)),
      slack_(slack),
      last_sent_(std::move(initial_features)) {
  ELINK_CHECK(slack_ >= 0.0);
}

bool CentralizedModelUpdater::UpdateFeature(int node, const Feature& updated) {
  if (metric_->Distance(last_sent_[node], updated) <= slack_ + 1e-12) {
    return false;
  }
  const int hops = routes_.HopsToRoot(node);
  ELINK_CHECK(hops >= 0);
  const int dim = static_cast<int>(updated.size());
  const uint64_t frame = wire::NominalFrameSize(0, updated.size());
  for (int h = 0; h < hops; ++h) stats_.Record("central_model", dim, frame);
  last_sent_[node] = updated;
  return true;
}

}  // namespace elink
