#include "index/backbone.h"

#include <algorithm>
#include <deque>
#include <set>

namespace elink {

Backbone Backbone::Build(const Clustering& clustering,
                         const AdjacencyList& adjacency,
                         MessageStats* build_stats,
                         const std::vector<Feature>* features,
                         const DistanceMetric* metric) {
  Backbone bb;
  const int n = static_cast<int>(adjacency.size());

  std::set<int> leader_set;
  for (int i = 0; i < n; ++i) leader_set.insert(clustering.root_of[i]);
  bb.leaders_.assign(leader_set.begin(), leader_set.end());

  // Cluster-level adjacency from boundary edges, with discovery accounting:
  // each boundary pair exchanges leader ids across the edge once.
  std::map<int, std::set<int>> cluster_adj;
  std::set<std::pair<int, int>> seen_pairs;
  for (int u = 0; u < n; ++u) {
    for (int v : adjacency[u]) {
      if (u > v) continue;
      const int ru = clustering.root_of[u];
      const int rv = clustering.root_of[v];
      if (ru == rv) continue;
      cluster_adj[ru].insert(rv);
      cluster_adj[rv].insert(ru);
      if (build_stats != nullptr &&
          seen_pairs.insert(std::minmax(ru, rv)).second) {
        build_stats->Record("backbone_build", 1);
        build_stats->Record("backbone_build", 1);
      }
    }
  }

  // Hop tables per leader (used for backbone link costs).
  for (int leader : bb.leaders_) {
    bb.hops_from_leader_[leader] = HopDistancesFrom(adjacency, leader);
    bb.tree_children_[leader] = {};
  }

  if (features != nullptr && metric != nullptr && bb.leaders_.size() > 1) {
    // Feature-aware tree: root at the leader medoid, then Prim's algorithm
    // with leader feature distances as weights, so feature-similar clusters
    // land in the same subtree.
    int root = bb.leaders_.front();
    double best_ecc = 1e300;
    for (int cand : bb.leaders_) {
      double ecc = 0.0;
      for (int other : bb.leaders_) {
        ecc = std::max(
            ecc, metric->Distance((*features)[cand], (*features)[other]));
      }
      if (ecc < best_ecc) {
        best_ecc = ecc;
        root = cand;
      }
    }
    bb.tree_root_ = root;
    bb.tree_parent_[root] = root;
    std::set<int> visited{root};
    while (visited.size() < bb.leaders_.size()) {
      // Cheapest cluster-graph edge from the tree to an unvisited leader.
      double best_w = 1e300;
      int best_from = -1, best_to = -1;
      for (int in : visited) {
        for (int out : cluster_adj[in]) {
          if (visited.count(out)) continue;
          const double w =
              metric->Distance((*features)[in], (*features)[out]);
          if (w < best_w || (w == best_w && out < best_to)) {
            best_w = w;
            best_from = in;
            best_to = out;
          }
        }
      }
      ELINK_CHECK(best_to >= 0);  // Cluster graph is connected.
      bb.tree_parent_[best_to] = best_from;
      bb.tree_children_[best_from].push_back(best_to);
      visited.insert(best_to);
    }
    for (auto& [leader, kids] : bb.tree_children_) {
      (void)leader;
      std::sort(kids.begin(), kids.end());
    }
  } else {
    // BFS spanning tree over the cluster graph from the smallest leader id.
    bb.tree_root_ = bb.leaders_.front();
    bb.tree_parent_[bb.tree_root_] = bb.tree_root_;
    std::deque<int> queue{bb.tree_root_};
    std::set<int> visited{bb.tree_root_};
    while (!queue.empty()) {
      const int cur = queue.front();
      queue.pop_front();
      for (int nb : cluster_adj[cur]) {
        if (visited.insert(nb).second) {
          bb.tree_parent_[nb] = cur;
          bb.tree_children_[cur].push_back(nb);
          queue.push_back(nb);
        }
      }
    }
    // A connected communication graph yields a connected cluster graph.
    ELINK_CHECK(visited.size() == bb.leaders_.size());
  }

  for (int leader : bb.leaders_) {
    const int parent = bb.tree_parent_[leader];
    if (parent != leader) {
      const int hops = bb.route_hops(leader, parent);
      bb.total_tree_hops_ += hops;
      if (build_stats != nullptr) {
        // Tree agreement: each leader notifies its chosen parent.
        for (int h = 0; h < hops; ++h) {
          build_stats->Record("backbone_build", 1);
        }
      }
    }
  }

  // Steiner flood structure: the communication-graph BFS tree rooted at the
  // backbone root, pruned to the union of root-to-leader paths.  Shared
  // prefixes are a single branch, so one flood reaches every leader in
  // (marked nodes - 1) transmissions.
  {
    const std::vector<int> parents =
        BfsTreeParents(adjacency, bb.tree_root_);
    std::set<int> marked;
    for (int leader : bb.leaders_) {
      for (int cur = leader; marked.insert(cur).second && cur != bb.tree_root_;
           cur = parents[cur]) {
      }
    }
    marked.insert(bb.tree_root_);
    bb.flood_hops_ = static_cast<int>(marked.size()) - 1;
  }
  return bb;
}

int Backbone::route_hops(int leader_a, int leader_b) const {
  if (leader_a == leader_b) return 0;
  const auto it = hops_from_leader_.find(leader_a);
  ELINK_CHECK(it != hops_from_leader_.end());
  const int hops = it->second[leader_b];
  ELINK_CHECK(hops > 0);
  return hops;
}

}  // namespace elink
