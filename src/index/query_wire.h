// Wire schemas of the distributed range-query protocol (proto/codec.h).
//
// Layouts match the original hand-rolled encoders bit for bit.  Routed
// messages carry the logical sender in their first int (the sim delivers
// routed frames with `from` = last relay hop); deadline budgets ride as
// optional trailing ints, fixed-point encoded by the protocol.
#ifndef ELINK_INDEX_QUERY_WIRE_H_
#define ELINK_INDEX_QUERY_WIRE_H_

#include <optional>
#include <vector>

namespace elink {
namespace query_wire {

/// Initiator -> cluster root, hop by hop over the cluster tree.
/// Payload = query feature + radius.
struct Up {
  static constexpr int kType = 1;
  static constexpr const char* kCategory = "query_route";
  std::vector<double> payload;
  template <class V>
  void VisitFields(V& v) {
    v.Block(payload);
  }
  bool operator==(const Up&) const = default;
};

/// Leader -> backbone root, up the leader chain.  Payload present only for
/// multi-unit queries (non-empty feature).
struct ToBackboneRoot {
  static constexpr int kType = 2;
  static constexpr const char* kCategory = "query_route";
  long long sender = 0;
  std::vector<double> payload;
  template <class V>
  void VisitFields(V& v) {
    v.I64(sender);
    v.Block(payload);
  }
  bool operator==(const ToBackboneRoot&) const = default;
};

/// Backbone parent -> child: process your subtree.  `budget` is the child's
/// fixed-point flush deadline (always sent; meaningful when deadlines are
/// configured).
struct Visit {
  static constexpr int kType = 3;
  static constexpr const char* kCategory = "query_backbone";
  long long sender = 0;
  std::optional<long long> budget;
  std::vector<double> payload;
  template <class V>
  void VisitFields(V& v) {
    v.I64(sender);
    v.OptI64(budget);
    v.Block(payload);
  }
  bool operator==(const Visit&) const = default;
};

/// Whole backbone subtree matches: report the cached population.
struct BackboneInclude {
  static constexpr int kType = 4;
  static constexpr const char* kCategory = "query_backbone";
  long long sender = 0;
  std::vector<double> payload;
  template <class V>
  void VisitFields(V& v) {
    v.I64(sender);
    v.Block(payload);
  }
  bool operator==(const BackboneInclude&) const = default;
};

/// Aggregated count back to the backbone parent.
struct BackboneReply {
  static constexpr int kType = 5;
  static constexpr const char* kCategory = "query_collect";
  long long count = 0;
  long long incomplete = 0;
  template <class V>
  void VisitFields(V& v) {
    v.I64(count);
    v.I64(incomplete);
  }
  bool operator==(const BackboneReply&) const = default;
};

/// M-tree descent into a cluster-tree child.  `budget` rides only when node
/// deadlines are configured.
struct Descend {
  static constexpr int kType = 6;
  static constexpr const char* kCategory = "query_descend";
  std::optional<long long> budget;
  std::vector<double> payload;
  template <class V>
  void VisitFields(V& v) {
    v.OptI64(budget);
    v.Block(payload);
  }
  bool operator==(const Descend&) const = default;
};

/// Whole M-tree subtree matches: report the cached population.
struct DescendInclude {
  static constexpr int kType = 7;
  static constexpr const char* kCategory = "query_descend";
  std::vector<double> payload;
  template <class V>
  void VisitFields(V& v) {
    v.Block(payload);
  }
  bool operator==(const DescendInclude&) const = default;
};

/// Aggregated count back to the descent parent.
struct DescendReply {
  static constexpr int kType = 8;
  static constexpr const char* kCategory = "query_collect";
  long long count = 0;
  long long incomplete = 0;
  template <class V>
  void VisitFields(V& v) {
    v.I64(count);
    v.I64(incomplete);
  }
  bool operator==(const DescendReply&) const = default;
};

/// Backbone root -> initiator root -> initiator.
struct Answer {
  static constexpr int kType = 9;
  static constexpr const char* kCategory = "query_collect";
  long long count = 0;
  long long incomplete = 0;
  template <class V>
  void VisitFields(V& v) {
    v.I64(count);
    v.I64(incomplete);
  }
  bool operator==(const Answer&) const = default;
};

/// Applies `fn` to a default instance of every schema in this family — the
/// generic enumeration the wire-format tests round-trip all schemas through.
template <class F>
void ForEachSchema(F&& fn) {
  fn(Up{});
  fn(ToBackboneRoot{});
  fn(Visit{});
  fn(BackboneInclude{});
  fn(BackboneReply{});
  fn(Descend{});
  fn(DescendInclude{});
  fn(DescendReply{});
  fn(Answer{});
}

/// The accounting category of packet id `type` within this family, or null
/// for an id the family does not define — how a byte-level receiver
/// re-derives the category the radio frame deliberately omits.
inline const char* CategoryForType(int type) {
  switch (type) {
    case Up::kType:
      return Up::kCategory;
    case ToBackboneRoot::kType:
      return ToBackboneRoot::kCategory;
    case Visit::kType:
      return Visit::kCategory;
    case BackboneInclude::kType:
      return BackboneInclude::kCategory;
    case BackboneReply::kType:
      return BackboneReply::kCategory;
    case Descend::kType:
      return Descend::kCategory;
    case DescendInclude::kType:
      return DescendInclude::kCategory;
    case DescendReply::kType:
      return DescendReply::kCategory;
    case Answer::kType:
      return Answer::kCategory;
    default:
      return nullptr;
  }
}

}  // namespace query_wire
}  // namespace elink

#endif  // ELINK_INDEX_QUERY_WIRE_H_
