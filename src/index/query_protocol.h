// A fully distributed, message-passing execution of the Section-7.2 range
// query, run inside the discrete-event simulator.
//
// RangeQueryEngine (range_query.h) computes results centrally and *accounts*
// the messages a distributed execution would need.  This module is the
// distributed execution itself: every routing decision is made by a node
// from its locally held state — its cluster-tree links, its M-tree child
// summaries, and (at leaders) its backbone children's feature/radius
// summaries — and the answer aggregates back hop by hop.  Tests verify that
// the protocol's result (match count) equals the linear scan and that its
// transmitted units agree with the engine's cost model.
//
// Query semantics are aggregate (TAG-style): the initiator learns the number
// of matching nodes.  An id-returning variant would only change the size of
// the reply payloads.
#ifndef ELINK_INDEX_QUERY_PROTOCOL_H_
#define ELINK_INDEX_QUERY_PROTOCOL_H_

#include <map>
#include <memory>
#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "metric/distance.h"
#include "sim/network.h"
#include "sim/reliable.h"

namespace elink {

/// Outcome of one distributed range query.
struct DistributedQueryOutcome {
  /// Number of nodes whose features match (within r of q).  A lower bound
  /// when `complete` is false.
  long long match_count = 0;
  /// Simulated time from injection to the initiator holding the answer.
  double latency = 0.0;
  /// All transmissions of the run (categories query_route, query_backbone,
  /// query_descend, query_collect).
  MessageStats stats;
  /// True when every probed subtree contributed before its deadline; false
  /// when the answer is partial (replies lost, subtree leaders crashed).
  bool complete = true;
  /// Subtrees (backbone children or M-tree descents) whose replies never
  /// arrived and were written off at an aggregation deadline.
  long long unreachable_subtrees = 0;
  /// False when not even a partial answer reached the initiator (e.g. the
  /// backbone root or the initiator's own cluster root is dead);
  /// match_count and latency are then meaningless.
  bool answer_received = true;
};

/// \brief Executes range queries as an actual protocol over a Network.
///
/// Construction distributes the index state to the nodes (each node holds
/// only what Section 7 says it holds); Run() then injects a query at an
/// initiator and simulates until the answer returns.
class DistributedRangeQuery {
 public:
  /// Execution environment of the queries: delay regime, faults, deadlines.
  struct ProtocolOptions {
    bool synchronous = true;
    uint64_t seed = 1;
    /// Fault model applied to every Run (sim/fault.h).  Inert by default.
    FaultPlan fault;
    /// Topology dynamics applied to every Run (sim/churn.h): nodes joining,
    /// leaving, crashing-with-repair, links appearing or vanishing.  Inert
    /// by default.  A query racing churn degrades like one racing faults
    /// (partial or absent answers), never miscounts.
    ChurnPlan churn;
    /// When > 0, every aggregation point (leader or M-tree descent node)
    /// flushes a *partial* reply after waiting this long for its children,
    /// counting the missing subtrees as unreachable.  Pick a value larger
    /// than a couple of network traversals.  0 keeps the fault-free
    /// wait-for-everything behavior.
    double node_deadline = 0.0;
    /// When > 0, Run gives up entirely at this simulated time if no answer
    /// (not even a partial one) reached the initiator.  0 disables.
    double query_deadline = 0.0;
    /// Carry every protocol message over ReliableChannel (ack + retransmit
    /// with bounded retries; see sim/reliable.h).  Lets queries survive
    /// probabilistic loss; messages routed through *crashed* relays still
    /// give up and are written off at the deadlines.
    bool reliable_transport = false;
    /// Retransmission tuning when reliable_transport is set.  rto should
    /// exceed a round trip of the longest routed leg.
    ReliableChannel::Config reliable;
    /// Read-only observer (telemetry/tracer) bound to every Run's network.
    /// Not owned; attaching never changes the query's outcome.
    SimObserver* observer = nullptr;
  };

  /// `clustering`, `index`, and `backbone` describe the clustered network;
  /// their per-node slices are copied into the protocol nodes.
  DistributedRangeQuery(const Topology& topology,
                        const Clustering& clustering,
                        const ClusterIndex& index, const Backbone& backbone,
                        const std::vector<Feature>& features,
                        std::shared_ptr<const DistanceMetric> metric,
                        ProtocolOptions options);

  /// Back-compat convenience: fault-free options.
  DistributedRangeQuery(const Topology& topology,
                        const Clustering& clustering,
                        const ClusterIndex& index, const Backbone& backbone,
                        const std::vector<Feature>& features,
                        std::shared_ptr<const DistanceMetric> metric,
                        bool synchronous = true, uint64_t seed = 1);

  /// Runs one query to completion.  Under fault injection with deadlines
  /// configured the outcome may be flagged partial (`complete == false`)
  /// instead of an error; returns Internal only for genuine protocol bugs
  /// (non-termination without a fault plan, event-cap runaway).
  Result<DistributedQueryOutcome> Run(int initiator, const Feature& q,
                                      double r);

 private:
  const Topology& topology_;
  const Clustering& clustering_;
  const ClusterIndex& index_;
  const Backbone& backbone_;
  const std::vector<Feature>& features_;
  std::shared_ptr<const DistanceMetric> metric_;
  ProtocolOptions options_;

  // Upper-level summaries, precomputed once (leaders would learn these
  // during backbone construction).
  std::map<int, double> backbone_radius_;
  std::map<int, long long> backbone_population_;
};

}  // namespace elink

#endif  // ELINK_INDEX_QUERY_PROTOCOL_H_
