// A fully distributed, message-passing execution of the Section-7.2 range
// query, run inside the discrete-event simulator.
//
// RangeQueryEngine (range_query.h) computes results centrally and *accounts*
// the messages a distributed execution would need.  This module is the
// distributed execution itself: every routing decision is made by a node
// from its locally held state — its cluster-tree links, its M-tree child
// summaries, and (at leaders) its backbone children's feature/radius
// summaries — and the answer aggregates back hop by hop.  Tests verify that
// the protocol's result (match count) equals the linear scan and that its
// transmitted units agree with the engine's cost model.
//
// Query semantics are aggregate (TAG-style): the initiator learns the number
// of matching nodes.  An id-returning variant would only change the size of
// the reply payloads.
#ifndef ELINK_INDEX_QUERY_PROTOCOL_H_
#define ELINK_INDEX_QUERY_PROTOCOL_H_

#include <map>
#include <memory>
#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "metric/distance.h"
#include "sim/network.h"

namespace elink {

/// Outcome of one distributed range query.
struct DistributedQueryOutcome {
  /// Number of nodes whose features match (within r of q).
  long long match_count = 0;
  /// Simulated time from injection to the initiator holding the answer.
  double latency = 0.0;
  /// All transmissions of the run (categories query_route, query_backbone,
  /// query_descend, query_collect).
  MessageStats stats;
};

/// \brief Executes range queries as an actual protocol over a Network.
///
/// Construction distributes the index state to the nodes (each node holds
/// only what Section 7 says it holds); Run() then injects a query at an
/// initiator and simulates until the answer returns.
class DistributedRangeQuery {
 public:
  /// `clustering`, `index`, and `backbone` describe the clustered network;
  /// their per-node slices are copied into the protocol nodes.
  DistributedRangeQuery(const Topology& topology,
                        const Clustering& clustering,
                        const ClusterIndex& index, const Backbone& backbone,
                        const std::vector<Feature>& features,
                        std::shared_ptr<const DistanceMetric> metric,
                        bool synchronous = true, uint64_t seed = 1);

  /// Runs one query to completion.  Returns Internal if the protocol fails
  /// to terminate (a protocol bug; never expected).
  Result<DistributedQueryOutcome> Run(int initiator, const Feature& q,
                                      double r);

 private:
  const Topology& topology_;
  const Clustering& clustering_;
  const ClusterIndex& index_;
  const Backbone& backbone_;
  const std::vector<Feature>& features_;
  std::shared_ptr<const DistanceMetric> metric_;
  bool synchronous_;
  uint64_t seed_;

  // Upper-level summaries, precomputed once (leaders would learn these
  // during backbone construction).
  std::map<int, double> backbone_radius_;
  std::map<int, long long> backbone_population_;
};

}  // namespace elink

#endif  // ELINK_INDEX_QUERY_PROTOCOL_H_
