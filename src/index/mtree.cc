#include "index/mtree.h"

#include <algorithm>

namespace elink {

ClusterIndex ClusterIndex::Build(const Clustering& clustering,
                                 const std::vector<int>& tree_parent,
                                 const std::vector<Feature>& features,
                                 const DistanceMetric& metric,
                                 MessageStats* build_stats) {
  const int n = static_cast<int>(tree_parent.size());
  ClusterIndex index;
  index.features_ = features;
  index.parent_ = tree_parent;
  index.radius_.assign(n, 0.0);
  index.children_.assign(n, {});
  index.subtree_.assign(n, {});
  index.depth_.assign(n, 0);

  for (int i = 0; i < n; ++i) {
    ELINK_CHECK(clustering.root_of[i] >= 0);
    if (tree_parent[i] != i) index.children_[tree_parent[i]].push_back(i);
  }

  // Depths, then process nodes deepest-first so children finish before
  // parents (the bottom-up wave of Section 7.1).
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) {
    int d = 0;
    for (int cur = i; tree_parent[cur] != cur; cur = tree_parent[cur]) ++d;
    index.depth_[i] = d;
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (index.depth_[a] != index.depth_[b]) {
      return index.depth_[a] > index.depth_[b];
    }
    return a < b;
  });

  // Covering radii are batch scans: one SoA transpose of the feature set,
  // then each parent measures all its children with one indexed batch call
  // (bit-identical to per-child Distance, so radii — and everything derived
  // from them — are unchanged).
  const FeaturePool pool(features);
  std::vector<double> dists;
  const int dim = n > 0 ? static_cast<int>(features[0].size()) : 0;
  for (int i : order) {
    index.subtree_[i].push_back(i);
    const std::vector<int>& kids = index.children_[i];
    if (!kids.empty()) {
      dists.resize(kids.size());
      metric.BatchDistanceIndexed(features[i], pool, kids.data(), kids.size(),
                                  dists.data());
    }
    for (size_t c = 0; c < kids.size(); ++c) {
      const int child = kids[c];
      const double reach = dists[c] + index.radius_[child];
      index.radius_[i] = std::max(index.radius_[i], reach);
      index.subtree_[i].insert(index.subtree_[i].end(),
                               index.subtree_[child].begin(),
                               index.subtree_[child].end());
      if (build_stats != nullptr) {
        // Child reports (routing feature, radius) to its parent.
        build_stats->Record("mtree_build", dim + 1);
      }
    }
    std::sort(index.subtree_[i].begin(), index.subtree_[i].end());
  }

  // Exact root-ball radii, one per cluster root: batch each root against its
  // members (max over the same distance values, so order cannot matter).
  index.root_ball_.assign(n, 0.0);
  std::vector<std::vector<int>> members(n);
  for (int i = 0; i < n; ++i) members[clustering.root_of[i]].push_back(i);
  for (int root = 0; root < n; ++root) {
    if (members[root].empty()) continue;
    dists.resize(members[root].size());
    metric.BatchDistanceIndexed(features[root], pool, members[root].data(),
                                members[root].size(), dists.data());
    for (const double d : dists) {
      index.root_ball_[root] = std::max(index.root_ball_[root], d);
    }
  }
  return index;
}

}  // namespace elink
