#include "index/mtree.h"

#include <algorithm>

namespace elink {

ClusterIndex ClusterIndex::Build(const Clustering& clustering,
                                 const std::vector<int>& tree_parent,
                                 const std::vector<Feature>& features,
                                 const DistanceMetric& metric,
                                 MessageStats* build_stats) {
  const int n = static_cast<int>(tree_parent.size());
  ClusterIndex index;
  index.features_ = features;
  index.parent_ = tree_parent;
  index.radius_.assign(n, 0.0);
  index.children_.assign(n, {});
  index.subtree_.assign(n, {});
  index.depth_.assign(n, 0);

  for (int i = 0; i < n; ++i) {
    ELINK_CHECK(clustering.root_of[i] >= 0);
    if (tree_parent[i] != i) index.children_[tree_parent[i]].push_back(i);
  }

  // Depths, then process nodes deepest-first so children finish before
  // parents (the bottom-up wave of Section 7.1).
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) {
    int d = 0;
    for (int cur = i; tree_parent[cur] != cur; cur = tree_parent[cur]) ++d;
    index.depth_[i] = d;
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (index.depth_[a] != index.depth_[b]) {
      return index.depth_[a] > index.depth_[b];
    }
    return a < b;
  });

  const int dim = n > 0 ? static_cast<int>(features[0].size()) : 0;
  for (int i : order) {
    index.subtree_[i].push_back(i);
    for (int child : index.children_[i]) {
      const double reach = metric.Distance(features[i], features[child]) +
                           index.radius_[child];
      index.radius_[i] = std::max(index.radius_[i], reach);
      index.subtree_[i].insert(index.subtree_[i].end(),
                               index.subtree_[child].begin(),
                               index.subtree_[child].end());
      if (build_stats != nullptr) {
        // Child reports (routing feature, radius) to its parent.
        build_stats->Record("mtree_build", dim + 1);
      }
    }
    std::sort(index.subtree_[i].begin(), index.subtree_[i].end());
  }

  // Exact root-ball radii, one per cluster root.
  index.root_ball_.assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    const int root = clustering.root_of[i];
    index.root_ball_[root] = std::max(
        index.root_ball_[root], metric.Distance(features[root], features[i]));
  }
  return index;
}

}  // namespace elink
