#include "index/path_query.h"

#include <algorithm>
#include <deque>
#include <set>

namespace elink {

PathQueryEngine::PathQueryEngine(const Clustering& clustering,
                                 const ClusterIndex& index,
                                 const Backbone& backbone,
                                 const AdjacencyList& adjacency,
                                 const std::vector<Feature>& features,
                                 const DistanceMetric& metric, double delta)
    : clustering_(clustering),
      index_(index),
      backbone_(backbone),
      adjacency_(adjacency),
      features_(features),
      metric_(metric),
      delta_(delta),
      feature_dim_(features.empty() ? 0
                                    : static_cast<int>(features[0].size())) {
  // Upper-level covering radii over backbone subtrees (see
  // RangeQueryEngine's constructor for the same aggregation).
  std::vector<int> order = backbone_.leaders();
  auto depth = [&](int leader) {
    int d = 0;
    for (int cur = leader; backbone_.tree_parent(cur) != cur;
         cur = backbone_.tree_parent(cur)) {
      ++d;
    }
    return d;
  };
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int da = depth(a), db = depth(b);
    if (da != db) return da > db;
    return a < b;
  });
  for (int leader : order) {
    double radius = index_.root_ball_radius(leader);
    std::vector<int> members = index_.subtree(leader);
    for (int child : backbone_.tree_children(leader)) {
      radius = std::max(
          radius, metric_.Distance(features_[leader], features_[child]) +
                      backbone_radius_.at(child));
      const auto& sub = backbone_members_.at(child);
      members.insert(members.end(), sub.begin(), sub.end());
    }
    backbone_radius_[leader] = radius;
    backbone_members_[leader] = std::move(members);
  }
}

void PathQueryEngine::VisitBackbone(int leader, const Feature& danger,
                                    double gamma, std::vector<char>* safe,
                                    PathQueryResult* result) const {
  const int units = feature_dim_ + 1;
  // Classify this leader's own cluster with the delta-compactness screen.
  const double screen = index_.root_ball_radius(leader);
  const double d = metric_.Distance(index_.routing_feature(leader), danger);
  if (d > gamma + screen + 1e-12) {
    ++result->clusters_safe;
    for (int m : index_.subtree(leader)) (*safe)[m] = 1;
  } else if (d < gamma - screen - 1e-12) {
    ++result->clusters_unsafe;
  } else {
    ++result->clusters_drilled;
    ClassifySubtree(leader, danger, gamma, safe, result);
  }
  // Decide per backbone child using the cached upper-level radii.
  for (int child : backbone_.tree_children(leader)) {
    const double child_radius = backbone_radius_.at(child);
    const double d_child = metric_.Distance(features_[child], danger);
    if (d_child - child_radius >= gamma - 1e-12) {
      // Whole backbone subtree safe: no transmissions needed.
      for (int m : backbone_members_.at(child)) (*safe)[m] = 1;
      continue;
    }
    if (d_child + child_radius < gamma - 1e-12) {
      continue;  // Whole backbone subtree unsafe.
    }
    const int hops = backbone_.route_hops(leader, child);
    for (int h = 0; h < hops; ++h) {
      result->stats.Record("path_backbone", units);
    }
    VisitBackbone(child, danger, gamma, safe, result);
  }
}

bool PathQueryEngine::IsSafe(int node, const Feature& danger,
                             double gamma) const {
  return metric_.Distance(features_[node], danger) >= gamma - 1e-12;
}

void PathQueryEngine::ClassifySubtree(int node, const Feature& danger,
                                      double gamma, std::vector<char>* safe,
                                      PathQueryResult* result) const {
  const double d = metric_.Distance(index_.routing_feature(node), danger);
  const double radius = index_.covering_radius(node);
  if (d - radius >= gamma - 1e-12) {
    // Every feature in the subtree is at least gamma from the danger.
    for (int m : index_.subtree(node)) (*safe)[m] = 1;
    return;
  }
  if (d + radius < gamma - 1e-12) {
    // Every feature in the subtree is unsafe; nothing to mark.
    return;
  }
  // Inconclusive: classify this node exactly and drill into each child.
  (*safe)[node] = IsSafe(node, danger, gamma) ? 1 : 0;
  for (int child : index_.children(node)) {
    // Forwarding the danger feature one level down the cluster tree.
    result->stats.Record("path_drilldown", feature_dim_ + 1);
    ClassifySubtree(child, danger, gamma, safe, result);
  }
}

PathQueryResult PathQueryEngine::Query(int source, int destination,
                                       const Feature& danger,
                                       double gamma) const {
  PathQueryResult result;
  const int n = static_cast<int>(adjacency_.size());
  const int units = feature_dim_ + 1;  // Danger feature + gamma.

  // Source -> its cluster root.
  for (int d = 0; d < index_.depth(source); ++d) {
    result.stats.Record("path_route", units);
  }
  // If the source's own cluster is conclusively unsafe, the root suppresses
  // the query immediately (Section 7.3).
  {
    const int src_root = clustering_.root_of[source];
    const double d =
        metric_.Distance(index_.routing_feature(src_root), danger);
    if (d + index_.covering_radius(src_root) < gamma - 1e-12) {
      result.found = false;
      return result;
    }
  }

  // Disseminate the query selectively down the backbone tree: the
  // upper-level covering radii let whole backbone subtrees be classified
  // safe/unsafe without visiting their leaders.  The root leg from the
  // source's leader to the backbone root is charged first.
  for (int cur = clustering_.root_of[source];
       backbone_.tree_parent(cur) != cur; cur = backbone_.tree_parent(cur)) {
    const int hops = backbone_.route_hops(cur, backbone_.tree_parent(cur));
    for (int h = 0; h < hops; ++h) result.stats.Record("path_route", units);
  }
  std::vector<char> safe(n, 0);
  VisitBackbone(backbone_.tree_root(), danger, gamma, &safe, &result);

  if (!safe[source] || !safe[destination]) {
    result.found = false;
    return result;
  }

  // Safe backbone trees: BFS over the safe subgraph from the source.  The
  // search is charged at cluster granularity — one message per safe-region
  // link plus the final path trace — reflecting that contiguous safe
  // clusters are linked by their backbone trees rather than flooded.
  std::vector<int> parent(n, -1);
  std::deque<int> queue{source};
  parent[source] = source;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    if (u == destination) break;
    for (int v : adjacency_[u]) {
      if (safe[v] && parent[v] < 0) {
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  if (parent[destination] < 0) {
    result.found = false;
    return result;
  }
  result.found = true;
  for (int cur = destination; cur != source; cur = parent[cur]) {
    result.path.push_back(cur);
  }
  result.path.push_back(source);
  std::reverse(result.path.begin(), result.path.end());
  // Safe-region search cost: one probe per safe cluster (over its backbone
  // link) + the path trace back to the source.
  std::set<int> safe_clusters;
  for (int i = 0; i < n; ++i) {
    if (safe[i]) safe_clusters.insert(clustering_.root_of[i]);
  }
  for (int leader : safe_clusters) {
    const int p = backbone_.tree_parent(leader);
    if (p != leader) {
      const int hops = backbone_.route_hops(leader, p);
      for (int h = 0; h < hops; ++h) {
        result.stats.Record("path_search", 1);
      }
    }
  }
  for (size_t h = 0; h + 1 < result.path.size(); ++h) {
    result.stats.Record("path_trace", 1);
  }
  return result;
}

PathQueryResult PathQueryEngine::BfsBaseline(int source, int destination,
                                             const Feature& danger,
                                             double gamma) const {
  PathQueryResult result;
  const int n = static_cast<int>(adjacency_.size());
  if (!IsSafe(source, danger, gamma) || !IsSafe(destination, danger, gamma)) {
    result.found = false;
    return result;
  }
  // Flooding: every reached safe node broadcasts once to all its neighbors.
  std::vector<int> parent(n, -1);
  std::deque<int> queue{source};
  parent[source] = source;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (size_t nb = 0; nb < adjacency_[u].size(); ++nb) {
      result.stats.Record("bfs_flood", feature_dim_ + 1);
    }
    for (int v : adjacency_[u]) {
      if (parent[v] < 0 && IsSafe(v, danger, gamma)) {
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  if (parent[destination] < 0) {
    result.found = false;
    return result;
  }
  result.found = true;
  for (int cur = destination; cur != source; cur = parent[cur]) {
    result.path.push_back(cur);
  }
  result.path.push_back(source);
  std::reverse(result.path.begin(), result.path.end());
  for (size_t h = 0; h + 1 < result.path.size(); ++h) {
    result.stats.Record("path_trace", 1);
  }
  return result;
}

}  // namespace elink
