#include "index/query_protocol.h"

#include <algorithm>
#include <cmath>

#include "index/query_wire.h"
#include "proto/harness.h"

namespace elink {

namespace {

namespace w = query_wire;

// Aggregation points arm this timer when a node deadline is configured; on
// expiry they flush a partial reply instead of waiting forever for children
// that are dead or whose replies were lost.
enum QueryTimer : int { kDeadlineTimer = 1 };

// Deadline budgets ride in the (cost-free) ints of visit/descend messages,
// fixed-point encoded.  Each hop hands its children its own remaining budget
// minus the round trip of the leg plus this slack, so the deepest nodes
// flush *first* and partial counts roll up before any ancestor's deadline —
// a uniform per-node deadline would make the root flush before its children
// and write off their (late but healthy) partial replies.
constexpr double kBudgetScale = 1e6;
constexpr double kBudgetSlack = 10.0;
constexpr double kMinBudget = 5.0;

long long EncodeBudget(double b) {
  return static_cast<long long>(std::llround(b * kBudgetScale));
}
double DecodeBudget(long long b) {
  return static_cast<double>(b) / kBudgetScale;
}

/// Immutable per-node protocol state (what Section 7 says each node holds).
struct NodeState {
  // Cluster membership / tree.
  int cluster_root = -1;
  int tree_parent = -1;
  // M-tree summaries of the node's cluster-tree children.
  struct ChildInfo {
    int id;
    Feature routing_feature;
    double covering_radius;
    long long population;
  };
  std::vector<ChildInfo> mtree_children;
  // Leader-only: backbone links and upper-level child summaries.
  bool is_leader = false;
  bool is_backbone_root = false;
  int backbone_parent = -1;
  double root_ball = 0.0;      // Exact root-ball radius of the own cluster.
  long long population = 0;    // Own cluster size (leaders only).
  struct BackboneChildInfo {
    int id;
    Feature feature;
    double subtree_radius;
    long long subtree_population;
  };
  std::vector<BackboneChildInfo> backbone_children;
};

/// Shared run context.
struct QueryContext {
  Feature q;
  double r = 0.0;
  int query_units = 1;
  const DistanceMetric* metric = nullptr;
  int initiator = -1;
  int initiator_root = -1;
  // Per-aggregation-point flush deadline (0 = wait for everything).
  double node_deadline = 0.0;
  // Ack/retransmit transport (ProtocolOptions::reliable_transport).
  bool reliable = false;
  ReliableChannel::Config reliable_cfg;
  // Filled on completion.
  bool done = false;
  long long answer = -1;
  long long answer_incomplete = 0;  // Unreachable subtrees behind the answer.
  double finish_time = 0.0;
};

class QueryNode : public proto::ProtocolNode {
 public:
  QueryNode(const NodeState* state, QueryContext* ctx)
      : state_(state), ctx_(ctx) {
    if (ctx_->reliable) {
      // An exhausted retry budget needs no give-up callback here: the
      // destination (or a relay to it) is dead, and the waiting aggregation
      // point writes the subtree off at its deadline.
      EnableReliable(ctx_->reliable_cfg);
    }
    OnMsg<w::Up>([this](int, const w::Up& m) {
      if (id() == state_->cluster_root) {
        ArrivedAtOwnRoot();
      } else {
        Send(state_->tree_parent, m);
      }
    });
    OnMsg<w::ToBackboneRoot>([this](int, const w::ToBackboneRoot&) {
      if (state_->is_backbone_root) {
        StartVisit(/*reply_to=*/-1, ctx_->node_deadline);
      } else {
        ForwardToBackboneRoot();
      }
    });
    OnMsg<w::Visit>([this](int, const w::Visit& m) {
      // Routed messages deliver with `from` = the last relay hop; the
      // logical sender rides in the schema (and its deadline budget when
      // deadlines are configured).
      StartVisit(/*reply_to=*/static_cast<int>(m.sender),
                 m.budget.has_value() ? DecodeBudget(*m.budget) : 0.0);
    });
    OnMsg<w::BackboneInclude>([this](int, const w::BackboneInclude& m) {
      // Whole backbone subtree matches; answer with the cached population.
      w::BackboneReply reply;
      reply.count = SubtreePopulation();
      reply.incomplete = 0;
      SendRouted(static_cast<int>(m.sender), reply);
    });
    OnMsg<w::BackboneReply>([this](int, const w::BackboneReply& m) {
      count_ += m.count;
      incomplete_ += m.incomplete;
      --pending_;
      CheckDone();
    });
    OnMsg<w::Descend>([this](int from, const w::Descend& m) {
      OnDescend(from, m.budget.has_value() ? DecodeBudget(*m.budget) : 0.0);
    });
    OnMsg<w::DescendInclude>([this](int from, const w::DescendInclude&) {
      w::DescendReply reply;
      reply.count = MTreePopulation();
      reply.incomplete = 0;
      Send(from, reply);
    });
    OnMsg<w::DescendReply>([this](int, const w::DescendReply& m) {
      count_ += m.count;
      incomplete_ += m.incomplete;
      --pending_;
      CheckDone();
    });
    OnMsg<w::Answer>([this](int, const w::Answer& m) {
      if (id() == ctx_->initiator) {
        ctx_->done = true;
        ctx_->answer = m.count;
        ctx_->answer_incomplete = m.incomplete;
        ctx_->finish_time = network()->Now();
        TracePhase("query.answer", ctx_->answer);
      } else {
        // The initiator's root relays the answer down to the initiator.
        SendRouted(ctx_->initiator, m);
      }
    });
  }

  /// Injects the query at the initiator (driver call, before Run()).
  void Inject() {
    TracePhase("query.inject", state_->cluster_root);
    if (id() == state_->cluster_root) {
      ArrivedAtOwnRoot();
    } else {
      w::Up m;
      m.payload = QueryPayload();
      Send(state_->tree_parent, m);
    }
  }

  void set_feature(Feature f) { feature_ = std::move(f); }

 protected:
  void OnProtocolTimer(int timer_id) override {
    ELINK_CHECK(timer_id == kDeadlineTimer);
    // Deadline reached with replies still outstanding: write the missing
    // subtrees off as unreachable and flush a partial aggregate upward.  A
    // stale deadline (the node already reported) is a no-op.
    if (!active_ || pending_ <= 0) return;
    TracePhase("query.deadline_flush", pending_);
    incomplete_ += pending_;
    pending_ = 0;
    CheckDone();
  }

 private:
  double Dist(const Feature& a, const Feature& b) const {
    return ctx_->metric->Distance(a, b);
  }

  long long MTreePopulation() const {
    long long pop = 1;
    for (const auto& c : state_->mtree_children) pop += c.population;
    return pop;
  }
  long long SubtreePopulation() const {
    long long pop = state_->population;
    for (const auto& c : state_->backbone_children) {
      pop += c.subtree_population;
    }
    return pop;
  }

  /// The query feature + radius payload.
  std::vector<double> QueryPayload() const {
    std::vector<double> p = ctx_->q;
    p.push_back(ctx_->r);
    return p;
  }

  /// Payload carried by routed leader-chain/backbone messages: the query
  /// rides along only when it costs more than the one free control unit.
  std::vector<double> PayloadIfMultiUnit() const {
    return ctx_->query_units > 1 ? QueryPayload() : std::vector<double>();
  }

  void ForwardToBackboneRoot() {
    w::ToBackboneRoot m;
    m.sender = id();  // Logical sender (routed `from` is just the relay).
    m.payload = PayloadIfMultiUnit();
    SendRouted(state_->backbone_parent, m);
  }

  /// The query reached the initiator's own cluster root: route it to the
  /// backbone root (possibly ourselves).
  void ArrivedAtOwnRoot() {
    if (state_->is_backbone_root) {
      StartVisit(/*reply_to=*/-1, ctx_->node_deadline);
    } else {
      ForwardToBackboneRoot();
    }
  }

  void ArmDeadline(double budget) {
    budget_ = budget;
    if (ctx_->node_deadline > 0.0) {
      network()->SetTimer(id(), budget, kDeadlineTimer);
    }
  }

  /// The flush budget handed to a child `hops` hops away: our own remaining
  /// budget minus the leg's round trip and slack, so the child reports (even
  /// partially) before *our* deadline fires.
  double ChildBudget(int hops) const {
    return std::max(kMinBudget, budget_ - (2.0 * hops + kBudgetSlack));
  }

  /// Leader processing: screen own cluster, decide per backbone child.
  void StartVisit(int reply_to, double budget) {
    TracePhase("query.visit", reply_to);
    reply_to_ = reply_to;
    active_ = true;
    count_ = 0;
    pending_ = 0;
    incomplete_ = 0;
    ArmDeadline(budget);

    // Own cluster screen (Section 7.2) with the exact root-ball radius.
    const double d_root = Dist(ctx_->q, feature_);
    if (d_root > ctx_->r + state_->root_ball + 1e-12) {
      // Excluded: contributes nothing.
    } else if (d_root <= ctx_->r - state_->root_ball + 1e-12) {
      count_ += state_->population;  // Whole cluster matches.
    } else {
      // M-tree descent rooted here.
      StartLocalDescent();
    }

    // Backbone children via the cached upper-level summaries.
    for (const auto& child : state_->backbone_children) {
      const double d_child = Dist(ctx_->q, child.feature);
      if (d_child > ctx_->r + child.subtree_radius + 1e-12) {
        continue;  // Whole subtree excluded, no transmission.
      }
      if (d_child <= ctx_->r - child.subtree_radius + 1e-12) {
        w::BackboneInclude m;
        m.sender = id();
        m.payload = PayloadIfMultiUnit();
        SendRouted(child.id, m);
        ++pending_;
        continue;
      }
      w::Visit m;
      m.sender = id();
      m.budget = EncodeBudget(
          ChildBudget(network()->HopDistance(id(), child.id)));
      m.payload = PayloadIfMultiUnit();
      SendRouted(child.id, m);
      ++pending_;
    }
    CheckDone();
  }

  /// Self-test plus M-tree child decisions (both for leaders starting a
  /// descent and for interior nodes receiving a descend).
  void DescendBody() {
    if (Dist(ctx_->q, feature_) <= ctx_->r + 1e-12) ++count_;
    for (const auto& child : state_->mtree_children) {
      const double d_link = Dist(feature_, child.routing_feature);
      const double d_self = Dist(ctx_->q, feature_);
      if (std::fabs(d_self - d_link) >
          ctx_->r + child.covering_radius + 1e-12) {
        continue;  // Subtree excluded via the parent-side bound.
      }
      if (d_self + d_link <= ctx_->r - child.covering_radius + 1e-12) {
        w::DescendInclude m;
        m.payload = QueryPayload();
        Send(child.id, m);
        ++pending_;
        continue;
      }
      w::Descend m;
      if (ctx_->node_deadline > 0.0) {
        m.budget = EncodeBudget(ChildBudget(1));
      }
      m.payload = QueryPayload();
      Send(child.id, m);
      ++pending_;
    }
  }

  void StartLocalDescent() { DescendBody(); }

  void OnDescend(int from, double budget) {
    descent_parent_ = from;
    active_ = true;
    count_ = 0;
    pending_ = 0;
    incomplete_ = 0;
    ArmDeadline(budget);
    DescendBody();
    CheckDone();
  }

  /// All outstanding replies arrived: report upward.
  void CheckDone() {
    if (!active_ || pending_ > 0) return;
    active_ = false;
    if (descent_parent_ >= 0) {
      // Interior descent node: aggregate to the descent parent.
      w::DescendReply m;
      m.count = count_;
      m.incomplete = incomplete_;
      Send(descent_parent_, m);
      descent_parent_ = -1;
      return;
    }
    // Leader: report to the backbone parent, or deliver the answer.
    if (reply_to_ >= 0) {
      w::BackboneReply m;
      m.count = count_;
      m.incomplete = incomplete_;
      SendRouted(reply_to_, m);
      reply_to_ = -1;
      return;
    }
    // Backbone root: answer travels to the initiator's root, then down.
    if (id() == ctx_->initiator) {
      ctx_->done = true;
      ctx_->answer = count_;
      ctx_->answer_incomplete = incomplete_;
      ctx_->finish_time = network()->Now();
      TracePhase("query.answer", ctx_->answer);
    } else {
      w::Answer m;
      m.count = count_;
      m.incomplete = incomplete_;
      SendRouted(ctx_->initiator_root, m);
    }
  }

  const NodeState* state_;
  QueryContext* ctx_;
  Feature feature_;

  bool active_ = false;
  long long count_ = 0;
  long long incomplete_ = 0;  // Subtrees written off at the deadline.
  int pending_ = 0;
  int reply_to_ = -1;
  int descent_parent_ = -1;
  double budget_ = 0.0;  // Remaining flush budget of the current visit.
};

}  // namespace

DistributedRangeQuery::DistributedRangeQuery(
    const Topology& topology, const Clustering& clustering,
    const ClusterIndex& index, const Backbone& backbone,
    const std::vector<Feature>& features,
    std::shared_ptr<const DistanceMetric> metric, bool synchronous,
    uint64_t seed)
    : DistributedRangeQuery(topology, clustering, index, backbone, features,
                            std::move(metric), [&] {
                              ProtocolOptions o;
                              o.synchronous = synchronous;
                              o.seed = seed;
                              return o;
                            }()) {}

DistributedRangeQuery::DistributedRangeQuery(
    const Topology& topology, const Clustering& clustering,
    const ClusterIndex& index, const Backbone& backbone,
    const std::vector<Feature>& features,
    std::shared_ptr<const DistanceMetric> metric, ProtocolOptions options)
    : topology_(topology),
      clustering_(clustering),
      index_(index),
      backbone_(backbone),
      features_(features),
      metric_(std::move(metric)),
      options_(std::move(options)) {
  // Upper-level summaries, children before parents.
  std::vector<int> order = backbone_.leaders();
  auto depth = [&](int leader) {
    int d = 0;
    for (int cur = leader; backbone_.tree_parent(cur) != cur;
         cur = backbone_.tree_parent(cur)) {
      ++d;
    }
    return d;
  };
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int da = depth(a), db = depth(b);
    if (da != db) return da > db;
    return a < b;
  });
  for (int leader : order) {
    double radius = index_.root_ball_radius(leader);
    long long pop = static_cast<long long>(index_.subtree(leader).size());
    for (int child : backbone_.tree_children(leader)) {
      radius = std::max(
          radius, metric_->Distance(features_[leader], features_[child]) +
                      backbone_radius_.at(child));
      pop += backbone_population_.at(child);
    }
    backbone_radius_[leader] = radius;
    backbone_population_[leader] = pop;
  }
}

Result<DistributedQueryOutcome> DistributedRangeQuery::Run(int initiator,
                                                           const Feature& q,
                                                           double r) {
  if (initiator < 0 || initiator >= topology_.num_nodes()) {
    return Status::InvalidArgument("initiator out of range");
  }
  if (r < 0) return Status::InvalidArgument("radius must be non-negative");

  // Per-node protocol state.
  const int n = topology_.num_nodes();
  std::vector<NodeState> states(n);
  for (int i = 0; i < n; ++i) {
    NodeState& s = states[i];
    s.cluster_root = clustering_.root_of[i];
    s.tree_parent = index_.parent(i);
    for (int child : index_.children(i)) {
      s.mtree_children.push_back(
          {child, index_.routing_feature(child), index_.covering_radius(child),
           static_cast<long long>(index_.subtree(child).size())});
    }
    if (s.cluster_root == i) {
      s.is_leader = true;
      s.is_backbone_root = backbone_.tree_root() == i;
      s.backbone_parent = backbone_.tree_parent(i);
      s.root_ball = index_.root_ball_radius(i);
      s.population = static_cast<long long>(index_.subtree(i).size());
      for (int child : backbone_.tree_children(i)) {
        s.backbone_children.push_back({child, features_[child],
                                       backbone_radius_.at(child),
                                       backbone_population_.at(child)});
      }
    }
  }

  QueryContext ctx;
  ctx.q = q;
  ctx.r = r;
  ctx.query_units = static_cast<int>(q.size()) + 1;
  ctx.metric = metric_.get();
  ctx.initiator = initiator;
  ctx.initiator_root = clustering_.root_of[initiator];
  ctx.node_deadline = options_.node_deadline;
  ctx.reliable = options_.reliable_transport;
  ctx.reliable_cfg = options_.reliable;

  proto::RunHarness::Options hopt;
  hopt.net.synchronous = options_.synchronous;
  hopt.net.seed = options_.seed;
  hopt.net.fault = options_.fault;
  hopt.net.churn = options_.churn;
  // Keeps the clock honest when the query dies en route: the initiator
  // gives up at this time, which is what the reported latency shows.
  hopt.run_horizon = options_.query_deadline;
  proto::RunHarness harness(topology_, hopt);
  harness.set_observer(options_.observer);
  harness.InstallNodes([&](int id) {
    auto node = std::make_unique<QueryNode>(&states[id], &ctx);
    node->set_feature(features_[id]);
    return node;
  });
  static_cast<QueryNode*>(harness.net().node(initiator))->Inject();
  const proto::RunHarness::Report report = harness.Run();

  if (report.hit_event_cap) {
    return Status::Internal("distributed range query hit the event cap");
  }
  if (!ctx.done) {
    if (!options_.fault.enabled() && !options_.churn.enabled()) {
      // No faults were injected, so this is a protocol bug, not degradation.
      return Status::Internal("distributed range query did not terminate");
    }
    DistributedQueryOutcome lost;
    lost.match_count = 0;
    lost.latency = report.end_time;
    lost.stats = harness.net().stats();
    lost.complete = false;
    lost.answer_received = false;
    return lost;
  }
  DistributedQueryOutcome outcome;
  outcome.match_count = ctx.answer;
  outcome.latency = ctx.finish_time;
  outcome.stats = harness.net().stats();
  outcome.unreachable_subtrees = ctx.answer_incomplete;
  outcome.complete = ctx.answer_incomplete == 0;
  return outcome;
}

}  // namespace elink
