#include "index/query_protocol.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace elink {

namespace {

enum QueryMsg : int {
  kUp = 1,               // Initiator -> cluster root, over the cluster tree.
  kToBackboneRoot = 2,   // Leader -> backbone root, up the leader chain.
  kVisit = 3,            // Backbone parent -> child: process your subtree.
  kBackboneInclude = 4,  // Whole backbone subtree matches: report population.
  kBackboneReply = 5,    // Aggregated count back to the backbone parent.
  kDescend = 6,          // M-tree descent into a cluster-tree child.
  kDescendInclude = 7,   // Whole M-tree subtree matches: report population.
  kDescendReply = 8,     // Aggregated count back to the descent parent.
  kAnswer = 9,           // Backbone root -> initiator root -> initiator.
};

/// Immutable per-node protocol state (what Section 7 says each node holds).
struct NodeState {
  // Cluster membership / tree.
  int cluster_root = -1;
  int tree_parent = -1;
  // M-tree summaries of the node's cluster-tree children.
  struct ChildInfo {
    int id;
    Feature routing_feature;
    double covering_radius;
    long long population;
  };
  std::vector<ChildInfo> mtree_children;
  // Leader-only: backbone links and upper-level child summaries.
  bool is_leader = false;
  bool is_backbone_root = false;
  int backbone_parent = -1;
  double root_ball = 0.0;      // Exact root-ball radius of the own cluster.
  long long population = 0;    // Own cluster size (leaders only).
  struct BackboneChildInfo {
    int id;
    Feature feature;
    double subtree_radius;
    long long subtree_population;
  };
  std::vector<BackboneChildInfo> backbone_children;
};

/// Shared run context.
struct QueryContext {
  Feature q;
  double r = 0.0;
  int query_units = 1;
  const DistanceMetric* metric = nullptr;
  int initiator = -1;
  int initiator_root = -1;
  // Filled on completion.
  bool done = false;
  long long answer = -1;
  double finish_time = 0.0;
};

class QueryNode : public Node {
 public:
  QueryNode(const NodeState* state, QueryContext* ctx)
      : state_(state), ctx_(ctx) {}

  /// Injects the query at the initiator (driver call, before Run()).
  void Inject() {
    if (id() == state_->cluster_root) {
      ArrivedAtOwnRoot();
    } else {
      Message m;
      m.type = kUp;
      m.category = "query_route";
      m.doubles = ctx_->q;
      m.doubles.push_back(ctx_->r);
      network()->Send(id(), state_->tree_parent, std::move(m));
    }
  }

  void HandleMessage(int from, const Message& msg) override {
    if (getenv("ELINK_QP_TRACE")) std::fprintf(stderr, "t=%.1f node %d <- %d type %d\n", network()->Now(), id(), from, msg.type);
    switch (msg.type) {
      case kUp:
        if (id() == state_->cluster_root) {
          ArrivedAtOwnRoot();
        } else {
          Message m = msg;
          network()->Send(id(), state_->tree_parent, std::move(m));
        }
        break;
      case kToBackboneRoot:
        if (state_->is_backbone_root) {
          StartVisit(/*reply_to=*/-1);
        } else {
          Forward(kToBackboneRoot, "query_route", state_->backbone_parent,
                  ctx_->query_units);
        }
        break;
      case kVisit:
        // Routed messages deliver with `from` = the last relay hop; the
        // logical sender rides in ints[0].
        StartVisit(/*reply_to=*/static_cast<int>(msg.ints[0]));
        break;
      case kBackboneInclude: {
        // Whole backbone subtree matches; answer with the cached population.
        Message reply;
        reply.type = kBackboneReply;
        reply.category = "query_collect";
        reply.ints = {SubtreePopulation()};
        network()->SendRouted(id(), static_cast<int>(msg.ints[0]),
                              std::move(reply));
        break;
      }
      case kBackboneReply:
        count_ += msg.ints[0];
        --pending_;
        CheckDone();
        break;
      case kDescend:
        OnDescend(from);
        break;
      case kDescendInclude: {
        Message reply;
        reply.type = kDescendReply;
        reply.category = "query_collect";
        reply.ints = {MTreePopulation()};
        network()->Send(id(), from, std::move(reply));
        break;
      }
      case kDescendReply:
        count_ += msg.ints[0];
        --pending_;
        CheckDone();
        break;
      case kAnswer:
        if (id() == ctx_->initiator) {
          ctx_->done = true;
          ctx_->answer = msg.ints[0];
          ctx_->finish_time = network()->Now();
        } else {
          // The initiator's root relays the answer down to the initiator.
          Message m = msg;
          network()->SendRouted(id(), ctx_->initiator, std::move(m));
        }
        break;
      default:
        ELINK_CHECK(false);
    }
  }

 private:
  double Dist(const Feature& a, const Feature& b) const {
    return ctx_->metric->Distance(a, b);
  }

 public:
  void set_feature(Feature f) { feature_ = std::move(f); }

 private:
  long long MTreePopulation() const {
    long long pop = 1;
    for (const auto& c : state_->mtree_children) pop += c.population;
    return pop;
  }
  long long SubtreePopulation() const {
    long long pop = state_->population;
    for (const auto& c : state_->backbone_children) {
      pop += c.subtree_population;
    }
    return pop;
  }

  void Forward(int type, const char* category, int to, int units) {
    Message m;
    m.type = type;
    m.category = category;
    m.ints = {id()};  // Logical sender (routed `from` is just the relay).
    if (units > 1) {
      m.doubles = ctx_->q;
      m.doubles.push_back(ctx_->r);
    }
    network()->SendRouted(id(), to, std::move(m));
  }

  /// The query reached the initiator's own cluster root: route it to the
  /// backbone root (possibly ourselves).
  void ArrivedAtOwnRoot() {
    if (state_->is_backbone_root) {
      StartVisit(/*reply_to=*/-1);
    } else {
      Forward(kToBackboneRoot, "query_route", state_->backbone_parent,
              ctx_->query_units);
    }
  }

  /// Leader processing: screen own cluster, decide per backbone child.
  void StartVisit(int reply_to) {
    reply_to_ = reply_to;
    active_ = true;
    count_ = 0;
    pending_ = 0;

    // Own cluster screen (Section 7.2) with the exact root-ball radius.
    const double d_root = Dist(ctx_->q, feature_);
    if (d_root > ctx_->r + state_->root_ball + 1e-12) {
      // Excluded: contributes nothing.
    } else if (d_root <= ctx_->r - state_->root_ball + 1e-12) {
      count_ += state_->population;  // Whole cluster matches.
    } else {
      // M-tree descent rooted here.
      StartLocalDescent();
    }

    // Backbone children via the cached upper-level summaries.
    for (const auto& child : state_->backbone_children) {
      const double d_child = Dist(ctx_->q, child.feature);
      if (d_child > ctx_->r + child.subtree_radius + 1e-12) {
        continue;  // Whole subtree excluded, no transmission.
      }
      if (d_child <= ctx_->r - child.subtree_radius + 1e-12) {
        Forward(kBackboneInclude, "query_backbone", child.id,
                ctx_->query_units);
        ++pending_;
        continue;
      }
      Forward(kVisit, "query_backbone", child.id, ctx_->query_units);
      ++pending_;
    }
    CheckDone();
  }

  /// Self-test plus M-tree child decisions (both for leaders starting a
  /// descent and for interior nodes receiving kDescend).
  void DescendBody() {
    if (Dist(ctx_->q, feature_) <= ctx_->r + 1e-12) ++count_;
    for (const auto& child : state_->mtree_children) {
      const double d_link = Dist(feature_, child.routing_feature);
      const double d_self = Dist(ctx_->q, feature_);
      if (std::fabs(d_self - d_link) >
          ctx_->r + child.covering_radius + 1e-12) {
        continue;  // Subtree excluded via the parent-side bound.
      }
      if (d_self + d_link <= ctx_->r - child.covering_radius + 1e-12) {
        Message m;
        m.type = kDescendInclude;
        m.category = "query_descend";
        m.doubles = ctx_->q;
        m.doubles.push_back(ctx_->r);
        network()->Send(id(), child.id, std::move(m));
        ++pending_;
        continue;
      }
      Message m;
      m.type = kDescend;
      m.category = "query_descend";
      m.doubles = ctx_->q;
      m.doubles.push_back(ctx_->r);
      network()->Send(id(), child.id, std::move(m));
      ++pending_;
    }
  }

  void StartLocalDescent() { DescendBody(); }

  void OnDescend(int from) {
    descent_parent_ = from;
    active_ = true;
    count_ = 0;
    pending_ = 0;
    DescendBody();
    CheckDone();
  }

  /// All outstanding replies arrived: report upward.
  void CheckDone() {
    if (!active_ || pending_ > 0) return;
    active_ = false;
    if (descent_parent_ >= 0) {
      // Interior descent node: aggregate to the descent parent.
      Message m;
      m.type = kDescendReply;
      m.category = "query_collect";
      m.ints = {count_};
      network()->Send(id(), descent_parent_, std::move(m));
      descent_parent_ = -1;
      return;
    }
    // Leader: report to the backbone parent, or deliver the answer.
    if (reply_to_ >= 0) {
      Message m;
      m.type = kBackboneReply;
      m.category = "query_collect";
      m.ints = {count_};
      network()->SendRouted(id(), reply_to_, std::move(m));
      reply_to_ = -1;
      return;
    }
    // Backbone root: answer travels to the initiator's root, then down.
    Message m;
    m.type = kAnswer;
    m.category = "query_collect";
    m.ints = {count_};
    if (id() == ctx_->initiator) {
      ctx_->done = true;
      ctx_->answer = count_;
      ctx_->finish_time = network()->Now();
    } else {
      network()->SendRouted(id(), ctx_->initiator_root, std::move(m));
    }
  }

  const NodeState* state_;
  QueryContext* ctx_;
  Feature feature_;

  bool active_ = false;
  long long count_ = 0;
  int pending_ = 0;
  int reply_to_ = -1;
  int descent_parent_ = -1;
};

}  // namespace

DistributedRangeQuery::DistributedRangeQuery(
    const Topology& topology, const Clustering& clustering,
    const ClusterIndex& index, const Backbone& backbone,
    const std::vector<Feature>& features,
    std::shared_ptr<const DistanceMetric> metric, bool synchronous,
    uint64_t seed)
    : topology_(topology),
      clustering_(clustering),
      index_(index),
      backbone_(backbone),
      features_(features),
      metric_(std::move(metric)),
      synchronous_(synchronous),
      seed_(seed) {
  // Upper-level summaries, children before parents.
  std::vector<int> order = backbone_.leaders();
  auto depth = [&](int leader) {
    int d = 0;
    for (int cur = leader; backbone_.tree_parent(cur) != cur;
         cur = backbone_.tree_parent(cur)) {
      ++d;
    }
    return d;
  };
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int da = depth(a), db = depth(b);
    if (da != db) return da > db;
    return a < b;
  });
  for (int leader : order) {
    double radius = index_.root_ball_radius(leader);
    long long pop = static_cast<long long>(index_.subtree(leader).size());
    for (int child : backbone_.tree_children(leader)) {
      radius = std::max(
          radius, metric_->Distance(features_[leader], features_[child]) +
                      backbone_radius_.at(child));
      pop += backbone_population_.at(child);
    }
    backbone_radius_[leader] = radius;
    backbone_population_[leader] = pop;
  }
}

Result<DistributedQueryOutcome> DistributedRangeQuery::Run(int initiator,
                                                           const Feature& q,
                                                           double r) {
  if (initiator < 0 || initiator >= topology_.num_nodes()) {
    return Status::InvalidArgument("initiator out of range");
  }
  if (r < 0) return Status::InvalidArgument("radius must be non-negative");

  // Per-node protocol state.
  const int n = topology_.num_nodes();
  std::vector<NodeState> states(n);
  for (int i = 0; i < n; ++i) {
    NodeState& s = states[i];
    s.cluster_root = clustering_.root_of[i];
    s.tree_parent = index_.parent(i);
    for (int child : index_.children(i)) {
      s.mtree_children.push_back(
          {child, index_.routing_feature(child), index_.covering_radius(child),
           static_cast<long long>(index_.subtree(child).size())});
    }
    if (s.cluster_root == i) {
      s.is_leader = true;
      s.is_backbone_root = backbone_.tree_root() == i;
      s.backbone_parent = backbone_.tree_parent(i);
      s.root_ball = index_.root_ball_radius(i);
      s.population = static_cast<long long>(index_.subtree(i).size());
      for (int child : backbone_.tree_children(i)) {
        s.backbone_children.push_back({child, features_[child],
                                       backbone_radius_.at(child),
                                       backbone_population_.at(child)});
      }
    }
  }

  QueryContext ctx;
  ctx.q = q;
  ctx.r = r;
  ctx.query_units = static_cast<int>(q.size()) + 1;
  ctx.metric = metric_.get();
  ctx.initiator = initiator;
  ctx.initiator_root = clustering_.root_of[initiator];

  Network::Config ncfg;
  ncfg.synchronous = synchronous_;
  ncfg.seed = seed_;
  Network net(topology_, ncfg);
  net.InstallNodes([&](int id) {
    auto node = std::make_unique<QueryNode>(&states[id], &ctx);
    node->set_feature(features_[id]);
    return node;
  });
  static_cast<QueryNode*>(net.node(initiator))->Inject();
  net.Run();

  if (!ctx.done) {
    return Status::Internal("distributed range query did not terminate");
  }
  DistributedQueryOutcome outcome;
  outcome.match_count = ctx.answer;
  outcome.latency = ctx.finish_time;
  outcome.stats = net.stats();
  return outcome;
}

}  // namespace elink
