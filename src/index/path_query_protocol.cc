#include "index/path_query_protocol.h"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>

#include "common/strings.h"
#include "index/path_wire.h"
#include "proto/harness.h"
#include "proto/node.h"

namespace elink {

namespace {

namespace w = path_wire;

/// Read-only per-node deployment state (driver-owned, outlives the run).
struct PathNodeState {
  int cluster_root = -1;
  int tree_parent = -1;
  const std::vector<int>* mtree_children = nullptr;
  const Feature* routing_feature = nullptr;
  double covering_radius = 0.0;
  const std::vector<int>* subtree = nullptr;

  // Leader-only backbone state.
  bool is_leader = false;
  bool is_backbone_root = false;
  int backbone_parent = -1;
  double root_ball = 0.0;
  struct BackboneChild {
    int id = -1;
    const Feature* feature = nullptr;
    double subtree_radius = 0.0;
    const std::vector<int>* members = nullptr;
  };
  std::vector<BackboneChild> backbone_children;
};

/// Query-global blackboard the nodes report their classifications into.
struct PathContext {
  const DistanceMetric* metric = nullptr;
  Feature danger;
  double gamma = 0.0;
  std::vector<char> safe;
  bool suppressed = false;
  bool classification_done = false;
  int clusters_safe = 0;
  int clusters_unsafe = 0;
  int clusters_drilled = 0;
};

class PathNode : public proto::ProtocolNode {
 public:
  PathNode(const PathNodeState* state, PathContext* ctx)
      : state_(state), ctx_(ctx) {
    OnMsg<w::PathUp>([this](int, const w::PathUp& m) {
      if (id() == state_->cluster_root) {
        LeaderEntry();
      } else {
        Send(state_->tree_parent, m);
      }
    });
    OnMsg<w::PathRoute>([this](int, const w::PathRoute& m) {
      if (state_->is_backbone_root) {
        StartVisit(/*reply_to=*/-1);
      } else {
        SendRouted(state_->backbone_parent, m);
      }
    });
    OnMsg<w::PathVisit>([this](int, const w::PathVisit& m) {
      StartVisit(static_cast<int>(m.sender));
    });
    OnMsg<w::PathDrill>(
        [this](int from, const w::PathDrill&) { OnDrill(from); });
    OnMsg<w::PathDrillDone>([this](int, const w::PathDrillDone&) {
      --pending_;
      CheckDone();
    });
    OnMsg<w::PathVisitDone>([this](int, const w::PathVisitDone&) {
      --pending_;
      CheckDone();
    });
  }

  /// Driver entry point at the source node (before the event loop runs).
  void Inject() {
    if (id() == state_->cluster_root) {
      LeaderEntry();
    } else {
      w::PathUp m;
      m.danger = ctx_->danger;
      m.gamma = ctx_->gamma;
      Send(state_->tree_parent, m);
    }
  }

 private:
  double DangerDist(const Feature& f) const {
    return ctx_->metric->Distance(f, ctx_->danger);
  }

  /// The query reached the source's cluster root: suppress or escalate.
  void LeaderEntry() {
    const double d = DangerDist(*state_->routing_feature);
    if (d + state_->covering_radius < ctx_->gamma - 1e-12) {
      // Own cluster conclusively unsafe: kill the query here (Section 7.3),
      // no further transmissions.
      ctx_->suppressed = true;
      TracePhase("path.suppressed");
      return;
    }
    if (state_->is_backbone_root) {
      StartVisit(/*reply_to=*/-1);
      return;
    }
    w::PathRoute m;
    m.danger = ctx_->danger;
    m.gamma = ctx_->gamma;
    SendRouted(state_->backbone_parent, m);
  }

  /// Classify own cluster and disseminate down the backbone subtree.
  void StartVisit(int reply_to) {
    TracePhase("path.visit", reply_to);
    visiting_ = true;
    visit_reply_to_ = reply_to;
    // Own-cluster screen with the exact root-ball radius.
    const double screen = state_->root_ball;
    const double d = DangerDist(*state_->routing_feature);
    if (d > ctx_->gamma + screen + 1e-12) {
      ++ctx_->clusters_safe;
      for (int m : *state_->subtree) ctx_->safe[m] = 1;
    } else if (d < ctx_->gamma - screen - 1e-12) {
      ++ctx_->clusters_unsafe;
    } else {
      ++ctx_->clusters_drilled;
      DrillLocal(/*reply_hop=*/-1);
    }
    // Decide per backbone child from the cached upper-level radii; only
    // inconclusive subtrees cost a routed visit.
    for (const auto& child : state_->backbone_children) {
      const double d_child = DangerDist(*child.feature);
      if (d_child - child.subtree_radius >= ctx_->gamma - 1e-12) {
        for (int m : *child.members) ctx_->safe[m] = 1;
        continue;
      }
      if (d_child + child.subtree_radius < ctx_->gamma - 1e-12) continue;
      w::PathVisit m;
      m.sender = id();
      m.danger = ctx_->danger;
      m.gamma = ctx_->gamma;
      SendRouted(child.id, m);
      ++pending_;
    }
    CheckDone();
  }

  /// A PathDrill arrived from our M-tree parent.
  void OnDrill(int from) { DrillLocal(from); }

  /// Classify this node's M-tree subtree; `reply_hop` is the drill parent
  /// to ack (or -1 when the drill starts at a visited leader).
  void DrillLocal(int reply_hop) {
    const double d = DangerDist(*state_->routing_feature);
    const double radius = state_->covering_radius;
    if (d - radius >= ctx_->gamma - 1e-12) {
      for (int m : *state_->subtree) ctx_->safe[m] = 1;
      if (reply_hop >= 0) Send(reply_hop, w::PathDrillDone{});
      return;
    }
    if (d + radius < ctx_->gamma - 1e-12) {
      if (reply_hop >= 0) Send(reply_hop, w::PathDrillDone{});
      return;
    }
    // Inconclusive: classify this node exactly, drill into each child.
    TracePhase("path.drill", reply_hop);
    ctx_->safe[id()] = d >= ctx_->gamma - 1e-12 ? 1 : 0;
    drill_parent_ = reply_hop;
    for (int child : *state_->mtree_children) {
      w::PathDrill m;
      m.danger = ctx_->danger;
      m.gamma = ctx_->gamma;
      Send(child, m);
      ++pending_;
    }
    if (reply_hop >= 0) CheckDone();
  }

  /// All outstanding drill/visit acks in: report upward (or finish).
  void CheckDone() {
    if (pending_ > 0) return;
    if (drill_parent_ >= 0) {
      const int p = drill_parent_;
      drill_parent_ = -1;
      Send(p, w::PathDrillDone{});
      return;
    }
    if (!visiting_) return;
    visiting_ = false;
    if (visit_reply_to_ >= 0) {
      SendRouted(visit_reply_to_, w::PathVisitDone{});
      visit_reply_to_ = -1;
    } else {
      ctx_->classification_done = true;
      TracePhase("path.classified");
    }
  }

  const PathNodeState* state_;
  PathContext* ctx_;

  int pending_ = 0;
  int drill_parent_ = -1;
  bool visiting_ = false;
  int visit_reply_to_ = -1;
};

}  // namespace

DistributedPathQuery::DistributedPathQuery(
    const Topology& topology, const Clustering& clustering,
    const ClusterIndex& index, const Backbone& backbone,
    const std::vector<Feature>& features,
    std::shared_ptr<const DistanceMetric> metric, PathProtocolOptions options)
    : topology_(topology),
      clustering_(clustering),
      index_(index),
      backbone_(backbone),
      features_(features),
      metric_(std::move(metric)),
      options_(options) {
  // Upper-level covering radii over backbone subtrees, children before
  // parents (identical aggregation to PathQueryEngine's constructor).
  std::vector<int> order = backbone_.leaders();
  auto depth = [&](int leader) {
    int d = 0;
    for (int cur = leader; backbone_.tree_parent(cur) != cur;
         cur = backbone_.tree_parent(cur)) {
      ++d;
    }
    return d;
  };
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int da = depth(a), db = depth(b);
    if (da != db) return da > db;
    return a < b;
  });
  for (int leader : order) {
    double radius = index_.root_ball_radius(leader);
    std::vector<int> members = index_.subtree(leader);
    for (int child : backbone_.tree_children(leader)) {
      radius = std::max(
          radius, metric_->Distance(features_[leader], features_[child]) +
                      backbone_radius_.at(child));
      const auto& sub = backbone_members_.at(child);
      members.insert(members.end(), sub.begin(), sub.end());
    }
    backbone_radius_[leader] = radius;
    backbone_members_[leader] = std::move(members);
  }
}

Result<PathQueryResult> DistributedPathQuery::Run(int source, int destination,
                                                  const Feature& danger,
                                                  double gamma) {
  const int n = topology_.num_nodes();
  if (source < 0 || source >= n || destination < 0 || destination >= n) {
    return Status::InvalidArgument(
        StringPrintf("path query endpoints (%d, %d) out of range [0, %d)",
                     source, destination, n));
  }

  // Deployment: hand every node its slice of the cluster/index/backbone
  // state, as the build protocols would have left it in the field.
  std::vector<PathNodeState> states(n);
  for (int i = 0; i < n; ++i) {
    PathNodeState& s = states[i];
    s.cluster_root = clustering_.root_of[i];
    s.tree_parent = index_.parent(i);
    s.mtree_children = &index_.children(i);
    s.routing_feature = &index_.routing_feature(i);
    s.covering_radius = index_.covering_radius(i);
    s.subtree = &index_.subtree(i);
  }
  for (int leader : backbone_.leaders()) {
    PathNodeState& s = states[leader];
    s.is_leader = true;
    s.is_backbone_root = backbone_.tree_parent(leader) == leader;
    s.backbone_parent = backbone_.tree_parent(leader);
    s.root_ball = index_.root_ball_radius(leader);
    for (int child : backbone_.tree_children(leader)) {
      PathNodeState::BackboneChild c;
      c.id = child;
      c.feature = &features_[child];
      c.subtree_radius = backbone_radius_.at(child);
      c.members = &backbone_members_.at(child);
      s.backbone_children.push_back(c);
    }
  }

  PathContext ctx;
  ctx.metric = metric_.get();
  ctx.danger = danger;
  ctx.gamma = gamma;
  ctx.safe.assign(n, 0);

  proto::RunHarness::Options hopt;
  hopt.net.synchronous = options_.synchronous;
  hopt.net.seed = options_.seed;
  hopt.net.fault = options_.fault;
  hopt.net.churn = options_.churn;
  proto::RunHarness harness(topology_, hopt);
  harness.set_observer(options_.observer);
  harness.InstallNodes(
      [&](int i) { return std::make_unique<PathNode>(&states[i], &ctx); });

  static_cast<PathNode*>(harness.net().node(source))->Inject();
  const proto::RunHarness::Report report = harness.Run();
  if (report.hit_event_cap) {
    return Status::Internal("path query protocol hit the event cap");
  }
  if (!ctx.suppressed && !ctx.classification_done) {
    if (!options_.fault.enabled() && !options_.churn.enabled()) {
      return Status::Internal(
          "path query classification did not complete on a fault-free run");
    }
    // Message loss stalled the wave: report a (counted) failed query rather
    // than an answer derived from a partial safe map.
    PathQueryResult lost;
    lost.found = false;
    lost.stats = harness.net().stats();
    lost.clusters_safe = ctx.clusters_safe;
    lost.clusters_unsafe = ctx.clusters_unsafe;
    lost.clusters_drilled = ctx.clusters_drilled;
    return lost;
  }

  PathQueryResult result;
  result.stats = harness.net().stats();
  result.clusters_safe = ctx.clusters_safe;
  result.clusters_unsafe = ctx.clusters_unsafe;
  result.clusters_drilled = ctx.clusters_drilled;
  if (ctx.suppressed || !ctx.safe[source] || !ctx.safe[destination]) {
    result.found = false;
    return result;
  }

  // Safe backbone trees: the search over the assembled safe map runs at
  // cluster granularity, identically to PathQueryEngine::Query.
  std::vector<int> parent(n, -1);
  std::deque<int> queue{source};
  parent[source] = source;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    if (u == destination) break;
    for (int v : topology_.adjacency[u]) {
      if (ctx.safe[v] && parent[v] < 0) {
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  if (parent[destination] < 0) {
    result.found = false;
    return result;
  }
  result.found = true;
  for (int cur = destination; cur != source; cur = parent[cur]) {
    result.path.push_back(cur);
  }
  result.path.push_back(source);
  std::reverse(result.path.begin(), result.path.end());
  std::set<int> safe_clusters;
  for (int i = 0; i < n; ++i) {
    if (ctx.safe[i]) safe_clusters.insert(clustering_.root_of[i]);
  }
  for (int leader : safe_clusters) {
    const int p = backbone_.tree_parent(leader);
    if (p != leader) {
      const int hops = backbone_.route_hops(leader, p);
      for (int h = 0; h < hops; ++h) {
        result.stats.Record("path_search", 1);
      }
    }
  }
  for (size_t h = 0; h + 1 < result.path.size(); ++h) {
    result.stats.Record("path_trace", 1);
  }
  return result;
}

}  // namespace elink
