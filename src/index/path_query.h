// Path queries over the clustered network (paper Section 7.3).
//
// A path query asks for a route from source x to destination y along which
// every node stays at least gamma away (in feature space) from a danger
// feature F_D.  Clusters are screened with delta-compactness:
//   safe   when d(F_root, F_D) >  gamma + delta/2,
//   unsafe when d(F_root, F_D) <= gamma - delta/2,
// and inconclusive clusters are drilled down through the M-tree until every
// node is classified.  Spatially contiguous safe regions form safe backbone
// trees; a path exists iff x and y fall in the same safe region, and the
// returned path traverses only safe nodes.  The baseline (BFS) floods the
// network from the source.
#ifndef ELINK_INDEX_PATH_QUERY_H_
#define ELINK_INDEX_PATH_QUERY_H_

#include <map>
#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "metric/distance.h"
#include "sim/stats.h"

namespace elink {

/// Outcome of one path query.
struct PathQueryResult {
  /// True when a safe path exists.
  bool found = false;
  /// The safe path from source to destination (inclusive), empty if none.
  std::vector<int> path;
  MessageStats stats;
  /// Cluster-screening tallies.
  int clusters_safe = 0;
  int clusters_unsafe = 0;
  int clusters_drilled = 0;
};

/// \brief Executes path queries against one clustering + index + backbone.
class PathQueryEngine {
 public:
  PathQueryEngine(const Clustering& clustering, const ClusterIndex& index,
                  const Backbone& backbone, const AdjacencyList& adjacency,
                  const std::vector<Feature>& features,
                  const DistanceMetric& metric, double delta);

  /// Finds a safe path from `source` to `destination` avoiding `danger` by
  /// at least `gamma`.  A query whose source or destination is itself unsafe
  /// reports not-found.
  PathQueryResult Query(int source, int destination, const Feature& danger,
                        double gamma) const;

  /// Baseline: BFS flooding over safe nodes only, with per-transmission
  /// accounting (category bfs_flood).  Same found/path semantics.
  PathQueryResult BfsBaseline(int source, int destination,
                              const Feature& danger, double gamma) const;

  /// Ground truth for tests: is `node` safe w.r.t. (danger, gamma)?
  bool IsSafe(int node, const Feature& danger, double gamma) const;

 private:
  /// Selectively disseminates the classification down the backbone tree,
  /// pruning whole backbone subtrees with the upper-level covering radii.
  void VisitBackbone(int leader, const Feature& danger, double gamma,
                     std::vector<char>* safe, PathQueryResult* result) const;

  /// Classifies every node of the subtree rooted at `node` as safe/unsafe
  /// using M-tree bounds, charging drill-down messages for inconclusive
  /// subtrees.  Fills `safe` (indexed by node id).
  void ClassifySubtree(int node, const Feature& danger, double gamma,
                       std::vector<char>* safe,
                       PathQueryResult* result) const;

  const Clustering& clustering_;
  const ClusterIndex& index_;
  const Backbone& backbone_;
  const AdjacencyList& adjacency_;
  const std::vector<Feature>& features_;
  const DistanceMetric& metric_;
  double delta_;
  int feature_dim_;
  /// Upper-level covering radius per leader over its backbone subtree.
  std::map<int, double> backbone_radius_;
  /// All member nodes of each leader's backbone subtree.
  std::map<int, std::vector<int>> backbone_members_;
};

}  // namespace elink

#endif  // ELINK_INDEX_PATH_QUERY_H_
