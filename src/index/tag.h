// TAG-style aggregation baseline (paper Section 8.3, [20]).
//
// TAG maintains an overlay spanning tree over the whole network rooted at
// the base station.  Every query is pushed down the full tree (distribution
// phase) and results are aggregated back up (collection phase), so the
// per-query cost is fixed: twice the number of spanning-tree edges,
// regardless of selectivity.  This is the no-pruning comparison point for
// the range-query experiments (Figs. 14-15).
#ifndef ELINK_INDEX_TAG_H_
#define ELINK_INDEX_TAG_H_

#include <vector>

#include "common/status.h"
#include "metric/distance.h"
#include "sim/graph.h"
#include "sim/stats.h"

namespace elink {

/// \brief TAG overlay tree with per-query cost accounting.
class TagAggregator {
 public:
  /// Builds the overlay as the BFS spanning tree rooted at `base_station`.
  TagAggregator(const AdjacencyList& adjacency, int base_station,
                const std::vector<Feature>& features,
                const DistanceMetric& metric);

  /// Runs a range query: distribution down every tree edge (query feature +
  /// radius per hop), collection up every tree edge (one aggregate unit).
  /// Returns the exact matches; `stats` receives categories tag_distribute
  /// and tag_collect.
  std::vector<int> RangeQuery(const Feature& q, double r,
                              MessageStats* stats) const;

  /// Number of overlay tree edges (N - 1 on a connected network).
  int num_tree_edges() const { return num_tree_edges_; }

  int base_station() const { return base_station_; }

 private:
  const std::vector<Feature>& features_;
  const DistanceMetric& metric_;
  // SoA transpose of `features_`, built once: every query is one batched
  // whole-network scan (TAG has no pruning, by design).
  FeaturePool pool_;
  int base_station_;
  int num_tree_edges_;
  int feature_dim_;
};

}  // namespace elink

#endif  // ELINK_INDEX_TAG_H_
