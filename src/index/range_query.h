// Range queries over the clustered network (paper Section 7.2).
//
// A range query (q, r) retrieves all nodes whose features lie within
// distance r of the query feature q.  The initiator routes the query to its
// cluster root; the query floods the leader backbone; every root first
// applies the delta-compactness screen
//   exclude the cluster when d(q, F_root) >  r + delta/2,
//   include the whole cluster when d(q, F_root) <= r - delta/2,
// and only in the inconclusive middle band descends the cluster's M-tree,
// pruning subtrees with the covering-radius conditions of Section 7.1.
// Results aggregate back over the cluster trees and the backbone.
#ifndef ELINK_INDEX_RANGE_QUERY_H_
#define ELINK_INDEX_RANGE_QUERY_H_

#include <map>
#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "metric/distance.h"
#include "sim/stats.h"

namespace elink {

/// Outcome of one range query.
struct RangeQueryResult {
  /// Matching node ids, ascending.
  std::vector<int> matches;
  /// All messages the query incurred (categories query_route, query_backbone,
  /// query_descend, query_collect).
  MessageStats stats;
  /// Clusters fully excluded / fully included by the delta-compactness
  /// screen (the Section 7.2 pruning the experiments measure).
  int clusters_excluded = 0;
  int clusters_included = 0;
  /// Clusters that required an M-tree descent.
  int clusters_descended = 0;
  /// Backbone subtrees pruned / wholly included by the upper-level index
  /// (groups of clusters never visited individually).
  int backbone_subtrees_pruned = 0;
  int backbone_subtrees_included = 0;
};

/// \brief Executes range queries against one clustering + index + backbone.
class RangeQueryEngine {
 public:
  RangeQueryEngine(const Clustering& clustering, const ClusterIndex& index,
                   const Backbone& backbone,
                   const std::vector<Feature>& features,
                   const DistanceMetric& metric, double delta);

  /// Runs the query from `initiator`.  The result's matches are exact
  /// (verified against a linear scan in tests).
  RangeQueryResult Query(int initiator, const Feature& q, double r) const;

  /// Reference answer by exhaustive scan (for tests).
  std::vector<int> LinearScan(const Feature& q, double r) const;

 private:
  void VisitBackbone(int leader, const Feature& q, double r,
                     RangeQueryResult* result) const;
  void DescendMTree(int node, const Feature& q, double r,
                    RangeQueryResult* result) const;

  const Clustering& clustering_;
  const ClusterIndex& index_;
  const Backbone& backbone_;
  const std::vector<Feature>& features_;
  const DistanceMetric& metric_;
  double delta_;
  int feature_dim_;
  /// Upper-level covering radius per leader over its backbone subtree.
  std::map<int, double> backbone_radius_;
  /// All member nodes of each leader's backbone subtree, ascending.
  std::map<int, std::vector<int>> backbone_members_;
};

}  // namespace elink

#endif  // ELINK_INDEX_RANGE_QUERY_H_
