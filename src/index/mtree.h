// Distributed M-tree index over cluster trees (paper Section 7.1).
//
// Each node i in a cluster tree keeps a routing feature F_i^R (its own
// feature) and a covering radius R_i such that every feature in the subtree
// rooted at i lies within R_i of F_i^R.  Leaves have R = 0; a parent
// aggregates max_j (d(F_p^R, F_j^R) + R_j) over its children.  The structure
// is built by one bottom-up wave over the cluster trees (one message per
// tree edge carrying the child's routing feature and radius).
#ifndef ELINK_INDEX_MTREE_H_
#define ELINK_INDEX_MTREE_H_

#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "metric/distance.h"
#include "sim/stats.h"

namespace elink {

/// \brief The per-node M-tree state for all clusters of a clustering.
class ClusterIndex {
 public:
  /// Builds the index bottom-up over the given cluster trees.
  /// `tree_parent` comes from BuildClusterTrees (parent[root] == root).
  /// Build messages (one per tree edge, feature + radius units) are recorded
  /// into `build_stats` when non-null, category "mtree_build".
  static ClusterIndex Build(const Clustering& clustering,
                            const std::vector<int>& tree_parent,
                            const std::vector<Feature>& features,
                            const DistanceMetric& metric,
                            MessageStats* build_stats = nullptr);

  /// Routing feature of node i (== the node's own feature).
  const Feature& routing_feature(int i) const { return features_[i]; }

  /// Covering radius of the subtree rooted at i.
  double covering_radius(int i) const { return radius_[i]; }

  /// i's children in its cluster tree, ascending.
  const std::vector<int>& children(int i) const { return children_[i]; }

  /// i's parent in its cluster tree (parent of a root is the root itself).
  int parent(int i) const { return parent_[i]; }

  /// All nodes in the subtree rooted at i (including i).
  const std::vector<int>& subtree(int i) const { return subtree_[i]; }

  /// Exact max feature distance from cluster root `leader` to any member of
  /// its cluster — the ball radius the delta-compactness screens use.  For
  /// an ELink cluster this is at most delta/2 (the paper's screen); for
  /// repaired fragments and baseline clusterings it is the sound substitute.
  /// Aggregated bottom-up alongside the covering radii (members know their
  /// distance to the stored root feature), so it costs no extra messages.
  double root_ball_radius(int leader) const { return root_ball_[leader]; }

  /// Hop depth of i below its cluster root.
  int depth(int i) const { return depth_[i]; }

  int num_nodes() const { return static_cast<int>(parent_.size()); }

 private:
  ClusterIndex() = default;

  std::vector<Feature> features_;
  std::vector<double> radius_;
  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;
  std::vector<std::vector<int>> subtree_;
  std::vector<int> depth_;
  std::vector<double> root_ball_;
};

}  // namespace elink

#endif  // ELINK_INDEX_MTREE_H_
