// Wire schemas of the distributed path-query protocol (proto/codec.h).
//
// Classification traffic mirrors the PathQueryEngine's cost model message
// for message: route/visit/drill frames carry the danger feature plus gamma
// (dim + 1 cost units); completion acks ride in the separate "path_collect"
// category so the engine-comparable categories stay aligned.
#ifndef ELINK_INDEX_PATH_WIRE_H_
#define ELINK_INDEX_PATH_WIRE_H_

#include <vector>

namespace elink {
namespace path_wire {

/// Source -> its cluster root, hop by hop over the cluster tree.
struct PathUp {
  static constexpr int kType = 1;
  static constexpr const char* kCategory = "path_route";
  std::vector<double> danger;
  double gamma = 0.0;
  template <class V>
  void VisitFields(V& v) {
    v.Block(danger);
    v.F64(gamma);
  }
  bool operator==(const PathUp&) const = default;
};

/// Leader -> backbone root, up the leader chain (routed).
struct PathRoute {
  static constexpr int kType = 2;
  static constexpr const char* kCategory = "path_route";
  std::vector<double> danger;
  double gamma = 0.0;
  template <class V>
  void VisitFields(V& v) {
    v.Block(danger);
    v.F64(gamma);
  }
  bool operator==(const PathRoute&) const = default;
};

/// Backbone parent -> inconclusive child: classify your backbone subtree.
struct PathVisit {
  static constexpr int kType = 3;
  static constexpr const char* kCategory = "path_backbone";
  long long sender = 0;  // Logical sender (routed `from` is just the relay).
  std::vector<double> danger;
  double gamma = 0.0;
  template <class V>
  void VisitFields(V& v) {
    v.I64(sender);
    v.Block(danger);
    v.F64(gamma);
  }
  bool operator==(const PathVisit&) const = default;
};

/// M-tree parent -> child: classify your M-tree subtree.
struct PathDrill {
  static constexpr int kType = 4;
  static constexpr const char* kCategory = "path_drilldown";
  std::vector<double> danger;
  double gamma = 0.0;
  template <class V>
  void VisitFields(V& v) {
    v.Block(danger);
    v.F64(gamma);
  }
  bool operator==(const PathDrill&) const = default;
};

/// M-tree subtree classification finished (single hop to the drill parent).
struct PathDrillDone {
  static constexpr int kType = 5;
  static constexpr const char* kCategory = "path_collect";
  template <class V>
  void VisitFields(V&) {}
  bool operator==(const PathDrillDone&) const = default;
};

/// Backbone subtree classification finished (routed to the visit parent).
struct PathVisitDone {
  static constexpr int kType = 6;
  static constexpr const char* kCategory = "path_collect";
  template <class V>
  void VisitFields(V&) {}
  bool operator==(const PathVisitDone&) const = default;
};

/// Applies `fn` to a default instance of every schema in this family — the
/// generic enumeration the wire-format tests round-trip all schemas through.
template <class F>
void ForEachSchema(F&& fn) {
  fn(PathUp{});
  fn(PathRoute{});
  fn(PathVisit{});
  fn(PathDrill{});
  fn(PathDrillDone{});
  fn(PathVisitDone{});
}

/// The accounting category of packet id `type` within this family, or null
/// for an id the family does not define — how a byte-level receiver
/// re-derives the category the radio frame deliberately omits.
inline const char* CategoryForType(int type) {
  switch (type) {
    case PathUp::kType:
      return PathUp::kCategory;
    case PathRoute::kType:
      return PathRoute::kCategory;
    case PathVisit::kType:
      return PathVisit::kCategory;
    case PathDrill::kType:
      return PathDrill::kCategory;
    case PathDrillDone::kType:
      return PathDrillDone::kCategory;
    case PathVisitDone::kType:
      return PathVisitDone::kCategory;
    default:
      return nullptr;
  }
}

}  // namespace path_wire
}  // namespace elink

#endif  // ELINK_INDEX_PATH_WIRE_H_
