// Inter-cluster leader backbone (paper Section 7.2).
//
// A spanning tree over the cluster leaders — two leaders are adjacent when
// their clusters share a communication-graph edge — used to route queries to
// every cluster root.  Backbone links are logical: a message between two
// leaders travels the shortest communication-graph path between them, and is
// charged per hop.  The construction cost (boundary discovery plus the tree
// agreement wave) is recorded so it can be accounted into the clustering
// cost as Section 8.2 prescribes.
#ifndef ELINK_INDEX_BACKBONE_H_
#define ELINK_INDEX_BACKBONE_H_

#include <map>
#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "metric/distance.h"
#include "sim/stats.h"

namespace elink {

/// \brief The leader backbone of a clustering.
class Backbone {
 public:
  /// Builds the backbone.  Construction messages go to `build_stats`
  /// (category "backbone_build") when non-null.
  ///
  /// When `features`/`metric` are supplied, the spanning tree over the
  /// cluster-adjacency graph is chosen by Prim's algorithm on leader feature
  /// distances, rooted at the leader medoid: feature-similar clusters group
  /// into the same backbone subtree, which is what makes the upper-level
  /// covering-radius pruning of the query engines effective.  Without
  /// features the tree is a plain BFS tree (hop-oriented).
  static Backbone Build(const Clustering& clustering,
                        const AdjacencyList& adjacency,
                        MessageStats* build_stats = nullptr,
                        const std::vector<Feature>* features = nullptr,
                        const DistanceMetric* metric = nullptr);

  /// All cluster leaders, ascending.
  const std::vector<int>& leaders() const { return leaders_; }

  /// Parent of a leader in the backbone tree (the tree root's parent is
  /// itself).  Only valid for leader ids.
  int tree_parent(int leader) const { return tree_parent_.at(leader); }

  /// Children of a leader in the backbone tree, ascending.
  const std::vector<int>& tree_children(int leader) const {
    return tree_children_.at(leader);
  }

  /// The leader whose cluster graph BFS rooted the tree.
  int tree_root() const { return tree_root_; }

  /// Communication-graph hop distance between two leaders (how many
  /// transmissions one backbone-link traversal costs).
  int route_hops(int leader_a, int leader_b) const;

  /// Sum of route_hops over all backbone tree edges (independent
  /// point-to-point legs between tree-adjacent leaders).
  int total_tree_hops() const { return total_tree_hops_; }

  /// Transmissions needed to deliver one message to *every* leader by
  /// flooding the communication-graph spanning tree pruned to the branches
  /// that contain leaders (a Steiner-tree approximation of the backbone
  /// overlay).  Shared path prefixes are paid once, so this is at most
  /// N - 1 — a query over the backbone never costs more than TAG's
  /// network-wide tree — and far less when clusters are few.
  int flood_hops() const { return flood_hops_; }

 private:
  Backbone() = default;

  std::vector<int> leaders_;
  std::map<int, int> tree_parent_;
  std::map<int, std::vector<int>> tree_children_;
  int tree_root_ = -1;
  int total_tree_hops_ = 0;
  int flood_hops_ = 0;
  // Hop distances from each leader to every node (for route_hops).
  std::map<int, std::vector<int>> hops_from_leader_;
};

}  // namespace elink

#endif  // ELINK_INDEX_BACKBONE_H_
