#include "index/tag.h"

namespace elink {

TagAggregator::TagAggregator(const AdjacencyList& adjacency, int base_station,
                             const std::vector<Feature>& features,
                             const DistanceMetric& metric)
    : features_(features),
      metric_(metric),
      pool_(features),
      base_station_(base_station) {
  const std::vector<int> parents = BfsTreeParents(adjacency, base_station);
  int edges = 0;
  for (size_t i = 0; i < parents.size(); ++i) {
    ELINK_CHECK(parents[i] >= 0);  // Connected networks only.
    if (parents[i] != static_cast<int>(i)) ++edges;
  }
  num_tree_edges_ = edges;
  feature_dim_ =
      features_.empty() ? 0 : static_cast<int>(features_[0].size());
}

std::vector<int> TagAggregator::RangeQuery(const Feature& q, double r,
                                           MessageStats* stats) const {
  if (stats != nullptr) {
    for (int e = 0; e < num_tree_edges_; ++e) {
      stats->Record("tag_distribute", feature_dim_ + 1);
      stats->Record("tag_collect", 1);
    }
  }
  std::vector<int> matches;
  std::vector<double> dists(pool_.size());
  metric_.BatchDistance(q, pool_, dists.data());
  for (size_t i = 0; i < dists.size(); ++i) {
    if (dists[i] <= r + 1e-12) matches.push_back(static_cast<int>(i));
  }
  return matches;
}

}  // namespace elink
