#include "index/range_query.h"

#include <algorithm>
#include <cmath>

namespace elink {

RangeQueryEngine::RangeQueryEngine(const Clustering& clustering,
                                   const ClusterIndex& index,
                                   const Backbone& backbone,
                                   const std::vector<Feature>& features,
                                   const DistanceMetric& metric, double delta)
    : clustering_(clustering),
      index_(index),
      backbone_(backbone),
      features_(features),
      metric_(metric),
      delta_(delta),
      feature_dim_(features.empty() ? 0
                                    : static_cast<int>(features[0].size())) {
  // Upper level of the hierarchical index (Section 7.1): every leader
  // maintains a covering radius over its *backbone subtree* — its own
  // cluster plus all clusters below it in the backbone tree — aggregated
  // bottom-up exactly like the in-cluster M-tree radii.  Query dissemination
  // then prunes whole backbone subtrees without visiting them.
  std::vector<int> order = backbone_.leaders();
  // Children before parents: sort by decreasing depth in the backbone tree.
  auto depth = [&](int leader) {
    int d = 0;
    for (int cur = leader; backbone_.tree_parent(cur) != cur;
         cur = backbone_.tree_parent(cur)) {
      ++d;
    }
    return d;
  };
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int da = depth(a), db = depth(b);
    if (da != db) return da > db;
    return a < b;
  });
  for (int leader : order) {
    double radius = index_.root_ball_radius(leader);
    std::vector<int> members = index_.subtree(leader);
    for (int child : backbone_.tree_children(leader)) {
      radius = std::max(
          radius, metric_.Distance(features_[leader], features_[child]) +
                      backbone_radius_.at(child));
      const auto& sub = backbone_members_.at(child);
      members.insert(members.end(), sub.begin(), sub.end());
    }
    backbone_radius_[leader] = radius;
    std::sort(members.begin(), members.end());
    backbone_members_[leader] = std::move(members);
  }
}

std::vector<int> RangeQueryEngine::LinearScan(const Feature& q,
                                              double r) const {
  std::vector<int> out;
  for (size_t i = 0; i < features_.size(); ++i) {
    if (metric_.Distance(q, features_[i]) <= r + 1e-12) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

RangeQueryResult RangeQueryEngine::Query(int initiator, const Feature& q,
                                         double r) const {
  RangeQueryResult result;
  const int query_units = feature_dim_ + 1;  // Query feature + radius.

  // 1. Initiator -> its cluster root (over the cluster tree).
  const int init_root = clustering_.root_of[initiator];
  for (int d = 0; d < index_.depth(initiator); ++d) {
    result.stats.Record("query_route", query_units);
  }
  // 2. Initiator's root -> the backbone tree root along the backbone.
  for (int cur = init_root; backbone_.tree_parent(cur) != cur;
       cur = backbone_.tree_parent(cur)) {
    const int hops = backbone_.route_hops(cur, backbone_.tree_parent(cur));
    for (int h = 0; h < hops; ++h) {
      result.stats.Record("query_route", query_units);
      result.stats.Record("query_collect", 1);  // Final aggregate back.
    }
  }

  // 3. Selective dissemination down the backbone tree with upper-level
  //    pruning, then per-cluster screening / M-tree descent at each visited
  //    leader.
  VisitBackbone(backbone_.tree_root(), q, r, &result);
  std::sort(result.matches.begin(), result.matches.end());

  // 4. Initiator receives the aggregate from its root.
  for (int d = 0; d < index_.depth(initiator); ++d) {
    result.stats.Record("query_collect", 1);
  }
  return result;
}

void RangeQueryEngine::VisitBackbone(int leader, const Feature& q, double r,
                                     RangeQueryResult* result) const {
  const int query_units = feature_dim_ + 1;
  // Screen this leader's own cluster (Section 7.2).
  const double screen = index_.root_ball_radius(leader);
  const double d_root = metric_.Distance(q, index_.routing_feature(leader));
  if (d_root > r + screen + 1e-12) {
    ++result->clusters_excluded;
  } else if (d_root <= r - screen + 1e-12) {
    ++result->clusters_included;
    const auto& all = index_.subtree(leader);
    result->matches.insert(result->matches.end(), all.begin(), all.end());
  } else {
    ++result->clusters_descended;
    DescendMTree(leader, q, r, result);
  }
  // Decide per backbone child using the upper-level covering radii the
  // parent caches for its children.
  for (int child : backbone_.tree_children(leader)) {
    const double child_radius = backbone_radius_.at(child);
    const double d_child = metric_.Distance(q, features_[child]);
    if (d_child > r + child_radius + 1e-12) {
      // Entire backbone subtree excluded without any transmission.
      result->backbone_subtrees_pruned += 1;
      continue;
    }
    if (d_child <= r - child_radius + 1e-12) {
      // Entire backbone subtree matches; one aggregate exchange.
      const auto& all = backbone_members_.at(child);
      result->matches.insert(result->matches.end(), all.begin(), all.end());
      const int hops = backbone_.route_hops(leader, child);
      for (int h = 0; h < hops; ++h) {
        result->stats.Record("query_backbone", query_units);
        result->stats.Record("query_collect", 1);
      }
      result->backbone_subtrees_included += 1;
      continue;
    }
    // Inconclusive: forward the query over this backbone link and recurse.
    const int hops = backbone_.route_hops(leader, child);
    for (int h = 0; h < hops; ++h) {
      result->stats.Record("query_backbone", query_units);
      result->stats.Record("query_collect", 1);
    }
    VisitBackbone(child, q, r, result);
  }
}

void RangeQueryEngine::DescendMTree(int node, const Feature& q, double r,
                                    RangeQueryResult* result) const {
  // Node `node` holds the query: test itself, then decide per child.
  const Feature& f_node = index_.routing_feature(node);
  const double d_node = metric_.Distance(q, f_node);
  if (d_node <= r + 1e-12) {
    result->matches.push_back(node);
    // One aggregation unit for reporting the hit back up.
    result->stats.Record("query_collect", 1);
  }
  for (int child : index_.children(node)) {
    const double d_link =
        metric_.Distance(f_node, index_.routing_feature(child));
    const double r_child = index_.covering_radius(child);
    // Parent-side pruning (Section 7.1): the child's subtree lies within
    // r_child of its routing feature, whose distance to q is within
    // [d_node - d_link, d_node + d_link].
    if (std::fabs(d_node - d_link) > r + r_child + 1e-12) {
      continue;  // Entire subtree excluded without visiting it.
    }
    if (d_node + d_link <= r - r_child + 1e-12) {
      // Entire subtree matches; child answers with an aggregate.
      const auto& all = index_.subtree(child);
      result->matches.insert(result->matches.end(), all.begin(), all.end());
      result->stats.Record("query_descend", feature_dim_ + 1);
      result->stats.Record("query_collect", 1);
      continue;
    }
    // Inconclusive: forward the query into the child.
    result->stats.Record("query_descend", feature_dim_ + 1);
    DescendMTree(child, q, r, result);
  }
}

}  // namespace elink
