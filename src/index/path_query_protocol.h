// A fully distributed, message-passing execution of the Section-7.3 path
// query, run inside the discrete-event simulator on the proto runtime.
//
// PathQueryEngine (path_query.h) is the centralized accounting model; here
// every classification step is a real protocol action: the query routes hop
// by hop from the source to its cluster root, up the leader chain to the
// backbone root, and is then disseminated selectively down the backbone —
// pruned subtrees cost nothing, inconclusive leaders drill their cluster's
// M-tree with per-edge messages, and completion acks aggregate back up.
// The safe-region search that follows classification runs on the assembled
// safe map at cluster granularity, exactly like the engine.  Tests replay
// identical queries through both implementations and check that outcomes
// and per-category costs agree.
#ifndef ELINK_INDEX_PATH_QUERY_PROTOCOL_H_
#define ELINK_INDEX_PATH_QUERY_PROTOCOL_H_

#include <map>
#include <memory>
#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "index/path_query.h"
#include "metric/distance.h"
#include "sim/churn.h"
#include "sim/fault.h"
#include "sim/observer.h"
#include "sim/topology.h"

namespace elink {

/// Network/run options of the distributed path-query protocol.
struct PathProtocolOptions {
  bool synchronous = true;
  uint64_t seed = 1;
  /// Message-level fault plan (loss, truncation, ...); inert by default.
  FaultPlan fault;
  /// Topology dynamics (sim/churn.h); inert by default.  Churn degrades a
  /// query into a (counted) failed one, never into a wrong answer.
  ChurnPlan churn;
  /// Read-only observer (telemetry/tracer) bound to every Run's network.
  /// Not owned; attaching never changes the query's outcome.
  SimObserver* observer = nullptr;
};

/// \brief Executes path queries as a distributed protocol.
class DistributedPathQuery {
 public:
  DistributedPathQuery(const Topology& topology, const Clustering& clustering,
                       const ClusterIndex& index, const Backbone& backbone,
                       const std::vector<Feature>& features,
                       std::shared_ptr<const DistanceMetric> metric,
                       PathProtocolOptions options = {});

  /// Finds a safe path from `source` to `destination` avoiding `danger` by
  /// at least `gamma`.  Outcome semantics match PathQueryEngine::Query; the
  /// returned stats additionally carry the protocol's completion acks under
  /// "path_collect".
  Result<PathQueryResult> Run(int source, int destination,
                              const Feature& danger, double gamma);

 private:
  const Topology& topology_;
  const Clustering& clustering_;
  const ClusterIndex& index_;
  const Backbone& backbone_;
  const std::vector<Feature>& features_;
  std::shared_ptr<const DistanceMetric> metric_;
  PathProtocolOptions options_;
  /// Upper-level covering radius per leader over its backbone subtree.
  std::map<int, double> backbone_radius_;
  /// All member nodes of each leader's backbone subtree.
  std::map<int, std::vector<int>> backbone_members_;
};

}  // namespace elink

#endif  // ELINK_INDEX_PATH_QUERY_PROTOCOL_H_
