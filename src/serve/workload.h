// Deterministic multi-client query workload generation for the serving
// layer.
//
// A WorkloadGenerator derives, from one master seed, an independent op
// stream per client (Rng::Fork per client id), so a workload is exactly
// reproducible regardless of how many OS threads replay it or in which
// order clients run.  Predicates are drawn from a shared pool with
// Zipf-skewed popularity — the skew is what gives the result cache a
// non-trivial hit rate — mixed with a configurable fraction of one-off
// predicates that can never hit.
//
// The generator is timing-free by construction; determinism tests digest
// its replayed answers byte-for-byte.  For open-loop (arrival-rate-driven)
// benchmarking it additionally emits a deterministic Poisson arrival
// schedule per client; the bench turns those offsets into wall-clock send
// times, so the load shape is reproducible even though latencies are not.
#ifndef ELINK_SERVE_WORKLOAD_H_
#define ELINK_SERVE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "metric/feature.h"
#include "serve/read_view.h"

namespace elink {
namespace serve {

/// One query to issue against a ServeFrontend.
struct WorkloadOp {
  bool is_range = true;
  Feature feature;       // Range center, or path danger point.
  double scalar = 0.0;   // Range radius, or path safety gamma.
  int source = 0;        // Path only.
  int destination = 0;   // Path only.
};

struct WorkloadConfig {
  int num_clients = 4;
  int ops_per_client = 256;
  /// Fraction of ops that are range queries (the rest are safe-path).
  double range_fraction = 0.7;
  /// Distinct predicates in the shared popularity pool.
  int predicate_pool = 64;
  /// Zipf exponent for pool popularity; 0 = uniform over the pool.
  double zipf_s = 1.1;
  /// Fraction of ops drawn fresh instead of from the pool (guaranteed cache
  /// misses; models unique ad-hoc queries).
  double unique_fraction = 0.1;
  /// Open-loop target arrival rate per client (ops/sec) for
  /// ArrivalOffsets; ignored by closed-loop replay.
  double open_loop_qps = 2000.0;
};

/// \brief Deterministic per-client op streams over a fixed deployment.
class WorkloadGenerator {
 public:
  /// `features` bounds the predicate space (centers are sampled inside the
  /// feature bounding box, radii against its diameter); `num_nodes` bounds
  /// path endpoints.  Requires a non-empty feature set.
  WorkloadGenerator(const std::vector<Feature>& features, int num_nodes,
                    const WorkloadConfig& config, uint64_t seed);

  /// The full op sequence of one client, deterministic in (seed, client).
  std::vector<WorkloadOp> ClientOps(int client) const;

  /// Deterministic Poisson inter-arrival offsets (seconds, cumulative) for
  /// open-loop replay of the same client stream.
  std::vector<double> ArrivalOffsets(int client) const;

  const std::vector<WorkloadOp>& pool() const { return pool_; }

 private:
  WorkloadOp DrawOp(Rng* rng) const;
  int SampleZipf(Rng* rng) const;

  WorkloadConfig config_;
  uint64_t seed_;
  int num_nodes_;
  std::vector<double> lo_, hi_;  // Per-dimension feature bounds.
  double diameter_ = 1.0;
  std::vector<WorkloadOp> pool_;
  std::vector<double> zipf_cdf_;
};

/// FNV-1a digest helpers for byte-exact replay comparison.
uint64_t DigestRange(uint64_t h, const RangeAnswer& answer);
uint64_t DigestPath(uint64_t h, const PathAnswer& answer);

}  // namespace serve
}  // namespace elink

#endif  // ELINK_SERVE_WORKLOAD_H_
