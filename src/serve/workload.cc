#include "serve/workload.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace elink {
namespace serve {

namespace {

// Distinct Fork stream ids so pool construction and per-client streams are
// independent draws from the master seed.
constexpr uint64_t kPoolStream = 0x9001;
constexpr uint64_t kClientStreamBase = 0xC000;
constexpr uint64_t kArrivalStreamBase = 0xA000;

uint64_t MixDigest(uint64_t h, uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const std::vector<Feature>& features,
                                     int num_nodes,
                                     const WorkloadConfig& config,
                                     uint64_t seed)
    : config_(config), seed_(seed), num_nodes_(num_nodes) {
  ELINK_CHECK(!features.empty());
  ELINK_CHECK(num_nodes > 0);
  const size_t dim = features[0].size();
  lo_.assign(dim, features[0][0]);
  hi_.assign(dim, features[0][0]);
  for (size_t d = 0; d < dim; ++d) {
    lo_[d] = hi_[d] = features[0][d];
    for (const Feature& f : features) {
      lo_[d] = std::min(lo_[d], f[d]);
      hi_[d] = std::max(hi_[d], f[d]);
    }
  }
  double sq = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    sq += (hi_[d] - lo_[d]) * (hi_[d] - lo_[d]);
  }
  diameter_ = std::max(std::sqrt(sq), 1e-9);

  const int pool_size = std::max(config_.predicate_pool, 1);
  Rng pool_rng = Rng(seed_).Fork(kPoolStream);
  pool_.reserve(pool_size);
  for (int k = 0; k < pool_size; ++k) {
    pool_.push_back(DrawOp(&pool_rng));
  }

  // Zipf CDF over pool ranks: weight(k) = 1/(k+1)^s.
  zipf_cdf_.resize(pool_size);
  double total = 0.0;
  for (int k = 0; k < pool_size; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), config_.zipf_s);
    zipf_cdf_[k] = total;
  }
  for (double& c : zipf_cdf_) c /= total;
}

WorkloadOp WorkloadGenerator::DrawOp(Rng* rng) const {
  WorkloadOp op;
  op.is_range = rng->Bernoulli(config_.range_fraction);
  const size_t dim = lo_.size();
  op.feature.resize(dim);
  for (size_t d = 0; d < dim; ++d) {
    // Allow centers slightly outside the box so empty answers occur too.
    const double pad = 0.1 * (hi_[d] - lo_[d] + 1e-9);
    op.feature[d] = rng->Uniform(lo_[d] - pad, hi_[d] + pad);
  }
  if (op.is_range) {
    op.scalar = rng->Uniform(0.02, 0.6) * diameter_;
  } else {
    op.scalar = rng->Uniform(0.05, 0.5) * diameter_;
    op.source = static_cast<int>(rng->UniformInt(num_nodes_));
    op.destination = static_cast<int>(rng->UniformInt(num_nodes_));
  }
  return op;
}

int WorkloadGenerator::SampleZipf(Rng* rng) const {
  const double u = rng->Uniform01();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return static_cast<int>(zipf_cdf_.size()) - 1;
  return static_cast<int>(it - zipf_cdf_.begin());
}

std::vector<WorkloadOp> WorkloadGenerator::ClientOps(int client) const {
  Rng rng = Rng(seed_).Fork(kClientStreamBase + static_cast<uint64_t>(client));
  std::vector<WorkloadOp> ops;
  ops.reserve(config_.ops_per_client);
  for (int k = 0; k < config_.ops_per_client; ++k) {
    // Knob-stable draw order: every branch consumes the same draws.
    const bool unique = rng.Bernoulli(config_.unique_fraction);
    const int pick = SampleZipf(&rng);
    WorkloadOp fresh = DrawOp(&rng);
    ops.push_back(unique ? fresh : pool_[pick]);
  }
  return ops;
}

std::vector<double> WorkloadGenerator::ArrivalOffsets(int client) const {
  Rng rng =
      Rng(seed_).Fork(kArrivalStreamBase + static_cast<uint64_t>(client));
  const double rate = std::max(config_.open_loop_qps, 1e-3);
  std::vector<double> offsets;
  offsets.reserve(config_.ops_per_client);
  double t = 0.0;
  for (int k = 0; k < config_.ops_per_client; ++k) {
    // Exponential inter-arrival via inverse CDF; 1-u keeps log() finite.
    t += -std::log(1.0 - rng.Uniform01()) / rate;
    offsets.push_back(t);
  }
  return offsets;
}

uint64_t DigestRange(uint64_t h, const RangeAnswer& answer) {
  h = MixDigest(h, 0x52414E47ULL);  // "RANG"
  h = MixDigest(h, answer.matches.size());
  for (int id : answer.matches) {
    h = MixDigest(h, static_cast<uint64_t>(static_cast<uint32_t>(id)));
  }
  return h;
}

uint64_t DigestPath(uint64_t h, const PathAnswer& answer) {
  h = MixDigest(h, 0x50415448ULL);  // "PATH"
  h = MixDigest(h, answer.found ? 1 : 0);
  h = MixDigest(h, answer.path.size());
  for (int id : answer.path) {
    h = MixDigest(h, static_cast<uint64_t>(static_cast<uint32_t>(id)));
  }
  return h;
}

}  // namespace serve
}  // namespace elink
