#include "serve/read_view.h"

#include <algorithm>
#include <deque>

#include "common/status.h"

namespace elink {
namespace serve {

uint64_t EpochSignature(const EpochVector& epochs) {
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& [root, epoch] : epochs) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(root)));
    mix(static_cast<uint64_t>(epoch));
  }
  return h;
}

std::shared_ptr<const ReadView> ReadView::Build(
    const AdjacencyList& adjacency, const std::vector<Feature>& features,
    const Clustering& clustering, const std::vector<char>& live,
    std::shared_ptr<const DistanceMetric> metric, double delta,
    EpochVector epochs, uint64_t version) {
  const int n = static_cast<int>(features.size());
  auto view = std::shared_ptr<ReadView>(new ReadView());
  view->metric_ = std::move(metric);
  view->delta_ = delta;
  view->epochs_ = std::move(epochs);
  view->signature_ = EpochSignature(view->epochs_);
  view->version_ = version;

  view->remap_.assign(n, -1);
  for (int i = 0; i < n; ++i) {
    if (!live.empty() && !live[i]) continue;
    view->remap_[i] = static_cast<int>(view->original_.size());
    view->original_.push_back(i);
    view->compact_features_.push_back(features[i]);
  }
  const int m = static_cast<int>(view->original_.size());
  view->compact_adjacency_.resize(m);
  view->compact_clustering_.root_of.resize(m);
  // Mid-churn snapshots are allowed to be transiently inconsistent (a live
  // node pointing at a crashed root, a cluster split by a lost link); the
  // engine stack requires a structurally sound clustering, so any defect
  // demotes the view to the exact fallbacks instead of rejecting it —
  // serving stays available through repair windows.
  bool clustering_sound = true;
  for (int c = 0; c < m; ++c) {
    const int i = view->original_[c];
    for (int nb : adjacency[i]) {
      if (view->remap_[nb] >= 0) {
        view->compact_adjacency_[c].push_back(view->remap_[nb]);
      }
    }
    std::sort(view->compact_adjacency_[c].begin(),
              view->compact_adjacency_[c].end());
    const int r = clustering.root_of[i];
    if (r >= 0 && r < n && view->remap_[r] >= 0) {
      view->compact_clustering_.root_of[c] = view->remap_[r];
    } else {
      view->compact_clustering_.root_of[c] = c;  // Orphan: self-rooted.
      clustering_sound = false;
    }
  }
  for (int c = 0; clustering_sound && c < m; ++c) {
    const int r = view->compact_clustering_.root_of[c];
    if (view->compact_clustering_.root_of[r] != r) clustering_sound = false;
  }
  if (clustering_sound) {
    // Every cluster's live members must stay connected through live links,
    // or BuildClusterTrees cannot produce valid trees.
    std::vector<std::vector<char>> members;
    std::vector<int> slot(m, -1);
    for (int c = 0; c < m; ++c) {
      const int r = view->compact_clustering_.root_of[c];
      if (slot[r] < 0) {
        slot[r] = static_cast<int>(members.size());
        members.emplace_back(m, 0);
      }
      members[slot[r]][c] = 1;
    }
    for (const auto& mask : members) {
      if (!IsInducedConnected(view->compact_adjacency_, mask)) {
        clustering_sound = false;
        break;
      }
    }
  }

  // The backbone-routed engine stack additionally needs a connected live
  // deployment; after a partitioning churn event the view serves through
  // the exact fallbacks instead (identical answers, different message
  // accounting — which the serving layer does not expose anyway).
  if (m > 0 && clustering_sound && IsConnected(view->compact_adjacency_)) {
    view->engine_backed_ = true;
    view->tree_parent_ = BuildClusterTrees(view->compact_clustering_,
                                           view->compact_adjacency_);
    view->index_ = std::make_unique<ClusterIndex>(
        ClusterIndex::Build(view->compact_clustering_, view->tree_parent_,
                            view->compact_features_, *view->metric_));
    view->backbone_ = std::make_unique<Backbone>(Backbone::Build(
        view->compact_clustering_, view->compact_adjacency_, nullptr,
        &view->compact_features_, view->metric_.get()));
    view->range_engine_ = std::make_unique<RangeQueryEngine>(
        view->compact_clustering_, *view->index_, *view->backbone_,
        view->compact_features_, *view->metric_, delta);
    view->path_engine_ = std::make_unique<PathQueryEngine>(
        view->compact_clustering_, *view->index_, *view->backbone_,
        view->compact_adjacency_, view->compact_features_, *view->metric_,
        delta);
  }
  return view;
}

RangeAnswer ReadView::Range(const Feature& q, double r) const {
  RangeAnswer out;
  const int m = num_live();
  if (m == 0) return out;
  if (engine_backed_) {
    // Matches are initiator-independent (the engine's exactness is pinned
    // by the oracle suites); initiator 0 keeps the call deterministic.
    RangeQueryResult res = range_engine_->Query(0, q, r);
    out.matches.reserve(res.matches.size());
    for (int c : res.matches) out.matches.push_back(original_[c]);
  } else {
    for (int c = 0; c < m; ++c) {
      if (metric_->Distance(compact_features_[c], q) <= r) {
        out.matches.push_back(original_[c]);
      }
    }
  }
  // Compaction is order-preserving, so the mapped-back list is ascending
  // already; this is a cheap belt-and-braces invariant.
  ELINK_CHECK(std::is_sorted(out.matches.begin(), out.matches.end()));
  return out;
}

PathAnswer ReadView::SafePath(int source, int destination,
                              const Feature& danger, double gamma) const {
  PathAnswer out;
  if (!node_live(source) || !node_live(destination)) return out;
  const int s = remap_[source];
  const int d = remap_[destination];
  if (engine_backed_) {
    PathQueryResult res = path_engine_->Query(s, d, danger, gamma);
    out.found = res.found;
    out.path.reserve(res.path.size());
    for (int c : res.path) out.path.push_back(original_[c]);
    return out;
  }
  // Fallback: BFS over the safe-node-induced live subgraph, with the exact
  // IsSafe tolerance of PathQueryEngine (index/path_query.cc).
  const auto safe = [&](int c) {
    return metric_->Distance(compact_features_[c], danger) >= gamma - 1e-12;
  };
  if (!safe(s) || !safe(d)) return out;
  const int m = num_live();
  std::vector<int> parent(m, -1);
  std::deque<int> queue;
  parent[s] = s;
  queue.push_back(s);
  while (!queue.empty() && parent[d] == -1) {
    const int u = queue.front();
    queue.pop_front();
    for (int v : compact_adjacency_[u]) {
      if (parent[v] != -1 || !safe(v)) continue;
      parent[v] = u;
      queue.push_back(v);
    }
  }
  if (parent[d] == -1) return out;
  out.found = true;
  for (int v = d; v != s; v = parent[v]) out.path.push_back(original_[v]);
  out.path.push_back(original_[s]);
  std::reverse(out.path.begin(), out.path.end());
  return out;
}

}  // namespace serve
}  // namespace elink
