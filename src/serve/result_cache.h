// Sharded, epoch-keyed result cache for the serving layer (elink_serve).
//
// Entries are keyed by the canonicalized predicate bytes of a query and
// stamped with the per-cluster epoch vector (and its signature) of the
// ReadView the answer was computed on.  A lookup only hits when the stored
// signature equals the signature of the view currently being served — an
// entry computed before any cluster's epoch bumped can never be returned,
// which is the whole coherence argument: every observable state change
// (feature, membership, liveness, link) bumps at least one cluster epoch,
// so signature equality implies the cached answer byte-equals a fresh
// recomputation (tests/serve_parity_test.cc proves this under fuzzed
// concurrent maintenance).
//
// Invalidation is push + pull: the maintenance epoch-bump hook calls
// InvalidateStale(new_signature) to sweep entries eagerly (counted
// per-cluster by the frontend), and any entry that survives a sweep —
// because it raced the publish — is caught lazily at lookup time by the
// signature check and evicted then.  Correctness never depends on the
// sweep; the sweep only bounds memory and keeps the hit path short.
//
// Sharding: keys hash onto kShards independent shards, each with its own
// mutex and map, so concurrent clients on different predicates never
// contend.  Per-shard capacity is bounded with second-chance (CLOCK)
// eviction.
#ifndef ELINK_SERVE_RESULT_CACHE_H_
#define ELINK_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/read_view.h"

namespace elink {
namespace serve {

/// Deterministic 64-bit FNV-1a over the canonical predicate bytes; used
/// both for shard selection and as the map hash.
uint64_t HashKey(const std::string& key);

/// One cached answer.  `range`/`path` discriminated by `is_range`.
struct CacheEntry {
  bool is_range = true;
  RangeAnswer range;
  PathAnswer path;
  /// Epoch stamp of the view the answer was computed on.
  uint64_t signature = 0;
  EpochVector epochs;
  /// Second-chance bit for CLOCK eviction.
  bool referenced = false;
};

/// Monotone counters of cache behavior.  Individually exact; concurrent
/// snapshots are not cross-field atomic.
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stale_evictions = 0;  // Lazily dropped at lookup (sig mismatch).
  uint64_t invalidated = 0;      // Swept by InvalidateStale.
  uint64_t capacity_evictions = 0;
  uint64_t insertions = 0;
};

/// \brief Thread-safe sharded cache of served answers.
class ResultCache {
 public:
  struct Options {
    int shards = 16;              // Clamped to [1, 256].
    int capacity_per_shard = 512; // Entries per shard; >= 1.
  };

  explicit ResultCache(const Options& options);
  ResultCache() : ResultCache(Options()) {}

  /// Looks up `key`; hits only when the stored epoch signature equals
  /// `signature`.  A stale entry under the key is evicted and counted.
  std::optional<CacheEntry> Lookup(const std::string& key,
                                   uint64_t signature);

  /// Inserts (or replaces) the entry under `key`, evicting a victim when
  /// the shard is full.
  void Insert(const std::string& key, CacheEntry entry);

  /// Sweeps out every entry whose signature differs from
  /// `current_signature`; returns how many were dropped.  Called by the
  /// frontend when maintenance bumps cluster epochs.
  uint64_t InvalidateStale(uint64_t current_signature);

  /// Drops everything (testing / reconfiguration).
  void Clear();

  /// Entries currently resident across all shards.
  size_t Size() const;

  CacheCounters Counters() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, CacheEntry> map;
    /// CLOCK hand: iteration order of `map` is stable between rehashes, so
    /// a plain round-robin over keys approximates second chance; we keep a
    /// vector of keys in insertion order instead for determinism.
    std::vector<std::string> order;
    size_t clock_hand = 0;
  };

  Shard& ShardFor(const std::string& key);

  int num_shards_;
  int capacity_per_shard_;
  std::vector<Shard> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> stale_evictions_{0};
  std::atomic<uint64_t> invalidated_{0};
  std::atomic<uint64_t> capacity_evictions_{0};
  std::atomic<uint64_t> insertions_{0};
};

}  // namespace serve
}  // namespace elink

#endif  // ELINK_SERVE_RESULT_CACHE_H_
