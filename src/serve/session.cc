#include "serve/session.h"

#include <algorithm>

#include "common/status.h"

namespace elink {
namespace serve {

ServeSession::ServeSession(ClusteredSensorNetwork* network,
                           const ServeFrontend::Options& options)
    : network_(network), frontend_(network->metric(), [&] {
        ServeFrontend::Options o = options;
        o.delta = network->delta();
        return o;
      }()) {
  ELINK_CHECK(network_ != nullptr);
  Publish();
}

void ServeSession::Publish() {
  const int n = network_->num_nodes();
  std::vector<Feature> features;
  features.reserve(n);
  for (int i = 0; i < n; ++i) features.push_back(network_->feature(i));
  frontend_.Publish(network_->clustering(), features,
                    network_->topology().adjacency);
}

void ServeSession::UpdateFeatureAndPublish(int node, const Feature& updated) {
  network_->UpdateFeature(node, updated);
  Publish();
}

MaintenanceServeDriver::MaintenanceServeDriver(
    DistributedMaintenance* maintenance,
    std::shared_ptr<const DistanceMetric> metric,
    const ServeFrontend::Options& options)
    : maintenance_(maintenance), frontend_(std::move(metric), options) {
  ELINK_CHECK(maintenance_ != nullptr);
  maintenance_->set_epoch_hook([this](int node, long long /*epoch*/) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_bumped_nodes_.push_back(node);
  });
  Publish();
}

MaintenanceServeDriver::~MaintenanceServeDriver() {
  maintenance_->set_epoch_hook(nullptr);
}

void MaintenanceServeDriver::ApplyUpdateAndPublish(int node,
                                                   const Feature& updated) {
  maintenance_->ApplyUpdate(node, updated);
  Publish();
}

void MaintenanceServeDriver::RunToQuiescenceAndPublish() {
  maintenance_->RunToQuiescence();
  Publish();
}

void MaintenanceServeDriver::Publish() {
  const Clustering clustering = maintenance_->CurrentClustering();
  const std::vector<Feature> features = maintenance_->CurrentFeatures();
  const std::vector<char> live = maintenance_->LiveMask();
  const std::vector<int> roots = DrainPendingRoots(clustering, live);
  frontend_.Publish(clustering, features, maintenance_->LiveAdjacency(), live,
                    roots);
}

std::vector<int> MaintenanceServeDriver::DrainPendingRoots(
    const Clustering& clustering, const std::vector<char>& live) {
  std::vector<int> nodes;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    nodes.swap(pending_bumped_nodes_);
  }
  // The protocol reports the node that observed the change; translate each
  // to the cluster it roots (or belongs to) in the state being published.
  std::vector<int> roots;
  roots.reserve(nodes.size());
  const int n = static_cast<int>(clustering.root_of.size());
  for (int node : nodes) {
    if (node < 0 || node >= n) continue;
    if (!live.empty() && !live[node]) continue;
    roots.push_back(clustering.root_of[node]);
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return roots;
}

}  // namespace serve
}  // namespace elink
