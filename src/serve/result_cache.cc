#include "serve/result_cache.h"

#include <algorithm>

namespace elink {
namespace serve {

uint64_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

ResultCache::ResultCache(const Options& options)
    : num_shards_(std::clamp(options.shards, 1, 256)),
      capacity_per_shard_(std::max(options.capacity_per_shard, 1)),
      shards_(static_cast<size_t>(num_shards_)) {}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return shards_[HashKey(key) % static_cast<uint64_t>(num_shards_)];
}

std::optional<CacheEntry> ResultCache::Lookup(const std::string& key,
                                              uint64_t signature) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second.signature != signature) {
    // Raced a publish past the eager sweep: drop it here, never serve it.
    shard.map.erase(it);
    shard.order.erase(
        std::find(shard.order.begin(), shard.order.end(), key));
    stale_evictions_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  it->second.referenced = true;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void ResultCache::Insert(const std::string& key, CacheEntry entry) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second = std::move(entry);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (shard.map.size() >= static_cast<size_t>(capacity_per_shard_)) {
    // Second chance over insertion order: skip (and strip) referenced
    // entries, evict the first cold one.
    while (true) {
      if (shard.clock_hand >= shard.order.size()) shard.clock_hand = 0;
      const std::string victim = shard.order[shard.clock_hand];
      auto vit = shard.map.find(victim);
      if (vit->second.referenced) {
        vit->second.referenced = false;
        ++shard.clock_hand;
        continue;
      }
      shard.map.erase(vit);
      shard.order.erase(shard.order.begin() +
                        static_cast<long>(shard.clock_hand));
      capacity_evictions_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  shard.map.emplace(key, std::move(entry));
  shard.order.push_back(key);
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t ResultCache::InvalidateStale(uint64_t current_signature) {
  uint64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t i = 0; i < shard.order.size();) {
      auto it = shard.map.find(shard.order[i]);
      if (it->second.signature != current_signature) {
        shard.map.erase(it);
        shard.order.erase(shard.order.begin() + static_cast<long>(i));
        ++dropped;
      } else {
        ++i;
      }
    }
    shard.clock_hand = 0;
  }
  invalidated_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.order.clear();
    shard.clock_hand = 0;
  }
}

size_t ResultCache::Size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

CacheCounters ResultCache::Counters() const {
  CacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.stale_evictions = stale_evictions_.load(std::memory_order_relaxed);
  c.invalidated = invalidated_.load(std::memory_order_relaxed);
  c.capacity_evictions = capacity_evictions_.load(std::memory_order_relaxed);
  c.insertions = insertions_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace serve
}  // namespace elink
