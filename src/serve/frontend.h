// Thread-safe concurrent query frontend over the clustered network
// (elink_serve) — ROADMAP item 3.
//
// The frontend separates one writer (maintenance) from many readers
// (clients):
//
//   * Readers call Range / SafePath from any number of threads.  Each query
//     pins the current immutable ReadView (a shared_ptr copy under a tiny
//     lock), consults the sharded epoch-keyed ResultCache, and on a miss
//     computes on the pinned view and inserts the answer stamped with the
//     view's epoch vector.
//   * The single logical writer calls Publish with the post-maintenance
//     state.  Publish diffs against the previously published state, bumps
//     the epoch of every cluster something observable happened to (feature
//     drift, membership change, node join/leave/crash/repair, link flip),
//     folds in the epoch bumps the distributed maintenance protocol
//     reported through its hook, builds a fresh ReadView, swaps it in, and
//     sweeps stale cache entries.
//
// What is (and is not) linearizable: each individual query is linearizable
// — it observes exactly one published view, atomically.  A client issuing
// query B after its own query A returned may observe an older view for B
// only if no publish happened in between (views are swapped atomically and
// monotonically, so versions never go backwards).  Multi-query read
// transactions are NOT provided: two queries may straddle a publish.  The
// coherence guarantee the test battery enforces is per-answer: every served
// answer (hit or miss) byte-equals a fresh recomputation against the view
// whose epoch vector it carries, and a cache hit's epoch vector is current
// at serve time.
#ifndef ELINK_SERVE_FRONTEND_H_
#define ELINK_SERVE_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/read_view.h"
#include "serve/result_cache.h"

namespace elink {
namespace serve {

/// Canonical cache-key bytes of a range predicate: kind tag + IEEE754-LE
/// coefficients + radius (with -0.0 canonicalized to +0.0).  Initiator is
/// deliberately excluded — the answer is initiator-independent.
std::string CanonicalRangeKey(const Feature& q, double r);

/// Canonical cache-key bytes of a path predicate.
std::string CanonicalPathKey(int source, int destination,
                             const Feature& danger, double gamma);

/// A served answer plus its provenance (what the test battery inspects).
struct ServedRange {
  RangeAnswer answer;
  bool from_cache = false;
  uint64_t view_version = 0;
  uint64_t epoch_signature = 0;
  EpochVector epochs;
};

struct ServedPath {
  PathAnswer answer;
  bool from_cache = false;
  uint64_t view_version = 0;
  uint64_t epoch_signature = 0;
  EpochVector epochs;
};

/// Deterministic serving counters (monotone; exact under any interleaving).
struct ServeCounters {
  uint64_t range_queries = 0;
  uint64_t path_queries = 0;
  uint64_t publishes = 0;
  uint64_t views_built = 0;   // Publishes that actually changed state.
  uint64_t epoch_bumps = 0;   // Cluster epochs bumped across all publishes.
  uint64_t hook_bumps = 0;    // Bumps reported by the maintenance hook.
  CacheCounters cache;
};

/// \brief Concurrent query-serving frontend with epoch-keyed caching.
class ServeFrontend {
 public:
  struct Options {
    double delta = 1.0;
    bool enable_cache = true;
    ResultCache::Options cache;
  };

  ServeFrontend(std::shared_ptr<const DistanceMetric> metric,
                const Options& options);
  ~ServeFrontend();

  ServeFrontend(const ServeFrontend&) = delete;
  ServeFrontend& operator=(const ServeFrontend&) = delete;

  // -- Writer side (one logical writer; calls are serialized) -------------

  /// Publishes the current clustering state.  `live` empty means every node
  /// present.  `hook_bumped_roots` are cluster roots the maintenance
  /// protocol's epoch hook reported since the last publish (deployment
  /// numbering); the frontend's own state diff is merged with them, so a
  /// bump is never missed even when the diff cannot see it (e.g. a
  /// membership change that changed back within one quiescence window).
  /// The first publish seeds the state; later ones bump epochs per changed
  /// cluster.  Publishing an unchanged state is a no-op that keeps the
  /// cache warm.
  void Publish(const Clustering& clustering,
               const std::vector<Feature>& features,
               const AdjacencyList& adjacency,
               const std::vector<char>& live = {},
               const std::vector<int>& hook_bumped_roots = {});

  // -- Reader side (any thread) -------------------------------------------

  ServedRange Range(const Feature& q, double r);
  ServedPath SafePath(int source, int destination, const Feature& danger,
                      double gamma);

  /// The currently published view (never null after the first Publish).
  std::shared_ptr<const ReadView> View() const;

  ServeCounters Counters() const;

  /// Entries currently resident in the result cache.
  size_t CacheSize() const { return cache_.Size(); }

  /// Deterministic JSON of the serving counters, e.g. for
  /// RunReport::SetSectionJson("serve", ...).  Stable key order.
  std::string CountersJson() const;

 private:
  void SwapView(std::shared_ptr<const ReadView> view);

  std::shared_ptr<const DistanceMetric> metric_;
  Options options_;
  ResultCache cache_;

  mutable std::mutex view_mu_;  // Guards view_ swap/copy only.
  std::shared_ptr<const ReadView> view_;

  std::mutex writer_mu_;  // Serializes Publish.
  // Last published full-deployment state (writer-owned).
  Clustering last_clustering_;
  std::vector<Feature> last_features_;
  AdjacencyList last_adjacency_;
  std::vector<char> last_live_;
  /// Epoch of the cluster currently rooted at node r; persists across root
  /// turnover so a reused root id never repeats an old epoch value.
  std::vector<long long> epoch_by_root_;
  uint64_t version_ = 0;

  std::atomic<uint64_t> range_queries_{0};
  std::atomic<uint64_t> path_queries_{0};
  std::atomic<uint64_t> publishes_{0};
  std::atomic<uint64_t> views_built_{0};
  std::atomic<uint64_t> epoch_bumps_{0};
  std::atomic<uint64_t> hook_bumps_{0};
};

}  // namespace serve
}  // namespace elink

#endif  // ELINK_SERVE_FRONTEND_H_
