// Immutable, snapshot-consistent read view of the clustering state
// (elink_serve).
//
// A ReadView freezes everything a query needs — live topology, features,
// clustering, cluster trees, M-tree index, leader backbone, and the
// per-cluster epoch vector the view was published at — into one
// shared-ownership object.  Client threads query a view concurrently with
// no synchronization: every member is built before publication and never
// mutated afterwards, so the only coordination in the serving layer is the
// shared_ptr swap in the frontend.
//
// Views are built over the *live* deployment (churn-absent nodes excluded):
// internally ids are compacted to 0..m-1 so the engine stack can be reused
// unchanged, and every answer is mapped back to original node ids before it
// leaves the view.  Compaction preserves id order, so mapped-back match
// lists stay ascending.  When churn has partitioned the live graph the
// backbone-routed engines are not applicable; the view then degrades to the
// exact fallbacks (linear scan / safe-node BFS), which answer identically —
// the coherence suite holds either way.
#ifndef ELINK_SERVE_READ_VIEW_H_
#define ELINK_SERVE_READ_VIEW_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/clustering.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "index/path_query.h"
#include "index/range_query.h"
#include "metric/distance.h"
#include "metric/feature.h"
#include "sim/graph.h"

namespace elink {
namespace serve {

/// Per-cluster epoch vector: (root id, epoch) pairs, ascending by root.
/// Two views expose the same vector iff no observable change (feature,
/// membership, liveness, or link) touched any cluster between them.
using EpochVector = std::vector<std::pair<int, long long>>;

/// FNV-1a over an epoch vector; the cache's coarse validity stamp.
uint64_t EpochSignature(const EpochVector& epochs);

/// The user-facing answer of a served range query: matching node ids in
/// original (deployment) numbering, ascending.  Screening counters and
/// routing stats are initiator-dependent bookkeeping, so the serving layer
/// does not cache or return them.
struct RangeAnswer {
  std::vector<int> matches;
};

/// The user-facing answer of a served path query.
struct PathAnswer {
  bool found = false;
  std::vector<int> path;  // Original node ids, source..destination.
};

inline bool operator==(const RangeAnswer& a, const RangeAnswer& b) {
  return a.matches == b.matches;
}
inline bool operator==(const PathAnswer& a, const PathAnswer& b) {
  return a.found == b.found && a.path == b.path;
}

/// \brief One immutable published snapshot of the clustering state.
class ReadView {
 public:
  /// Builds a view from the full-deployment state.  `live` is a 0/1 mask
  /// (empty means all present); `clustering.root_of` must be valid for
  /// every live node and every live node's root must itself be live.
  /// `epochs` is the per-cluster epoch vector the frontend assembled for
  /// this publication.
  static std::shared_ptr<const ReadView> Build(
      const AdjacencyList& adjacency, const std::vector<Feature>& features,
      const Clustering& clustering, const std::vector<char>& live,
      std::shared_ptr<const DistanceMetric> metric, double delta,
      EpochVector epochs, uint64_t version);

  // -- Queries (thread-safe: the view is immutable) -----------------------

  /// All live nodes within `r` of `q`, original ids ascending.
  RangeAnswer Range(const Feature& q, double r) const;

  /// A safe path between two original node ids; not-found when either
  /// endpoint is absent or unsafe.
  PathAnswer SafePath(int source, int destination, const Feature& danger,
                      double gamma) const;

  // -- Introspection ------------------------------------------------------

  const EpochVector& epochs() const { return epochs_; }
  uint64_t epoch_signature() const { return signature_; }
  /// Monotone publication counter (1 = the first published view).
  uint64_t version() const { return version_; }
  /// Live node count (the compacted engine domain).
  int num_live() const { return static_cast<int>(compact_features_.size()); }
  /// Number of live nodes in the deployment numbering.
  int num_nodes() const { return static_cast<int>(remap_.size()); }
  /// True when the live graph was connected and the full backbone-routed
  /// engine stack answers queries; false means the exact fallbacks serve.
  bool engine_backed() const { return engine_backed_; }
  bool node_live(int node) const {
    return node >= 0 && node < static_cast<int>(remap_.size()) &&
           remap_[node] >= 0;
  }
  /// The compacted clustering (testing hook for invariant checkers).
  const Clustering& compact_clustering() const { return compact_clustering_; }
  const std::vector<Feature>& compact_features() const {
    return compact_features_;
  }
  const AdjacencyList& compact_adjacency() const { return compact_adjacency_; }
  /// Original id of compacted node `c`.
  int original_id(int c) const { return original_[c]; }

 private:
  ReadView() = default;

  std::vector<int> remap_;     // original id -> compact id (-1 when absent).
  std::vector<int> original_;  // compact id -> original id.
  AdjacencyList compact_adjacency_;
  std::vector<Feature> compact_features_;
  Clustering compact_clustering_;
  std::shared_ptr<const DistanceMetric> metric_;
  double delta_ = 1.0;

  // Engine stack (present only when engine_backed_).
  std::vector<int> tree_parent_;
  std::unique_ptr<ClusterIndex> index_;
  std::unique_ptr<Backbone> backbone_;
  std::unique_ptr<RangeQueryEngine> range_engine_;
  std::unique_ptr<PathQueryEngine> path_engine_;
  bool engine_backed_ = false;

  EpochVector epochs_;
  uint64_t signature_ = 0;
  uint64_t version_ = 0;
};

}  // namespace serve
}  // namespace elink

#endif  // ELINK_SERVE_READ_VIEW_H_
