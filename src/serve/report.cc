#include "serve/report.h"

namespace elink {
namespace serve {

void ExportCounters(const ServeCounters& counters, const std::string& prefix,
                    obs::MetricsRegistry* metrics) {
  const auto add = [&](const char* name, uint64_t value) {
    metrics->AddCounter(prefix + name, value);
  };
  add("range_queries", counters.range_queries);
  add("path_queries", counters.path_queries);
  add("publishes", counters.publishes);
  add("views_built", counters.views_built);
  add("epoch_bumps", counters.epoch_bumps);
  add("hook_bumps", counters.hook_bumps);
  add("cache.hits", counters.cache.hits);
  add("cache.misses", counters.cache.misses);
  add("cache.insertions", counters.cache.insertions);
  add("cache.stale_evictions", counters.cache.stale_evictions);
  add("cache.capacity_evictions", counters.cache.capacity_evictions);
  add("cache.invalidated", counters.cache.invalidated);
}

}  // namespace serve
}  // namespace elink
