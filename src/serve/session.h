// Serving sessions: glue between the clustering/maintenance engines and the
// concurrent query frontend.
//
//   * ServeSession wraps a ClusteredSensorNetwork (the static facade):
//     Publish() snapshots the facade's current clustering/features/topology
//     into a fresh ReadView.  Use it to serve a network maintained through
//     UpdateFeature.
//   * MaintenanceServeDriver wraps a DistributedMaintenance session (the
//     message-passing protocol with churn): it registers the protocol's
//     epoch-bump hook, accumulates which nodes' clusters the protocol
//     invalidated, and folds those into the next Publish so cache
//     invalidation is driven by the protocol itself, not only by the
//     frontend's state diff.
//
// Both are single-writer objects: one thread drives maintenance and
// publishes; any number of threads query the embedded frontend.
#ifndef ELINK_SERVE_SESSION_H_
#define ELINK_SERVE_SESSION_H_

#include <memory>
#include <mutex>
#include <vector>

#include "cluster/maintenance_protocol.h"
#include "core/clustered_network.h"
#include "serve/frontend.h"

namespace elink {
namespace serve {

/// \brief Serving over a ClusteredSensorNetwork facade.
class ServeSession {
 public:
  /// Does not take ownership; the network must outlive the session.
  /// Publishes the initial state immediately, so queries work right away.
  ServeSession(ClusteredSensorNetwork* network,
               const ServeFrontend::Options& options);

  /// Re-snapshots the facade (after UpdateFeature batches).  Unchanged
  /// state keeps the cache warm; changed clusters get their epochs bumped.
  void Publish();

  /// Applies a feature update through the facade and republishes.
  void UpdateFeatureAndPublish(int node, const Feature& updated);

  ServeFrontend& frontend() { return frontend_; }
  const ServeFrontend& frontend() const { return frontend_; }

 private:
  ClusteredSensorNetwork* network_;
  ServeFrontend frontend_;
};

/// \brief Serving over a DistributedMaintenance protocol session.
class MaintenanceServeDriver {
 public:
  /// Registers this driver's epoch hook on `maintenance` (replacing any
  /// previous hook).  Does not take ownership.  Publishes the initial state.
  MaintenanceServeDriver(DistributedMaintenance* maintenance,
                         std::shared_ptr<const DistanceMetric> metric,
                         const ServeFrontend::Options& options);
  ~MaintenanceServeDriver();

  /// Applies one update, runs the protocol to quiescence, republishes.
  void ApplyUpdateAndPublish(int node, const Feature& updated);

  /// Drains protocol activity (scheduled updates, churn) and republishes.
  void RunToQuiescenceAndPublish();

  /// Republishes the protocol's current state without injecting anything.
  void Publish();

  ServeFrontend& frontend() { return frontend_; }
  const ServeFrontend& frontend() const { return frontend_; }

 private:
  /// Hook-reported nodes, translated to roots at publish time.
  std::vector<int> DrainPendingRoots(const Clustering& clustering,
                                     const std::vector<char>& live);

  DistributedMaintenance* maintenance_;
  ServeFrontend frontend_;
  std::mutex pending_mu_;
  std::vector<int> pending_bumped_nodes_;
};

}  // namespace serve
}  // namespace elink

#endif  // ELINK_SERVE_SESSION_H_
