// Observability bridge for the serving layer: exports ServeCounters into a
// MetricsRegistry so benches and harnesses surface cache behaviour through
// the standard RunReport pipeline (deterministic sorted-key JSON).
#ifndef ELINK_SERVE_REPORT_H_
#define ELINK_SERVE_REPORT_H_

#include "obs/metrics.h"
#include "serve/frontend.h"

namespace elink {
namespace serve {

/// Copies the serving counters into `metrics` under `prefix` (for example
/// "serve."): query counts, publish/epoch activity, and the full cache
/// ledger (hits, misses, insertions, stale/capacity evictions, invalidated
/// entries).  Registry counters accumulate, so call this once per run (the
/// end-of-run snapshot), not once per publish.
void ExportCounters(const ServeCounters& counters, const std::string& prefix,
                    obs::MetricsRegistry* metrics);

}  // namespace serve
}  // namespace elink

#endif  // ELINK_SERVE_REPORT_H_
