#include "serve/frontend.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/status.h"

namespace elink {
namespace serve {

namespace {

void AppendDouble(std::string* out, double v) {
  if (v == 0.0) v = 0.0;  // Canonicalize -0.0 so equal predicates share keys.
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int b = 0; b < 8; ++b) {
    out->push_back(static_cast<char>((bits >> (8 * b)) & 0xFF));
  }
}

void AppendInt(std::string* out, int v) {
  const uint32_t u = static_cast<uint32_t>(v);
  for (int b = 0; b < 4; ++b) {
    out->push_back(static_cast<char>((u >> (8 * b)) & 0xFF));
  }
}

}  // namespace

std::string CanonicalRangeKey(const Feature& q, double r) {
  std::string key;
  key.reserve(2 + 8 * (q.size() + 1));
  key.push_back('R');
  AppendInt(&key, static_cast<int>(q.size()));
  for (double v : q) AppendDouble(&key, v);
  AppendDouble(&key, r);
  return key;
}

std::string CanonicalPathKey(int source, int destination,
                             const Feature& danger, double gamma) {
  std::string key;
  key.reserve(2 + 8 + 8 * (danger.size() + 1));
  key.push_back('P');
  AppendInt(&key, source);
  AppendInt(&key, destination);
  AppendInt(&key, static_cast<int>(danger.size()));
  for (double v : danger) AppendDouble(&key, v);
  AppendDouble(&key, gamma);
  return key;
}

ServeFrontend::ServeFrontend(std::shared_ptr<const DistanceMetric> metric,
                             const Options& options)
    : metric_(std::move(metric)), options_(options), cache_(options.cache) {}

ServeFrontend::~ServeFrontend() = default;

void ServeFrontend::Publish(const Clustering& clustering,
                            const std::vector<Feature>& features,
                            const AdjacencyList& adjacency,
                            const std::vector<char>& live,
                            const std::vector<int>& hook_bumped_roots) {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  const int n = static_cast<int>(features.size());
  ELINK_CHECK(static_cast<int>(clustering.root_of.size()) == n);
  ELINK_CHECK(static_cast<int>(adjacency.size()) == n);
  const auto is_live = [&live](int i) {
    return live.empty() || live[i] != 0;
  };

  if (static_cast<int>(epoch_by_root_.size()) < n) {
    epoch_by_root_.resize(n, 0);
  }

  // Which clusters changed since the last publish?  `bump[r]` is indexed by
  // root in deployment numbering.
  std::vector<char> bump(epoch_by_root_.size(), 0);
  const auto mark = [&bump](int root) {
    if (root >= 0 && root < static_cast<int>(bump.size())) bump[root] = 1;
  };
  const bool first = version_ == 0;
  if (!first && static_cast<int>(last_features_.size()) == n) {
    const auto was_live = [this](int i) {
      return last_live_.empty() || last_live_[i] != 0;
    };
    for (int i = 0; i < n; ++i) {
      const bool l0 = was_live(i);
      const bool l1 = is_live(i);
      if (l0 != l1) {
        // A node came or went: its old and new clusters both observe it.
        if (l0) mark(last_clustering_.root_of[i]);
        if (l1) mark(clustering.root_of[i]);
        continue;
      }
      if (!l1) continue;
      if (last_clustering_.root_of[i] != clustering.root_of[i]) {
        mark(last_clustering_.root_of[i]);
        mark(clustering.root_of[i]);
      }
      if (last_features_[i] != features[i]) {
        mark(last_clustering_.root_of[i]);
        mark(clustering.root_of[i]);
      }
      if (last_adjacency_[i] != adjacency[i]) {
        mark(last_clustering_.root_of[i]);
        mark(clustering.root_of[i]);
      }
    }
  } else if (!first) {
    // Deployment size changed (should not happen under the fixed-n churn
    // model, but stay safe): bump everything.
    for (int i = 0; i < n; ++i) {
      if (is_live(i)) mark(clustering.root_of[i]);
    }
  }
  for (int r : hook_bumped_roots) {
    mark(r);
    hook_bumps_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t bumped = 0;
  for (size_t r = 0; r < bump.size(); ++r) {
    if (bump[r]) {
      ++epoch_by_root_[r];
      ++bumped;
    }
  }
  epoch_bumps_.fetch_add(bumped, std::memory_order_relaxed);
  publishes_.fetch_add(1, std::memory_order_relaxed);

  if (!first && bumped == 0) {
    // Nothing observable changed: keep the current view (and the warm
    // cache) exactly as they are.
    last_clustering_ = clustering;
    last_features_ = features;
    last_adjacency_ = adjacency;
    last_live_ = live;
    return;
  }

  // Assemble the epoch vector of the clusters present in the new state,
  // ascending by root (root_of values repeat; dedupe via the sorted pass).
  EpochVector epochs;
  {
    std::vector<char> seen(n, 0);
    for (int i = 0; i < n; ++i) {
      if (!is_live(i)) continue;
      const int r = clustering.root_of[i];
      ELINK_CHECK(r >= 0 && r < n);
      if (!seen[r]) {
        seen[r] = 1;
        epochs.emplace_back(r, epoch_by_root_[r]);
      }
    }
  }
  // seen[] iteration is in id order already, but be explicit:
  std::sort(epochs.begin(), epochs.end());

  ++version_;
  auto view = ReadView::Build(adjacency, features, clustering, live, metric_,
                              options_.delta, std::move(epochs), version_);
  views_built_.fetch_add(1, std::memory_order_relaxed);
  SwapView(view);
  if (options_.enable_cache) {
    cache_.InvalidateStale(view->epoch_signature());
  }

  last_clustering_ = clustering;
  last_features_ = features;
  last_adjacency_ = adjacency;
  last_live_ = live;
}

ServedRange ServeFrontend::Range(const Feature& q, double r) {
  range_queries_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const ReadView> view = View();
  ELINK_CHECK(view != nullptr);
  ServedRange out;
  out.view_version = view->version();
  out.epoch_signature = view->epoch_signature();
  if (options_.enable_cache) {
    const std::string key = CanonicalRangeKey(q, r);
    if (auto hit = cache_.Lookup(key, view->epoch_signature());
        hit && hit->is_range) {
      out.answer = std::move(hit->range);
      out.from_cache = true;
      out.epochs = std::move(hit->epochs);
      return out;
    }
    out.answer = view->Range(q, r);
    out.epochs = view->epochs();
    CacheEntry entry;
    entry.is_range = true;
    entry.range = out.answer;
    entry.signature = view->epoch_signature();
    entry.epochs = view->epochs();
    cache_.Insert(key, std::move(entry));
    return out;
  }
  out.answer = view->Range(q, r);
  out.epochs = view->epochs();
  return out;
}

ServedPath ServeFrontend::SafePath(int source, int destination,
                                   const Feature& danger, double gamma) {
  path_queries_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const ReadView> view = View();
  ELINK_CHECK(view != nullptr);
  ServedPath out;
  out.view_version = view->version();
  out.epoch_signature = view->epoch_signature();
  if (options_.enable_cache) {
    const std::string key = CanonicalPathKey(source, destination, danger,
                                             gamma);
    if (auto hit = cache_.Lookup(key, view->epoch_signature());
        hit && !hit->is_range) {
      out.answer = std::move(hit->path);
      out.from_cache = true;
      out.epochs = std::move(hit->epochs);
      return out;
    }
    out.answer = view->SafePath(source, destination, danger, gamma);
    out.epochs = view->epochs();
    CacheEntry entry;
    entry.is_range = false;
    entry.path = out.answer;
    entry.signature = view->epoch_signature();
    entry.epochs = view->epochs();
    cache_.Insert(key, std::move(entry));
    return out;
  }
  out.answer = view->SafePath(source, destination, danger, gamma);
  out.epochs = view->epochs();
  return out;
}

std::shared_ptr<const ReadView> ServeFrontend::View() const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return view_;
}

void ServeFrontend::SwapView(std::shared_ptr<const ReadView> view) {
  std::lock_guard<std::mutex> lock(view_mu_);
  view_ = std::move(view);
}

ServeCounters ServeFrontend::Counters() const {
  ServeCounters c;
  c.range_queries = range_queries_.load(std::memory_order_relaxed);
  c.path_queries = path_queries_.load(std::memory_order_relaxed);
  c.publishes = publishes_.load(std::memory_order_relaxed);
  c.views_built = views_built_.load(std::memory_order_relaxed);
  c.epoch_bumps = epoch_bumps_.load(std::memory_order_relaxed);
  c.hook_bumps = hook_bumps_.load(std::memory_order_relaxed);
  c.cache = cache_.Counters();
  return c;
}

std::string ServeFrontend::CountersJson() const {
  const ServeCounters c = Counters();
  std::ostringstream os;
  os << "{"
     << "\"cache_capacity_evictions\":" << c.cache.capacity_evictions << ","
     << "\"cache_hits\":" << c.cache.hits << ","
     << "\"cache_insertions\":" << c.cache.insertions << ","
     << "\"cache_invalidated\":" << c.cache.invalidated << ","
     << "\"cache_misses\":" << c.cache.misses << ","
     << "\"cache_stale_evictions\":" << c.cache.stale_evictions << ","
     << "\"epoch_bumps\":" << c.epoch_bumps << ","
     << "\"hook_bumps\":" << c.hook_bumps << ","
     << "\"path_queries\":" << c.path_queries << ","
     << "\"publishes\":" << c.publishes << ","
     << "\"range_queries\":" << c.range_queries << ","
     << "\"views_built\":" << c.views_built
     << "}";
  return os.str();
}

}  // namespace serve
}  // namespace elink
