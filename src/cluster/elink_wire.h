// Wire schemas of the ELink clustering protocol (proto/codec.h).
//
// Field order is wire order and matches the original hand-rolled encoding
// exactly, so ports stay bit-identical: an Expand carries
// ints = {root, level} and doubles = root feature.
#ifndef ELINK_CLUSTER_ELINK_WIRE_H_
#define ELINK_CLUSTER_ELINK_WIRE_H_

#include <vector>

namespace elink {
namespace elink_wire {

/// Cluster expansion offer: join root `root`'s cluster at level `level`.
struct Expand {
  static constexpr int kType = 1;
  static constexpr const char* kCategory = "expand";
  long long root = 0;
  long long level = 0;
  std::vector<double> feature;  // The offered root's feature vector.
  template <class V>
  void VisitFields(V& v) {
    v.I64(root);
    v.I64(level);
    v.Block(feature);
  }
  bool operator==(const Expand&) const = default;
};

/// Join notification to the new cluster-tree parent.
struct Ack1 {
  static constexpr int kType = 2;
  static constexpr const char* kCategory = "ack1";
  template <class V>
  void VisitFields(V&) {}
  bool operator==(const Ack1&) const = default;
};

/// Decline response to an expand.
struct Nack {
  static constexpr int kType = 3;
  static constexpr const char* kCategory = "nack";
  template <class V>
  void VisitFields(V&) {}
  bool operator==(const Nack&) const = default;
};

/// Subtree expansion complete.
struct Ack2 {
  static constexpr int kType = 4;
  static constexpr const char* kCategory = "ack2";
  template <class V>
  void VisitFields(V&) {}
  bool operator==(const Ack2&) const = default;
};

/// Round-completion report travelling up the quadtree.
struct Phase1 {
  static constexpr int kType = 5;
  static constexpr const char* kCategory = "phase1";
  long long round = 0;
  template <class V>
  void VisitFields(V& v) {
    v.I64(round);
  }
  bool operator==(const Phase1&) const = default;
};

/// Next-round go-ahead travelling down the quadtree.
struct Phase2 {
  static constexpr int kType = 6;
  static constexpr const char* kCategory = "phase2";
  long long round = 0;
  template <class V>
  void VisitFields(V& v) {
    v.I64(round);
  }
  bool operator==(const Phase2&) const = default;
};

/// Instructs a sentinel to invoke ELink.
struct Start {
  static constexpr int kType = 7;
  static constexpr const char* kCategory = "start";
  template <class V>
  void VisitFields(V&) {}
  bool operator==(const Start&) const = default;
};

/// Applies `fn` to a default instance of every schema in this family — the
/// generic enumeration the wire-format tests round-trip all schemas through.
template <class F>
void ForEachSchema(F&& fn) {
  fn(Expand{});
  fn(Ack1{});
  fn(Nack{});
  fn(Ack2{});
  fn(Phase1{});
  fn(Phase2{});
  fn(Start{});
}

/// The accounting category of packet id `type` within this family, or null
/// for an id the family does not define — how a byte-level receiver
/// re-derives the category the radio frame deliberately omits.
inline const char* CategoryForType(int type) {
  switch (type) {
    case Expand::kType:
      return Expand::kCategory;
    case Ack1::kType:
      return Ack1::kCategory;
    case Nack::kType:
      return Nack::kCategory;
    case Ack2::kType:
      return Ack2::kCategory;
    case Phase1::kType:
      return Phase1::kCategory;
    case Phase2::kType:
      return Phase2::kCategory;
    case Start::kType:
      return Start::kCategory;
    default:
      return nullptr;
  }
}

}  // namespace elink_wire
}  // namespace elink

#endif  // ELINK_CLUSTER_ELINK_WIRE_H_
