#include "cluster/clustering.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "common/strings.h"

namespace elink {

int Clustering::num_clusters() const {
  std::set<int> roots;
  for (int r : root_of) {
    if (r >= 0) roots.insert(r);
  }
  return static_cast<int>(roots.size());
}

std::vector<std::pair<int, std::vector<int>>> Clustering::Groups() const {
  std::map<int, std::vector<int>> groups;
  for (size_t i = 0; i < root_of.size(); ++i) {
    if (root_of[i] >= 0) groups[root_of[i]].push_back(static_cast<int>(i));
  }
  return {groups.begin(), groups.end()};
}

Status ValidateDeltaClustering(const Clustering& clustering,
                               const AdjacencyList& adjacency,
                               const std::vector<Feature>& features,
                               const DistanceMetric& metric, double delta) {
  const size_t n = adjacency.size();
  if (clustering.root_of.size() != n) {
    return Status::FailedPrecondition("clustering size mismatch");
  }
  for (size_t i = 0; i < n; ++i) {
    const int r = clustering.root_of[i];
    if (r < 0 || static_cast<size_t>(r) >= n) {
      return Status::FailedPrecondition(
          StringPrintf("node %zu unclustered or root out of range", i));
    }
    if (clustering.root_of[r] != r) {
      return Status::FailedPrecondition(StringPrintf(
          "root %d of node %zu is not a member of its own cluster", r, i));
    }
  }
  for (const auto& [root, members] : clustering.Groups()) {
    // Connectivity of the induced subgraph.
    std::vector<char> mask(n, 0);
    for (int m : members) mask[m] = 1;
    if (!IsInducedConnected(adjacency, mask)) {
      return Status::FailedPrecondition(
          StringPrintf("cluster rooted at %d is disconnected", root));
    }
    // Pairwise delta-compactness.
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        const double d =
            metric.Distance(features[members[a]], features[members[b]]);
        if (d > delta + 1e-9) {
          return Status::FailedPrecondition(StringPrintf(
              "cluster rooted at %d violates delta: d(%d, %d) = %.6f > %.6f",
              root, members[a], members[b], d, delta));
        }
      }
    }
  }
  return Status::OK();
}

int RepairDisconnectedClusters(Clustering* clustering,
                               const AdjacencyList& adjacency) {
  const size_t n = adjacency.size();
  int created = 0;
  for (const auto& [root, members] : clustering->Groups()) {
    std::vector<char> mask(n, 0);
    for (int m : members) mask[m] = 1;
    const std::vector<int> comp = InducedComponents(adjacency, mask);
    const int root_comp = comp[root];
    // Smallest member id per non-root component becomes its new root.
    std::map<int, int> new_root_of_comp;
    for (int m : members) {
      if (comp[m] == root_comp) continue;
      auto [it, inserted] = new_root_of_comp.emplace(comp[m], m);
      if (!inserted) it->second = std::min(it->second, m);
    }
    created += static_cast<int>(new_root_of_comp.size());
    for (int m : members) {
      if (comp[m] != root_comp) {
        clustering->root_of[m] = new_root_of_comp[comp[m]];
      }
    }
  }
  return created;
}

std::vector<int> BuildClusterTrees(const Clustering& clustering,
                                   const AdjacencyList& adjacency) {
  const size_t n = adjacency.size();
  std::vector<int> parent(n, -1);
  for (const auto& [root, members] : clustering.Groups()) {
    std::vector<char> mask(n, 0);
    for (int m : members) mask[m] = 1;
    // BFS from the root restricted to cluster members.
    std::deque<int> queue{root};
    parent[root] = root;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (int v : adjacency[u]) {
        if (mask[v] && parent[v] < 0) {
          parent[v] = u;
          queue.push_back(v);
        }
      }
    }
  }
  return parent;
}

}  // namespace elink
