#include "cluster/elink.h"

#include <algorithm>
#include <cmath>

#include "cluster/elink_wire.h"
#include "proto/harness.h"

namespace elink {

namespace {

namespace w = elink_wire;

// Timer ids.
enum TimerType : int { kSentinelTimer = 1 };

/// Run-wide shared state for the protocol nodes.
struct RunContext {
  const QuadtreeDecomposition* quadtree = nullptr;
  const std::vector<Feature>* features = nullptr;
  const DistanceMetric* metric = nullptr;
  ElinkConfig config;
  ElinkMode mode = ElinkMode::kImplicit;
  double effective_delta = 0.0;
  double phi = 0.0;
  // Explicit mode: wrap protocol waves in ReliableChannel.
  bool reliable = false;
  // Aggregated outputs.
  int total_switches = 0;
  bool terminated = false;       // Explicit mode: root declared all rounds done.
  double termination_time = 0.0;
};

/// One sensor node running ELink.  See elink.h for the protocol overview.
class ElinkNode : public proto::ProtocolNode {
 public:
  explicit ElinkNode(RunContext* ctx) : ctx_(ctx) {
    if (ctx_->reliable) EnableReliable(ctx_->config.reliable);
    OnMsg<w::Expand>(
        [this](int from, const w::Expand& m) { OnExpand(from, m); });
    OnMsg<w::Ack1>([this](int, const w::Ack1&) {
      --pending_;
      ++children_;
      CheckExpansionComplete();
    });
    OnMsg<w::Nack>([this](int, const w::Nack&) {
      --pending_;
      CheckExpansionComplete();
    });
    OnMsg<w::Ack2>([this](int, const w::Ack2&) {
      --children_;
      CheckExpansionComplete();
    });
    OnMsg<w::Phase1>([this](int, const w::Phase1& m) {
      OnPhase1(static_cast<int>(m.round));
    });
    OnMsg<w::Phase2>([this](int, const w::Phase2& m) {
      OnPhase2(static_cast<int>(m.round));
    });
    OnMsg<w::Start>([this](int, const w::Start&) { Activate(); });
  }

  // -- Clustering state, read out by the driver after the run. ------------
  bool clustered() const { return clustered_; }
  int root() const { return root_; }

 protected:
  void OnGiveUp(int /*to*/, const Message& m) override {
    // An expand that exhausted its retries behaves like a nack (the
    // neighbor is dead or unreachable).  Abandoned acks and phase/start
    // waves leave no local obligation; a stalled round is the completion
    // watchdog's job.
    if (m.type == w::Expand::kType) {
      --pending_;
      CheckExpansionComplete();
    }
  }

  void OnProtocolTimer(int timer_id) override {
    ELINK_CHECK(timer_id == kSentinelTimer);
    Activate();
  }

 private:
  bool explicit_mode() const { return ctx_->mode == ElinkMode::kExplicit; }
  int my_level() const { return ctx_->quadtree->level_of(id()); }
  const Feature& my_feature() const { return (*ctx_->features)[id()]; }

  // -- Activation (Fig. 16, procedure ELink) ------------------------------
  void Activate() {
    if (clustered_) {
      // Nothing to expand; in explicit mode still confirm round completion.
      if (explicit_mode()) SendPhase1Up(my_level());
      return;
    }
    clustered_ = true;
    is_root_ = true;
    root_ = id();
    root_feature_ = my_feature();
    member_level_ = my_level();
    root_distance_ = 0.0;
    TracePhase("elink.sentinel_start", my_level());
    ExpandToNeighbors(/*exclude=*/-1);
    CheckExpansionComplete();
  }

  void ExpandToNeighbors(int exclude) {
    settled_ = false;
    for (int nb : network()->neighbors(id())) {
      if (nb == exclude) continue;
      w::Expand m;
      m.root = root_;
      m.level = member_level_;
      m.feature = root_feature_;
      Send(nb, m);
      if (explicit_mode()) ++pending_;
    }
  }

  // -- Receiving an expand (Fig. 16, message handler) ----------------------
  void OnExpand(int from, const w::Expand& msg) {
    if (msg.feature.size() != my_feature().size()) {
      // Truncated in flight to a still-decodable but wrong-dimensional
      // feature: a protocol-level decode error, not a metric crash.
      RejectBadFields(w::Expand::kCategory);
      return;
    }
    const int offered_root = static_cast<int>(msg.root);
    const int offered_level = static_cast<int>(msg.level);
    const Feature& offered_feature = msg.feature;
    const double d_new = ctx_->metric->Distance(offered_feature, my_feature());

    bool join = false;
    if (d_new <= ctx_->effective_delta / 2.0 + 1e-12) {
      if (!clustered_) {
        join = true;
      } else if (offered_root != root_ && !is_root_ &&
                 // Ordered modes only allow same-level switches so earlier
                 // levels' clusters are never destroyed (Section 3.2); the
                 // unordered ablation has no level ordering to protect.
                 (offered_level == member_level_ ||
                  ctx_->mode == ElinkMode::kUnordered) &&
                 switches_used_ < ctx_->config.max_switches &&
                 SwitchGainOk(d_new) &&
                 (!explicit_mode() || SettledForSwitch())) {
        join = true;
        ++switches_used_;
        ++ctx_->total_switches;
        TracePhase("elink.switch", switches_used_);
      }
    }

    if (!join) {
      if (explicit_mode()) Send(from, w::Nack{});
      return;
    }

    clustered_ = true;
    is_root_ = false;
    root_ = offered_root;
    root_feature_ = offered_feature;
    member_level_ = offered_level;
    root_distance_ = d_new;
    parent_ = from;
    if (explicit_mode()) {
      Send(from, w::Ack1{});
      owed_parents_.push_back(from);
    }
    ExpandToNeighbors(/*exclude=*/from);
    CheckExpansionComplete();
  }

  bool SwitchGainOk(double d_new) const {
    if (ctx_->config.literal_figure_switch_rule) {
      // Fig. 16 as printed: d(F_rj, F_i) < d(F_ri, F_i) + phi.
      return d_new < root_distance_ + ctx_->phi;
    }
    // The prose of Sections 3.2 / 8.4: the *decrease* must reach phi.
    return d_new + ctx_->phi <= root_distance_;
  }

  // A node may switch only when its current engagement is discharged
  // (no outstanding expands, no cluster-tree children awaiting completion).
  // This keeps the ack2 completion detection acyclic; see DESIGN.md.
  bool SettledForSwitch() const { return settled_; }

  // -- Completion detection (explicit mode; Fig. 18) -----------------------
  void CheckExpansionComplete() {
    if (!explicit_mode()) return;
    if (!clustered_ || settled_ || pending_ > 0 || children_ > 0) return;
    settled_ = true;
    if (is_root_) {
      // This sentinel's cluster finished expanding: report the round.
      SendPhase1Up(my_level());
    } else {
      for (int p : owed_parents_) Send(p, w::Ack2{});
      owed_parents_.clear();
    }
  }

  // -- Quadtree synchronization (explicit mode; Fig. 18) --------------------
  void SendPhase1Up(int round) {
    const int qp = ctx_->quadtree->quad_parent(id());
    if (qp == id()) {
      // This node is the quadtree root; its own report completes the round.
      OnRoundComplete(round);
      return;
    }
    w::Phase1 m;
    m.round = round;
    SendRouted(qp, m);
  }

  void OnPhase1(int round) {
    ELINK_CHECK(round == waiting_round_);
    ELINK_CHECK(phase1_waiting_ > 0);
    if (--phase1_waiting_ > 0) return;
    if (ctx_->quadtree->quad_parent(id()) == id()) {
      OnRoundComplete(round);
    } else {
      SendPhase1Up(round);
    }
  }

  /// At the quadtree root: round `round` is globally complete.
  void OnRoundComplete(int round) {
    TracePhase("elink.round_complete", round);
    const int last_round = ctx_->quadtree->num_levels() - 1;
    if (round >= last_round) {
      ctx_->terminated = true;
      ctx_->termination_time = network()->Now();
      TracePhase("elink.terminated", round);
      return;
    }
    BeginNextRound(round);
  }

  /// Propagate phase2(round) / start according to this node's level.
  void BeginNextRound(int round) {
    const auto& kids = ctx_->quadtree->quad_children(id());
    if (kids.empty()) {
      // No subtree: the next round is vacuously complete below this node.
      SendPhase1Up(round + 1);
      return;
    }
    waiting_round_ = round + 1;
    phase1_waiting_ = static_cast<int>(kids.size());
    const bool start_children = my_level() == round;
    for (int kid : kids) {
      if (start_children) {
        SendRouted(kid, w::Start{});
      } else {
        w::Phase2 m;
        m.round = round;
        SendRouted(kid, m);
      }
    }
  }

  void OnPhase2(int round) { BeginNextRound(round); }

  RunContext* ctx_;

  // Cluster membership (Fig. 16's <r_i, F_ri, p> plus bookkeeping).
  bool clustered_ = false;
  bool is_root_ = false;
  int root_ = -1;
  Feature root_feature_;
  int member_level_ = -1;
  double root_distance_ = 0.0;
  int parent_ = -1;
  int switches_used_ = 0;

  // Explicit-mode completion detection.
  int pending_ = 0;   // Expands awaiting ack1/nack.
  int children_ = 0;  // Cluster-tree children awaiting ack2.
  bool settled_ = true;
  std::vector<int> owed_parents_;

  // Explicit-mode quadtree synchronization.
  int waiting_round_ = -1;
  int phase1_waiting_ = 0;
};

}  // namespace

ImplicitSchedule ComputeImplicitSchedule(int num_nodes, int num_levels,
                                         double gamma) {
  ImplicitSchedule s;
  s.kappa = (1.0 + gamma) * std::sqrt(num_nodes / 2.0);
  s.window.resize(num_levels);
  s.start.resize(num_levels);
  double offset = 0.0;
  for (int l = 0; l < num_levels; ++l) {
    // t_l = kappa * (1 + 1/2 + ... + 1/2^l) = kappa * (2 - 2^-l).
    s.window[l] = s.kappa * (2.0 - std::pow(2.0, -l));
    s.start[l] = offset;
    offset += s.window[l];
  }
  return s;
}

Result<ElinkResult> RunElink(const Topology& topology,
                             const std::vector<Feature>& features,
                             const DistanceMetric& metric,
                             const ElinkConfig& config, ElinkMode mode) {
  const int n = topology.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty topology");
  if (features.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument("features size mismatch");
  }
  if (config.delta < 0) {
    return Status::InvalidArgument("delta must be non-negative");
  }
  if (config.delta - 2.0 * config.slack < 0) {
    return Status::InvalidArgument("slack too large: delta - 2*slack < 0");
  }
  if (mode == ElinkMode::kImplicit && !config.synchronous) {
    return Status::FailedPrecondition(
        "the implicit technique requires a synchronous network (Section 4); "
        "use kExplicit for asynchronous networks");
  }
  if (!IsConnected(topology.adjacency)) {
    return Status::InvalidArgument("communication graph must be connected");
  }

  const QuadtreeDecomposition quadtree = QuadtreeDecomposition::Build(topology);

  RunContext ctx;
  ctx.quadtree = &quadtree;
  ctx.features = &features;
  ctx.metric = &metric;
  ctx.config = config;
  ctx.mode = mode;
  ctx.effective_delta = config.delta - 2.0 * config.slack;
  ctx.phi = config.phi_fraction * ctx.effective_delta;
  ctx.reliable = mode == ElinkMode::kExplicit && config.reliable_transport;

  // Completion watchdog (explicit mode): if the run goes quiet for a full
  // timeout window without the root declaring termination — lost waves, a
  // crashed sentinel or coordinator — declare it degraded instead of letting
  // the drained queue turn into an opaque protocol error.
  proto::RunHarness::Options hopt;
  hopt.net.synchronous = config.synchronous;
  hopt.net.seed = config.seed;
  hopt.net.fault = config.fault;
  hopt.quiet_timeout =
      mode == ElinkMode::kExplicit && config.completion_timeout > 0
          ? config.completion_timeout
          : 0.0;
  proto::RunHarness harness(topology, hopt);
  harness.set_observer(config.observer);
  harness.set_done([&ctx] { return ctx.terminated; });
  harness.InstallNodes(
      [&](int) { return std::make_unique<ElinkNode>(&ctx); });
  Network& net = harness.net();

  switch (mode) {
    case ElinkMode::kImplicit: {
      const ImplicitSchedule schedule =
          ComputeImplicitSchedule(n, quadtree.num_levels(), config.gamma);
      for (int i = 0; i < n; ++i) {
        net.SetTimer(i, schedule.start[quadtree.level_of(i)], kSentinelTimer);
      }
      break;
    }
    case ElinkMode::kExplicit:
      net.SetTimer(quadtree.root(), 0.0, kSentinelTimer);
      break;
    case ElinkMode::kUnordered: {
      // A literal simultaneous start would make every sentinel self-root
      // before any expand message arrives (all-singleton output); small
      // random activation jitter lets expansion waves form and contend,
      // which is the behavior the Section-5 remark describes.
      Rng jitter(config.seed ^ 0x5deece66dULL);
      for (int i = 0; i < n; ++i) {
        net.SetTimer(i, jitter.Uniform(0.0, 5.0), kSentinelTimer);
      }
      break;
    }
  }

  const proto::RunHarness::Report report = harness.Run();

  if (report.hit_event_cap) {
    return Status::Internal("ELink hit the event cap: protocol runaway");
  }
  if (mode == ElinkMode::kExplicit && !ctx.terminated && !report.timed_out) {
    return Status::Internal("explicit ELink did not reach termination");
  }

  ElinkResult result;
  result.num_levels = quadtree.num_levels();
  result.total_switches = ctx.total_switches;
  result.completion_time = mode == ElinkMode::kExplicit && ctx.terminated
                               ? ctx.termination_time
                               : report.end_time;
  result.completed = mode != ElinkMode::kExplicit || ctx.terminated;
  result.stats = net.stats();
  result.clustering.root_of.resize(n);
  for (int i = 0; i < n; ++i) {
    auto* node = static_cast<ElinkNode*>(net.node(i));
    if (!config.fault.enabled()) {
      // Fault-free runs must cluster everyone; anything else is a bug.
      ELINK_CHECK(node->clustered());
    }
    if (node->clustered()) {
      result.clustering.root_of[i] = node->root();
    } else {
      // Crashed or unreached under fault injection: emit as a singleton so
      // the output is still a valid (degraded) delta-clustering.
      result.clustering.root_of[i] = i;
      ++result.unclustered_nodes;
    }
  }
  result.repaired_fragments =
      RepairDisconnectedClusters(&result.clustering, topology.adjacency);
  return result;
}

Result<ElinkResult> RunElink(const SensorDataset& dataset,
                             const ElinkConfig& config, ElinkMode mode) {
  return RunElink(dataset.topology, dataset.features, *dataset.metric, config,
                  mode);
}

}  // namespace elink
