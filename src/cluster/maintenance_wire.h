// Wire schemas of the distributed maintenance protocol (proto/codec.h).
// Layouts match the original hand-rolled encoders bit for bit.
#ifndef ELINK_CLUSTER_MAINTENANCE_WIRE_H_
#define ELINK_CLUSTER_MAINTENANCE_WIRE_H_

#include <vector>

namespace elink {
namespace maint_wire {

/// Escalation request towards the root.
struct FetchUp {
  static constexpr int kType = 1;
  static constexpr const char* kCategory = "update_escalate";
  long long origin = 0;
  template <class V>
  void VisitFields(V& v) {
    v.I64(origin);
  }
  bool operator==(const FetchUp&) const = default;
};

/// Root's live feature back to the origin.
struct RootFeature {
  static constexpr int kType = 2;
  static constexpr const char* kCategory = "update_escalate";
  std::vector<double> feature;
  template <class V>
  void VisitFields(V& v) {
    v.Block(feature);
  }
  bool operator==(const RootFeature&) const = default;
};

/// Root pushes its new feature down the tree.
struct Push {
  static constexpr int kType = 3;
  static constexpr const char* kCategory = "update_root_push";
  std::vector<double> feature;
  template <class V>
  void VisitFields(V& v) {
    v.Block(feature);
  }
  bool operator==(const Push&) const = default;
};

/// Detached/orphaned node asks a neighbor for its root.
struct Probe {
  static constexpr int kType = 4;
  static constexpr const char* kCategory = "update_merge_probe";
  template <class V>
  void VisitFields(V&) {}
  bool operator==(const Probe&) const = default;
};

/// Neighbor's answer: its root id, whether it is settled (not itself
/// probing), and its stored root feature.
struct ProbeReply {
  static constexpr int kType = 5;
  static constexpr const char* kCategory = "update_merge_probe";
  long long root = 0;
  long long settled = 0;
  std::vector<double> stored_root;
  template <class V>
  void VisitFields(V& v) {
    v.I64(root);
    v.I64(settled);
    v.Block(stored_root);
  }
  bool operator==(const ProbeReply&) const = default;
};

/// Child tells its tree parent it departed.
struct Leave {
  static constexpr int kType = 6;
  static constexpr const char* kCategory = "update_repair";
  template <class V>
  void VisitFields(V&) {}
  bool operator==(const Leave&) const = default;
};

/// New child announces itself to its adopted parent.
struct Attach {
  static constexpr int kType = 7;
  static constexpr const char* kCategory = "update_repair";
  template <class V>
  void VisitFields(V&) {}
  bool operator==(const Attach&) const = default;
};

/// Parent departed: the child must re-attach.
struct Orphan {
  static constexpr int kType = 8;
  static constexpr const char* kCategory = "update_repair";
  template <class V>
  void VisitFields(V&) {}
  bool operator==(const Orphan&) const = default;
};

/// New root id + feature propagating down a subtree.
struct RootChanged {
  static constexpr int kType = 9;
  static constexpr const char* kCategory = "update_repair";
  long long root = 0;
  std::vector<double> feature;
  template <class V>
  void VisitFields(V& v) {
    v.I64(root);
    v.Block(feature);
  }
  bool operator==(const RootChanged&) const = default;
};

/// Root-custody verification, sent by a freshly adopted node up the parent
/// chain (churn-aware sessions only).  Reaching a live root proves the
/// adoption joined a real tree; the root bumps its cluster epoch (the
/// observable re-clustering) and acks with its current feature.  A chain
/// that cycles (ttl exhausted), dead-ends, or reaches a different root
/// exposes a stale claim resurrected across a crash, and the origin
/// dissolves its branch.
struct EpochReport {
  static constexpr int kType = 10;
  static constexpr const char* kCategory = "update_repair";
  long long root = 0;    // The root the origin believes it attached under.
  long long origin = 0;  // Node awaiting the verdict.
  long long seq = 0;     // Origin-local sequence; stale walks are ignored.
  long long ttl = 0;     // Hop budget; 0 at a non-root means a cycle.
  template <class V>
  void VisitFields(V& v) {
    v.I64(root);
    v.I64(origin);
    v.I64(seq);
    v.I64(ttl);
  }
  bool operator==(const EpochReport&) const = default;
};

/// The root an EpochReport walk actually reached, routed back to the
/// origin with the root's live feature.
struct VerifyAck {
  static constexpr int kType = 11;
  static constexpr const char* kCategory = "update_repair";
  long long root = 0;
  long long seq = 0;
  std::vector<double> feature;
  template <class V>
  void VisitFields(V& v) {
    v.I64(root);
    v.I64(seq);
    v.Block(feature);
  }
  bool operator==(const VerifyAck&) const = default;
};

/// An EpochReport walk ran out of ttl before reaching any root: the
/// origin's custody chain is a cycle of stale believers.
struct VerifyGone {
  static constexpr int kType = 12;
  static constexpr const char* kCategory = "update_repair";
  long long seq = 0;
  template <class V>
  void VisitFields(V& v) {
    v.I64(seq);
  }
  bool operator==(const VerifyGone&) const = default;
};

/// Applies `fn` to a default instance of every schema in this family — the
/// generic enumeration the wire-format tests round-trip all schemas through.
template <class F>
void ForEachSchema(F&& fn) {
  fn(FetchUp{});
  fn(RootFeature{});
  fn(Push{});
  fn(Probe{});
  fn(ProbeReply{});
  fn(Leave{});
  fn(Attach{});
  fn(Orphan{});
  fn(RootChanged{});
  fn(EpochReport{});
  fn(VerifyAck{});
  fn(VerifyGone{});
}

/// The accounting category of packet id `type` within this family, or null
/// for an id the family does not define — how a byte-level receiver
/// re-derives the category the radio frame deliberately omits.
inline const char* CategoryForType(int type) {
  switch (type) {
    case FetchUp::kType:
      return FetchUp::kCategory;
    case RootFeature::kType:
      return RootFeature::kCategory;
    case Push::kType:
      return Push::kCategory;
    case Probe::kType:
      return Probe::kCategory;
    case ProbeReply::kType:
      return ProbeReply::kCategory;
    case Leave::kType:
      return Leave::kCategory;
    case Attach::kType:
      return Attach::kCategory;
    case Orphan::kType:
      return Orphan::kCategory;
    case RootChanged::kType:
      return RootChanged::kCategory;
    case EpochReport::kType:
      return EpochReport::kCategory;
    case VerifyAck::kType:
      return VerifyAck::kCategory;
    case VerifyGone::kType:
      return VerifyGone::kCategory;
    default:
      return nullptr;
  }
}

}  // namespace maint_wire
}  // namespace elink

#endif  // ELINK_CLUSTER_MAINTENANCE_WIRE_H_
