// Slack-parameterized dynamic cluster maintenance (paper Section 6).
//
// After the initial clustering (built against an effective threshold
// delta - 2*Delta), feature updates are absorbed locally whenever one of the
// paper's three conditions holds:
//   A1: d(F_i, F'_i) <= Delta
//   A2: d(F'_i, F_ri) - d(F_i, F_ri) <= Delta
//   A3: d(F'_i, F_ri) <= delta - Delta
// where F_i is the node's feature at its last verification and F_ri its
// stored copy of the root feature.  Only when all three fail does the node
// walk the cluster tree to fetch the current root feature and, if
// d(F'_i, F'_ri) > delta, detach (merging with a neighboring cluster or
// becoming a singleton).  The root symmetrically pushes its own feature down
// the tree when it drifts by more than Delta.
//
// The maintained invariant is d(F_i, F_root) <= delta for every member —
// the slack trades the initial clustering's pairwise delta-compactness for
// communication, exactly the trade-off Figs. 10-11 quantify.
#ifndef ELINK_CLUSTER_MAINTENANCE_H_
#define ELINK_CLUSTER_MAINTENANCE_H_

#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "metric/distance.h"
#include "sim/stats.h"
#include "sim/topology.h"

namespace elink {

/// Tunables of the maintenance protocol.
struct MaintenanceConfig {
  /// The clustering threshold delta of Definition 1.
  double delta = 1.0;
  /// The slack Delta of Section 6 (0 disables local absorption).
  double slack = 0.0;
  /// A detached node merges with a neighbor's cluster when its distance to
  /// that cluster's root feature is at most merge_fraction * delta.  The
  /// paper's text uses delta itself (merge_fraction = 1), which maintains
  /// the root-distance invariant; 0.5 preserves full pairwise compactness.
  double merge_fraction = 1.0;
};

/// \brief Replays feature updates against a clustering, applying the
/// Section 6 protocol and accounting every message it would transmit.
class MaintenanceSession {
 public:
  /// `clustering` is the initial (slack-adjusted) delta-clustering;
  /// `features` are the per-node features it was built on.
  MaintenanceSession(const Topology& topology, const Clustering& clustering,
                     std::vector<Feature> features,
                     std::shared_ptr<const DistanceMetric> metric,
                     const MaintenanceConfig& config);

  /// Applies node `node`'s feature update.  Runs A1-A3, escalating to the
  /// root / detaching / re-merging as required, and records the messages.
  void UpdateFeature(int node, const Feature& updated);

  /// Current clustering (reflecting detaches and merges).
  const Clustering& clustering() const { return clustering_; }

  /// Current feature of each node (latest update applied).
  const std::vector<Feature>& current_features() const { return current_; }

  /// Message ledger: categories update_escalate, update_root_push,
  /// update_merge_probe.
  const MessageStats& stats() const { return stats_; }

  /// Number of detach events (cluster quality degradations) so far.
  int detaches() const { return detaches_; }
  /// Updates absorbed with no communication (some A-condition held).
  long long silent_updates() const { return silent_updates_; }

  /// Verifies the maintained invariant: every node's *current* feature is
  /// within `bound` of its cluster root's announced feature.  The protocol
  /// guarantees bound = delta.
  Status ValidateRootDistanceInvariant(double bound) const;

 private:
  int TreeHopsToRoot(int node) const;
  void DetachAndRelocate(int node);
  void HandleRootUpdate(int root);
  void RepairClusterAround(int old_root);

  const Topology& topology_;
  Clustering clustering_;
  std::shared_ptr<const DistanceMetric> metric_;
  MaintenanceConfig config_;

  std::vector<Feature> current_;    // Latest feature per node.
  std::vector<Feature> verified_;   // F_i at last verification.
  std::vector<Feature> stored_root_;  // Node's copy of its root's feature.
  std::vector<Feature> announced_;  // Per root: last feature pushed down.

  MessageStats stats_;
  int detaches_ = 0;
  long long silent_updates_ = 0;
};

}  // namespace elink

#endif  // ELINK_CLUSTER_MAINTENANCE_H_
