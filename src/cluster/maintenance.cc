#include "cluster/maintenance.h"

#include <deque>
#include <map>

#include "cluster/maintenance_wire.h"
#include "common/strings.h"
#include "proto/codec.h"
#include "proto/wire.h"

namespace elink {

namespace {

/// Real bytes-on-wire of one logical hop: the version-1 frame of the exact
/// maint_wire schema the distributed protocol (maintenance_protocol.cc)
/// would transmit, so the engine cost model's byte column matches the air.
template <typename M>
uint64_t HopBytes(const M& m) {
  return wire::FrameSize(proto::Encode(m));
}

}  // namespace

MaintenanceSession::MaintenanceSession(
    const Topology& topology, const Clustering& clustering,
    std::vector<Feature> features,
    std::shared_ptr<const DistanceMetric> metric,
    const MaintenanceConfig& config)
    : topology_(topology),
      clustering_(clustering),
      metric_(std::move(metric)),
      config_(config),
      current_(features),
      verified_(features),
      stored_root_(topology.num_nodes()),
      announced_(std::move(features)) {
  ELINK_CHECK(config_.delta >= 0.0);
  ELINK_CHECK(config_.slack >= 0.0);
  ELINK_CHECK(config_.slack <= config_.delta / 2.0 + 1e-12);
  // Every member starts with its root's feature as the stored copy; the
  // announced feature of a root is its own feature at clustering time.
  for (int i = 0; i < topology_.num_nodes(); ++i) {
    stored_root_[i] = current_[clustering_.root_of[i]];
  }
}

int MaintenanceSession::TreeHopsToRoot(int node) const {
  const int root = clustering_.root_of[node];
  if (node == root) return 0;
  // BFS within the cluster's induced subgraph from the root.
  std::vector<int> dist(topology_.num_nodes(), -1);
  std::deque<int> queue{root};
  dist[root] = 0;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    if (u == node) break;
    for (int v : topology_.adjacency[u]) {
      if (dist[v] < 0 && clustering_.root_of[v] == root) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  ELINK_CHECK(dist[node] > 0);  // Clusters stay connected (repair pass).
  return dist[node];
}

void MaintenanceSession::UpdateFeature(int node, const Feature& updated) {
  const int dim = static_cast<int>(updated.size());
  current_[node] = updated;

  if (clustering_.root_of[node] == node) {
    HandleRootUpdate(node);
    return;
  }

  const Feature& f_old = verified_[node];
  const Feature& f_root = stored_root_[node];
  const double d_new_root = metric_->Distance(updated, f_root);
  const bool a1 = metric_->Distance(f_old, updated) <= config_.slack + 1e-12;
  const bool a2 = d_new_root - metric_->Distance(f_old, f_root) <=
                  config_.slack + 1e-12;
  const bool a3 = d_new_root <= config_.delta - config_.slack + 1e-12;
  if (a1 || a2 || a3) {
    ++silent_updates_;
    return;
  }

  // All three violated: fetch the live root feature over the cluster tree
  // (request up, feature down) and re-evaluate.
  const int root = clustering_.root_of[node];
  const int hops = TreeHopsToRoot(node);
  const Feature live_root = current_[root];
  maint_wire::FetchUp request;
  request.origin = node;
  maint_wire::RootFeature reply;
  reply.feature = live_root;
  for (int h = 0; h < hops; ++h) {
    stats_.Record("update_escalate", 1, HopBytes(request));
  }
  for (int h = 0; h < hops; ++h) {
    stats_.Record("update_escalate", dim, HopBytes(reply));
  }
  stored_root_[node] = live_root;
  if (metric_->Distance(updated, live_root) <= config_.delta + 1e-12) {
    verified_[node] = updated;
    return;
  }
  DetachAndRelocate(node);
}

void MaintenanceSession::HandleRootUpdate(int root) {
  const Feature& updated = current_[root];
  if (metric_->Distance(announced_[root], updated) <= config_.slack + 1e-12) {
    ++silent_updates_;
    return;
  }
  // Push the new root feature down the cluster tree: one transmission per
  // tree edge (members - 1), each carrying the feature coefficients.
  announced_[root] = updated;
  verified_[root] = updated;
  stored_root_[root] = updated;
  const int dim = static_cast<int>(updated.size());
  std::vector<int> members;
  for (int i = 0; i < topology_.num_nodes(); ++i) {
    if (clustering_.root_of[i] == root && i != root) members.push_back(i);
  }
  maint_wire::Push push;
  push.feature = updated;
  for (size_t e = 0; e < members.size(); ++e) {
    stats_.Record("update_root_push", dim, HopBytes(push));
  }
  // Members refresh their copy and re-evaluate membership.
  std::vector<int> leavers;
  for (int m : members) {
    stored_root_[m] = updated;
    if (metric_->Distance(current_[m], updated) > config_.delta + 1e-12) {
      leavers.push_back(m);
    }
  }
  for (int m : leavers) DetachAndRelocate(m);
}

void MaintenanceSession::DetachAndRelocate(int node) {
  ++detaches_;
  const int old_root = clustering_.root_of[node];
  clustering_.root_of[node] = node;

  // Probe neighbors' clusters: request + root-feature reply per probe.
  const int dim = static_cast<int>(current_[node].size());
  bool merged = false;
  for (int nb : topology_.adjacency[node]) {
    if (clustering_.root_of[nb] == node) continue;
    maint_wire::ProbeReply probe_reply;
    probe_reply.root = clustering_.root_of[nb];
    probe_reply.settled = 1;
    probe_reply.stored_root = stored_root_[nb];
    stats_.Record("update_merge_probe", 1, HopBytes(maint_wire::Probe{}));
    stats_.Record("update_merge_probe", dim, HopBytes(probe_reply));
    if (metric_->Distance(current_[node], stored_root_[nb]) <=
        config_.merge_fraction * config_.delta + 1e-12) {
      clustering_.root_of[node] = clustering_.root_of[nb];
      stored_root_[node] = stored_root_[nb];
      verified_[node] = current_[node];
      merged = true;
      break;
    }
  }
  if (!merged) {
    // Singleton cluster rooted at the node itself.
    announced_[node] = current_[node];
    stored_root_[node] = current_[node];
    verified_[node] = current_[node];
  }
  if (old_root != node) RepairClusterAround(old_root);
}

void MaintenanceSession::RepairClusterAround(int old_root) {
  // The departure may have disconnected the old cluster; promote a new root
  // in every fragment not containing the old root.  Fragment members learn
  // the promotion over their fragment's tree (one message each).
  const int n = topology_.num_nodes();
  std::vector<char> mask(n, 0);
  bool any = false;
  for (int i = 0; i < n; ++i) {
    if (clustering_.root_of[i] == old_root) {
      mask[i] = 1;
      any = true;
    }
  }
  if (!any) return;
  const std::vector<int> comp = InducedComponents(topology_.adjacency, mask);
  const int root_comp = comp[old_root];
  std::map<int, int> fragment_root;
  for (int i = 0; i < n; ++i) {
    if (!mask[i] || comp[i] == root_comp) continue;
    auto [it, inserted] = fragment_root.emplace(comp[i], i);
    if (!inserted) it->second = std::min(it->second, i);
  }
  for (int i = 0; i < n; ++i) {
    if (!mask[i] || comp[i] == root_comp) continue;
    const int nr = fragment_root[comp[i]];
    clustering_.root_of[i] = nr;
    maint_wire::RootChanged promote;
    promote.root = nr;
    stats_.Record("update_repair", 1, HopBytes(promote));
  }
  for (const auto& [c, nr] : fragment_root) {
    (void)c;
    announced_[nr] = current_[nr];
    verified_[nr] = current_[nr];
    for (int i = 0; i < n; ++i) {
      if (clustering_.root_of[i] == nr) stored_root_[i] = announced_[nr];
    }
  }
}

Status MaintenanceSession::ValidateRootDistanceInvariant(double bound) const {
  for (int i = 0; i < topology_.num_nodes(); ++i) {
    const int root = clustering_.root_of[i];
    const double d = metric_->Distance(current_[i], current_[root]);
    if (d > bound + 1e-9) {
      return Status::FailedPrecondition(StringPrintf(
          "node %d is %.6f from its root's live feature (> %.6f)", i, d,
          bound));
    }
  }
  return Status::OK();
}

}  // namespace elink
