// Quadtree decomposition and sentinel sets (paper Section 3.2).
//
// The deployment region is split recursively into cells; every cell elects a
// leader (the node nearest the cell centroid, per the paper's footnote 1),
// and sentinel set S_l is the set of leaders of the level-l cells.  Each node
// is a sentinel at exactly one level (sum |S_l| = N): once a node is elected
// at some level it is excluded from elections in the cell's descendants, and
// recursion continues until every node has been elected somewhere.
//
// The quadtree also defines the signalling hierarchy of the explicit
// technique: a sentinel's quad parent is the leader of its enclosing
// parent cell.
#ifndef ELINK_CLUSTER_QUADTREE_H_
#define ELINK_CLUSTER_QUADTREE_H_

#include <vector>

#include "common/status.h"
#include "sim/topology.h"

namespace elink {

/// \brief Sentinel-set decomposition of a deployment.
class QuadtreeDecomposition {
 public:
  /// Builds the decomposition for `topology`.  `max_levels` caps recursion
  /// depth on degenerate (coincident) placements; any nodes still unassigned
  /// at the cap become leaders of singleton cells at the deepest level.
  static QuadtreeDecomposition Build(const Topology& topology,
                                     int max_levels = 24);

  /// Number of levels used (alpha + 1); level 0 is the root sentinel.
  int num_levels() const { return static_cast<int>(sentinel_sets_.size()); }

  /// Node ids in sentinel set S_l, ascending.
  const std::vector<int>& sentinel_set(int level) const {
    return sentinel_sets_[level];
  }

  /// The sentinel level of a node (every node has exactly one).
  int level_of(int node) const { return level_of_[node]; }

  /// The node's parent sentinel in the quadtree (the leader of the enclosing
  /// parent cell).  The level-0 root's parent is itself.
  int quad_parent(int node) const { return quad_parent_[node]; }

  /// The node's child sentinels in the quadtree (leaders of its cell's
  /// non-empty child cells), ascending.
  const std::vector<int>& quad_children(int node) const {
    return quad_children_[node];
  }

  /// The single level-0 sentinel (root of the quadtree).
  int root() const { return sentinel_sets_[0][0]; }

  int num_nodes() const { return static_cast<int>(level_of_.size()); }

 private:
  QuadtreeDecomposition() = default;

  std::vector<std::vector<int>> sentinel_sets_;
  std::vector<int> level_of_;
  std::vector<int> quad_parent_;
  std::vector<std::vector<int>> quad_children_;
};

}  // namespace elink

#endif  // ELINK_CLUSTER_QUADTREE_H_
