#include "cluster/maintenance_protocol.h"

#include <algorithm>
#include <functional>
#include <set>

#include "cluster/maintenance_wire.h"
#include "common/strings.h"
#include "proto/harness.h"

namespace elink {

namespace {

namespace w = maint_wire;

struct MaintContext {
  const DistanceMetric* metric = nullptr;
  MaintenanceConfig config;
  int dim = 1;
  /// Fires on every cluster-epoch bump with (root node, new epoch).  The
  /// serving layer uses it to invalidate cached answers per cluster; null
  /// for sessions without a frontend.  Purely observational.
  std::function<void(int, long long)> epoch_hook;
  /// True when the session runs under a live ChurnPlan.  All churn-repair
  /// behavior (neighbor reactions, epoch reports, probe retries) is gated on
  /// this so churn-free sessions stay bit-identical to the legacy protocol.
  bool churn_aware = false;
};

class MaintNode : public proto::ProtocolNode {
 public:
  explicit MaintNode(MaintContext* ctx) : ctx_(ctx) {
    OnMsg<w::FetchUp>([this](int, const w::FetchUp& m) {
      if (root_ == id()) {
        w::RootFeature reply;
        reply.feature = feature_;
        SendRouted(static_cast<int>(m.origin), reply);
      } else {
        Send(parent_, m);
      }
    });
    OnMsg<w::RootFeature>([this](int, const w::RootFeature& m) {
      if (m.feature.size() != feature_.size()) {
        RejectBadFields(w::RootFeature::kCategory);
        return;
      }
      stored_root_ = m.feature;
      if (Dist(feature_, stored_root_) <= ctx_->config.delta + 1e-12) {
        verified_ = feature_;  // Still compatible: stay.
      } else {
        StartDetach();
      }
    });
    OnMsg<w::Push>([this](int from, const w::Push& m) {
      if (m.feature.size() != feature_.size()) {
        RejectBadFields(w::Push::kCategory);
        return;
      }
      // Pushes flow down the tree; under churn, ignore one from anyone but
      // the current parent (ex-parents race their own Leave/Orphan).
      if (ctx_->churn_aware && from != parent_) return;
      stored_root_ = m.feature;
      if (Dist(feature_, stored_root_) > ctx_->config.delta + 1e-12) {
        // Evicted by the root's drift; children are pushed first so they
        // hold the fresh root feature when the orphan notice arrives.
        ForwardPushToChildren(m);
        StartDetach();
      } else {
        ForwardPushToChildren(m);
      }
    });
    OnMsg<w::Probe>([this](int from, const w::Probe&) {
      w::ProbeReply reply;
      reply.root = root_;
      reply.settled = probing_ ? 0 : 1;
      reply.stored_root = stored_root_;
      Send(from, reply);
    });
    OnMsg<w::ProbeReply>([this](int from, const w::ProbeReply& m) {
      if (m.stored_root.size() != feature_.size()) {
        RejectBadFields(w::ProbeReply::kCategory);
        return;
      }
      // Only the neighbor we are currently waiting on may answer; replies
      // from an earlier scan (a probe restarted by churn, or a re-detach
      // with the old reply still in flight) are stale and ignored.
      if (from != pending_probe_target_) return;
      OnProbeReply(from, static_cast<int>(m.root), m.settled != 0,
                   m.stored_root);
    });
    OnMsg<w::Leave>([this](int from, const w::Leave&) {
      children_.erase(std::remove(children_.begin(), children_.end(), from),
                      children_.end());
    });
    OnMsg<w::Attach>([this](int from, const w::Attach&) {
      children_.push_back(from);
      if (ctx_->churn_aware) {
        // Under churn the adopter may have restarted or re-rooted while the
        // Attach was in flight; echo the authoritative root so the new
        // child can never be left pointing into a stale tree.
        w::RootChanged m;
        m.root = root_;
        m.feature = stored_root_;
        Send(from, m);
      }
    });
    OnMsg<w::EpochReport>([this](int, const w::EpochReport& m) {
      if (root_ == id()) {
        // End of the custody chain: whatever root the walk reached is the
        // origin's actual tree root.  A match means the adoption landed in
        // a live tree (a membership change worth an epoch bump); the ack
        // lets the origin compare and freshen its stored root feature.
        if (static_cast<int>(m.root) == id()) BumpEpoch();
        w::VerifyAck ack;
        ack.root = id();
        ack.seq = m.seq;
        ack.feature = feature_;
        SendRouted(static_cast<int>(m.origin), ack);
        return;
      }
      if (m.ttl <= 0 || parent_ == id()) {
        // Hop budget spent without reaching a root (the parent chain cycles
        // among stale believers), or the chain hit a node that calls itself
        // parentless while claiming a foreign root (a relabel landed
        // mid-repair): either way the origin's claim is not backed by a
        // live tree.
        w::VerifyGone gone;
        gone.seq = m.seq;
        SendRouted(static_cast<int>(m.origin), gone);
        return;
      }
      w::EpochReport fwd = m;
      fwd.ttl = m.ttl - 1;
      Send(parent_, fwd);
    });
    OnMsg<w::VerifyAck>([this](int, const w::VerifyAck& m) {
      if (m.feature.size() != feature_.size()) {
        RejectBadFields(w::VerifyAck::kCategory);
        return;
      }
      if (m.seq != verify_waiting_seq_) return;  // A superseded walk.
      verify_waiting_seq_ = -1;
      if (probing_ || root_ == id()) return;
      if (static_cast<int>(m.root) != root_) {
        // The chain ended at some other root: our claimed cluster no
        // longer exists as a tree we belong to.
        PurgeStale();
        return;
      }
      stored_root_ = m.feature;
      if (Dist(feature_, stored_root_) > ctx_->config.delta + 1e-12) {
        StartDetach();
      } else {
        verified_ = feature_;
      }
    });
    OnMsg<w::VerifyGone>([this](int, const w::VerifyGone& m) {
      if (m.seq != verify_waiting_seq_) return;
      verify_waiting_seq_ = -1;
      if (!probing_ && root_ != id()) PurgeStale();
    });
    OnMsg<w::Orphan>([this](int from, const w::Orphan&) {
      // Only the node we currently call parent may orphan us (churn only:
      // an ex-parent's stale flatten must not dissolve the new subtree).
      if (ctx_->churn_aware && from != parent_) return;
      if (!probing_) {
        // The parent departed.  Flatten: orphan our own subtree too (every
        // probing node is then a leaf, which keeps adoption acyclic), and
        // look for a new home, preferring the old cluster.
        for (int child : children_) Send(child, w::Orphan{});
        children_.clear();
        reattach_mode_ = true;
        old_root_ = root_;
        StartProbing();
      }
    });
    OnMsg<w::RootChanged>([this](int from, const w::RootChanged& m) {
      if (m.feature.size() != feature_.size()) {
        RejectBadFields(w::RootChanged::kCategory);
        return;
      }
      // Tree-authority guard (churn only): relabels travel strictly down
      // the tree, so only the current parent may speak.  A stale copy from
      // an ex-parent (its Leave still in flight) would otherwise relabel a
      // detached singleton into root != self with parent == self — a state
      // the custody walk then forwards to itself.
      if (ctx_->churn_aware && from != parent_) return;
      // Idempotence guard: a transient tree inconsistency (an Attach
      // crossing an Orphan mid-detach, with or without churn) can route a
      // RootChanged back into a node that already holds it; re-forwarding
      // identical state down a momentary parent cycle would loop forever.
      if (static_cast<int>(m.root) == root_ && m.feature == stored_root_) {
        return;
      }
      root_ = static_cast<int>(m.root);
      stored_root_ = m.feature;
      for (int child : children_) Send(child, m);
      if (!probing_ &&
          Dist(feature_, stored_root_) > ctx_->config.delta + 1e-12) {
        // The relabel (attach echo, or a subtree re-root racing our own
        // update) put us out of range of the authoritative root feature:
        // evict ourselves exactly as a Push carrying it would have.
        StartDetach();
      }
    });
  }

  // Deployment (driver, before any update).
  void Deploy(Feature feature, int root, int parent,
              std::vector<int> children) {
    feature_ = feature;
    verified_ = feature;
    root_ = root;
    parent_ = parent;
    children_ = std::move(children);
  }
  void SetStoredRoot(Feature f) { stored_root_ = std::move(f); }
  void SetAnnounced(Feature f) { announced_ = std::move(f); }

  // State readout for the driver.
  int root() const { return root_; }
  const Feature& feature() const { return feature_; }
  const Feature& announced() const { return announced_; }
  long long epoch() const { return epoch_; }
  long long cluster_epoch() const { return cluster_epoch_; }

  /// Section 6 entry point: one local feature update.
  void LocalUpdate(const Feature& updated) {
    feature_ = updated;
    if (root_ == id()) {
      RootUpdate();
      return;
    }
    const double slack = ctx_->config.slack;
    const double d_new_root = Dist(feature_, stored_root_);
    const bool a1 = Dist(verified_, feature_) <= slack + 1e-12;
    const bool a2 =
        d_new_root - Dist(verified_, stored_root_) <= slack + 1e-12;
    const bool a3 = d_new_root <= ctx_->config.delta - slack + 1e-12;
    if (a1 || a2 || a3) return;  // Absorbed locally: no messages.
    // Escalate: fetch the live root feature over the cluster tree.
    TracePhase("maint.escalate", root_);
    w::FetchUp m;
    m.origin = id();
    Send(parent_, m);
  }

 protected:
  /// Churn repair: the node came back (join or crash repair).  The previous
  /// incarnation's tree links are void — the network orphaned its timers and
  /// the runtime reset the transport — so it restarts as a self-consistent
  /// singleton cluster and probes for a home, exactly like a detach.
  void OnNodeRestart() override {
    ++epoch_;
    TracePhase("maint.restart", epoch_);
    children_.clear();
    root_ = id();
    parent_ = id();
    announced_ = feature_;
    stored_root_ = feature_;
    verified_ = feature_;
    reattach_mode_ = false;
    verify_waiting_seq_ = -1;
    merge_retries_left_ = kMaxMergeRetries;
    BumpEpoch();  // A fresh singleton cluster is a membership change.
    StartProbing();
  }

  /// Churn repair: local reaction to a neighborhood change.  Down: drop the
  /// neighbor from our tree links — if it was our parent, run the orphan
  /// repair locally (no Leave can reach a dead parent); if it was the probe
  /// we are waiting on, move on.  Up: re-scan — the newcomer may be a better
  /// (or the only) home for a probing or singleton node.
  void OnNeighborUpdate(int neighbor, bool up) override {
    if (!ctx_->churn_aware) return;
    // A real membership/link event changes the merge landscape; replenish
    // the retry budget.  Plans are finite, so this keeps retries bounded.
    merge_retries_left_ = kMaxMergeRetries;
    if (!up) {
      children_.erase(
          std::remove(children_.begin(), children_.end(), neighbor),
          children_.end());
      if (probing_ && neighbor == pending_probe_target_) {
        ++probe_index_;
        ProbeNext();
      }
      if (!probing_ && neighbor == parent_ && parent_ != id()) {
        LocalOrphan();
      }
    } else {
      if (probing_) {
        // New candidate: restart the scan (stale replies are filtered by
        // pending_probe_target_).
        StartProbing();
      } else if (root_ == id() && parent_ == id() && children_.empty()) {
        // Settled singleton: the newcomer may offer a merge.
        StartProbing();
      }
    }
  }

  void OnProtocolTimer(int timer_id) override {
    if (timer_id == kVerifyTimer) {
      // No verdict came back in time: the custody chain hit a dead node
      // (messages to the absent are dropped, never answered).  Treat the
      // claim as stale.  Early timers from superseded walks see a later
      // deadline and stand down.
      if (ctx_->churn_aware && verify_waiting_seq_ != -1 && !probing_ &&
          root_ != id() && network()->Now() + 1e-9 >= verify_deadline_) {
        verify_waiting_seq_ = -1;
        PurgeStale();
      }
      return;
    }
    if (timer_id != kRetryTimer) return;
    // Merge retry (churn only): the last scan saw an unsettled neighbor —
    // typically a mutual-probe race where both sides promoted to singleton
    // roots.  If we are still a settled singleton, scan again; the stagger
    // in RetryDelay breaks the symmetry, so one side settles first and the
    // other adopts it.
    if (ctx_->churn_aware && !probing_ && root_ == id() && parent_ == id() &&
        children_.empty()) {
      StartProbing();
    }
  }

 private:
  static constexpr int kRetryTimer = 1;
  static constexpr int kVerifyTimer = 2;

  /// Id-staggered, deterministic (no RNG) retry delay: distinct per
  /// neighboring node, so two racing singletons never re-scan in lockstep.
  double RetryDelay() const { return 4.0 + 0.25 * (id() % 32); }

  /// Bumps this root's cluster epoch (observable re-clustering).
  void BumpEpoch() {
    ++cluster_epoch_;
    TracePhase("maint.epoch", cluster_epoch_);
    if (ctx_->epoch_hook) ctx_->epoch_hook(id(), cluster_epoch_);
  }

  /// The parent vanished (churn): flatten the subtree and re-attach, like
  /// the wire Orphan, but with the root-role fields made self-consistent
  /// immediately — there is no live parent left to answer for us.
  void LocalOrphan() {
    TracePhase("maint.orphan", parent_);
    for (int child : children_) Send(child, w::Orphan{});
    children_.clear();
    reattach_mode_ = true;
    old_root_ = root_;
    root_ = id();
    parent_ = id();
    announced_ = feature_;
    stored_root_ = feature_;
    verified_ = feature_;
    StartProbing();
  }
  double Dist(const Feature& a, const Feature& b) const {
    return ctx_->metric->Distance(a, b);
  }

  void RootUpdate() {
    if (Dist(announced_, feature_) <= ctx_->config.slack + 1e-12) return;
    announced_ = feature_;
    verified_ = feature_;
    stored_root_ = feature_;
    w::Push m;
    m.feature = feature_;
    for (int child : children_) Send(child, m);
  }

  void ForwardPushToChildren(const w::Push& push) {
    for (int child : children_) Send(child, push);
  }

  /// Leaves the current cluster and looks for a new home (Section 6's
  /// detach-and-merge, plus the orphan notifications that realize the
  /// connectivity repair in a distributed way).
  void StartDetach() {
    TracePhase("maint.detach", root_);
    if (parent_ != id()) Send(parent_, w::Leave{});
    for (int child : children_) Send(child, w::Orphan{});
    children_.clear();
    root_ = id();
    parent_ = id();
    // While probing we are a singleton root; the root-role fields must be
    // self-consistent immediately, not only when the probe resolves: a lost
    // ProbeReply can leave the node in this state indefinitely, and a later
    // local update then reads announced_/stored_root_ through RootUpdate.
    announced_ = feature_;
    stored_root_ = feature_;
    verified_ = feature_;
    reattach_mode_ = false;
    StartProbing();
  }

  void StartProbing() {
    probing_ = true;
    probe_index_ = 0;
    unsettled_seen_ = false;
    ProbeNext();
  }

  void ProbeNext() {
    const auto& neighbors = network()->neighbors(id());
    // Churn repair: a probe to an absent neighbor would never be answered
    // and stall the scan forever; skip the dead (membership knowledge the
    // join/leave notifications already gave us).
    if (ctx_->churn_aware) {
      while (probe_index_ < static_cast<int>(neighbors.size()) &&
             !network()->IsPresent(neighbors[probe_index_])) {
        ++probe_index_;
      }
    }
    if (probe_index_ >= static_cast<int>(neighbors.size())) {
      // No suitable neighbor: become (or stay) a cluster of our own and
      // re-label any subtree still below us.
      probing_ = false;
      pending_probe_target_ = -1;
      TracePhase("maint.promote", id());
      root_ = id();
      parent_ = id();
      announced_ = feature_;
      stored_root_ = feature_;
      verified_ = feature_;
      BroadcastRootChanged();
      if (ctx_->churn_aware) {
        BumpEpoch();  // A promoted singleton/subtree is a new cluster.
        if (unsettled_seen_ && merge_retries_left_ > 0) {
          // Someone nearby was mid-scan too (mutual-probe race); try again
          // once the dust settles.  The budget keeps a neighborhood of
          // mutually-unmergeable singletons from phase-locking into an
          // endless rescan storm: every scan of a dense cluster sees some
          // neighbor mid-probe, so "retry while unsettled seen" alone never
          // terminates.  Giving up merges nothing away but an optional
          // merge — a settled singleton is a valid cluster on its own.
          --merge_retries_left_;
          network()->SetTimer(id(), RetryDelay(), kRetryTimer);
        }
      }
      return;
    }
    pending_probe_target_ = neighbors[probe_index_];
    Send(neighbors[probe_index_], w::Probe{});
  }

  void OnProbeReply(int from, int nb_root, bool nb_settled,
                    const Feature& nb_stored_root) {
    if (!probing_) return;
    ++probe_index_;
    if (!nb_settled) unsettled_seen_ = true;
    // Only settled neighbors can be adopted (an unsettled one is itself
    // looking for a parent; mutual adoption would form a cycle).  Under
    // churn, a neighbor claiming *us* as its root is already (or still) in
    // our own subtree: adopting it would bend the tree into a parent cycle
    // whose RootChanged echoes then circulate forever, and whose custody
    // walk self-confirms (we would ack our own verification).  A neighbor
    // that is currently our *child* is never adoptable either: its Attach
    // crossed our detach (it adopted us off a stale probe reply while our
    // eviction was in flight), and adopting it back would close a parent
    // 2-cycle disconnected from the real tree.  Refusing costs nothing —
    // the promote below relabels the child with our fresh feature, and it
    // re-evicts itself if that puts it out of range.
    if (nb_settled && !(ctx_->churn_aware && nb_root == id()) &&
        std::find(children_.begin(), children_.end(), from) ==
            children_.end()) {
      if (reattach_mode_ && nb_root == old_root_ && from < id()) {
        // Same-cluster re-attachment; the smaller-id rule makes the
        // adoption order a strict partial order, so no cycles can form.
        AdoptParent(from, nb_root, nb_stored_root, /*root_changed=*/false);
        return;
      }
      const bool foreign = nb_root != (reattach_mode_ ? old_root_ : id());
      if (foreign && Dist(feature_, nb_stored_root) <=
                         ctx_->config.merge_fraction * ctx_->config.delta +
                             1e-12) {
        AdoptParent(from, nb_root, nb_stored_root, /*root_changed=*/true);
        return;
      }
    }
    ProbeNext();
  }

  void AdoptParent(int new_parent, int new_root, const Feature& root_feature,
                   bool root_changed) {
    probing_ = false;
    pending_probe_target_ = -1;
    TracePhase("maint.adopt", new_root);
    parent_ = new_parent;
    const bool changed = root_changed || new_root != root_;
    root_ = new_root;
    stored_root_ = root_feature;
    verified_ = feature_;
    Send(new_parent, w::Attach{});
    if (changed) BroadcastRootChanged();
    if (ctx_->churn_aware) StartVerify();
  }

  /// Walks the custody chain to the claimed root (churn only).  Confirms
  /// the adoption joined a live tree — the root bumps its epoch and acks
  /// with its current feature — while a cycle, a dead chain, or a foreign
  /// root at the end exposes a stale claim resurrected across a crash.
  void StartVerify() {
    verify_waiting_seq_ = ++verify_seq_;
    verify_deadline_ = network()->Now() + VerifyTimeout();
    w::EpochReport m;
    m.root = root_;
    m.origin = id();
    m.seq = verify_waiting_seq_;
    m.ttl = network()->num_nodes();
    Send(parent_, m);
    network()->SetTimer(id(), VerifyTimeout(), kVerifyTimer);
  }

  /// Worst-case chain walk plus routed ack: both are bounded by num_nodes
  /// hops at the asynchronous per-hop delay ceiling.
  double VerifyTimeout() const { return 8.0 + 4.0 * network()->num_nodes(); }

  /// The claimed root is unreachable along the custody chain — the whole
  /// branch hangs off a cluster that no longer exists.  Dissolve it: the
  /// orphaned children re-probe (and verify) in turn.
  void PurgeStale() {
    TracePhase("maint.purge", root_);
    StartDetach();
  }

  void BroadcastRootChanged() {
    for (int child : children_) {
      w::RootChanged m;
      m.root = root_;
      m.feature = stored_root_;
      Send(child, m);
    }
  }

  MaintContext* ctx_;

  Feature feature_;
  Feature verified_;
  Feature stored_root_;
  Feature announced_;  // Root only.
  int root_ = -1;
  int parent_ = -1;
  std::vector<int> children_;

  bool probing_ = false;
  bool reattach_mode_ = false;
  int old_root_ = -1;
  int probe_index_ = 0;
  // Neighbor whose ProbeReply we are waiting on (-1 when not probing);
  // replies from anyone else are stale scans and ignored.
  int pending_probe_target_ = -1;
  // A neighbor answered "unsettled" during the current scan (mutual-probe
  // race); drives the churn-mode merge retry after a promotion.  The budget
  // bounds consecutive retries between churn events so dense neighborhoods
  // of unmergeable singletons cannot rescan each other forever.
  bool unsettled_seen_ = false;
  static constexpr int kMaxMergeRetries = 4;
  int merge_retries_left_ = kMaxMergeRetries;
  // Root-custody verification (churn only): sequence of the walk we are
  // waiting on (-1 when none) and the absolute time after which silence
  // means the chain is dead.
  long long verify_seq_ = 0;
  long long verify_waiting_seq_ = -1;
  double verify_deadline_ = 0.0;
  long long epoch_ = 0;          // Restart count of this node.
  long long cluster_epoch_ = 0;  // Meaningful while this node is a root.
};

}  // namespace

struct DistributedMaintenance::Impl {
  MaintContext ctx;
  std::unique_ptr<proto::RunHarness> harness;
  int n = 0;

  Network& net() { return harness->net(); }
};

DistributedMaintenance::DistributedMaintenance(
    const Topology& topology, const Clustering& clustering,
    const std::vector<Feature>& features,
    std::shared_ptr<const DistanceMetric> metric,
    const MaintenanceConfig& config, bool synchronous, uint64_t seed,
    const FaultPlan& fault, const ChurnPlan& churn)
    : impl_(std::make_unique<Impl>()) {
  impl_->ctx.metric = metric.get();
  metric_keepalive_ = std::move(metric);
  impl_->ctx.config = config;
  impl_->ctx.dim = features.empty() ? 1 : static_cast<int>(features[0].size());
  impl_->ctx.churn_aware = churn.enabled();
  impl_->n = topology.num_nodes();

  proto::RunHarness::Options hopt;
  hopt.net.synchronous = synchronous;
  hopt.net.seed = seed;
  hopt.net.fault = fault;
  hopt.net.churn = churn;
  impl_->harness = std::make_unique<proto::RunHarness>(topology, hopt);
  impl_->harness->InstallNodes(
      [&](int) { return std::make_unique<MaintNode>(&impl_->ctx); });

  const std::vector<int> tree =
      BuildClusterTrees(clustering, topology.adjacency);
  std::vector<std::vector<int>> children(impl_->n);
  for (int i = 0; i < impl_->n; ++i) {
    if (tree[i] != i) children[tree[i]].push_back(i);
  }
  for (int i = 0; i < impl_->n; ++i) {
    auto* node = static_cast<MaintNode*>(impl_->net().node(i));
    node->Deploy(features[i], clustering.root_of[i], tree[i],
                 std::move(children[i]));
    node->SetStoredRoot(features[clustering.root_of[i]]);
    if (clustering.root_of[i] == i) node->SetAnnounced(features[i]);
  }
}

DistributedMaintenance::~DistributedMaintenance() = default;

void DistributedMaintenance::ApplyUpdate(int node, const Feature& updated) {
  static_cast<MaintNode*>(impl_->net().node(node))->LocalUpdate(updated);
  impl_->harness->Run();
}

void DistributedMaintenance::ScheduleUpdate(double at, int node,
                                            const Feature& updated) {
  Network& net = impl_->net();
  ELINK_CHECK(at >= net.Now());
  net.ScheduleAfter(at - net.Now(), [&net, node, updated]() {
    // An absent sensor observes nothing; the update evaporates.
    if (!net.IsPresent(node)) return;
    static_cast<MaintNode*>(net.node(node))->LocalUpdate(updated);
  });
}

void DistributedMaintenance::RunToQuiescence() { impl_->harness->Run(); }

Clustering DistributedMaintenance::CurrentClustering() const {
  Clustering c;
  c.root_of.resize(impl_->n);
  for (int i = 0; i < impl_->n; ++i) {
    c.root_of[i] =
        static_cast<const MaintNode*>(impl_->net().node(i))->root();
  }
  return c;
}

std::vector<Feature> DistributedMaintenance::CurrentFeatures() const {
  std::vector<Feature> out(impl_->n);
  for (int i = 0; i < impl_->n; ++i) {
    out[i] = static_cast<const MaintNode*>(impl_->net().node(i))->feature();
  }
  return out;
}

bool DistributedMaintenance::NodeLive(int node) const {
  return impl_->net().IsPresent(node);
}

std::vector<char> DistributedMaintenance::LiveMask() const {
  std::vector<char> mask(impl_->n, 0);
  for (int i = 0; i < impl_->n; ++i) {
    mask[i] = impl_->net().IsPresent(i) ? 1 : 0;
  }
  return mask;
}

std::vector<std::vector<int>> DistributedMaintenance::LiveAdjacency() const {
  std::vector<std::vector<int>> adj(impl_->n);
  for (int i = 0; i < impl_->n; ++i) {
    adj[i] = impl_->net().neighbors(i);
  }
  return adj;
}

long long DistributedMaintenance::node_epoch(int node) const {
  return static_cast<const MaintNode*>(impl_->net().node(node))->epoch();
}

long long DistributedMaintenance::cluster_epoch(int node) const {
  const auto* n = static_cast<const MaintNode*>(impl_->net().node(node));
  return static_cast<const MaintNode*>(impl_->net().node(n->root()))
      ->cluster_epoch();
}

uint64_t DistributedMaintenance::churn_drops() const {
  return impl_->net().churn_drops();
}

const MessageStats& DistributedMaintenance::stats() const {
  return impl_->net().stats();
}

void DistributedMaintenance::set_observer(SimObserver* observer) {
  impl_->harness->set_observer(observer);
}

void DistributedMaintenance::set_epoch_hook(
    std::function<void(int, long long)> hook) {
  impl_->ctx.epoch_hook = std::move(hook);
}

Status DistributedMaintenance::ValidateRootDistanceInvariant(
    double bound) const {
  for (int i = 0; i < impl_->n; ++i) {
    if (!impl_->net().IsPresent(i)) continue;
    const auto* node = static_cast<const MaintNode*>(impl_->net().node(i));
    if (!impl_->net().IsPresent(node->root())) {
      return Status::FailedPrecondition(
          StringPrintf("present node %d points at absent root %d", i,
                       node->root()));
    }
    const auto* root =
        static_cast<const MaintNode*>(impl_->net().node(node->root()));
    const double d =
        impl_->ctx.metric->Distance(node->feature(), root->feature());
    if (d > bound + 1e-9) {
      return Status::FailedPrecondition(
          StringPrintf("node %d is %.6f from its root's feature (> %.6f)", i,
                       d, bound));
    }
  }
  return Status::OK();
}

}  // namespace elink
