#include "cluster/maintenance_protocol.h"

#include <algorithm>
#include <set>

#include "cluster/maintenance_wire.h"
#include "common/strings.h"
#include "proto/harness.h"

namespace elink {

namespace {

namespace w = maint_wire;

struct MaintContext {
  const DistanceMetric* metric = nullptr;
  MaintenanceConfig config;
  int dim = 1;
};

class MaintNode : public proto::ProtocolNode {
 public:
  explicit MaintNode(MaintContext* ctx) : ctx_(ctx) {
    OnMsg<w::FetchUp>([this](int, const w::FetchUp& m) {
      if (root_ == id()) {
        w::RootFeature reply;
        reply.feature = feature_;
        SendRouted(static_cast<int>(m.origin), reply);
      } else {
        Send(parent_, m);
      }
    });
    OnMsg<w::RootFeature>([this](int, const w::RootFeature& m) {
      if (m.feature.size() != feature_.size()) {
        RejectBadFields(w::RootFeature::kCategory);
        return;
      }
      stored_root_ = m.feature;
      if (Dist(feature_, stored_root_) <= ctx_->config.delta + 1e-12) {
        verified_ = feature_;  // Still compatible: stay.
      } else {
        StartDetach();
      }
    });
    OnMsg<w::Push>([this](int, const w::Push& m) {
      if (m.feature.size() != feature_.size()) {
        RejectBadFields(w::Push::kCategory);
        return;
      }
      stored_root_ = m.feature;
      if (Dist(feature_, stored_root_) > ctx_->config.delta + 1e-12) {
        // Evicted by the root's drift; children are pushed first so they
        // hold the fresh root feature when the orphan notice arrives.
        ForwardPushToChildren(m);
        StartDetach();
      } else {
        ForwardPushToChildren(m);
      }
    });
    OnMsg<w::Probe>([this](int from, const w::Probe&) {
      w::ProbeReply reply;
      reply.root = root_;
      reply.settled = probing_ ? 0 : 1;
      reply.stored_root = stored_root_;
      Send(from, reply);
    });
    OnMsg<w::ProbeReply>([this](int from, const w::ProbeReply& m) {
      if (m.stored_root.size() != feature_.size()) {
        RejectBadFields(w::ProbeReply::kCategory);
        return;
      }
      OnProbeReply(from, static_cast<int>(m.root), m.settled != 0,
                   m.stored_root);
    });
    OnMsg<w::Leave>([this](int from, const w::Leave&) {
      children_.erase(std::remove(children_.begin(), children_.end(), from),
                      children_.end());
    });
    OnMsg<w::Attach>(
        [this](int from, const w::Attach&) { children_.push_back(from); });
    OnMsg<w::Orphan>([this](int, const w::Orphan&) {
      if (!probing_) {
        // The parent departed.  Flatten: orphan our own subtree too (every
        // probing node is then a leaf, which keeps adoption acyclic), and
        // look for a new home, preferring the old cluster.
        for (int child : children_) Send(child, w::Orphan{});
        children_.clear();
        reattach_mode_ = true;
        old_root_ = root_;
        StartProbing();
      }
    });
    OnMsg<w::RootChanged>([this](int, const w::RootChanged& m) {
      if (m.feature.size() != feature_.size()) {
        RejectBadFields(w::RootChanged::kCategory);
        return;
      }
      root_ = static_cast<int>(m.root);
      stored_root_ = m.feature;
      for (int child : children_) Send(child, m);
    });
  }

  // Deployment (driver, before any update).
  void Deploy(Feature feature, int root, int parent,
              std::vector<int> children) {
    feature_ = feature;
    verified_ = feature;
    root_ = root;
    parent_ = parent;
    children_ = std::move(children);
  }
  void SetStoredRoot(Feature f) { stored_root_ = std::move(f); }
  void SetAnnounced(Feature f) { announced_ = std::move(f); }

  // State readout for the driver.
  int root() const { return root_; }
  const Feature& feature() const { return feature_; }
  const Feature& announced() const { return announced_; }

  /// Section 6 entry point: one local feature update.
  void LocalUpdate(const Feature& updated) {
    feature_ = updated;
    if (root_ == id()) {
      RootUpdate();
      return;
    }
    const double slack = ctx_->config.slack;
    const double d_new_root = Dist(feature_, stored_root_);
    const bool a1 = Dist(verified_, feature_) <= slack + 1e-12;
    const bool a2 =
        d_new_root - Dist(verified_, stored_root_) <= slack + 1e-12;
    const bool a3 = d_new_root <= ctx_->config.delta - slack + 1e-12;
    if (a1 || a2 || a3) return;  // Absorbed locally: no messages.
    // Escalate: fetch the live root feature over the cluster tree.
    TracePhase("maint.escalate", root_);
    w::FetchUp m;
    m.origin = id();
    Send(parent_, m);
  }

 private:
  double Dist(const Feature& a, const Feature& b) const {
    return ctx_->metric->Distance(a, b);
  }

  void RootUpdate() {
    if (Dist(announced_, feature_) <= ctx_->config.slack + 1e-12) return;
    announced_ = feature_;
    verified_ = feature_;
    stored_root_ = feature_;
    w::Push m;
    m.feature = feature_;
    for (int child : children_) Send(child, m);
  }

  void ForwardPushToChildren(const w::Push& push) {
    for (int child : children_) Send(child, push);
  }

  /// Leaves the current cluster and looks for a new home (Section 6's
  /// detach-and-merge, plus the orphan notifications that realize the
  /// connectivity repair in a distributed way).
  void StartDetach() {
    TracePhase("maint.detach", root_);
    if (parent_ != id()) Send(parent_, w::Leave{});
    for (int child : children_) Send(child, w::Orphan{});
    children_.clear();
    root_ = id();
    parent_ = id();
    // While probing we are a singleton root; the root-role fields must be
    // self-consistent immediately, not only when the probe resolves: a lost
    // ProbeReply can leave the node in this state indefinitely, and a later
    // local update then reads announced_/stored_root_ through RootUpdate.
    announced_ = feature_;
    stored_root_ = feature_;
    verified_ = feature_;
    reattach_mode_ = false;
    StartProbing();
  }

  void StartProbing() {
    probing_ = true;
    probe_index_ = 0;
    ProbeNext();
  }

  void ProbeNext() {
    const auto& neighbors = network()->neighbors(id());
    if (probe_index_ >= static_cast<int>(neighbors.size())) {
      // No suitable neighbor: become (or stay) a cluster of our own and
      // re-label any subtree still below us.
      probing_ = false;
      TracePhase("maint.promote", id());
      root_ = id();
      parent_ = id();
      announced_ = feature_;
      stored_root_ = feature_;
      verified_ = feature_;
      BroadcastRootChanged();
      return;
    }
    Send(neighbors[probe_index_], w::Probe{});
  }

  void OnProbeReply(int from, int nb_root, bool nb_settled,
                    const Feature& nb_stored_root) {
    if (!probing_) return;
    ++probe_index_;
    // Only settled neighbors can be adopted (an unsettled one is itself
    // looking for a parent; mutual adoption would form a cycle).
    if (nb_settled) {
      if (reattach_mode_ && nb_root == old_root_ && from < id()) {
        // Same-cluster re-attachment; the smaller-id rule makes the
        // adoption order a strict partial order, so no cycles can form.
        AdoptParent(from, nb_root, nb_stored_root, /*root_changed=*/false);
        return;
      }
      const bool foreign = nb_root != (reattach_mode_ ? old_root_ : id());
      if (foreign && Dist(feature_, nb_stored_root) <=
                         ctx_->config.merge_fraction * ctx_->config.delta +
                             1e-12) {
        AdoptParent(from, nb_root, nb_stored_root, /*root_changed=*/true);
        return;
      }
    }
    ProbeNext();
  }

  void AdoptParent(int new_parent, int new_root, const Feature& root_feature,
                   bool root_changed) {
    probing_ = false;
    TracePhase("maint.adopt", new_root);
    parent_ = new_parent;
    const bool changed = root_changed || new_root != root_;
    root_ = new_root;
    stored_root_ = root_feature;
    verified_ = feature_;
    Send(new_parent, w::Attach{});
    if (changed) BroadcastRootChanged();
  }

  void BroadcastRootChanged() {
    for (int child : children_) {
      w::RootChanged m;
      m.root = root_;
      m.feature = stored_root_;
      Send(child, m);
    }
  }

  MaintContext* ctx_;

  Feature feature_;
  Feature verified_;
  Feature stored_root_;
  Feature announced_;  // Root only.
  int root_ = -1;
  int parent_ = -1;
  std::vector<int> children_;

  bool probing_ = false;
  bool reattach_mode_ = false;
  int old_root_ = -1;
  int probe_index_ = 0;
};

}  // namespace

struct DistributedMaintenance::Impl {
  MaintContext ctx;
  std::unique_ptr<proto::RunHarness> harness;
  int n = 0;

  Network& net() { return harness->net(); }
};

DistributedMaintenance::DistributedMaintenance(
    const Topology& topology, const Clustering& clustering,
    const std::vector<Feature>& features,
    std::shared_ptr<const DistanceMetric> metric,
    const MaintenanceConfig& config, bool synchronous, uint64_t seed,
    const FaultPlan& fault)
    : impl_(std::make_unique<Impl>()) {
  impl_->ctx.metric = metric.get();
  metric_keepalive_ = std::move(metric);
  impl_->ctx.config = config;
  impl_->ctx.dim = features.empty() ? 1 : static_cast<int>(features[0].size());
  impl_->n = topology.num_nodes();

  proto::RunHarness::Options hopt;
  hopt.net.synchronous = synchronous;
  hopt.net.seed = seed;
  hopt.net.fault = fault;
  impl_->harness = std::make_unique<proto::RunHarness>(topology, hopt);
  impl_->harness->InstallNodes(
      [&](int) { return std::make_unique<MaintNode>(&impl_->ctx); });

  const std::vector<int> tree =
      BuildClusterTrees(clustering, topology.adjacency);
  std::vector<std::vector<int>> children(impl_->n);
  for (int i = 0; i < impl_->n; ++i) {
    if (tree[i] != i) children[tree[i]].push_back(i);
  }
  for (int i = 0; i < impl_->n; ++i) {
    auto* node = static_cast<MaintNode*>(impl_->net().node(i));
    node->Deploy(features[i], clustering.root_of[i], tree[i],
                 std::move(children[i]));
    node->SetStoredRoot(features[clustering.root_of[i]]);
    if (clustering.root_of[i] == i) node->SetAnnounced(features[i]);
  }
}

DistributedMaintenance::~DistributedMaintenance() = default;

void DistributedMaintenance::ApplyUpdate(int node, const Feature& updated) {
  static_cast<MaintNode*>(impl_->net().node(node))->LocalUpdate(updated);
  impl_->harness->Run();
}

Clustering DistributedMaintenance::CurrentClustering() const {
  Clustering c;
  c.root_of.resize(impl_->n);
  for (int i = 0; i < impl_->n; ++i) {
    c.root_of[i] =
        static_cast<const MaintNode*>(impl_->net().node(i))->root();
  }
  return c;
}

std::vector<Feature> DistributedMaintenance::CurrentFeatures() const {
  std::vector<Feature> out(impl_->n);
  for (int i = 0; i < impl_->n; ++i) {
    out[i] = static_cast<const MaintNode*>(impl_->net().node(i))->feature();
  }
  return out;
}

const MessageStats& DistributedMaintenance::stats() const {
  return impl_->net().stats();
}

void DistributedMaintenance::set_observer(SimObserver* observer) {
  impl_->harness->set_observer(observer);
}

Status DistributedMaintenance::ValidateRootDistanceInvariant(
    double bound) const {
  for (int i = 0; i < impl_->n; ++i) {
    const auto* node = static_cast<const MaintNode*>(impl_->net().node(i));
    const auto* root =
        static_cast<const MaintNode*>(impl_->net().node(node->root()));
    const double d =
        impl_->ctx.metric->Distance(node->feature(), root->feature());
    if (d > bound + 1e-9) {
      return Status::FailedPrecondition(
          StringPrintf("node %d is %.6f from its root's feature (> %.6f)", i,
                       d, bound));
    }
  }
  return Status::OK();
}

}  // namespace elink
