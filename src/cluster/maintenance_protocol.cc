#include "cluster/maintenance_protocol.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace elink {

namespace {

enum MaintMsg : int {
  kFetchUp = 1,      // Escalation request towards the root; ints = {origin}.
  kRootFeature = 2,  // Root's live feature back to the origin.
  kPush = 3,         // Root pushes its new feature down the tree.
  kProbe = 4,        // Detached/orphaned node asks a neighbor for its root.
  kProbeReply = 5,   // ints = {root id}; doubles = stored root feature.
  kLeave = 6,        // Child tells its tree parent it departed.
  kAttach = 7,       // New child announces itself to its adopted parent.
  kOrphan = 8,       // Parent departed: the child must re-attach.
  kRootChanged = 9,  // New root id + feature propagating down a subtree.
};

struct MaintContext {
  const DistanceMetric* metric = nullptr;
  MaintenanceConfig config;
  int dim = 1;
};

class MaintNode : public Node {
 public:
  MaintNode(MaintContext* ctx) : ctx_(ctx) {}

  // Deployment (driver, before any update).
  void Deploy(Feature feature, int root, int parent,
              std::vector<int> children) {
    feature_ = feature;
    verified_ = feature;
    root_ = root;
    parent_ = parent;
    children_ = std::move(children);
  }
  void SetStoredRoot(Feature f) { stored_root_ = std::move(f); }
  void SetAnnounced(Feature f) { announced_ = std::move(f); }

  // State readout for the driver.
  int root() const { return root_; }
  const Feature& feature() const { return feature_; }
  const Feature& announced() const { return announced_; }

  /// Section 6 entry point: one local feature update.
  void LocalUpdate(const Feature& updated) {
    feature_ = updated;
    if (root_ == id()) {
      RootUpdate();
      return;
    }
    const double slack = ctx_->config.slack;
    const double d_new_root = Dist(feature_, stored_root_);
    const bool a1 = Dist(verified_, feature_) <= slack + 1e-12;
    const bool a2 =
        d_new_root - Dist(verified_, stored_root_) <= slack + 1e-12;
    const bool a3 = d_new_root <= ctx_->config.delta - slack + 1e-12;
    if (a1 || a2 || a3) return;  // Absorbed locally: no messages.
    // Escalate: fetch the live root feature over the cluster tree.
    Message m;
    m.type = kFetchUp;
    m.category = "update_escalate";
    m.ints = {id()};
    network()->Send(id(), parent_, std::move(m));
  }

  void HandleMessage(int from, const Message& msg) override {
    switch (msg.type) {
      case kFetchUp:
        if (root_ == id()) {
          Message reply;
          reply.type = kRootFeature;
          reply.category = "update_escalate";
          reply.doubles = feature_;
          network()->SendRouted(id(), static_cast<int>(msg.ints[0]),
                                std::move(reply));
        } else {
          Message m = msg;
          network()->Send(id(), parent_, std::move(m));
        }
        break;
      case kRootFeature: {
        stored_root_ = msg.doubles;
        if (Dist(feature_, stored_root_) <= ctx_->config.delta + 1e-12) {
          verified_ = feature_;  // Still compatible: stay.
        } else {
          StartDetach();
        }
        break;
      }
      case kPush: {
        stored_root_ = msg.doubles;
        if (Dist(feature_, stored_root_) > ctx_->config.delta + 1e-12) {
          // Evicted by the root's drift; children are pushed first so they
          // hold the fresh root feature when the orphan notice arrives.
          ForwardPushToChildren(msg);
          StartDetach();
        } else {
          ForwardPushToChildren(msg);
        }
        break;
      }
      case kProbe: {
        Message reply;
        reply.type = kProbeReply;
        reply.category = "update_merge_probe";
        reply.ints = {root_, probing_ ? 0 : 1};  // root id, settled flag.
        reply.doubles = stored_root_;
        network()->Send(id(), from, std::move(reply));
        break;
      }
      case kProbeReply:
        OnProbeReply(from, static_cast<int>(msg.ints[0]),
                     msg.ints[1] != 0, msg.doubles);
        break;
      case kLeave:
        children_.erase(std::remove(children_.begin(), children_.end(), from),
                        children_.end());
        break;
      case kAttach:
        children_.push_back(from);
        break;
      case kOrphan:
        if (!probing_) {
          // The parent departed.  Flatten: orphan our own subtree too (every
          // probing node is then a leaf, which keeps adoption acyclic), and
          // look for a new home, preferring the old cluster.
          for (int child : children_) {
            Message orphan;
            orphan.type = kOrphan;
            orphan.category = "update_repair";
            network()->Send(id(), child, std::move(orphan));
          }
          children_.clear();
          reattach_mode_ = true;
          old_root_ = root_;
          StartProbing();
        }
        break;
      case kRootChanged:
        root_ = static_cast<int>(msg.ints[0]);
        stored_root_ = msg.doubles;
        for (int child : children_) {
          Message m = msg;
          m.category = "update_repair";
          network()->Send(id(), child, std::move(m));
        }
        break;
      default:
        ELINK_CHECK(false);
    }
  }

 private:
  double Dist(const Feature& a, const Feature& b) const {
    return ctx_->metric->Distance(a, b);
  }

  void RootUpdate() {
    if (Dist(announced_, feature_) <= ctx_->config.slack + 1e-12) return;
    announced_ = feature_;
    verified_ = feature_;
    stored_root_ = feature_;
    Message m;
    m.type = kPush;
    m.category = "update_root_push";
    m.doubles = feature_;
    for (int child : children_) {
      Message copy = m;
      network()->Send(id(), child, std::move(copy));
    }
  }

  void ForwardPushToChildren(const Message& push) {
    for (int child : children_) {
      Message copy = push;
      network()->Send(id(), child, std::move(copy));
    }
  }

  /// Leaves the current cluster and looks for a new home (Section 6's
  /// detach-and-merge, plus the orphan notifications that realize the
  /// connectivity repair in a distributed way).
  void StartDetach() {
    if (parent_ != id()) {
      Message leave;
      leave.type = kLeave;
      leave.category = "update_repair";
      network()->Send(id(), parent_, std::move(leave));
    }
    for (int child : children_) {
      Message orphan;
      orphan.type = kOrphan;
      orphan.category = "update_repair";
      network()->Send(id(), child, std::move(orphan));
    }
    children_.clear();
    root_ = id();
    parent_ = id();
    reattach_mode_ = false;
    StartProbing();
  }

  void StartProbing() {
    probing_ = true;
    probe_index_ = 0;
    ProbeNext();
  }

  void ProbeNext() {
    const auto& neighbors = network()->neighbors(id());
    if (probe_index_ >= static_cast<int>(neighbors.size())) {
      // No suitable neighbor: become (or stay) a cluster of our own and
      // re-label any subtree still below us.
      probing_ = false;
      root_ = id();
      parent_ = id();
      announced_ = feature_;
      stored_root_ = feature_;
      verified_ = feature_;
      BroadcastRootChanged();
      return;
    }
    Message probe;
    probe.type = kProbe;
    probe.category = "update_merge_probe";
    network()->Send(id(), neighbors[probe_index_], std::move(probe));
  }

  void OnProbeReply(int from, int nb_root, bool nb_settled,
                    const Feature& nb_stored_root) {
    if (!probing_) return;
    ++probe_index_;
    // Only settled neighbors can be adopted (an unsettled one is itself
    // looking for a parent; mutual adoption would form a cycle).
    if (nb_settled) {
      if (reattach_mode_ && nb_root == old_root_ && from < id()) {
        // Same-cluster re-attachment; the smaller-id rule makes the
        // adoption order a strict partial order, so no cycles can form.
        AdoptParent(from, nb_root, nb_stored_root, /*root_changed=*/false);
        return;
      }
      const bool foreign = nb_root != (reattach_mode_ ? old_root_ : id());
      if (foreign && Dist(feature_, nb_stored_root) <=
                         ctx_->config.merge_fraction * ctx_->config.delta +
                             1e-12) {
        AdoptParent(from, nb_root, nb_stored_root, /*root_changed=*/true);
        return;
      }
    }
    ProbeNext();
  }

  void AdoptParent(int new_parent, int new_root, const Feature& root_feature,
                   bool root_changed) {
    probing_ = false;
    parent_ = new_parent;
    const bool changed = root_changed || new_root != root_;
    root_ = new_root;
    stored_root_ = root_feature;
    verified_ = feature_;
    Message attach;
    attach.type = kAttach;
    attach.category = "update_repair";
    network()->Send(id(), new_parent, std::move(attach));
    if (changed) BroadcastRootChanged();
  }

  void BroadcastRootChanged() {
    for (int child : children_) {
      Message m;
      m.type = kRootChanged;
      m.category = "update_repair";
      m.ints = {root_};
      m.doubles = stored_root_;
      network()->Send(id(), child, std::move(m));
    }
  }

  MaintContext* ctx_;

  Feature feature_;
  Feature verified_;
  Feature stored_root_;
  Feature announced_;  // Root only.
  int root_ = -1;
  int parent_ = -1;
  std::vector<int> children_;

  bool probing_ = false;
  bool reattach_mode_ = false;
  int old_root_ = -1;
  int probe_index_ = 0;
};

}  // namespace

struct DistributedMaintenance::Impl {
  MaintContext ctx;
  std::unique_ptr<Network> net;
  int n = 0;
};

DistributedMaintenance::DistributedMaintenance(
    const Topology& topology, const Clustering& clustering,
    const std::vector<Feature>& features,
    std::shared_ptr<const DistanceMetric> metric,
    const MaintenanceConfig& config, bool synchronous, uint64_t seed)
    : impl_(std::make_unique<Impl>()) {
  impl_->ctx.metric = metric.get();
  metric_keepalive_ = std::move(metric);
  impl_->ctx.config = config;
  impl_->ctx.dim = features.empty() ? 1 : static_cast<int>(features[0].size());
  impl_->n = topology.num_nodes();

  Network::Config ncfg;
  ncfg.synchronous = synchronous;
  ncfg.seed = seed;
  impl_->net = std::make_unique<Network>(topology, ncfg);
  impl_->net->InstallNodes(
      [&](int) { return std::make_unique<MaintNode>(&impl_->ctx); });

  const std::vector<int> tree =
      BuildClusterTrees(clustering, topology.adjacency);
  std::vector<std::vector<int>> children(impl_->n);
  for (int i = 0; i < impl_->n; ++i) {
    if (tree[i] != i) children[tree[i]].push_back(i);
  }
  for (int i = 0; i < impl_->n; ++i) {
    auto* node = static_cast<MaintNode*>(impl_->net->node(i));
    node->Deploy(features[i], clustering.root_of[i], tree[i],
                 std::move(children[i]));
    node->SetStoredRoot(features[clustering.root_of[i]]);
    if (clustering.root_of[i] == i) node->SetAnnounced(features[i]);
  }
}

DistributedMaintenance::~DistributedMaintenance() = default;

void DistributedMaintenance::ApplyUpdate(int node, const Feature& updated) {
  static_cast<MaintNode*>(impl_->net->node(node))->LocalUpdate(updated);
  impl_->net->Run();
}

Clustering DistributedMaintenance::CurrentClustering() const {
  Clustering c;
  c.root_of.resize(impl_->n);
  for (int i = 0; i < impl_->n; ++i) {
    c.root_of[i] = static_cast<MaintNode*>(impl_->net->node(i))->root();
  }
  return c;
}

std::vector<Feature> DistributedMaintenance::CurrentFeatures() const {
  std::vector<Feature> out(impl_->n);
  for (int i = 0; i < impl_->n; ++i) {
    out[i] = static_cast<MaintNode*>(impl_->net->node(i))->feature();
  }
  return out;
}

const MessageStats& DistributedMaintenance::stats() const {
  return impl_->net->stats();
}

Status DistributedMaintenance::ValidateRootDistanceInvariant(
    double bound) const {
  for (int i = 0; i < impl_->n; ++i) {
    auto* node = static_cast<MaintNode*>(impl_->net->node(i));
    auto* root = static_cast<MaintNode*>(impl_->net->node(node->root()));
    const double d =
        impl_->ctx.metric->Distance(node->feature(), root->feature());
    if (d > bound + 1e-9) {
      return Status::FailedPrecondition(
          StringPrintf("node %d is %.6f from its root's feature (> %.6f)", i,
                       d, bound));
    }
  }
  return Status::OK();
}

}  // namespace elink
