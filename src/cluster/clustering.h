// The delta-clustering model (paper Definition 1) and validation.
//
// A clustering assigns every node a cluster root; a cluster is valid when its
// members induce a connected subgraph of the communication graph and all
// pairwise feature distances are at most delta.  Validation here checks the
// *pairwise* condition exhaustively — not just the distance-to-root
// invariant the algorithms maintain — so tests catch any algorithmic slip.
#ifndef ELINK_CLUSTER_CLUSTERING_H_
#define ELINK_CLUSTER_CLUSTERING_H_

#include <vector>

#include "common/status.h"
#include "metric/distance.h"
#include "metric/feature.h"
#include "sim/graph.h"

namespace elink {

/// \brief A partition of the network into rooted clusters.
struct Clustering {
  /// root_of[i] is the id of the cluster root (leader) of node i.  A root r
  /// has root_of[r] == r.  -1 marks an unclustered node (never produced by a
  /// complete run; checked by validation).
  std::vector<int> root_of;

  /// Number of distinct clusters.
  int num_clusters() const;

  /// Members of each cluster, keyed by root id (ascending), members sorted.
  std::vector<std::pair<int, std::vector<int>>> Groups() const;

  /// True when i and j are in the same cluster.
  bool SameCluster(int i, int j) const {
    return root_of[i] >= 0 && root_of[i] == root_of[j];
  }
};

/// Verifies that `clustering` is a valid delta-clustering of the graph:
/// every node assigned, every root a member of its own cluster, every
/// cluster's induced subgraph connected, and every *pair* of cluster members
/// within distance delta (Definition 1).  Returns FailedPrecondition with a
/// description of the first violation.
Status ValidateDeltaClustering(const Clustering& clustering,
                               const AdjacencyList& adjacency,
                               const std::vector<Feature>& features,
                               const DistanceMetric& metric, double delta);

/// Splits any cluster whose induced subgraph is disconnected into its
/// connected components (the component containing the old root keeps it; the
/// other components promote their smallest-id member).  Cluster switching
/// during distributed expansion can strand such fragments (Section 3.2
/// allows membership switches); this repair restores Definition 1's
/// connectivity requirement without affecting delta-compactness, since each
/// fragment's members were all within delta/2 of the old root feature.
/// Returns the number of additional clusters created.
int RepairDisconnectedClusters(Clustering* clustering,
                               const AdjacencyList& adjacency);

/// Builds per-cluster BFS trees rooted at each cluster root over the induced
/// subgraphs: parent[i] is i's parent in its cluster tree (parent[root] ==
/// root).  Used by the index layer (Section 7.1).  Requires a valid
/// clustering (connected clusters).
std::vector<int> BuildClusterTrees(const Clustering& clustering,
                                   const AdjacencyList& adjacency);

}  // namespace elink

#endif  // ELINK_CLUSTER_CLUSTERING_H_
