// A fully distributed, message-passing execution of the Section-6 cluster
// maintenance protocol, run inside the discrete-event simulator.
//
// MaintenanceSession (maintenance.h) applies the A1-A3 logic centrally and
// accounts the messages.  Here every step is a real protocol action: an
// escalating node sends a fetch up its cluster tree hop by hop and the root
// feature travels back down; a detaching node probes its radio neighbors
// and joins over the link it probed; a drifting root pushes its new feature
// down the tree, and nodes orphaned by a detach re-attach or promote
// themselves (the distributed form of the connectivity repair).  Tests
// replay identical update sequences through both implementations and check
// that the outcomes and costs agree.
#ifndef ELINK_CLUSTER_MAINTENANCE_PROTOCOL_H_
#define ELINK_CLUSTER_MAINTENANCE_PROTOCOL_H_

#include <functional>
#include <memory>
#include <vector>

#include "cluster/clustering.h"
#include "cluster/maintenance.h"
#include "common/status.h"
#include "metric/distance.h"
#include "sim/network.h"

namespace elink {

/// \brief Long-lived maintenance protocol over a simulated network.
///
/// Construction deploys the per-node state (verified feature, stored root
/// feature, cluster-tree links).  Each ApplyUpdate injects one feature
/// update at a node and runs the network to quiescence.
///
/// With a non-inert `churn` plan the session becomes *churn-aware*: nodes
/// react to join/leave/crash-repair/link events with local self-healing —
/// orphan adoption when a parent vanishes, restart-as-singleton plus
/// re-probe on repair, cluster split when churn disconnects a tree — and
/// every membership repair bumps a per-cluster epoch observable through
/// cluster_epoch().  A default-constructed plan leaves behavior (and every
/// message) bit-identical to the pre-churn protocol.
class DistributedMaintenance {
 public:
  /// `fault` injects message-level faults (loss, truncation, ...) into the
  /// protocol's network; `churn` schedules topology dynamics.  Both default
  /// plans are inert.
  DistributedMaintenance(const Topology& topology,
                         const Clustering& clustering,
                         const std::vector<Feature>& features,
                         std::shared_ptr<const DistanceMetric> metric,
                         const MaintenanceConfig& config,
                         bool synchronous = true, uint64_t seed = 1,
                         const FaultPlan& fault = {},
                         const ChurnPlan& churn = {});

  ~DistributedMaintenance();

  /// Applies one feature update and simulates until all induced protocol
  /// activity (escalation, detach, probes, pushes, re-attachment) finishes.
  void ApplyUpdate(int node, const Feature& updated);

  /// Schedules a feature update at absolute simulation time `at` (>= now);
  /// it is injected when the clock reaches `at` — interleaving with churn
  /// events — and silently skipped if the node is absent at that instant
  /// (a sensor that left cannot observe anything).  Drive with
  /// RunToQuiescence (or the next ApplyUpdate).
  void ScheduleUpdate(double at, int node, const Feature& updated);

  /// Drains all pending activity (scheduled updates, churn events, repair
  /// traffic) without injecting anything new.
  void RunToQuiescence();

  /// Current clustering as held by the nodes themselves.
  Clustering CurrentClustering() const;

  /// Current feature per node.
  std::vector<Feature> CurrentFeatures() const;

  /// True when `node` is currently deployed under the churn plan (always
  /// true for churn-free sessions).
  bool NodeLive(int node) const;

  /// 0/1 mask of currently-present nodes, sized num_nodes.
  std::vector<char> LiveMask() const;

  /// Radio adjacency as of now (after any link churn), indexed by node.
  /// Identical to the deployment topology for churn-free sessions.
  std::vector<std::vector<int>> LiveAdjacency() const;

  /// Restart count of `node` (churn joins/repairs so far).
  long long node_epoch(int node) const;

  /// Epoch of `node`'s cluster, as counted by its current root: bumped on
  /// every churn-repair membership change the root observed.  0 until the
  /// first re-clustering event.
  long long cluster_epoch(int node) const;

  /// All protocol transmissions so far.
  const MessageStats& stats() const;

  /// Transmissions lost to churn (absent endpoint / removed link); see
  /// Network::churn_drops.
  uint64_t churn_drops() const;

  /// Installs a read-only SimObserver (telemetry/tracer) on the session's
  /// network; subsequent ApplyUpdate calls report through it.  Not owned;
  /// null detaches.  Attaching never changes protocol behavior.
  void set_observer(SimObserver* observer);

  /// Installs a callback fired on every cluster-epoch bump with
  /// (root node, new epoch value) — the invalidation feed of the serving
  /// layer (serve/session.h).  Null detaches.  Observational only: the
  /// hook never changes protocol behavior or message flow.
  void set_epoch_hook(std::function<void(int, long long)> hook);

  /// The Section-6 invariant, evaluated over the nodes' live state:
  /// every present node within `bound` of its (present) root's current
  /// feature.  Churn-absent nodes are skipped; a present node whose root is
  /// absent is a violation (self-healing should have re-rooted it).
  Status ValidateRootDistanceInvariant(double bound) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::shared_ptr<const DistanceMetric> metric_keepalive_;
};

}  // namespace elink

#endif  // ELINK_CLUSTER_MAINTENANCE_PROTOCOL_H_
