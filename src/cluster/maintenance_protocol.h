// A fully distributed, message-passing execution of the Section-6 cluster
// maintenance protocol, run inside the discrete-event simulator.
//
// MaintenanceSession (maintenance.h) applies the A1-A3 logic centrally and
// accounts the messages.  Here every step is a real protocol action: an
// escalating node sends a fetch up its cluster tree hop by hop and the root
// feature travels back down; a detaching node probes its radio neighbors
// and joins over the link it probed; a drifting root pushes its new feature
// down the tree, and nodes orphaned by a detach re-attach or promote
// themselves (the distributed form of the connectivity repair).  Tests
// replay identical update sequences through both implementations and check
// that the outcomes and costs agree.
#ifndef ELINK_CLUSTER_MAINTENANCE_PROTOCOL_H_
#define ELINK_CLUSTER_MAINTENANCE_PROTOCOL_H_

#include <memory>
#include <vector>

#include "cluster/clustering.h"
#include "cluster/maintenance.h"
#include "common/status.h"
#include "metric/distance.h"
#include "sim/network.h"

namespace elink {

/// \brief Long-lived maintenance protocol over a simulated network.
///
/// Construction deploys the per-node state (verified feature, stored root
/// feature, cluster-tree links).  Each ApplyUpdate injects one feature
/// update at a node and runs the network to quiescence.
class DistributedMaintenance {
 public:
  /// `fault` injects message-level faults (loss, truncation, ...) into the
  /// protocol's network; the default plan is inert.
  DistributedMaintenance(const Topology& topology,
                         const Clustering& clustering,
                         const std::vector<Feature>& features,
                         std::shared_ptr<const DistanceMetric> metric,
                         const MaintenanceConfig& config,
                         bool synchronous = true, uint64_t seed = 1,
                         const FaultPlan& fault = {});

  ~DistributedMaintenance();

  /// Applies one feature update and simulates until all induced protocol
  /// activity (escalation, detach, probes, pushes, re-attachment) finishes.
  void ApplyUpdate(int node, const Feature& updated);

  /// Current clustering as held by the nodes themselves.
  Clustering CurrentClustering() const;

  /// Current feature per node.
  std::vector<Feature> CurrentFeatures() const;

  /// All protocol transmissions so far.
  const MessageStats& stats() const;

  /// Installs a read-only SimObserver (telemetry/tracer) on the session's
  /// network; subsequent ApplyUpdate calls report through it.  Not owned;
  /// null detaches.  Attaching never changes protocol behavior.
  void set_observer(SimObserver* observer);

  /// The Section-6 invariant, evaluated over the nodes' live state:
  /// every node within `bound` of its root's current feature.
  Status ValidateRootDistanceInvariant(double bound) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::shared_ptr<const DistanceMetric> metric_keepalive_;
};

}  // namespace elink

#endif  // ELINK_CLUSTER_MAINTENANCE_PROTOCOL_H_
