#include "cluster/quadtree.h"

#include <algorithm>

#include "sim/point.h"

namespace elink {

namespace {

struct CellTask {
  std::vector<int> nodes;  // Unassigned nodes inside this cell.
  int level;
  int parent_leader;  // Leader of the enclosing cell (-1 for the root cell).
  double cx, cy;      // Cell center.
  double half_w, half_h;
};

}  // namespace

QuadtreeDecomposition QuadtreeDecomposition::Build(const Topology& topology,
                                                   int max_levels) {
  ELINK_CHECK(topology.num_nodes() > 0);
  ELINK_CHECK(max_levels >= 1);
  const int n = topology.num_nodes();

  QuadtreeDecomposition out;
  out.level_of_.assign(n, -1);
  out.quad_parent_.assign(n, -1);
  out.quad_children_.assign(n, {});

  std::vector<CellTask> stack;
  {
    CellTask root;
    root.nodes.resize(n);
    for (int i = 0; i < n; ++i) root.nodes[i] = i;
    root.level = 0;
    root.parent_leader = -1;
    root.cx = topology.width / 2.0;
    root.cy = topology.height / 2.0;
    // Guard against degenerate zero-extent deployments (single row/column).
    root.half_w = std::max(topology.width / 2.0, 1e-9);
    root.half_h = std::max(topology.height / 2.0, 1e-9);
    stack.push_back(std::move(root));
  }

  while (!stack.empty()) {
    CellTask cell = std::move(stack.back());
    stack.pop_back();
    if (cell.nodes.empty()) continue;

    if (cell.level >= max_levels - 1) {
      // Depth cap: everyone left becomes a leader of its own singleton cell.
      std::sort(cell.nodes.begin(), cell.nodes.end());
      for (int node : cell.nodes) {
        out.level_of_[node] = cell.level;
        out.quad_parent_[node] = cell.parent_leader;
      }
      continue;
    }

    // Elect the leader: unassigned node nearest the cell centroid (ties
    // break to the smaller id for determinism).
    const Point2D center{cell.cx, cell.cy};
    int leader = cell.nodes[0];
    double best = EuclideanDistance(topology.positions[leader], center);
    for (int node : cell.nodes) {
      const double d = EuclideanDistance(topology.positions[node], center);
      if (d < best || (d == best && node < leader)) {
        best = d;
        leader = node;
      }
    }
    out.level_of_[leader] = cell.level;
    out.quad_parent_[leader] =
        cell.parent_leader < 0 ? leader : cell.parent_leader;

    // Partition the remaining nodes into the four child quadrants.
    std::vector<int> quadrant_nodes[4];
    for (int node : cell.nodes) {
      if (node == leader) continue;
      const Point2D& p = topology.positions[node];
      const int qx = p.x >= cell.cx ? 1 : 0;
      const int qy = p.y >= cell.cy ? 1 : 0;
      quadrant_nodes[qy * 2 + qx].push_back(node);
    }
    for (int q = 0; q < 4; ++q) {
      if (quadrant_nodes[q].empty()) continue;
      CellTask child;
      child.nodes = std::move(quadrant_nodes[q]);
      child.level = cell.level + 1;
      child.parent_leader = leader;
      child.half_w = cell.half_w / 2.0;
      child.half_h = cell.half_h / 2.0;
      child.cx = cell.cx + (q % 2 == 1 ? child.half_w : -child.half_w);
      child.cy = cell.cy + (q / 2 == 1 ? child.half_h : -child.half_h);
      stack.push_back(std::move(child));
    }
  }

  // Derive sentinel sets and quad-children lists.
  int deepest = 0;
  for (int i = 0; i < n; ++i) deepest = std::max(deepest, out.level_of_[i]);
  out.sentinel_sets_.assign(deepest + 1, {});
  for (int i = 0; i < n; ++i) {
    ELINK_CHECK(out.level_of_[i] >= 0);
    out.sentinel_sets_[out.level_of_[i]].push_back(i);
    if (out.quad_parent_[i] != i) {
      out.quad_children_[out.quad_parent_[i]].push_back(i);
    }
  }
  for (auto& s : out.sentinel_sets_) std::sort(s.begin(), s.end());
  for (auto& c : out.quad_children_) std::sort(c.begin(), c.end());
  ELINK_CHECK(out.sentinel_sets_[0].size() == 1);
  return out;
}

}  // namespace elink
