// ELink distributed delta-clustering (paper Sections 3-5).
//
// ELink grows delta-clusters from *sentinel* nodes level by level: the
// quadtree's level-l leaders (sentinel set S_l) start expanding only after
// S_{l-1} has finished.  A node joins a cluster when its feature is within
// delta/2 of the cluster root's feature — the triangle inequality then
// guarantees pairwise delta-compactness — and may switch between same-level
// clusters at most c times when the switch improves its distance to the root
// by at least phi.
//
// Three scheduling techniques are provided:
//  * kImplicit  (Section 4): sentinel set S_l starts at precomputed time
//    T_l = sum_{j<l} t_j with t_l = kappa (1 + 1/2 + ... + 1/2^l) and
//    kappa = (1 + gamma) sqrt(N/2).  Correct on synchronous networks.
//  * kExplicit  (Section 5): sentinels are started by explicit `start`
//    messages after an ack1/ack2 completion-detection wave inside cluster
//    trees and a phase1/phase2 wave over the quadtree.  Correct on both
//    synchronous and asynchronous networks.
//  * kUnordered (Section 5, closing remark): every sentinel starts at time
//    zero.  O(sqrt(N)) time but poor quality due to cross-level contention;
//    included as an ablation.
#ifndef ELINK_CLUSTER_ELINK_H_
#define ELINK_CLUSTER_ELINK_H_

#include <memory>
#include <vector>

#include "cluster/clustering.h"
#include "cluster/quadtree.h"
#include "common/status.h"
#include "data/dataset.h"
#include "metric/distance.h"
#include "sim/fault.h"
#include "sim/observer.h"
#include "sim/reliable.h"
#include "sim/stats.h"
#include "sim/topology.h"

namespace elink {

/// Scheduling technique for sentinel-set expansion.
enum class ElinkMode { kImplicit, kExplicit, kUnordered };

/// Tunables of the ELink algorithm.
struct ElinkConfig {
  /// The clustering dissimilarity threshold (Definition 1).
  double delta = 1.0;
  /// Switch-gain threshold as a fraction of delta; the paper's experiments
  /// use phi = 0.1 * delta (Section 8.4).
  double phi_fraction = 0.1;
  /// Maximum number of cluster switches per node (the paper's c; 3-5, the
  /// experiments use 4).
  int max_switches = 4;
  /// Stretch factor gamma of multi-hop paths used for the implicit timing
  /// schedule (Section 4; typically 0.2-0.4).
  double gamma = 0.3;
  /// Maintenance slack Delta (Section 6): the initial clustering is built
  /// against an effective threshold delta - 2 * slack.
  double slack = 0.0;
  /// When set, uses the literal switch condition printed in the paper's
  /// Fig. 16 (d_new < d_old + phi) instead of the prose's gain requirement
  /// (d_new + phi <= d_old).  Ablation only.
  bool literal_figure_switch_rule = false;
  /// Synchronous (unit hop delay) or asynchronous (randomized delays)
  /// network.  The implicit technique's guarantees hold only when true.
  bool synchronous = true;
  uint64_t seed = 1;

  // -- Robustness (all strictly opt-in; defaults reproduce the fault-free
  //    paper protocol byte for byte). ------------------------------------
  /// Fault model of the run: message loss, link outages, node crashes.
  FaultPlan fault;
  /// Explicit mode only: carry the expand/ack/nack/ack2 waves and the
  /// phase/start quadtree waves over ReliableChannel (ack + retransmit with
  /// bounded retries).  Retransmissions are charged under "<cat>.retx" and
  /// transport acks under "<cat>.ack".
  bool reliable_transport = false;
  /// Retransmission tuning when reliable_transport is set.
  ReliableChannel::Config reliable;
  /// Explicit mode only: when > 0, a watchdog declares the run *degraded*
  /// (instead of failing it) once no protocol event has fired for this many
  /// time units without global termination — e.g. because a sentinel or the
  /// quadtree coordinator crashed.  Pick a value larger than the full
  /// retransmit span (rto * backoff^max_retries) so in-flight recovery is
  /// never cut short.
  double completion_timeout = 0.0;

  // -- Observability (read-only; attaching never changes the run). --------
  /// When set, receives every sim event (sends, delivers, drops, timers,
  /// transport retx/acks, phase transitions, watchdog) for the run — bind a
  /// obs::RunTelemetry and/or obs::Tracer here.  Not owned.
  SimObserver* observer = nullptr;
};

/// Outcome of one ELink run.
struct ElinkResult {
  Clustering clustering;
  /// Communication ledger of the run (expand/ack/nack/phase/start).
  MessageStats stats;
  /// Simulated time at which all protocol activity ceased.
  double completion_time = 0.0;
  /// Total cluster switches performed across all nodes.
  int total_switches = 0;
  /// Clusters split by the post-run connectivity repair (Section 3.2 allows
  /// switches that can strand fragments; see RepairDisconnectedClusters).
  int repaired_fragments = 0;
  /// Number of quadtree levels (alpha + 1).
  int num_levels = 0;
  /// False when the run was cut short by the completion watchdog under fault
  /// injection; the clustering is then best-effort (crashed or unreached
  /// nodes come back as singletons).
  bool completed = true;
  /// Nodes that never obtained a cluster assignment and were emitted as
  /// singletons (0 on fault-free runs).
  int unclustered_nodes = 0;
};

/// Runs ELink over `topology` with per-node `features` under `metric`.
/// The returned clustering is always a valid delta-clustering (validated
/// invariants: cover, disjointness, connectivity, pairwise compactness).
Result<ElinkResult> RunElink(const Topology& topology,
                             const std::vector<Feature>& features,
                             const DistanceMetric& metric,
                             const ElinkConfig& config, ElinkMode mode);

/// Convenience overload for a SensorDataset.
Result<ElinkResult> RunElink(const SensorDataset& dataset,
                             const ElinkConfig& config, ElinkMode mode);

/// The implicit schedule's per-level expansion window t_l and start offset
/// T_l (Section 4); exposed for tests and the complexity benchmarks.
struct ImplicitSchedule {
  double kappa = 0.0;
  std::vector<double> window;  // t_l per level.
  std::vector<double> start;   // T_l per level.
};
ImplicitSchedule ComputeImplicitSchedule(int num_nodes, int num_levels,
                                         double gamma);

}  // namespace elink

#endif  // ELINK_CLUSTER_ELINK_H_
