#include "metric/distance.h"

#include <cmath>

#include "common/strings.h"
#include "metric/simd.h"

namespace elink {

std::string FeatureToString(const Feature& f) {
  std::string out = "(";
  for (size_t i = 0; i < f.size(); ++i) {
    if (i) out += ", ";
    out += FormatDouble(f[i]);
  }
  out += ")";
  return out;
}

WeightedEuclidean::WeightedEuclidean(std::vector<double> weights)
    : weights_(std::move(weights)) {
  ELINK_CHECK(!weights_.empty());
  for (double w : weights_) ELINK_CHECK(w > 0.0);
}

WeightedEuclidean WeightedEuclidean::Euclidean(int dim) {
  return WeightedEuclidean(std::vector<double>(dim, 1.0));
}

double WeightedEuclidean::Distance(const Feature& a, const Feature& b) const {
  ELINK_CHECK(a.size() == weights_.size() && b.size() == weights_.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += weights_[i] * d * d;
  }
  return std::sqrt(s);
}

void DistanceMetric::BatchDistance(const Feature& q, const FeaturePool& pool,
                                   double* out) const {
  Feature scratch;
  for (size_t j = 0; j < pool.size(); ++j) {
    pool.CopyTo(j, &scratch);
    out[j] = Distance(q, scratch);
  }
}

void DistanceMetric::BatchDistanceIndexed(const Feature& q,
                                          const FeaturePool& pool,
                                          const int* idx, size_t count,
                                          double* out) const {
  Feature scratch;
  for (size_t j = 0; j < count; ++j) {
    pool.CopyTo(static_cast<size_t>(idx[j]), &scratch);
    out[j] = Distance(q, scratch);
  }
}

void WeightedEuclidean::BatchDistance(const Feature& q, const FeaturePool& pool,
                                      double* out) const {
  if (pool.empty()) return;
  ELINK_CHECK(q.size() == weights_.size() && pool.dim() == weights_.size());
  WeightedL2SoA()(pool.soa(), pool.stride(), pool.size(), pool.dim(), q.data(),
                  weights_.data(), out);
}

void WeightedEuclidean::BatchDistanceIndexed(const Feature& q,
                                             const FeaturePool& pool,
                                             const int* idx, size_t count,
                                             double* out) const {
  if (count == 0) return;
  ELINK_CHECK(q.size() == weights_.size() && pool.dim() == weights_.size());
  WeightedL2Indexed()(pool.soa(), pool.stride(), idx, count, pool.dim(),
                      q.data(), weights_.data(), out);
}

double ManhattanDistance::Distance(const Feature& a, const Feature& b) const {
  ELINK_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

Result<TableMetric> TableMetric::Create(
    std::vector<std::vector<double>> table) {
  const size_t n = table.size();
  for (size_t i = 0; i < n; ++i) {
    if (table[i].size() != n) {
      return Status::InvalidArgument("TableMetric: table must be square");
    }
    if (table[i][i] != 0.0) {
      return Status::InvalidArgument("TableMetric: diagonal must be zero");
    }
    for (size_t j = 0; j < n; ++j) {
      if (table[i][j] < 0.0) {
        return Status::InvalidArgument("TableMetric: negative distance");
      }
      if (table[i][j] != table[j][i]) {
        return Status::InvalidArgument("TableMetric: table must be symmetric");
      }
    }
  }
  return TableMetric(std::move(table));
}

double TableMetric::Distance(const Feature& a, const Feature& b) const {
  ELINK_CHECK(a.size() == 1 && b.size() == 1);
  const int i = static_cast<int>(a[0]);
  const int j = static_cast<int>(b[0]);
  ELINK_CHECK(i >= 0 && i < size() && j >= 0 && j < size());
  return table_[i][j];
}

Status CheckMetricAxioms(const DistanceMetric& metric,
                         const std::vector<Feature>& samples, double tol) {
  const size_t n = samples.size();
  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(metric.Distance(samples[i], samples[i])) > tol) {
      return Status::FailedPrecondition("d(x, x) != 0");
    }
    for (size_t j = i + 1; j < n; ++j) {
      const double dij = metric.Distance(samples[i], samples[j]);
      const double dji = metric.Distance(samples[j], samples[i]);
      if (dij < -tol) return Status::FailedPrecondition("negative distance");
      if (std::fabs(dij - dji) > tol) {
        return Status::FailedPrecondition("distance not symmetric");
      }
      for (size_t k = 0; k < n; ++k) {
        const double dik = metric.Distance(samples[i], samples[k]);
        const double dkj = metric.Distance(samples[k], samples[j]);
        if (dij > dik + dkj + tol) {
          return Status::FailedPrecondition("triangle inequality violated");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace elink
