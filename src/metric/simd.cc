#include "metric/simd.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

namespace elink {

void WeightedL2SoAScalar(const double* soa, size_t stride, size_t count,
                         size_t dim, const double* q, const double* w,
                         double* out) {
  for (size_t j = 0; j < count; ++j) {
    double s = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = q[d] - soa[d * stride + j];
      s += w[d] * diff * diff;
    }
    out[j] = std::sqrt(s);
  }
}

void WeightedL2IndexedScalar(const double* soa, size_t stride, const int* idx,
                             size_t count, size_t dim, const double* q,
                             const double* w, double* out) {
  for (size_t j = 0; j < count; ++j) {
    const size_t c = static_cast<size_t>(idx[j]);
    double s = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = q[d] - soa[d * stride + c];
      s += w[d] * diff * diff;
    }
    out[j] = std::sqrt(s);
  }
}

// SSE2/AVX2 implementations live in their own translation units so only
// those are built with the wider instruction sets; on non-x86 targets the
// weak stubs below keep the dispatch table well-defined.
#if defined(__x86_64__) || defined(_M_X64)
namespace simd_internal {
void WeightedL2SoASse2(const double* soa, size_t stride, size_t count,
                       size_t dim, const double* q, const double* w,
                       double* out);
void WeightedL2IndexedSse2(const double* soa, size_t stride, const int* idx,
                           size_t count, size_t dim, const double* q,
                           const double* w, double* out);
void WeightedL2SoAAvx2(const double* soa, size_t stride, size_t count,
                       size_t dim, const double* q, const double* w,
                       double* out);
void WeightedL2IndexedAvx2(const double* soa, size_t stride, const int* idx,
                           size_t count, size_t dim, const double* q,
                           const double* w, double* out);
}  // namespace simd_internal
#endif

namespace {

SimdLevel HardwareLevel() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kSse2;  // Baseline for every x86-64 CPU.
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel DecideLevel() {
  SimdLevel level = HardwareLevel();
  const char* env = std::getenv("ELINK_SIMD");
  if (env != nullptr && *env != '\0') {
    SimdLevel requested = level;
    if (std::strcmp(env, "scalar") == 0) {
      requested = SimdLevel::kScalar;
    } else if (std::strcmp(env, "sse2") == 0) {
      requested = SimdLevel::kSse2;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = SimdLevel::kAvx2;
    }
    // The override can only narrow: forcing a level the CPU lacks would
    // fault, so such a request is clamped to the hardware level.
    if (static_cast<int>(requested) < static_cast<int>(level)) {
      level = requested;
    }
  }
  return level;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = DecideLevel();
  return level;
}

WeightedL2SoAFn WeightedL2SoAAt(SimdLevel level) {
  if (static_cast<int>(level) > static_cast<int>(HardwareLevel())) {
    return nullptr;
  }
  switch (level) {
    case SimdLevel::kScalar:
      return &WeightedL2SoAScalar;
#if defined(__x86_64__) || defined(_M_X64)
    case SimdLevel::kSse2:
      return &simd_internal::WeightedL2SoASse2;
    case SimdLevel::kAvx2:
      return &simd_internal::WeightedL2SoAAvx2;
#else
    default:
      break;
#endif
  }
  return &WeightedL2SoAScalar;
}

WeightedL2IndexedFn WeightedL2IndexedAt(SimdLevel level) {
  if (static_cast<int>(level) > static_cast<int>(HardwareLevel())) {
    return nullptr;
  }
  switch (level) {
    case SimdLevel::kScalar:
      return &WeightedL2IndexedScalar;
#if defined(__x86_64__) || defined(_M_X64)
    case SimdLevel::kSse2:
      return &simd_internal::WeightedL2IndexedSse2;
    case SimdLevel::kAvx2:
      return &simd_internal::WeightedL2IndexedAvx2;
#else
    default:
      break;
#endif
  }
  return &WeightedL2IndexedScalar;
}

WeightedL2SoAFn WeightedL2SoA() {
  static const WeightedL2SoAFn fn = WeightedL2SoAAt(ActiveSimdLevel());
  return fn;
}

WeightedL2IndexedFn WeightedL2Indexed() {
  static const WeightedL2IndexedFn fn = WeightedL2IndexedAt(ActiveSimdLevel());
  return fn;
}

}  // namespace elink
