// Node features for clustering (paper Section 2.2).
//
// A feature is the coefficient vector of a node's fitted data model; all
// clustering, maintenance, and query decisions compare features through a
// metric distance (metric/distance.h), never raw data.
#ifndef ELINK_METRIC_FEATURE_H_
#define ELINK_METRIC_FEATURE_H_

#include <string>
#include <vector>

namespace elink {

/// A feature vector (model coefficients).  Dimension is workload dependent:
/// 4 for the Tao model (a1, b1..b3), 1 for terrain elevation or AR(1).
using Feature = std::vector<double>;

/// Renders a feature as "(c1, c2, ...)" for diagnostics.
std::string FeatureToString(const Feature& f);

}  // namespace elink

#endif  // ELINK_METRIC_FEATURE_H_
