// AVX2 weighted-L2 batch kernels: four candidates per 256-bit register.
//
// This translation unit (alone) is compiled with -mavx2; it must only be
// reached through the dispatch table after __builtin_cpu_supports("avx2").
// Exactness contract (see simd.h): per-lane scalar accumulation order,
// separate VMULPD/VADDPD (the FMA units are deliberately unused), and
// VSQRTPD is correctly rounded — bytes equal the scalar oracle's.
#include "metric/simd.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cmath>

namespace elink {
namespace simd_internal {

void WeightedL2SoAAvx2(const double* soa, size_t stride, size_t count,
                       size_t dim, const double* q, const double* w,
                       double* out) {
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256d x = _mm256_loadu_pd(soa + d * stride + j);
      const __m256d diff = _mm256_sub_pd(_mm256_set1_pd(q[d]), x);
      const __m256d t = _mm256_mul_pd(_mm256_set1_pd(w[d]), diff);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(t, diff));
    }
    _mm256_storeu_pd(out + j, _mm256_sqrt_pd(acc));
  }
  for (; j < count; ++j) {
    double s = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = q[d] - soa[d * stride + j];
      s += w[d] * diff * diff;
    }
    out[j] = std::sqrt(s);
  }
}

void WeightedL2IndexedAvx2(const double* soa, size_t stride, const int* idx,
                           size_t count, size_t dim, const double* q,
                           const double* w, double* out) {
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const size_t c0 = static_cast<size_t>(idx[j]);
    const size_t c1 = static_cast<size_t>(idx[j + 1]);
    const size_t c2 = static_cast<size_t>(idx[j + 2]);
    const size_t c3 = static_cast<size_t>(idx[j + 3]);
    __m256d acc = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const double* row = soa + d * stride;
      const __m256d x = _mm256_set_pd(row[c3], row[c2], row[c1], row[c0]);
      const __m256d diff = _mm256_sub_pd(_mm256_set1_pd(q[d]), x);
      const __m256d t = _mm256_mul_pd(_mm256_set1_pd(w[d]), diff);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(t, diff));
    }
    _mm256_storeu_pd(out + j, _mm256_sqrt_pd(acc));
  }
  for (; j < count; ++j) {
    const size_t c = static_cast<size_t>(idx[j]);
    double s = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = q[d] - soa[d * stride + c];
      s += w[d] * diff * diff;
    }
    out[j] = std::sqrt(s);
  }
}

}  // namespace simd_internal
}  // namespace elink

#endif  // x86-64
