// Runtime-dispatched SIMD kernels for the weighted-Euclidean hot path.
//
// The simulator's dominant distance workload is "one query feature against a
// batch of candidate features" (range scans, M-tree covering-radius checks,
// brute-force oracles).  These kernels vectorize across *candidates*, one
// SIMD lane per candidate: every lane accumulates its sum in exactly the
// scalar order (dimension 0, 1, 2, ...), with separate multiply and add
// instructions (no FMA), so each lane's result is bit-identical to the
// scalar reference.  The scalar kernel is therefore the exactness oracle:
// the AVX2 and SSE2 paths must produce *equal bytes*, not merely close
// values, and tests/simd_kernel_test.cc enforces that on every dispatchable
// path.  (The metric library is compiled with -ffp-contract=off so an
// -march=native build cannot silently contract the scalar reference into
// FMA and break the contract.)
//
// Dispatch is decided once per process: highest level the CPU supports,
// clamped down by the ELINK_SIMD environment variable ("scalar", "sse2",
// "avx2") — the forced-scalar CI pass keeps the fallback tested everywhere.
#ifndef ELINK_METRIC_SIMD_H_
#define ELINK_METRIC_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace elink {

/// Instruction-set level of the dispatched weighted-L2 kernels.
enum class SimdLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// "scalar" / "sse2" / "avx2".
const char* SimdLevelName(SimdLevel level);

/// The level the process dispatches to: min(CPU capability, ELINK_SIMD
/// override).  Decided on first call, constant afterwards.
SimdLevel ActiveSimdLevel();

/// Batch weighted Euclidean distance, structure-of-arrays candidates:
/// out[j] = sqrt(sum_d w[d] * (q[d] - soa[d * stride + j])^2) for
/// j in [0, count).  `stride` is the pool's padded candidate count; the
/// padding lanes beyond `count` are read (they hold finite values by the
/// FeaturePool contract) but never written to `out`.
using WeightedL2SoAFn = void (*)(const double* soa, size_t stride,
                                 size_t count, size_t dim, const double* q,
                                 const double* w, double* out);

/// Indexed batch over a structure-of-arrays pool:
/// out[j] = sqrt(sum_d w[d] * (q[d] - soa[d * stride + idx[j]])^2).
/// Candidate coordinates are gathered lane by lane, so any subset of a pool
/// (cluster members, M-tree children) batches without repacking.
using WeightedL2IndexedFn = void (*)(const double* soa, size_t stride,
                                     const int* idx, size_t count, size_t dim,
                                     const double* q, const double* w,
                                     double* out);

/// The dispatched kernels (resolved through ActiveSimdLevel on first use).
WeightedL2SoAFn WeightedL2SoA();
WeightedL2IndexedFn WeightedL2Indexed();

/// Kernels of a specific level, for parity tests and the microbench.
/// Requesting a level above the CPU's capability returns nullptr.
WeightedL2SoAFn WeightedL2SoAAt(SimdLevel level);
WeightedL2IndexedFn WeightedL2IndexedAt(SimdLevel level);

/// The scalar exactness oracle (always available; identical accumulation
/// order to WeightedEuclidean::Distance).
void WeightedL2SoAScalar(const double* soa, size_t stride, size_t count,
                         size_t dim, const double* q, const double* w,
                         double* out);
void WeightedL2IndexedScalar(const double* soa, size_t stride, const int* idx,
                             size_t count, size_t dim, const double* q,
                             const double* w, double* out);

}  // namespace elink

#endif  // ELINK_METRIC_SIMD_H_
