// SSE2 weighted-L2 batch kernels: two candidates per 128-bit lane pair.
//
// Exactness contract (see simd.h): each lane accumulates in scalar dimension
// order with separate multiply/add (MULPD + ADDPD, never FMA), and SQRTPD is
// IEEE-754 correctly rounded like std::sqrt — so every lane's bytes equal
// the scalar oracle's.
#include "metric/simd.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include <cmath>

namespace elink {
namespace simd_internal {

void WeightedL2SoASse2(const double* soa, size_t stride, size_t count,
                       size_t dim, const double* q, const double* w,
                       double* out) {
  size_t j = 0;
  for (; j + 2 <= count; j += 2) {
    __m128d acc = _mm_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m128d x = _mm_loadu_pd(soa + d * stride + j);
      const __m128d diff = _mm_sub_pd(_mm_set1_pd(q[d]), x);
      const __m128d t = _mm_mul_pd(_mm_set1_pd(w[d]), diff);
      acc = _mm_add_pd(acc, _mm_mul_pd(t, diff));
    }
    _mm_storeu_pd(out + j, _mm_sqrt_pd(acc));
  }
  for (; j < count; ++j) {
    double s = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = q[d] - soa[d * stride + j];
      s += w[d] * diff * diff;
    }
    out[j] = std::sqrt(s);
  }
}

void WeightedL2IndexedSse2(const double* soa, size_t stride, const int* idx,
                           size_t count, size_t dim, const double* q,
                           const double* w, double* out) {
  size_t j = 0;
  for (; j + 2 <= count; j += 2) {
    const size_t c0 = static_cast<size_t>(idx[j]);
    const size_t c1 = static_cast<size_t>(idx[j + 1]);
    __m128d acc = _mm_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const double* row = soa + d * stride;
      const __m128d x = _mm_set_pd(row[c1], row[c0]);
      const __m128d diff = _mm_sub_pd(_mm_set1_pd(q[d]), x);
      const __m128d t = _mm_mul_pd(_mm_set1_pd(w[d]), diff);
      acc = _mm_add_pd(acc, _mm_mul_pd(t, diff));
    }
    _mm_storeu_pd(out + j, _mm_sqrt_pd(acc));
  }
  for (; j < count; ++j) {
    const size_t c = static_cast<size_t>(idx[j]);
    double s = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = q[d] - soa[d * stride + c];
      s += w[d] * diff * diff;
    }
    out[j] = std::sqrt(s);
  }
}

}  // namespace simd_internal
}  // namespace elink

#endif  // x86-64
