#include "metric/feature_pool.h"

#include "common/status.h"

namespace elink {

namespace {
// Widest SIMD group the kernels use (4 doubles for AVX2).
constexpr size_t kGroup = 4;
}  // namespace

FeaturePool::FeaturePool(const std::vector<Feature>& features) {
  size_ = features.size();
  if (size_ == 0) return;
  dim_ = features[0].size();
  stride_ = (size_ + kGroup - 1) / kGroup * kGroup;
  data_.assign(dim_ * stride_, 0.0);
  for (size_t j = 0; j < size_; ++j) {
    ELINK_CHECK(features[j].size() == dim_);
    for (size_t d = 0; d < dim_; ++d) {
      data_[d * stride_ + j] = features[j][d];
    }
  }
}

void FeaturePool::CopyTo(size_t j, Feature* out) const {
  out->resize(dim_);
  for (size_t d = 0; d < dim_; ++d) (*out)[d] = data_[d * stride_ + j];
}

}  // namespace elink
