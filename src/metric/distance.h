// Metric distances between features (paper Section 2.2).
//
// The paper motivates a *weighted* Euclidean distance on model coefficients
// (higher-order coefficients matter more) and formulates clustering in a
// general metric space; every algorithm in this repository accesses distances
// only through the DistanceMetric interface so alternative metrics drop in.
#ifndef ELINK_METRIC_DISTANCE_H_
#define ELINK_METRIC_DISTANCE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "metric/feature.h"
#include "metric/feature_pool.h"

namespace elink {

/// \brief Abstract metric on features.
///
/// Implementations must satisfy the metric axioms (positivity, symmetry,
/// triangle inequality); CheckMetricAxioms verifies them empirically.
class DistanceMetric {
 public:
  virtual ~DistanceMetric() = default;

  /// Distance between two features.  Must be symmetric and non-negative.
  virtual double Distance(const Feature& a, const Feature& b) const = 0;

  /// Batch form: out[j] = Distance(q, pool[j]) for every candidate in
  /// `pool`.  The default loops over Distance; metrics with a vectorized
  /// kernel (WeightedEuclidean) override it with a bit-identical SIMD path,
  /// so callers may switch between the forms freely without perturbing any
  /// deterministic output.  `out` must hold pool.size() doubles.
  virtual void BatchDistance(const Feature& q, const FeaturePool& pool,
                             double* out) const;

  /// Indexed batch form: out[j] = Distance(q, pool[idx[j]]) for j in
  /// [0, count).  Same bit-identity contract as BatchDistance.
  virtual void BatchDistanceIndexed(const Feature& q, const FeaturePool& pool,
                                    const int* idx, size_t count,
                                    double* out) const;
};

/// \brief Weighted Euclidean distance: sqrt(sum_i w_i (a_i - b_i)^2).
///
/// With all weights 1 this is plain Euclidean distance.  Weights must be
/// positive for the triangle inequality to hold.
class WeightedEuclidean : public DistanceMetric {
 public:
  /// Per-coordinate weights; e.g. (0.5, 0.3, 0.2, 0.1) for the Tao model.
  explicit WeightedEuclidean(std::vector<double> weights);

  /// Unweighted Euclidean in `dim` dimensions.
  static WeightedEuclidean Euclidean(int dim);

  double Distance(const Feature& a, const Feature& b) const override;

  /// SIMD-batched (runtime-dispatched AVX2/SSE2, scalar fallback); results
  /// are bit-identical to the scalar Distance loop on every path.
  void BatchDistance(const Feature& q, const FeaturePool& pool,
                     double* out) const override;
  void BatchDistanceIndexed(const Feature& q, const FeaturePool& pool,
                            const int* idx, size_t count,
                            double* out) const override;

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
};

/// \brief Manhattan (L1) distance, provided as an alternative metric.
class ManhattanDistance : public DistanceMetric {
 public:
  double Distance(const Feature& a, const Feature& b) const override;
};

/// \brief A metric given by an explicit symmetric matrix over n items,
/// addressed by 1-dimensional features holding the item index.  This is how
/// the NP-hardness gadget of Theorem 1 (d = 1 on graph edges, 2 otherwise)
/// and the worked examples from the paper's figures are expressed in tests.
class TableMetric : public DistanceMetric {
 public:
  /// `table` must be square and symmetric with a zero diagonal.
  static Result<TableMetric> Create(std::vector<std::vector<double>> table);

  double Distance(const Feature& a, const Feature& b) const override;

  int size() const { return static_cast<int>(table_.size()); }

 private:
  explicit TableMetric(std::vector<std::vector<double>> table)
      : table_(std::move(table)) {}

  std::vector<std::vector<double>> table_;
};

/// Empirically verifies the metric axioms of `metric` on every pair/triple of
/// `samples` (within tolerance `tol`).  Intended for tests.
Status CheckMetricAxioms(const DistanceMetric& metric,
                         const std::vector<Feature>& samples,
                         double tol = 1e-9);

}  // namespace elink

#endif  // ELINK_METRIC_DISTANCE_H_
