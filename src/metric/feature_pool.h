// Structure-of-arrays storage for a set of feature vectors.
//
// Batch candidate scans (range queries, M-tree covering-radius checks,
// brute-force oracles) read "coordinate d of candidates j, j+1, j+2, j+3" —
// with the usual vector<Feature> (array-of-structures) layout those loads
// are scattered across per-feature heap blocks.  FeaturePool transposes the
// set once into one contiguous dimension-major block: coordinate d of
// candidate j lives at soa()[d * stride() + j], so a SIMD kernel's
// four-candidate group is one contiguous load per dimension.
//
// stride() is size() rounded up to the widest SIMD group (4 doubles); the
// padding candidates hold zeros so full-width loads past size() read finite
// values (their results are never written out).
#ifndef ELINK_METRIC_FEATURE_POOL_H_
#define ELINK_METRIC_FEATURE_POOL_H_

#include <cstddef>
#include <vector>

#include "metric/feature.h"

namespace elink {

/// \brief Immutable dimension-major (SoA) copy of a feature set.
class FeaturePool {
 public:
  FeaturePool() = default;

  /// Transposes `features` (all the same dimension) into SoA layout.
  explicit FeaturePool(const std::vector<Feature>& features);

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }
  /// Padded candidate count: the row length of the SoA block.
  size_t stride() const { return stride_; }
  bool empty() const { return size_ == 0; }

  /// The dimension-major block: coordinate d of candidate j is
  /// soa()[d * stride() + j].
  const double* soa() const { return data_.data(); }

  /// Coordinate d of candidate j.
  double At(size_t j, size_t d) const { return data_[d * stride_ + j]; }

  /// Copies candidate j back out as a Feature (diagnostics/slow paths).
  void CopyTo(size_t j, Feature* out) const;

 private:
  std::vector<double> data_;
  size_t size_ = 0;
  size_t dim_ = 0;
  size_t stride_ = 0;
};

}  // namespace elink

#endif  // ELINK_METRIC_FEATURE_POOL_H_
