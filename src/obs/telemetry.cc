#include "obs/telemetry.h"

#include <algorithm>
#include <cstring>

#include "proto/wire.h"

namespace elink {
namespace obs {

RunTelemetry::RunTelemetry() {
  c_sends_ = metrics_.CounterId("sim.sends");
  c_send_units_ = metrics_.CounterId("sim.send_units");
  c_wire_bytes_ = metrics_.CounterId("sim.wire_bytes");
  c_hops_ = metrics_.CounterId("sim.hops");
  c_delivers_ = metrics_.CounterId("sim.delivers");
  c_drops_ = metrics_.CounterId("sim.drops");
  c_dropped_wire_bytes_ = metrics_.CounterId("sim.dropped_wire_bytes");
  c_timer_fires_ = metrics_.CounterId("sim.timer_fires");
  c_decode_errors_ = metrics_.CounterId("sim.decode_errors");
  c_retx_ = metrics_.CounterId("transport.retx");
  c_acks_ = metrics_.CounterId("transport.acks");
  c_give_ups_ = metrics_.CounterId("transport.give_ups");
  c_watchdog_arms_ = metrics_.CounterId("harness.watchdog_arms");
  c_watchdog_fires_ = metrics_.CounterId("harness.watchdog_fires");
  c_runs_ = metrics_.CounterId("harness.runs");
  c_churn_join_ = metrics_.CounterId("churn.join");
  c_churn_leave_ = metrics_.CounterId("churn.leave");
  c_churn_crash_ = metrics_.CounterId("churn.crash");
  c_churn_repair_ = metrics_.CounterId("churn.repair");
  c_churn_link_add_ = metrics_.CounterId("churn.link_add");
  c_churn_link_remove_ = metrics_.CounterId("churn.link_remove");
  h_message_delay_ = metrics_.HistogramId("message_delay");
  h_watchdog_slack_ = metrics_.HistogramId("watchdog_slack");
}

void RunTelemetry::NoteActivity(double now, int node) {
  last_event_time_ = std::max(last_event_time_, now);
  if (node < 0) return;
  if (last_activity_.size() <= static_cast<size_t>(node)) {
    last_activity_.resize(static_cast<size_t>(node) + 1, -1.0);
  }
  last_activity_[static_cast<size_t>(node)] =
      std::max(last_activity_[static_cast<size_t>(node)], now);
}

void RunTelemetry::NoteSlack(double slack) {
  slack = std::max(slack, 0.0);
  metrics_.Record(h_watchdog_slack_, slack);
  if (!has_slack_ || slack < min_slack_) {
    has_slack_ = true;
    min_slack_ = slack;
  }
}

void RunTelemetry::OnCausal(const CausalInfo& info) {
  // Telemetry aggregates; causality only matters to a chained Tracer.
  if (next_ != nullptr) next_->OnCausal(info);
}

void RunTelemetry::OnSend(double now, int from, int to, const Message& msg,
                          double delay) {
  metrics_.Add(c_sends_);
  metrics_.Add(c_send_units_, static_cast<uint64_t>(msg.CostUnits()));
  metrics_.Add(c_wire_bytes_, wire::FrameSize(msg));
  metrics_.Record(h_message_delay_, delay);
  if (next_ != nullptr) next_->OnSend(now, from, to, msg, delay);
}

void RunTelemetry::OnHop(double at, int from, int to, const Message& msg) {
  metrics_.Add(c_hops_);
  if (next_ != nullptr) next_->OnHop(at, from, to, msg);
}

void RunTelemetry::OnDeliver(double now, int from, int to,
                             const Message& msg) {
  metrics_.Add(c_delivers_);
  NoteActivity(now, to);
  if (next_ != nullptr) next_->OnDeliver(now, from, to, msg);
}

void RunTelemetry::OnDrop(double at, int from, int to, const Message& msg) {
  metrics_.Add(c_drops_);
  metrics_.Add(c_dropped_wire_bytes_, wire::FrameSize(msg));
  if (next_ != nullptr) next_->OnDrop(at, from, to, msg);
}

void RunTelemetry::OnTimerFire(double now, int node, int timer_id) {
  metrics_.Add(c_timer_fires_);
  NoteActivity(now, node);
  if (next_ != nullptr) next_->OnTimerFire(now, node, timer_id);
}

void RunTelemetry::OnDecodeError(double now, int node,
                                 const std::string& category) {
  metrics_.Add(c_decode_errors_);
  if (next_ != nullptr) next_->OnDecodeError(now, node, category);
}

void RunTelemetry::OnRetransmit(double now, int node, int to,
                                const Message& msg, int attempt) {
  metrics_.Add(c_retx_);
  if (next_ != nullptr) next_->OnRetransmit(now, node, to, msg, attempt);
}

void RunTelemetry::OnTransportAck(double now, int node, int to,
                                  long long seq) {
  metrics_.Add(c_acks_);
  if (next_ != nullptr) next_->OnTransportAck(now, node, to, seq);
}

void RunTelemetry::OnTransportGiveUp(double now, int node, int to,
                                     const Message& msg) {
  metrics_.Add(c_give_ups_);
  if (next_ != nullptr) next_->OnTransportGiveUp(now, node, to, msg);
}

void RunTelemetry::OnPhase(double now, int node, const char* phase,
                           long long value) {
  metrics_.AddCounter(std::string("phase.") + phase);
  if (next_ != nullptr) next_->OnPhase(now, node, phase, value);
}

void RunTelemetry::OnChurn(double now, const char* kind, int a, int b) {
  // `kind` is one of ChurnSchedule::KindName's six literals.
  if (std::strcmp(kind, "join") == 0) {
    metrics_.Add(c_churn_join_);
  } else if (std::strcmp(kind, "leave") == 0) {
    metrics_.Add(c_churn_leave_);
  } else if (std::strcmp(kind, "crash") == 0) {
    metrics_.Add(c_churn_crash_);
  } else if (std::strcmp(kind, "repair") == 0) {
    metrics_.Add(c_churn_repair_);
  } else if (std::strcmp(kind, "link_add") == 0) {
    metrics_.Add(c_churn_link_add_);
  } else if (std::strcmp(kind, "link_remove") == 0) {
    metrics_.Add(c_churn_link_remove_);
  } else {
    metrics_.AddCounter(std::string("churn.") + kind);
  }
  if (next_ != nullptr) next_->OnChurn(now, kind, a, b);
}

void RunTelemetry::OnWatchdogArm(double now, double window) {
  metrics_.Add(c_watchdog_arms_);
  if (armed_) {
    // The previous window completed with activity; its slack is how early
    // before expiry the last protocol event landed.
    NoteSlack(window - (now - last_event_time_));
  }
  armed_ = true;
  armed_at_ = now;
  if (next_ != nullptr) next_->OnWatchdogArm(now, window);
}

void RunTelemetry::OnWatchdogFire(double now) {
  metrics_.Add(c_watchdog_fires_);
  if (armed_) NoteSlack(0.0);
  armed_ = false;
  if (next_ != nullptr) next_->OnWatchdogFire(now);
}

void RunTelemetry::OnRunEnd(double end_time, uint64_t events, bool timed_out,
                            bool hit_event_cap) {
  metrics_.Add(c_runs_);
  armed_ = false;
  end_time_ = end_time;
  events_ += events;
  timed_out_ = timed_out_ || timed_out;
  hit_event_cap_ = hit_event_cap_ || hit_event_cap;
  if (next_ != nullptr) {
    next_->OnRunEnd(end_time, events, timed_out, hit_event_cap);
  }
}

RunReport RunTelemetry::MakeReport(const std::string& protocol, uint64_t seed,
                                   const MessageStats& stats) const {
  RunReport report;
  report.protocol = protocol;
  report.seed = seed;
  report.end_time = end_time_;
  report.events = events_;
  report.timed_out = timed_out_;
  report.hit_event_cap = hit_event_cap_;
  report.CaptureStats(stats);
  report.metrics = metrics_;
  for (const double t : last_activity_) {
    if (t >= 0.0) report.metrics.RecordHistogram("node_completion", t);
  }
  if (has_slack_) {
    report.metrics.SetGauge("watchdog.min_slack", min_slack_);
  }
  return report;
}

void RunTelemetry::Reset() {
  metrics_.Reset();
  last_activity_.clear();
  last_event_time_ = 0.0;
  armed_at_ = 0.0;
  armed_ = false;
  has_slack_ = false;
  min_slack_ = 0.0;
  end_time_ = 0.0;
  events_ = 0;
  timed_out_ = false;
  hit_event_cap_ = false;
}

}  // namespace obs
}  // namespace elink
