// Serializable run reports (elink_obs).
//
// RunReport is the uniform "what happened in this run" record emitted by the
// benches and by protocol_validation: identification (protocol name, seed,
// free-form parameters), outcome (end time, event count, watchdog verdict),
// a communication snapshot (MessageStats totals and per-category units), and
// a MetricsRegistry with the run's counters/gauges/histograms (message-delay
// and per-node-completion distributions, watchdog slack, ...).
//
// ToJson renders everything with sorted keys and shortest-round-trip number
// formatting: two identical runs produce byte-identical reports.
#ifndef ELINK_OBS_RUN_REPORT_H_
#define ELINK_OBS_RUN_REPORT_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "sim/stats.h"

namespace elink {
namespace obs {

/// \brief One run's identification, outcome, cost snapshot, and metrics.
struct RunReport {
  std::string protocol;
  uint64_t seed = 0;

  // -- Outcome -----------------------------------------------------------
  double end_time = 0.0;
  uint64_t events = 0;
  bool timed_out = false;
  bool hit_event_cap = false;

  // -- Communication snapshot (CaptureStats) -----------------------------
  uint64_t total_sends = 0;
  uint64_t total_units = 0;
  uint64_t total_bytes = 0;  // Real bytes-on-wire (frame encoding per hop).
  uint64_t dropped_sends = 0;
  uint64_t dropped_units = 0;
  uint64_t dropped_bytes = 0;
  uint64_t decode_errors = 0;
  std::map<std::string, uint64_t> units_by_category;
  /// Bytes-on-wire per category, next to the CostUnits columns.  Categories
  /// recorded outside the Network (engine-parity bookkeeping) report 0.
  std::map<std::string, uint64_t> bytes_by_category;

  MetricsRegistry metrics;

  /// Free-form run parameters; stored pre-rendered as JSON values so the
  /// report keeps numbers as numbers and strings quoted.
  void SetParam(const std::string& key, const std::string& value);
  void SetParam(const std::string& key, const char* value);
  void SetParam(const std::string& key, double value);
  void SetParam(const std::string& key, long long value);
  void SetParam(const std::string& key, int value);
  void SetParam(const std::string& key, uint64_t value);
  void SetParam(const std::string& key, bool value);

  /// Copies the ledger's totals and per-category units into the report.
  void CaptureStats(const MessageStats& stats);

  /// Attaches a pre-rendered JSON value as a top-level report section
  /// (rendered between "stats" and "metrics", sorted by key).  Used for
  /// structured extras like the causal critical path and trace-ring
  /// accounting; `json` must be a complete JSON value.
  void SetSectionJson(const std::string& key, const std::string& json);

  /// Single-object JSON rendering (deterministic; sorted keys; ends in \n).
  std::string ToJson() const;

  /// Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteJsonFile(const std::string& path) const;

 private:
  std::map<std::string, std::string> params_json_;
  std::map<std::string, std::string> sections_json_;
};

}  // namespace obs
}  // namespace elink

#endif  // ELINK_OBS_RUN_REPORT_H_
