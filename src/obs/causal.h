// Causal graph over a recorded trace (elink_obs).
//
// CausalGraph is built purely from a Tracer's event stream — it needs no
// cooperation from the simulator beyond the causal annotations the Network
// already emits (message ids on send/hop/drop/deliver, activation ids on
// deliver/timer, parent ids linking an emission to the handler that caused
// it).  The graph is a forest: every activation has at most one cause.
//
//  * Send/drop nodes parent to the delivery or timer activation that was
//    running when the frame went on the air (genesis when driver code sent
//    it).  The relay hops of a routed message are folded into the send (or
//    the drop that ended the journey): they are the same frame in flight,
//    and their per-hop charges become the send's attributed cost.
//  * Deliver nodes parent to the send carrying the same message id to the
//    same destination (broadcast legs share an id; the destination
//    disambiguates).
//  * Timer nodes parent to the activation that armed them.
//
// The trace stream is emitted in schedule order, so every parent precedes
// its children and the whole build is one forward pass: depth (handler
// generations from genesis) and message depth (send->deliver edges only —
// the paper's round complexity) fold as nodes append.  Events that
// reference a parent lost to ring-buffer overwrite become orphans: they
// root fresh subtrees and are counted, so consumers know the window was
// partial instead of silently trusting truncated chains.
//
// Consumers: critical-path extraction (to run end, or to any activation),
// per-category cost/latency attribution along chains, depth/width
// statistics, and a collapsed-stack export (speedscope / flamegraph.pl
// compatible) of where units/bytes/events sit causally.
#ifndef ELINK_OBS_CAUSAL_H_
#define ELINK_OBS_CAUSAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace elink {
namespace obs {

/// \brief One activation (or transmission) in the causal forest.
struct CausalNode {
  enum class Kind : uint8_t { kSend, kDeliver, kDrop, kTimer };

  Kind kind = Kind::kSend;
  int32_t node = -1;   // Sender / receiver / timer owner.
  int32_t peer = -1;   // Other endpoint; -1 when none.
  double time = 0.0;   // When the event happened (send: left the sender).
  double end_time = 0.0;  // Send: arrival instant (time + delay); else time.
  uint64_t seq = 0;    // Trace sequence of the underlying event.
  uint64_t msg = 0;    // In-flight message id (0 for timers).
  int32_t parent = -1;  // Index into nodes(); -1 = genesis or orphan.
  bool orphan = false;  // Referenced a cause lost to ring overwrite.
  uint32_t depth = 0;      // Causal generations from genesis.
  uint32_t msg_depth = 0;  // Send->deliver edges from genesis (rounds).
  uint32_t hops = 0;       // Folded relay transmissions (routed sends).
  uint32_t label = TraceEvent::kNoLabel;  // Category (Tracer label id).
  uint32_t phase = TraceEvent::kNoLabel;  // Node's phase at event time.
  long long value = 0;     // Timer id for kTimer, cost units otherwise.
  uint64_t units = 0;      // Delivered-charged units attributed here.
  uint64_t bytes = 0;      // Delivered-charged bytes attributed here.
  uint64_t dropped_units = 0;  // Drop nodes: the lost frame's charge.
  uint64_t dropped_bytes = 0;
};

/// \brief Causal forest reconstructed from one Tracer window.
class CausalGraph {
 public:
  /// Builds the graph from the tracer's retained window (one forward pass;
  /// the tracer is not modified).  Safe on traces without causal
  /// annotations — everything becomes a genesis leaf.
  static CausalGraph Build(const Tracer& tracer);

  const std::vector<CausalNode>& nodes() const { return nodes_; }

  /// Label string for CausalNode::label / ::phase ("" for kNoLabel).
  const std::string& label(uint32_t id) const;

  /// True when the source ring never overwrote (chains are complete).
  bool complete() const { return overwritten_ == 0; }
  uint64_t overwritten() const { return overwritten_; }

  /// Deliver/drop/timer events whose cause fell off the ring.
  uint64_t orphans() const { return orphans_; }

  /// Largest end time of an observed kRunEnd record, falling back to the
  /// latest node end time when the trace has none.
  double run_end_time() const { return run_end_time_; }

  /// Node indices of the chain from its genesis (front) to `index` (back).
  std::vector<uint32_t> CriticalPathTo(uint32_t index) const;

  /// The run's critical path: the chain ending at the node with the
  /// largest end time (ties: largest seq).  Empty for an empty graph.
  std::vector<uint32_t> CriticalPath() const;

  /// Index of the causally-last activation on each sim node (delivers and
  /// timer fires; -1 for nodes with none) — "when and how deep was this
  /// node's completion".
  std::vector<int32_t> LastActivation() const;

  /// Depth/width statistics of the whole forest.
  struct DepthStats {
    uint32_t max_depth = 0;
    uint32_t max_msg_depth = 0;
    uint64_t genesis = 0;  // Nodes with no cause by design (driver code).
    uint64_t orphans = 0;  // Nodes whose cause was overwritten.
    uint64_t sends = 0;
    uint64_t delivers = 0;
    uint64_t drops = 0;
    uint64_t timers = 0;
    /// width_by_depth[d] = number of nodes at causal depth d.
    std::vector<uint64_t> width_by_depth;
  };
  DepthStats Stats() const;

  /// Delivered-charged units/bytes per category, attributed causally (plain
  /// sends charge their own units; routed journeys charge one unit-batch
  /// per relay hop, folded into the closing send or drop; local
  /// self-deliveries charge nothing).  With a complete window these match
  /// the run's MessageStats per-category ledgers exactly.
  std::map<std::string, uint64_t> UnitsByCategory() const;
  std::map<std::string, uint64_t> BytesByCategory() const;
  /// Fault/churn-dropped units per category (the lost frame's own charge).
  std::map<std::string, uint64_t> DroppedUnitsByCategory() const;

  /// Collapsed-stack export (one "frame;frame;frame weight" line per
  /// distinct causal stack, lexicographically sorted): load into speedscope
  /// or flamegraph.pl to see where the run's cost sits causally.  Frames
  /// are "kind:category" (timers: "timer:<id>"); consecutive identical
  /// frames collapse.  `weight` picks the per-node self weight.
  enum class Weight { kEvents, kUnits, kBytes };
  std::string ExportCollapsed(Weight weight = Weight::kUnits) const;

  /// Deterministic JSON rendering of CriticalPath(): the step list plus
  /// per-label elapsed/units/bytes attribution along the chain and the
  /// forest's depth statistics.  Embeddable via RunReport::SetSectionJson.
  std::string CriticalPathJson() const;

 private:
  std::vector<CausalNode> nodes_;
  std::vector<std::string> labels_;  // Copied from the tracer (dense ids).
  uint64_t overwritten_ = 0;
  uint64_t orphans_ = 0;
  double run_end_time_ = 0.0;
};

}  // namespace obs
}  // namespace elink

#endif  // ELINK_OBS_CAUSAL_H_
