#include "obs/causal.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

namespace elink {
namespace obs {

namespace {

const std::string kEmptyLabel;

/// Frame name of a node in the collapsed-stack export ("kind:category").
std::string FrameName(const CausalGraph& g, const CausalNode& n) {
  switch (n.kind) {
    case CausalNode::Kind::kSend:
      return "send:" + g.label(n.label);
    case CausalNode::Kind::kDeliver:
      return "deliver:" + g.label(n.label);
    case CausalNode::Kind::kDrop:
      return "drop:" + g.label(n.label);
    case CausalNode::Kind::kTimer:
      return "timer:" + std::to_string(n.value);
  }
  return "?";
}

const char* KindName(CausalNode::Kind kind) {
  switch (kind) {
    case CausalNode::Kind::kSend:
      return "send";
    case CausalNode::Kind::kDeliver:
      return "deliver";
    case CausalNode::Kind::kDrop:
      return "drop";
    case CausalNode::Kind::kTimer:
      return "timer";
  }
  return "?";
}

}  // namespace

const std::string& CausalGraph::label(uint32_t id) const {
  if (id == TraceEvent::kNoLabel || id >= labels_.size()) return kEmptyLabel;
  return labels_[id];
}

CausalGraph CausalGraph::Build(const Tracer& tracer) {
  CausalGraph g;
  g.overwritten_ = tracer.overwritten();
  g.labels_ = tracer.labels();

  // Activation id -> node index, for handler-inherited (send/drop/timer)
  // edges.  Activation ids are dense and unique per run.
  std::unordered_map<uint64_t, uint32_t> act_index;
  // (message id, destination) -> send node index, for send->deliver edges.
  // One-shot: erased when the deliver claims it, so broadcast fan-out legs
  // (same id, distinct destinations) each match their own send.
  std::map<std::pair<uint64_t, int>, uint32_t> send_index;

  // Relay hops of a routed message are emitted back-to-back (the route walk
  // is synchronous) and always before the send/drop that closes the
  // journey, so one running accumulator folds them.  The retained ring
  // window is a suffix of the stream: a retained hop implies its closing
  // event is retained too.
  uint64_t hop_msg = 0;
  uint32_t hop_count = 0;
  uint64_t hop_units = 0;
  uint64_t hop_bytes = 0;

  // Last announced protocol phase per sim node, stamped onto graph nodes.
  std::vector<uint32_t> phase_of;
  auto phase_for = [&phase_of](int node) -> uint32_t {
    if (node < 0 || static_cast<size_t>(node) >= phase_of.size()) {
      return TraceEvent::kNoLabel;
    }
    return phase_of[static_cast<size_t>(node)];
  };

  bool saw_run_end = false;
  double last_end = 0.0;

  auto resolve_parent = [&g, &act_index](uint64_t cause, CausalNode* n) {
    if (cause == 0) return;  // Genesis (driver code).
    auto it = act_index.find(cause);
    if (it == act_index.end()) {
      n->orphan = true;  // Cause fell off the ring (or predates tracing).
      ++g.orphans_;
      return;
    }
    n->parent = static_cast<int32_t>(it->second);
  };

  auto inherit_depth = [&g](CausalNode* n) {
    if (n->parent < 0) return;
    const CausalNode& p = g.nodes_[static_cast<size_t>(n->parent)];
    n->depth = p.depth + 1;
    n->msg_depth =
        p.msg_depth + (n->kind == CausalNode::Kind::kDeliver ? 1 : 0);
  };

  tracer.ForEach([&](const TraceEvent& e) {
    switch (e.kind) {
      case TraceKind::kPhase: {
        if (e.node >= 0) {
          if (phase_of.size() <= static_cast<size_t>(e.node)) {
            phase_of.resize(static_cast<size_t>(e.node) + 1,
                            TraceEvent::kNoLabel);
          }
          phase_of[static_cast<size_t>(e.node)] = e.label;
        }
        return;
      }
      case TraceKind::kRunEnd:
        saw_run_end = true;
        g.run_end_time_ = std::max(g.run_end_time_, e.time);
        return;
      case TraceKind::kHop:
        if (e.causal_msg != hop_msg) {
          hop_msg = e.causal_msg;
          hop_count = 0;
          hop_units = 0;
          hop_bytes = 0;
        }
        ++hop_count;
        hop_units += static_cast<uint64_t>(e.value);
        hop_bytes += e.bytes;
        return;
      case TraceKind::kSend: {
        CausalNode n;
        n.kind = CausalNode::Kind::kSend;
        n.node = e.node;
        n.peer = e.peer;
        n.time = e.time;
        n.end_time = e.time + e.aux;
        n.seq = e.seq;
        n.msg = e.causal_msg;
        n.label = e.label;
        n.phase = phase_for(e.node);
        n.value = e.value;
        if (e.causal_msg != 0 && e.causal_msg == hop_msg) {
          // Routed: the relay hops carried the charges; the closing send is
          // the uncharged delivery bookend.
          n.hops = hop_count;
          n.units = hop_units;
          n.bytes = hop_bytes;
          hop_msg = 0;
        } else if (e.node == e.peer) {
          // Local self-delivery (SendRouted from == to): never charged.
        } else {
          n.units = static_cast<uint64_t>(e.value);
          n.bytes = e.bytes;
        }
        resolve_parent(e.causal_parent, &n);
        inherit_depth(&n);
        const auto idx = static_cast<uint32_t>(g.nodes_.size());
        if (e.causal_msg != 0) {
          send_index[{e.causal_msg, e.peer}] = idx;
        }
        last_end = std::max(last_end, n.end_time);
        g.nodes_.push_back(n);
        return;
      }
      case TraceKind::kDrop: {
        CausalNode n;
        n.kind = CausalNode::Kind::kDrop;
        n.node = e.node;
        n.peer = e.peer;
        n.time = e.time;
        n.end_time = e.time;
        n.seq = e.seq;
        n.msg = e.causal_msg;
        n.label = e.label;
        n.phase = phase_for(e.node);
        n.value = e.value;
        n.dropped_units = static_cast<uint64_t>(e.value);
        n.dropped_bytes = e.bytes;
        if (e.causal_msg != 0 && e.causal_msg == hop_msg) {
          // Relays charged before a mid-route loss stay delivered charges.
          n.hops = hop_count;
          n.units = hop_units;
          n.bytes = hop_bytes;
          hop_msg = 0;
        }
        resolve_parent(e.causal_parent, &n);
        inherit_depth(&n);
        last_end = std::max(last_end, n.end_time);
        g.nodes_.push_back(n);
        return;
      }
      case TraceKind::kDeliver: {
        CausalNode n;
        n.kind = CausalNode::Kind::kDeliver;
        n.node = e.node;  // Receiver.
        n.peer = e.peer;
        n.time = e.time;
        n.end_time = e.time;
        n.seq = e.seq;
        n.msg = e.causal_msg;
        n.label = e.label;
        n.phase = phase_for(e.node);
        n.value = e.value;
        if (e.causal_msg != 0) {
          auto it = send_index.find({e.causal_msg, e.node});
          if (it != send_index.end()) {
            n.parent = static_cast<int32_t>(it->second);
            send_index.erase(it);
          } else {
            n.orphan = true;  // Matching send fell off the ring.
            ++g.orphans_;
          }
        }
        inherit_depth(&n);
        if (e.causal_self != 0) {
          act_index[e.causal_self] = static_cast<uint32_t>(g.nodes_.size());
        }
        last_end = std::max(last_end, n.end_time);
        g.nodes_.push_back(n);
        return;
      }
      case TraceKind::kTimerFire: {
        CausalNode n;
        n.kind = CausalNode::Kind::kTimer;
        n.node = e.node;
        n.time = e.time;
        n.end_time = e.time;
        n.seq = e.seq;
        n.label = TraceEvent::kNoLabel;
        n.phase = phase_for(e.node);
        n.value = e.value;  // Timer id.
        resolve_parent(e.causal_parent, &n);
        inherit_depth(&n);
        if (e.causal_self != 0) {
          act_index[e.causal_self] = static_cast<uint32_t>(g.nodes_.size());
        }
        last_end = std::max(last_end, n.end_time);
        g.nodes_.push_back(n);
        return;
      }
      default:
        // Decode errors, transport bookkeeping, churn, watchdog: observed
        // but not part of the causal forest.
        return;
    }
  });

  if (!saw_run_end) g.run_end_time_ = last_end;
  return g;
}

std::vector<uint32_t> CausalGraph::CriticalPathTo(uint32_t index) const {
  std::vector<uint32_t> path;
  for (int32_t i = static_cast<int32_t>(index); i >= 0;
       i = nodes_[static_cast<size_t>(i)].parent) {
    path.push_back(static_cast<uint32_t>(i));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<uint32_t> CausalGraph::CriticalPath() const {
  if (nodes_.empty()) return {};
  uint32_t best = 0;
  for (uint32_t i = 1; i < nodes_.size(); ++i) {
    const CausalNode& n = nodes_[i];
    const CausalNode& b = nodes_[best];
    if (n.end_time > b.end_time ||
        (n.end_time == b.end_time && n.seq > b.seq)) {
      best = i;
    }
  }
  return CriticalPathTo(best);
}

std::vector<int32_t> CausalGraph::LastActivation() const {
  std::vector<int32_t> last;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    const CausalNode& n = nodes_[i];
    if (n.kind != CausalNode::Kind::kDeliver &&
        n.kind != CausalNode::Kind::kTimer) {
      continue;
    }
    if (n.node < 0) continue;
    if (last.size() <= static_cast<size_t>(n.node)) {
      last.resize(static_cast<size_t>(n.node) + 1, -1);
    }
    int32_t& slot = last[static_cast<size_t>(n.node)];
    if (slot < 0) {
      slot = static_cast<int32_t>(i);
      continue;
    }
    const CausalNode& cur = nodes_[static_cast<size_t>(slot)];
    if (n.end_time > cur.end_time ||
        (n.end_time == cur.end_time && n.seq > cur.seq)) {
      slot = static_cast<int32_t>(i);
    }
  }
  return last;
}

CausalGraph::DepthStats CausalGraph::Stats() const {
  DepthStats s;
  for (const CausalNode& n : nodes_) {
    s.max_depth = std::max(s.max_depth, n.depth);
    s.max_msg_depth = std::max(s.max_msg_depth, n.msg_depth);
    if (n.orphan) {
      ++s.orphans;
    } else if (n.parent < 0) {
      ++s.genesis;
    }
    switch (n.kind) {
      case CausalNode::Kind::kSend:
        ++s.sends;
        break;
      case CausalNode::Kind::kDeliver:
        ++s.delivers;
        break;
      case CausalNode::Kind::kDrop:
        ++s.drops;
        break;
      case CausalNode::Kind::kTimer:
        ++s.timers;
        break;
    }
    if (s.width_by_depth.size() <= n.depth) {
      s.width_by_depth.resize(n.depth + 1, 0);
    }
    ++s.width_by_depth[n.depth];
  }
  return s;
}

std::map<std::string, uint64_t> CausalGraph::UnitsByCategory() const {
  std::map<std::string, uint64_t> out;
  for (const CausalNode& n : nodes_) {
    if (n.units > 0) out[label(n.label)] += n.units;
  }
  return out;
}

std::map<std::string, uint64_t> CausalGraph::BytesByCategory() const {
  std::map<std::string, uint64_t> out;
  for (const CausalNode& n : nodes_) {
    if (n.bytes > 0) out[label(n.label)] += n.bytes;
  }
  return out;
}

std::map<std::string, uint64_t> CausalGraph::DroppedUnitsByCategory() const {
  std::map<std::string, uint64_t> out;
  for (const CausalNode& n : nodes_) {
    if (n.kind == CausalNode::Kind::kDrop && n.dropped_units > 0) {
      out[label(n.label)] += n.dropped_units;
    }
  }
  return out;
}

std::string CausalGraph::ExportCollapsed(Weight weight) const {
  // Stack strings build forward (parents precede children), collapsing a
  // frame identical to the parent chain's last frame; weights aggregate
  // per distinct stack and lines sort lexicographically — deterministic
  // regardless of construction order.
  std::vector<std::string> stacks(nodes_.size());
  std::vector<std::string> last_frame(nodes_.size());
  std::map<std::string, uint64_t> agg;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    const CausalNode& n = nodes_[i];
    const std::string frame = FrameName(*this, n);
    if (n.parent < 0) {
      stacks[i] = frame;
      last_frame[i] = frame;
    } else {
      const auto p = static_cast<size_t>(n.parent);
      if (frame == last_frame[p]) {
        stacks[i] = stacks[p];
        last_frame[i] = last_frame[p];
      } else {
        stacks[i] = stacks[p] + ";" + frame;
        last_frame[i] = frame;
      }
    }
    uint64_t w = 0;
    switch (weight) {
      case Weight::kEvents:
        w = 1;
        break;
      case Weight::kUnits:
        w = n.units + n.dropped_units;
        break;
      case Weight::kBytes:
        w = n.bytes + n.dropped_bytes;
        break;
    }
    if (w > 0) agg[stacks[i]] += w;
  }
  std::string out;
  if (overwritten_ > 0) {
    // flamegraph.pl/speedscope skip unparsable lines; the banner records
    // the truncation without corrupting the profile.
    out += "# warning: trace ring overflowed (";
    out += std::to_string(overwritten_);
    out += " events overwritten); stacks cover a suffix of the run\n";
  }
  for (const auto& [stack, w] : agg) {
    out += stack;
    out += " ";
    out += std::to_string(w);
    out += "\n";
  }
  return out;
}

std::string CausalGraph::CriticalPathJson() const {
  const std::vector<uint32_t> path = CriticalPath();
  const DepthStats s = Stats();

  std::string out = "{\"run_end_time\":";
  out += JsonDouble(run_end_time_);
  out += ",\"complete\":";
  out += complete() ? "true" : "false";
  out += ",\"overwritten\":";
  out += std::to_string(overwritten_);
  out += ",\"orphans\":";
  out += std::to_string(orphans_);
  out += ",\"max_depth\":";
  out += std::to_string(s.max_depth);
  out += ",\"max_msg_depth\":";
  out += std::to_string(s.max_msg_depth);
  uint64_t max_width = 0;
  for (const uint64_t w : s.width_by_depth) max_width = std::max(max_width, w);
  out += ",\"max_width\":";
  out += std::to_string(max_width);

  // Per-sim-node completion depth summary (how many causal generations it
  // took each node to go quiet).
  const std::vector<int32_t> last = LastActivation();
  uint64_t completed = 0;
  uint64_t depth_sum = 0;
  uint32_t depth_max = 0;
  for (const int32_t idx : last) {
    if (idx < 0) continue;
    ++completed;
    const uint32_t d = nodes_[static_cast<size_t>(idx)].depth;
    depth_sum += d;
    depth_max = std::max(depth_max, d);
  }
  out += ",\"completion\":{\"nodes\":";
  out += std::to_string(completed);
  out += ",\"max_depth\":";
  out += std::to_string(depth_max);
  out += ",\"mean_depth\":";
  out += JsonDouble(completed == 0
                        ? 0.0
                        : static_cast<double>(depth_sum) /
                              static_cast<double>(completed));
  out += "}";

  // The chain itself, genesis -> terminal, with per-step elapsed sim time
  // (telescopes to the terminal's end time for complete chains).
  struct Agg {
    uint64_t count = 0;
    double elapsed = 0.0;
    uint64_t units = 0;
    uint64_t bytes = 0;
  };
  std::map<std::string, Agg> by_frame;
  out += ",\"steps\":[";
  double prev_end = 0.0;
  bool first = true;
  for (const uint32_t idx : path) {
    const CausalNode& n = nodes_[idx];
    const double elapsed = n.end_time - prev_end;
    prev_end = n.end_time;
    Agg& a = by_frame[FrameName(*this, n)];
    ++a.count;
    a.elapsed += elapsed;
    a.units += n.units + n.dropped_units;
    a.bytes += n.bytes + n.dropped_bytes;
    if (!first) out += ",";
    first = false;
    out += "{\"kind\":\"";
    out += KindName(n.kind);
    out += "\",\"node\":";
    out += std::to_string(n.node);
    if (n.peer >= 0) {
      out += ",\"peer\":";
      out += std::to_string(n.peer);
    }
    out += ",\"t\":";
    out += JsonDouble(n.time);
    out += ",\"end\":";
    out += JsonDouble(n.end_time);
    out += ",\"elapsed\":";
    out += JsonDouble(elapsed);
    out += ",\"depth\":";
    out += std::to_string(n.depth);
    if (n.kind == CausalNode::Kind::kTimer) {
      out += ",\"timer_id\":";
      out += std::to_string(n.value);
    } else if (n.label != TraceEvent::kNoLabel) {
      out += ",\"label\":\"";
      out += JsonEscape(label(n.label));
      out += "\"";
    }
    if (n.phase != TraceEvent::kNoLabel) {
      out += ",\"phase\":\"";
      out += JsonEscape(label(n.phase));
      out += "\"";
    }
    if (n.hops > 0) {
      out += ",\"hops\":";
      out += std::to_string(n.hops);
    }
    if (n.units > 0) {
      out += ",\"units\":";
      out += std::to_string(n.units);
    }
    if (n.bytes > 0) {
      out += ",\"bytes\":";
      out += std::to_string(n.bytes);
    }
    out += "}";
  }
  out += "],\"by_label\":{";
  first = true;
  for (const auto& [frame, a] : by_frame) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(frame);
    out += "\":{\"count\":";
    out += std::to_string(a.count);
    out += ",\"elapsed\":";
    out += JsonDouble(a.elapsed);
    out += ",\"units\":";
    out += std::to_string(a.units);
    out += ",\"bytes\":";
    out += std::to_string(a.bytes);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace elink
