#include "obs/trace.h"

#include <utility>

#include "common/status.h"
#include "obs/metrics.h"
#include "proto/wire.h"

namespace elink {
namespace obs {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend:
      return "send";
    case TraceKind::kHop:
      return "hop";
    case TraceKind::kDeliver:
      return "deliver";
    case TraceKind::kDrop:
      return "drop";
    case TraceKind::kTimerFire:
      return "timer";
    case TraceKind::kDecodeError:
      return "decode_error";
    case TraceKind::kRetransmit:
      return "retx";
    case TraceKind::kTransportAck:
      return "ack";
    case TraceKind::kTransportGiveUp:
      return "give_up";
    case TraceKind::kPhase:
      return "phase";
    case TraceKind::kChurn:
      return "churn";
    case TraceKind::kWatchdogArm:
      return "watchdog_arm";
    case TraceKind::kWatchdogFire:
      return "watchdog_fire";
    case TraceKind::kRunEnd:
      return "run_end";
  }
  return "unknown";
}

Tracer::Tracer(size_t capacity) {
  ELINK_CHECK(capacity > 0);
  buffer_.resize(capacity);
}

uint32_t Tracer::Intern(const std::string& label) {
  auto [it, inserted] =
      label_index_.emplace(label, static_cast<uint32_t>(labels_.size()));
  if (inserted) labels_.push_back(label);
  return it->second;
}

void Tracer::Push(TraceEvent event) {
  if (has_pending_causal_) {
    // The OnCausal emitted just before this event annotates it.
    event.causal_self = pending_causal_.self;
    event.causal_msg = pending_causal_.msg;
    event.causal_parent = pending_causal_.parent;
    has_pending_causal_ = false;
  }
  event.seq = next_seq_++;
  if (count_ < buffer_.size()) {
    buffer_[(start_ + count_) % buffer_.size()] = event;
    ++count_;
  } else {
    buffer_[start_] = event;  // Overwrite the oldest event.
    start_ = (start_ + 1) % buffer_.size();
  }
}

void Tracer::OnCausal(const CausalInfo& info) {
  pending_causal_ = info;
  has_pending_causal_ = true;
}

void Tracer::OnSend(double now, int from, int to, const Message& msg,
                    double delay) {
  TraceEvent e;
  e.kind = TraceKind::kSend;
  e.time = now;
  e.aux = delay;
  e.node = from;
  e.peer = to;
  e.label = Intern(msg.category);
  e.value = msg.CostUnits();
  e.bytes = static_cast<uint32_t>(wire::FrameSize(msg));
  Push(e);
}

void Tracer::OnHop(double at, int from, int to, const Message& msg) {
  TraceEvent e;
  e.kind = TraceKind::kHop;
  e.time = at;
  e.node = from;
  e.peer = to;
  e.label = Intern(msg.category);
  e.value = msg.CostUnits();
  e.bytes = static_cast<uint32_t>(wire::FrameSize(msg));
  Push(e);
}

void Tracer::OnDeliver(double now, int from, int to, const Message& msg) {
  TraceEvent e;
  e.kind = TraceKind::kDeliver;
  e.time = now;
  e.node = to;
  e.peer = from;
  e.label = Intern(msg.category);
  e.value = msg.CostUnits();
  e.bytes = static_cast<uint32_t>(wire::FrameSize(msg));
  Push(e);
}

void Tracer::OnDrop(double at, int from, int to, const Message& msg) {
  TraceEvent e;
  e.kind = TraceKind::kDrop;
  e.time = at;
  e.node = from;
  e.peer = to;
  e.label = Intern(msg.category);
  e.value = msg.CostUnits();
  e.bytes = static_cast<uint32_t>(wire::FrameSize(msg));
  Push(e);
}

void Tracer::OnTimerFire(double now, int node, int timer_id) {
  TraceEvent e;
  e.kind = TraceKind::kTimerFire;
  e.time = now;
  e.node = node;
  e.value = timer_id;
  Push(e);
}

void Tracer::OnDecodeError(double now, int node, const std::string& category) {
  TraceEvent e;
  e.kind = TraceKind::kDecodeError;
  e.time = now;
  e.node = node;
  e.label = Intern(category);
  Push(e);
}

void Tracer::OnRetransmit(double now, int node, int to, const Message& msg,
                          int attempt) {
  TraceEvent e;
  e.kind = TraceKind::kRetransmit;
  e.time = now;
  e.node = node;
  e.peer = to;
  e.label = Intern(msg.category);
  e.value = attempt;
  Push(e);
}

void Tracer::OnTransportAck(double now, int node, int to, long long seq) {
  TraceEvent e;
  e.kind = TraceKind::kTransportAck;
  e.time = now;
  e.node = node;
  e.peer = to;
  e.value = seq;
  Push(e);
}

void Tracer::OnTransportGiveUp(double now, int node, int to,
                               const Message& msg) {
  TraceEvent e;
  e.kind = TraceKind::kTransportGiveUp;
  e.time = now;
  e.node = node;
  e.peer = to;
  e.label = Intern(msg.category);
  Push(e);
}

void Tracer::OnPhase(double now, int node, const char* phase,
                     long long value) {
  TraceEvent e;
  e.kind = TraceKind::kPhase;
  e.time = now;
  e.node = node;
  e.label = Intern(phase);
  e.value = value;
  Push(e);
}

void Tracer::OnChurn(double now, const char* kind, int a, int b) {
  TraceEvent e;
  e.kind = TraceKind::kChurn;
  e.time = now;
  e.node = a;
  e.peer = b;
  e.label = Intern(kind);
  Push(e);
}

void Tracer::OnWatchdogArm(double now, double window) {
  TraceEvent e;
  e.kind = TraceKind::kWatchdogArm;
  e.time = now;
  e.aux = window;
  Push(e);
}

void Tracer::OnWatchdogFire(double now) {
  TraceEvent e;
  e.kind = TraceKind::kWatchdogFire;
  e.time = now;
  Push(e);
}

void Tracer::OnRunEnd(double end_time, uint64_t events, bool timed_out,
                      bool hit_event_cap) {
  TraceEvent e;
  e.kind = TraceKind::kRunEnd;
  e.time = end_time;
  e.label = Intern(timed_out ? "timed_out" : (hit_event_cap ? "event_cap"
                                                            : "ok"));
  e.value = static_cast<long long>(events);
  Push(e);
}

void Tracer::Clear() {
  start_ = 0;
  count_ = 0;
  next_seq_ = 0;
}

void Tracer::AppendJsonl(const TraceEvent& e, std::string* out) const {
  *out += "{\"t\":";
  *out += JsonDouble(e.time);
  *out += ",\"seq\":";
  *out += std::to_string(e.seq);
  *out += ",\"kind\":\"";
  *out += TraceKindName(e.kind);
  *out += "\"";
  if (e.node >= 0) {
    *out += ",\"node\":";
    *out += std::to_string(e.node);
  }
  if (e.peer >= 0) {
    *out += ",\"peer\":";
    *out += std::to_string(e.peer);
  }
  if (e.label != TraceEvent::kNoLabel) {
    *out += ",\"label\":\"";
    *out += JsonEscape(labels_[e.label]);
    *out += "\"";
  }
  if (e.value != 0) {
    *out += ",\"value\":";
    *out += std::to_string(e.value);
  }
  if (e.aux != 0.0) {
    *out += ",\"aux\":";
    *out += JsonDouble(e.aux);
  }
  // Causal annotation and wire bytes render only when present, so untraced
  // runs (and pre-causal fixtures) export byte-identical lines.
  if (e.causal_self != 0) {
    *out += ",\"cid\":";
    *out += std::to_string(e.causal_self);
  }
  if (e.causal_msg != 0) {
    *out += ",\"mid\":";
    *out += std::to_string(e.causal_msg);
  }
  if (e.causal_parent != 0) {
    *out += ",\"parent\":";
    *out += std::to_string(e.causal_parent);
  }
  if (e.bytes != 0) {
    *out += ",\"bytes\":";
    *out += std::to_string(e.bytes);
  }
  *out += "}\n";
}

std::string Tracer::ExportJsonl() const {
  std::string out;
  out.reserve(count_ * 64);
  if (overwritten() > 0) {
    // Overflow banner: the retained window is a suffix of the run, so
    // causal chains that started earlier are truncated.
    out += "{\"warning\":\"trace ring overflowed\",\"overwritten\":";
    out += std::to_string(overwritten());
    out += ",\"capacity\":";
    out += std::to_string(capacity());
    out += "}\n";
  }
  ForEach([&](const TraceEvent& e) { AppendJsonl(e, &out); });
  return out;
}

void Tracer::AppendChrome(const TraceEvent& e, std::string* out) const {
  // One sim time unit renders as 1 ms; trace_event "ts"/"dur" are in us.
  const double ts = e.time * 1000.0;
  const char* name = e.label != TraceEvent::kNoLabel
                         ? labels_[e.label].c_str()
                         : TraceKindName(e.kind);
  *out += "{\"name\":\"";
  *out += JsonEscape(*name != '\0' ? name : TraceKindName(e.kind));
  *out += "\",\"cat\":\"";
  *out += TraceKindName(e.kind);
  *out += "\",\"pid\":0,\"tid\":";
  *out += std::to_string(e.node >= 0 ? e.node : -1);
  if (e.kind == TraceKind::kSend && e.aux > 0.0) {
    // Sends render as complete events spanning the send-to-deliver delay on
    // the sender's track.
    *out += ",\"ph\":\"X\",\"ts\":";
    *out += JsonDouble(ts);
    *out += ",\"dur\":";
    *out += JsonDouble(e.aux * 1000.0);
  } else {
    *out += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    *out += JsonDouble(ts);
  }
  *out += ",\"args\":{\"seq\":";
  *out += std::to_string(e.seq);
  if (e.peer >= 0) {
    *out += ",\"peer\":";
    *out += std::to_string(e.peer);
  }
  if (e.value != 0) {
    *out += ",\"value\":";
    *out += std::to_string(e.value);
  }
  *out += "}}";
}

void Tracer::AppendChromeFlow(const TraceEvent& e, std::string* out) const {
  // Flow arrows pair a start at the send with an end at the deliver,
  // matched by identical name + id.  The id is the message id plus the
  // receiving endpoint, so every leg of a broadcast fan-out gets its own
  // arrow off the shared payload.
  const bool start = e.kind == TraceKind::kSend;
  const int dest = start ? e.peer : e.node;
  const char* name = e.label != TraceEvent::kNoLabel
                         ? labels_[e.label].c_str()
                         : TraceKindName(e.kind);
  *out += "{\"name\":\"";
  *out += JsonEscape(*name != '\0' ? name : TraceKindName(e.kind));
  *out += "\",\"cat\":\"flow\",\"ph\":\"";
  *out += start ? "s" : "f";
  if (!start) *out += "\",\"bp\":\"e";
  *out += "\",\"id\":\"";
  *out += std::to_string(e.causal_msg);
  *out += "-";
  *out += std::to_string(dest);
  *out += "\",\"pid\":0,\"tid\":";
  *out += std::to_string(e.node >= 0 ? e.node : -1);
  *out += ",\"ts\":";
  *out += JsonDouble(e.time * 1000.0);
  *out += "}";
}

std::string Tracer::ExportChromeTrace() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out.reserve(count_ * 96);
  bool first = true;
  ForEach([&](const TraceEvent& e) {
    if (!first) out += ",\n";
    first = false;
    AppendChrome(e, &out);
    // Causally-annotated message motion additionally renders as a flow
    // arrow from the send to its deliver (drops have no end, so no arrow).
    if (e.causal_msg != 0 &&
        (e.kind == TraceKind::kSend || e.kind == TraceKind::kDeliver)) {
      out += ",\n";
      AppendChromeFlow(e, &out);
    }
  });
  out += "]";
  if (overwritten() > 0) {
    out += ",\"otherData\":{\"warning\":\"trace ring overflowed: oldest ";
    out += std::to_string(overwritten());
    out += " of ";
    out += std::to_string(total_recorded());
    out += " events were overwritten; causal chains may be truncated\"}";
  }
  out += "}\n";
  return out;
}

std::string Tracer::StatsJson() const {
  std::string out = "{\"capacity\":";
  out += std::to_string(capacity());
  out += ",\"recorded\":";
  out += std::to_string(total_recorded());
  out += ",\"retained\":";
  out += std::to_string(size());
  out += ",\"overwritten\":";
  out += std::to_string(overwritten());
  out += ",\"utilization\":";
  out += JsonDouble(static_cast<double>(size()) /
                    static_cast<double>(capacity()));
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace elink
