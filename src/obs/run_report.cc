#include "obs/run_report.h"

#include <fstream>

namespace elink {
namespace obs {

void RunReport::SetParam(const std::string& key, const std::string& value) {
  params_json_[key] = "\"" + JsonEscape(value) + "\"";
}

void RunReport::SetParam(const std::string& key, const char* value) {
  SetParam(key, std::string(value));
}

void RunReport::SetParam(const std::string& key, double value) {
  params_json_[key] = JsonDouble(value);
}

void RunReport::SetParam(const std::string& key, long long value) {
  params_json_[key] = std::to_string(value);
}

void RunReport::SetParam(const std::string& key, int value) {
  params_json_[key] = std::to_string(value);
}

void RunReport::SetParam(const std::string& key, uint64_t value) {
  params_json_[key] = std::to_string(value);
}

void RunReport::SetParam(const std::string& key, bool value) {
  params_json_[key] = value ? "true" : "false";
}

void RunReport::SetSectionJson(const std::string& key,
                               const std::string& json) {
  sections_json_[key] = json;
}

void RunReport::CaptureStats(const MessageStats& stats) {
  total_sends = stats.total_sends();
  total_units = stats.total_units();
  total_bytes = stats.total_bytes();
  dropped_sends = stats.dropped_sends();
  dropped_units = stats.dropped_units();
  dropped_bytes = stats.dropped_bytes();
  decode_errors = stats.decode_errors();
  units_by_category = stats.units_by_category();
  bytes_by_category.clear();
  for (const MessageStats::CategorySnapshot& c : stats.Snapshot()) {
    if (c.sends > 0) bytes_by_category[c.category] = c.bytes;
  }
}

std::string RunReport::ToJson() const {
  std::string out = "{\"protocol\":\"" + JsonEscape(protocol) + "\"";
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"params\":{";
  bool first = true;
  for (const auto& [key, value] : params_json_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(key) + "\":" + value;
  }
  out += "},\"outcome\":{\"end_time\":" + JsonDouble(end_time);
  out += ",\"events\":" + std::to_string(events);
  out += ",\"timed_out\":";
  out += timed_out ? "true" : "false";
  out += ",\"hit_event_cap\":";
  out += hit_event_cap ? "true" : "false";
  out += "},\"stats\":{\"total_sends\":" + std::to_string(total_sends);
  out += ",\"total_units\":" + std::to_string(total_units);
  out += ",\"total_bytes\":" + std::to_string(total_bytes);
  out += ",\"dropped_sends\":" + std::to_string(dropped_sends);
  out += ",\"dropped_units\":" + std::to_string(dropped_units);
  out += ",\"dropped_bytes\":" + std::to_string(dropped_bytes);
  out += ",\"decode_errors\":" + std::to_string(decode_errors);
  out += ",\"units_by_category\":{";
  first = true;
  for (const auto& [category, units] : units_by_category) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(category) + "\":" + std::to_string(units);
  }
  out += "},\"bytes_by_category\":{";
  first = true;
  for (const auto& [category, bytes] : bytes_by_category) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(category) + "\":" + std::to_string(bytes);
  }
  out += "}}";
  for (const auto& [key, json] : sections_json_) {
    out += ",\"" + JsonEscape(key) + "\":" + json;
  }
  out += ",\"metrics\":" + metrics.ToJson();
  out += "}\n";
  return out;
}

bool RunReport::WriteJsonFile(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << ToJson();
  return static_cast<bool>(f);
}

}  // namespace obs
}  // namespace elink
