#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>

namespace elink {
namespace obs {

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan.
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }
  return std::string(buf, end);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int Histogram::BucketOf(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;
  const int e = std::ilogb(v);  // floor(log2(v)).
  const int b = e - kMinExp + 1;
  return std::clamp(b, 0, kNumBuckets - 1);
}

double Histogram::BucketLowerBound(int b) {
  if (b <= 0) return 0.0;
  return std::ldexp(1.0, b - 1 + kMinExp);
}

void Histogram::Record(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  ++buckets_[static_cast<size_t>(BucketOf(v))];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int b = 0; b < kNumBuckets; ++b) {
    buckets_[static_cast<size_t>(b)] += other.buckets_[static_cast<size_t>(b)];
  }
}

std::string Histogram::ToJson() const {
  std::string out = "{\"count\":" + std::to_string(count_);
  out += ",\"sum\":" + JsonDouble(sum_);
  out += ",\"min\":" + JsonDouble(min());
  out += ",\"max\":" + JsonDouble(max());
  out += ",\"buckets\":{";
  bool first = true;
  for (int b = 0; b < kNumBuckets; ++b) {
    const uint64_t n = buckets_[static_cast<size_t>(b)];
    if (n == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonDouble(BucketLowerBound(b)) + "\":" + std::to_string(n);
  }
  out += "}}";
  return out;
}

MetricsRegistry::MetricId MetricsRegistry::Index::Intern(
    const std::string& name) {
  auto [it, inserted] =
      by_name.emplace(name, static_cast<MetricId>(names.size()));
  if (inserted) names.push_back(name);
  return it->second;
}

MetricsRegistry::MetricId MetricsRegistry::CounterId(const std::string& name) {
  const MetricId id = counter_index_.Intern(name);
  if (counters_.size() <= id) counters_.resize(id + 1, 0);
  return id;
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counter_index_.by_name.find(name);
  return it == counter_index_.by_name.end() ? 0 : counters_[it->second];
}

MetricsRegistry::MetricId MetricsRegistry::GaugeId(const std::string& name) {
  const MetricId id = gauge_index_.Intern(name);
  if (gauges_.size() <= id) gauges_.resize(id + 1, 0.0);
  return id;
}

double MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauge_index_.by_name.find(name);
  return it == gauge_index_.by_name.end() ? 0.0 : gauges_[it->second];
}

MetricsRegistry::MetricId MetricsRegistry::HistogramId(
    const std::string& name) {
  const MetricId id = histogram_index_.Intern(name);
  if (histograms_.size() <= id) histograms_.resize(id + 1);
  return id;
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  auto it = histogram_index_.by_name.find(name);
  return it == histogram_index_.by_name.end() ? nullptr
                                              : &histograms_[it->second];
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (size_t id = 0; id < other.counter_index_.names.size(); ++id) {
    Add(CounterId(other.counter_index_.names[id]), other.counters_[id]);
  }
  for (size_t id = 0; id < other.gauge_index_.names.size(); ++id) {
    Set(GaugeId(other.gauge_index_.names[id]), other.gauges_[id]);
  }
  for (size_t id = 0; id < other.histogram_index_.names.size(); ++id) {
    histograms_[HistogramId(other.histogram_index_.names[id])].Merge(
        other.histograms_[id]);
  }
}

void MetricsRegistry::Reset() {
  std::fill(counters_.begin(), counters_.end(), 0);
  std::fill(gauges_.begin(), gauges_.end(), 0.0);
  std::fill(histograms_.begin(), histograms_.end(), Histogram());
}

std::string MetricsRegistry::ToJson() const {
  // Sorted name order, so serialization is independent of intern order.
  auto sorted = [](const Index& index) {
    std::map<std::string, MetricId> m;
    for (MetricId id = 0; id < index.names.size(); ++id) {
      m.emplace(index.names[id], id);
    }
    return m;
  };
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, id] : sorted(counter_index_)) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(counters_[id]);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, id] : sorted(gauge_index_)) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + JsonDouble(gauges_[id]);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, id] : sorted(histogram_index_)) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + histograms_[id].ToJson();
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace elink
