// Per-run telemetry aggregation (elink_obs).
//
// RunTelemetry is the SimObserver a RunHarness binds for the lifetime of a
// run (or a sequence of runs on one network, as the maintenance protocol
// does).  It folds the event stream into a MetricsRegistry as it happens:
//
//  * counters for every event class ("sim.sends", "sim.delivers",
//    "transport.retx", "phase.<name>", ...);
//  * a "message_delay" histogram of full send-to-deliver latencies;
//  * per-node last-activity times, rendered at report time into a
//    "node_completion" histogram (when each node went quiet);
//  * watchdog slack — per armed window, how much margin remained between the
//    last protocol activity and the window expiring (0 when it fired) — as a
//    "watchdog_slack" histogram plus a "watchdog.min_slack" gauge.
//
// MakeReport then snapshots everything into a RunReport together with a
// caller-supplied MessageStats ledger.  The ledger is passed in (not
// accumulated from OnRunEnd) because incremental drivers run many
// RunHarness::Run calls against one network whose stats are cumulative —
// merging per-run would double-count.
//
// Chain a Tracer behind it with set_next to record the same stream.
#ifndef ELINK_OBS_TELEMETRY_H_
#define ELINK_OBS_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/run_report.h"
#include "sim/observer.h"

namespace elink {
namespace obs {

/// \brief Metrics-folding observer bound to one run (or run sequence).
class RunTelemetry : public SimObserver {
 public:
  RunTelemetry();

  /// Chains a second observer (typically a Tracer) that receives every
  /// event after telemetry records it.  Null unchains.
  void set_next(SimObserver* next) { next_ = next; }

  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }

  // SimObserver implementation.
  void OnCausal(const CausalInfo& info) override;
  void OnSend(double now, int from, int to, const Message& msg,
              double delay) override;
  void OnHop(double at, int from, int to, const Message& msg) override;
  void OnDeliver(double now, int from, int to, const Message& msg) override;
  void OnDrop(double at, int from, int to, const Message& msg) override;
  void OnTimerFire(double now, int node, int timer_id) override;
  void OnDecodeError(double now, int node,
                     const std::string& category) override;
  void OnRetransmit(double now, int node, int to, const Message& msg,
                    int attempt) override;
  void OnTransportAck(double now, int node, int to, long long seq) override;
  void OnTransportGiveUp(double now, int node, int to,
                         const Message& msg) override;
  void OnPhase(double now, int node, const char* phase,
               long long value) override;
  void OnChurn(double now, const char* kind, int a, int b) override;
  void OnWatchdogArm(double now, double window) override;
  void OnWatchdogFire(double now) override;
  void OnRunEnd(double end_time, uint64_t events, bool timed_out,
                bool hit_event_cap) override;

  /// Builds the run's report: outcome from the observed OnRunEnd(s),
  /// communication snapshot from `stats`, metrics from the fold (plus the
  /// node_completion histogram and watchdog gauges materialized here).
  RunReport MakeReport(const std::string& protocol, uint64_t seed,
                       const MessageStats& stats) const;

  /// Smallest observed watchdog slack, or a negative value when the
  /// watchdog never completed a window.
  double min_slack() const { return has_slack_ ? min_slack_ : -1.0; }

  /// Zeroes the fold (metric names stay interned; chaining is kept).
  void Reset();

 private:
  void NoteActivity(double now, int node);
  void NoteSlack(double slack);

  MetricsRegistry metrics_;
  // Pre-interned ids so the per-event cost is one array bump.
  MetricsRegistry::MetricId c_sends_, c_send_units_, c_wire_bytes_, c_hops_,
      c_delivers_, c_drops_, c_dropped_wire_bytes_, c_timer_fires_,
      c_decode_errors_, c_retx_, c_acks_, c_give_ups_, c_watchdog_arms_,
      c_watchdog_fires_, c_runs_;
  // Topology-plane counters ("churn.join", "churn.leave", ...), one per
  // ChurnSchedule event kind.
  MetricsRegistry::MetricId c_churn_join_, c_churn_leave_, c_churn_crash_,
      c_churn_repair_, c_churn_link_add_, c_churn_link_remove_;
  MetricsRegistry::MetricId h_message_delay_, h_watchdog_slack_;

  SimObserver* next_ = nullptr;

  std::vector<double> last_activity_;  // Per node; -1 = never active.

  // Watchdog window bookkeeping for slack computation.
  double last_event_time_ = 0.0;
  double armed_at_ = 0.0;
  bool armed_ = false;
  bool has_slack_ = false;
  double min_slack_ = 0.0;

  // Accumulated outcome over the observed OnRunEnd calls.
  double end_time_ = 0.0;
  uint64_t events_ = 0;
  bool timed_out_ = false;
  bool hit_event_cap_ = false;
};

}  // namespace obs
}  // namespace elink

#endif  // ELINK_OBS_TELEMETRY_H_
