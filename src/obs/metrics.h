// Metrics primitives of the observability layer (elink_obs).
//
// MetricsRegistry holds named Counters (monotone uint64), Gauges (last-set
// double), and log2-bucket Histograms.  Like MessageStats categories, names
// are interned into dense ids at first use and all values live in flat
// vectors indexed by id — the hot path is one array access, and registries
// from parallel trial runners Merge by name afterwards.
//
// Everything here is deterministic: ids depend only on first-use order, and
// ToJson renders in sorted name order with shortest-round-trip number
// formatting, so two identical runs serialize byte-identically.
// MetricsRegistry is not thread-safe; keep one per worker and Merge.
#ifndef ELINK_OBS_METRICS_H_
#define ELINK_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace elink {
namespace obs {

/// Deterministic shortest-round-trip rendering of a double for JSON output
/// ("1.5", "0.1", "1e+30"; never locale-dependent).
std::string JsonDouble(double v);

/// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// \brief Log2-bucket histogram over non-negative doubles.
///
/// Bucket b >= 1 counts values in [2^(b-1+kMinExp), 2^(b+kMinExp)); bucket 0
/// absorbs everything below (including zero).  With kMinExp = -20 the
/// resolution spans ~1e-6 .. ~4e12, ample for sim-time delays and counts.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  static constexpr int kMinExp = -20;

  /// Bucket index of `v` (clamped to the representable range).
  static int BucketOf(double v);

  /// Inclusive lower bound of bucket `b` (0.0 for bucket 0).
  static double BucketLowerBound(int b);

  void Record(double v);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  uint64_t bucket(int b) const { return buckets_[static_cast<size_t>(b)]; }

  /// {"count":..,"sum":..,"min":..,"max":..,"buckets":{"<lb>":n,..}} with
  /// only non-empty buckets listed, in ascending bucket order.
  std::string ToJson() const;

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<uint64_t, kNumBuckets> buckets_{};
};

/// \brief Flat-storage registry of named counters, gauges, and histograms.
class MetricsRegistry {
 public:
  /// Dense handle of an interned metric name (per kind).
  using MetricId = uint32_t;

  // -- Counters ----------------------------------------------------------
  MetricId CounterId(const std::string& name);
  void Add(MetricId id, uint64_t delta = 1) { counters_[id] += delta; }
  /// Convenience slow path: intern + add in one call.
  void AddCounter(const std::string& name, uint64_t delta = 1) {
    Add(CounterId(name), delta);
  }
  /// Value of a counter (0 when the name was never interned).
  uint64_t counter(const std::string& name) const;

  // -- Gauges ------------------------------------------------------------
  MetricId GaugeId(const std::string& name);
  void Set(MetricId id, double value) { gauges_[id] = value; }
  void SetGauge(const std::string& name, double value) {
    Set(GaugeId(name), value);
  }
  /// Value of a gauge (0.0 when the name was never interned).
  double gauge(const std::string& name) const;

  // -- Histograms --------------------------------------------------------
  MetricId HistogramId(const std::string& name);
  void Record(MetricId id, double v) { histograms_[id].Record(v); }
  void RecordHistogram(const std::string& name, double v) {
    Record(HistogramId(name), v);
  }
  /// The histogram registered under `name`, or nullptr when never interned.
  const Histogram* histogram(const std::string& name) const;

  /// Adds another registry into this one, matching metrics by name (gauges
  /// take the other registry's value — last writer wins, as with Set).
  void Merge(const MetricsRegistry& other);

  /// Zeroes every value; interned names survive (ids stay valid).
  void Reset();

  /// {"counters":{..},"gauges":{..},"histograms":{..}}, names sorted.
  std::string ToJson() const;

 private:
  struct Index {
    std::unordered_map<std::string, MetricId> by_name;
    std::vector<std::string> names;
    MetricId Intern(const std::string& name);
  };

  Index counter_index_;
  Index gauge_index_;
  Index histogram_index_;
  std::vector<uint64_t> counters_;
  std::vector<double> gauges_;
  std::vector<Histogram> histograms_;
};

}  // namespace obs
}  // namespace elink

#endif  // ELINK_OBS_METRICS_H_
