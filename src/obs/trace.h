// Sim-time event tracing (elink_obs).
//
// Tracer is a SimObserver that records every observed event — message
// send/hop/deliver/drop, decode errors, timer fires, transport
// retransmit/ack/give-up, protocol phase transitions, watchdog arm/fire,
// run end — as a compact typed record in a bounded ring buffer.  Category
// and phase strings are interned into dense label ids (one hash lookup per
// event), so recording is allocation-free on the hot path once labels are
// warm.  When the buffer fills, the oldest events are overwritten and
// counted, never reallocated.
//
// Two exporters turn the buffer into artifacts:
//  * ExportJsonl      — one JSON object per line, in record order;
//  * ExportChromeTrace — Chrome trace_event JSON (open in Perfetto /
//    chrome://tracing): node id -> tid, sim time -> ts with one sim time
//    unit rendered as 1 ms (ts is in microseconds), sends as complete
//    events ("ph":"X") whose duration is the delivery delay, everything
//    else as instant events ("ph":"i").
//
// Determinism: record order is the simulator's deterministic emission order
// and all numbers render via shortest-round-trip formatting, so two
// same-seed runs export byte-identical artifacts.
#ifndef ELINK_OBS_TRACE_H_
#define ELINK_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/observer.h"

namespace elink {
namespace obs {

/// What happened; mirrors the SimObserver callbacks one to one.
enum class TraceKind : uint8_t {
  kSend,
  kHop,
  kDeliver,
  kDrop,
  kTimerFire,
  kDecodeError,
  kRetransmit,
  kTransportAck,
  kTransportGiveUp,
  kPhase,
  kChurn,
  kWatchdogArm,
  kWatchdogFire,
  kRunEnd,
};

/// Short stable name of a kind ("send", "deliver", ...), used by exporters.
const char* TraceKindName(TraceKind kind);

/// \brief One recorded event (fixed-size POD; strings live interned).
struct TraceEvent {
  static constexpr uint32_t kNoLabel = 0xffffffffu;

  double time = 0.0;      // Sim time the event refers to.
  double aux = 0.0;       // Delay (send), watchdog window (arm), else 0.
  long long value = 0;    // Units / timer id / attempt / phase value / seq.
  uint64_t seq = 0;       // Monotone emission index (never wraps).
  // Causal annotation (0 = none), populated from the OnCausal emitted just
  // before this event when the run's Network assigns causal ids:
  uint64_t causal_self = 0;    // Handler-activation id (deliver/timer).
  uint64_t causal_msg = 0;     // In-flight message id (send/hop/drop/deliver).
  uint64_t causal_parent = 0;  // Causing activation (send/hop/drop/timer).
  uint32_t label = kNoLabel;  // Interned category / phase name.
  uint32_t bytes = 0;     // Frame bytes on the air (send/hop/deliver/drop).
  TraceKind kind = TraceKind::kSend;
  int32_t node = -1;      // Primary node (sender or owner); -1 when none.
  int32_t peer = -1;      // Other endpoint; -1 when none.
};

/// \brief Bounded ring-buffer recorder of typed sim events.
class Tracer : public SimObserver {
 public:
  /// `capacity` bounds the buffer (events, not bytes); must be > 0.
  explicit Tracer(size_t capacity = 1 << 16);

  // SimObserver implementation (records one TraceEvent each; OnCausal
  // instead annotates the event recorded immediately after it).
  void OnCausal(const CausalInfo& info) override;
  void OnSend(double now, int from, int to, const Message& msg,
              double delay) override;
  void OnHop(double at, int from, int to, const Message& msg) override;
  void OnDeliver(double now, int from, int to, const Message& msg) override;
  void OnDrop(double at, int from, int to, const Message& msg) override;
  void OnTimerFire(double now, int node, int timer_id) override;
  void OnDecodeError(double now, int node,
                     const std::string& category) override;
  void OnRetransmit(double now, int node, int to, const Message& msg,
                    int attempt) override;
  void OnTransportAck(double now, int node, int to, long long seq) override;
  void OnTransportGiveUp(double now, int node, int to,
                         const Message& msg) override;
  void OnPhase(double now, int node, const char* phase,
               long long value) override;
  void OnChurn(double now, const char* kind, int a, int b) override;
  void OnWatchdogArm(double now, double window) override;
  void OnWatchdogFire(double now) override;
  void OnRunEnd(double end_time, uint64_t events, bool timed_out,
                bool hit_event_cap) override;

  /// Events currently held (<= capacity).
  size_t size() const { return count_; }
  size_t capacity() const { return buffer_.size(); }
  /// Total events ever recorded, including overwritten ones.
  uint64_t total_recorded() const { return next_seq_; }
  /// Events lost to ring-buffer wraparound.
  uint64_t overwritten() const { return next_seq_ - count_; }

  /// Resolves an interned label id back to its string.
  const std::string& label(uint32_t id) const { return labels_[id]; }
  /// All interned labels, dense by id (CausalGraph copies them wholesale).
  const std::vector<std::string>& labels() const { return labels_; }

  /// Invokes fn(event) oldest-to-newest over the retained window.
  template <typename F>
  void ForEach(F&& fn) const {
    for (size_t i = 0; i < count_; ++i) {
      fn(buffer_[(start_ + i) % buffer_.size()]);
    }
  }

  /// Drops all retained events (interned labels survive).
  void Clear();

  /// Ring-buffer accounting as a JSON object (capacity, recorded, retained,
  /// overwritten, utilization) — embeddable as a RunReport section so a run
  /// that overflowed its ring says so in the artifact.
  std::string StatsJson() const;

  /// Exporters.  When the ring overflowed, both lead with a warning banner
  /// (a JSONL comment-object line / a Chrome "otherData" entry) instead of
  /// silently truncating causal chains.
  std::string ExportJsonl() const;
  std::string ExportChromeTrace() const;

 private:
  uint32_t Intern(const std::string& label);
  void Push(TraceEvent event);
  void AppendJsonl(const TraceEvent& e, std::string* out) const;
  void AppendChrome(const TraceEvent& e, std::string* out) const;
  /// Appends the Chrome flow-arrow record ("ph":"s" at the send, "ph":"f"
  /// at the matching deliver) for causally-annotated message events.
  void AppendChromeFlow(const TraceEvent& e, std::string* out) const;

  std::vector<TraceEvent> buffer_;
  size_t start_ = 0;  // Index of the oldest retained event.
  size_t count_ = 0;
  uint64_t next_seq_ = 0;

  // Causal annotation waiting for the event it describes (emitted
  // immediately before it on the same observer).
  CausalInfo pending_causal_;
  bool has_pending_causal_ = false;

  std::vector<std::string> labels_;
  std::unordered_map<std::string, uint32_t> label_index_;
};

}  // namespace obs
}  // namespace elink

#endif  // ELINK_OBS_TRACE_H_
