// Small dense linear algebra used by the AR regression (normal equations),
// the RLS online update, and the spectral-clustering baseline.
//
// Matrices here are at most a few thousand rows (the affinity matrix of the
// whole network, for the centralized baseline), so a straightforward
// row-major implementation is appropriate; no BLAS dependency.
#ifndef ELINK_LINALG_MATRIX_H_
#define ELINK_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace elink {

/// Dense column vector of doubles.
using Vector = std::vector<double>;

/// \brief Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix of order n.
  static Matrix Identity(size_t n);

  /// Builds a matrix from nested initializer-style data (row major).
  static Matrix FromRows(const std::vector<Vector>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Matrix product this * other.  Dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product this * v.  v.size() must equal cols().
  Vector Multiply(const Vector& v) const;

  /// Transposed copy.
  Matrix Transpose() const;

  /// Elementwise sum; dimensions must agree.
  Matrix Add(const Matrix& other) const;

  /// Elementwise difference; dimensions must agree.
  Matrix Subtract(const Matrix& other) const;

  /// Copy scaled by s.
  Matrix Scale(double s) const;

  /// Maximum absolute entry (0 for an empty matrix).
  double MaxAbs() const;

  /// True if the matrix equals its transpose within `tol`.
  bool IsSymmetric(double tol = 1e-9) const;

  /// Multi-line human-readable rendering (debugging/tests).
  std::string ToString() const;

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// Dot product; sizes must agree.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm(const Vector& v);

/// a + b elementwise; sizes must agree.
Vector Add(const Vector& a, const Vector& b);

/// a - b elementwise; sizes must agree.
Vector Subtract(const Vector& a, const Vector& b);

/// v scaled by s.
Vector Scale(const Vector& v, double s);

/// Outer product a b^T as an (a.size() x b.size()) matrix.
Matrix Outer(const Vector& a, const Vector& b);

}  // namespace elink

#endif  // ELINK_LINALG_MATRIX_H_
