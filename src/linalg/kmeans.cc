#include "linalg/kmeans.h"

#include <cmath>
#include <limits>

namespace elink {

namespace {

double SquaredDistance(const Vector& a, const Vector& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

// k-means++ seeding: first center uniform, subsequent centers proportional
// to squared distance from the nearest chosen center.
std::vector<Vector> SeedPlusPlus(const std::vector<Vector>& points, int k,
                                 Rng* rng) {
  std::vector<Vector> centers;
  centers.reserve(k);
  centers.push_back(points[rng->UniformInt(points.size())]);
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (static_cast<int>(centers.size()) < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], SquaredDistance(points[i], centers.back()));
      total += d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centers; duplicate one.
      centers.push_back(points[rng->UniformInt(points.size())]);
      continue;
    }
    double target = rng->Uniform01() * total;
    size_t pick = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        pick = i;
        break;
      }
    }
    centers.push_back(points[pick]);
  }
  return centers;
}

KMeansResult RunOnce(const std::vector<Vector>& points, int k, Rng* rng,
                     int max_iters) {
  const size_t n = points.size();
  const size_t dim = points[0].size();
  KMeansResult res;
  res.centers = SeedPlusPlus(points, k, rng);
  res.assignment.assign(n, -1);

  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    // Assignment step.
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = SquaredDistance(points[i], res.centers[0]);
      for (int c = 1; c < k; ++c) {
        const double d = SquaredDistance(points[i], res.centers[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (res.assignment[i] != best) {
        res.assignment[i] = best;
        changed = true;
      }
    }
    res.iterations = iter + 1;
    if (!changed && iter > 0) break;
    // Update step.
    std::vector<Vector> sums(k, Vector(dim, 0.0));
    std::vector<int> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const int c = res.assignment[i];
      counts[c]++;
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        res.centers[c] = points[rng->UniformInt(n)];
      } else {
        for (size_t d = 0; d < dim; ++d)
          res.centers[c][d] = sums[c][d] / counts[c];
      }
    }
  }

  res.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    res.inertia += SquaredDistance(points[i], res.centers[res.assignment[i]]);
  }
  return res;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<Vector>& points, int k, Rng* rng,
                            int max_iters, int restarts) {
  if (k <= 0) return Status::InvalidArgument("KMeans: k must be positive");
  if (points.empty() || static_cast<size_t>(k) > points.size()) {
    return Status::InvalidArgument("KMeans: k exceeds number of points");
  }
  ELINK_CHECK(rng != nullptr);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int r = 0; r < std::max(1, restarts); ++r) {
    KMeansResult cur = RunOnce(points, k, rng, max_iters);
    if (cur.inertia < best.inertia) best = std::move(cur);
  }
  return best;
}

}  // namespace elink
