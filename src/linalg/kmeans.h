// Lloyd's k-means with k-means++ seeding.
//
// The spectral-clustering baseline (Ng-Jordan-Weiss) clusters the
// row-normalized eigenvector embedding with k-means; this is that k-means.
#ifndef ELINK_LINALG_KMEANS_H_
#define ELINK_LINALG_KMEANS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace elink {

/// Result of a k-means run.
struct KMeansResult {
  /// assignment[i] in [0, k) is the cluster of point i.
  std::vector<int> assignment;
  /// Final cluster centers (k rows).
  std::vector<Vector> centers;
  /// Sum of squared distances of points to their centers.
  double inertia = 0.0;
  /// Lloyd iterations executed.
  int iterations = 0;
};

/// Runs k-means on `points` (each a d-dimensional vector) with k-means++
/// seeding and `restarts` independent restarts, keeping the best inertia.
/// Returns InvalidArgument when k is 0 or exceeds the number of points.
Result<KMeansResult> KMeans(const std::vector<Vector>& points, int k, Rng* rng,
                            int max_iters = 100, int restarts = 4);

}  // namespace elink

#endif  // ELINK_LINALG_KMEANS_H_
