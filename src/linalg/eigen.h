// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Used by the centralized spectral-clustering baseline (Ng-Jordan-Weiss): the
// normalized graph Laplacian of the affinity matrix is symmetric, and Jacobi
// is robust and dependency-free for the network sizes in the paper (<= 2500).
#ifndef ELINK_LINALG_EIGEN_H_
#define ELINK_LINALG_EIGEN_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace elink {

/// Full eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in descending order.
  Vector values;
  /// Column i of `vectors` is the unit eigenvector for values[i].
  Matrix vectors;
};

/// Computes all eigenpairs of symmetric matrix `a` by cyclic Jacobi sweeps.
/// Returns InvalidArgument when `a` is not square/symmetric, Internal when
/// the iteration fails to converge within the sweep budget.
Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          double tol = 1e-10,
                                          int max_sweeps = 100);

}  // namespace elink

#endif  // ELINK_LINALG_EIGEN_H_
