#include "linalg/matrix.h"

#include <cmath>

#include "common/strings.h"

namespace elink {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    ELINK_CHECK(rows[r].size() == m.cols());
    for (size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  ELINK_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::Multiply(const Vector& v) const {
  ELINK_CHECK(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < cols_; ++j) s += (*this)(i, j) * v[j];
    out[i] = s;
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  ELINK_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  ELINK_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = i + 1; j < cols_; ++j)
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
  return true;
}

std::string Matrix::ToString() const {
  std::string out;
  for (size_t i = 0; i < rows_; ++i) {
    out += "[";
    for (size_t j = 0; j < cols_; ++j) {
      if (j) out += ", ";
      out += FormatDouble((*this)(i, j), 6);
    }
    out += "]\n";
  }
  return out;
}

double Dot(const Vector& a, const Vector& b) {
  ELINK_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm(const Vector& v) { return std::sqrt(Dot(v, v)); }

Vector Add(const Vector& a, const Vector& b) {
  ELINK_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Subtract(const Vector& a, const Vector& b) {
  ELINK_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scale(const Vector& v, double s) {
  Vector out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] * s;
  return out;
}

Matrix Outer(const Vector& a, const Vector& b) {
  Matrix out(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i)
    for (size_t j = 0; j < b.size(); ++j) out(i, j) = a[i] * b[j];
  return out;
}

}  // namespace elink
