#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace elink {

Result<EigenDecomposition> SymmetricEigen(const Matrix& a, double tol,
                                          int max_sweeps) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("SymmetricEigen: matrix must be square");
  }
  if (!a.IsSymmetric(1e-8)) {
    return Status::InvalidArgument("SymmetricEigen: matrix must be symmetric");
  }
  Matrix d = a;                    // Will converge to diagonal.
  Matrix v = Matrix::Identity(n);  // Accumulated rotations.

  auto off_diagonal_norm = [&]() {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i)
      for (size_t j = i + 1; j < n; ++j) s += d(i, j) * d(i, j);
    return std::sqrt(s);
  };

  bool converged = n <= 1 || off_diagonal_norm() <= tol;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        // Rotation angle that annihilates d(p, q).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to rows/columns p and q of d.
        for (size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        // Accumulate eigenvectors.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    converged = off_diagonal_norm() <= tol;
  }
  if (!converged) {
    return Status::Internal("SymmetricEigen: Jacobi failed to converge");
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return d(i, i) > d(j, j); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t c = 0; c < n; ++c) {
    out.values[c] = d(order[c], order[c]);
    for (size_t r = 0; r < n; ++r) out.vectors(r, c) = v(r, order[c]);
  }
  return out;
}

}  // namespace elink
