#include "linalg/solve.h"

#include <cmath>
#include <vector>

namespace elink {

Result<Vector> SolveLu(const Matrix& a, const Vector& b) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("SolveLu: matrix must be square");
  }
  if (b.size() != n) {
    return Status::InvalidArgument("SolveLu: rhs size mismatch");
  }
  // Working copies: in-place Doolittle LU with partial pivoting.
  Matrix lu = a;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;

  for (size_t col = 0; col < n; ++col) {
    // Pivot selection.
    size_t pivot = col;
    double best = std::fabs(lu(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition("SolveLu: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(lu(pivot, c), lu(col, c));
      std::swap(perm[pivot], perm[col]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double f = lu(r, col) / lu(col, col);
      lu(r, col) = f;
      for (size_t c = col + 1; c < n; ++c) lu(r, c) -= f * lu(col, c);
    }
  }

  // Forward substitution with permuted rhs (L has unit diagonal).
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[perm[i]];
    for (size_t j = 0; j < i; ++j) s -= lu(i, j) * y[j];
    y[i] = s;
  }
  // Back substitution.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= lu(ii, j) * x[j];
    x[ii] = s / lu(ii, ii);
  }
  return x;
}

Result<Matrix> Invert(const Matrix& a) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("Invert: matrix must be square");
  }
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    Result<Vector> col = SolveLu(a, e);
    e[c] = 0.0;
    if (!col.ok()) return col.status();
    for (size_t r = 0; r < n; ++r) inv(r, c) = col.value()[r];
  }
  return inv;
}

Result<Matrix> CholeskyFactor(const Matrix& a) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("Cholesky: matrix must be square");
  }
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0) {
          return Status::FailedPrecondition("Cholesky: matrix not SPD");
        }
        l(i, j) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

Result<Vector> SolveCholesky(const Matrix& a, const Vector& b) {
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("SolveCholesky: rhs size mismatch");
  }
  Result<Matrix> lr = CholeskyFactor(a);
  if (!lr.ok()) return lr.status();
  const Matrix& l = lr.value();
  const size_t n = a.rows();
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t j = 0; j < i; ++j) s -= l(i, j) * y[j];
    y[i] = s / l(i, i);
  }
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= l(j, ii) * x[j];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

Result<Vector> SolveNormalEquations(const Matrix& x, const Vector& y,
                                    double ridge) {
  if (y.size() != x.cols()) {
    return Status::InvalidArgument(
        "SolveNormalEquations: observation count mismatch");
  }
  const size_t k = x.rows();
  Matrix xxt(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i; j < k; ++j) {
      double s = 0.0;
      for (size_t m = 0; m < x.cols(); ++m) s += x(i, m) * x(j, m);
      xxt(i, j) = s;
      xxt(j, i) = s;
    }
    xxt(i, i) += ridge;
  }
  Vector xy(k, 0.0);
  for (size_t i = 0; i < k; ++i) {
    double s = 0.0;
    for (size_t m = 0; m < x.cols(); ++m) s += x(i, m) * y[m];
    xy[i] = s;
  }
  return SolveLu(xxt, xy);
}

}  // namespace elink
