// Dense linear solvers: LU with partial pivoting (general square systems,
// used to invert XX^T in the AR normal equations) and Cholesky (SPD systems).
#ifndef ELINK_LINALG_SOLVE_H_
#define ELINK_LINALG_SOLVE_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace elink {

/// Solves A x = b via LU decomposition with partial pivoting.
/// Returns InvalidArgument on dimension mismatch and FailedPrecondition when
/// A is (numerically) singular.
Result<Vector> SolveLu(const Matrix& a, const Vector& b);

/// Inverse of a square matrix via LU; errors as SolveLu.
Result<Matrix> Invert(const Matrix& a);

/// Cholesky factor L (lower triangular, A = L L^T) of a symmetric positive
/// definite matrix.  FailedPrecondition when A is not SPD.
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A x = b for SPD A via Cholesky.
Result<Vector> SolveCholesky(const Matrix& a, const Vector& b);

/// Solves the least-squares problem min ||X^T alpha - y|| through the normal
/// equations (X X^T) alpha = X y, where X is k x m (one observation per
/// column) and y has m entries.  This is exactly the estimator of paper
/// Section 2.2 / Appendix A.  A small ridge term `ridge` stabilizes nearly
/// collinear regressors (0 reproduces plain least squares).
Result<Vector> SolveNormalEquations(const Matrix& x, const Vector& y,
                                    double ridge = 0.0);

}  // namespace elink

#endif  // ELINK_LINALG_SOLVE_H_
