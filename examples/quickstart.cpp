// Quickstart: cluster a small sensor grid with ELink and inspect the result.
//
// Builds a 6x6 grid whose left and right halves observe different phenomena,
// runs the ELink delta-clustering, validates the output against Definition 1,
// and prints the clusters and the protocol's communication ledger.
//
//   ./quickstart
#include <cstdio>
#include <map>

#include "cluster/elink.h"
#include "common/rng.h"
#include "metric/distance.h"
#include "sim/topology.h"

using namespace elink;

int main() {
  // 1. A deployment: 36 sensors on a grid, 4-connected radio links.
  const Topology topology = MakeGridTopology(6, 6);

  // 2. Per-node features (model coefficients in a real deployment).  Here:
  //    the west half reads ~10, the east half ~50, with sensor noise.
  Rng rng(2024);
  std::vector<Feature> features;
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 6; ++c) {
      const double base = c < 3 ? 10.0 : 50.0;
      features.push_back({base + rng.Normal(0.0, 0.5)});
    }
  }
  const WeightedEuclidean metric = WeightedEuclidean::Euclidean(1);

  // 3. Run ELink: any pair of nodes inside a cluster differs by <= delta.
  ElinkConfig config;
  config.delta = 6.0;
  config.seed = 1;
  Result<ElinkResult> result =
      RunElink(topology, features, metric, config, ElinkMode::kExplicit);
  if (!result.ok()) {
    std::fprintf(stderr, "ELink failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. The output is a valid delta-clustering; check it like a test would.
  const Status valid =
      ValidateDeltaClustering(result.value().clustering, topology.adjacency,
                              features, metric, config.delta);
  std::printf("validity check: %s\n", valid.ToString().c_str());

  // 5. Inspect.
  // ELink is a heuristic for an NP-complete problem: concurrent same-level
  // sentinels can split a homogeneous region, so 2-3 clusters are typical
  // here (the optimum is 2).
  std::printf("clusters: %d (optimum: 2, one per half)\n",
              result.value().clustering.num_clusters());
  for (const auto& [root, members] : result.value().clustering.Groups()) {
    std::printf("  cluster rooted at node %2d (feature %s): %zu members\n",
                root, FeatureToString(features[root]).c_str(),
                members.size());
  }
  std::printf("grid map (letter = cluster):\n");
  std::map<int, char> label;
  for (const auto& [root, members] : result.value().clustering.Groups()) {
    label.emplace(root, static_cast<char>('A' + label.size()));
  }
  for (int r = 0; r < 6; ++r) {
    std::printf("  ");
    for (int c = 0; c < 6; ++c) {
      std::printf("%c ", label[result.value().clustering.root_of[r * 6 + c]]);
    }
    std::printf("\n");
  }
  std::printf("communication: %s\n",
              result.value().stats.ToString().c_str());
  std::printf("completed at simulated time %.1f (network of %d nodes)\n",
              result.value().completion_time, topology.num_nodes());
  return valid.ok() ? 0 : 1;
}
