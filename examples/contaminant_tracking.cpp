// Tracking a moving contaminant plume (the paper's Section-1 motivation [5]
// and Section-7.3 rescue scenario), built on the high-level
// ClusteredSensorNetwork facade.
//
// A Gaussian puff advects across a 400-sensor field.  The network clusters
// on the initial concentration snapshot; as the plume moves, feature updates
// flow through the slack-based maintenance protocol, and a rescue team
// re-plans a safe route across the region after every few steps.
//
//   ./contaminant_tracking
#include <cstdio>

#include "core/clustered_network.h"
#include "data/plume.h"

using namespace elink;

int main() {
  PlumeConfig plume;
  Result<SensorDataset> ds_r = MakePlumeDataset(plume);
  if (!ds_r.ok()) {
    std::fprintf(stderr, "%s\n", ds_r.status().ToString().c_str());
    return 1;
  }
  SensorDataset& ds = ds_r.value();
  std::printf("deployment: %d sensors over %.0fm x %.0fm; puff released at "
              "(%.0f, %.0f), wind (%.0f, %.0f) m/step\n",
              ds.topology.num_nodes(), plume.side, plume.side,
              plume.source_x, plume.source_y, plume.wind_x, plume.wind_y);

  ClusteredSensorNetwork::Options opts;
  opts.delta = 0.3 * FeatureDiameter(ds);
  opts.slack = 0.1 * opts.delta;
  opts.seed = 4;
  Result<std::unique_ptr<ClusteredSensorNetwork>> net_r =
      ClusteredSensorNetwork::Build(ds, opts);
  if (!net_r.ok()) {
    std::fprintf(stderr, "%s\n", net_r.status().ToString().c_str());
    return 1;
  }
  ClusteredSensorNetwork& net = *net_r.value();
  std::printf("initial clustering: %d concentration zones (delta = %.2f), "
              "%llu units\n\n",
              net.num_clusters(), opts.delta,
              static_cast<unsigned long long>(net.clustering_cost_units()));

  // Mission: cross the region from the southwest to the northeast corner
  // while staying clear of high concentrations.  The danger signature is
  // "concentration like the plume peak at the snapshot"; gamma is the
  // required separation in concentration space.
  int src = 0, dst = 0;
  for (int i = 1; i < ds.topology.num_nodes(); ++i) {
    const Point2D& p = ds.topology.positions[i];
    const Point2D& ps = ds.topology.positions[src];
    const Point2D& pd = ds.topology.positions[dst];
    if (p.x + p.y < ps.x + ps.y) src = i;
    if (p.x + p.y > pd.x + pd.y) dst = i;
  }
  const Feature danger = {plume.peak};
  const double gamma = 0.85 * plume.peak;

  std::printf("%6s %10s %10s %10s %12s\n", "step", "clusters", "routable",
              "path_len", "maint_units");
  for (int step = 0; step < plume.stream_steps; ++step) {
    for (int i = 0; i < ds.topology.num_nodes(); ++i) {
      net.UpdateFeature(i, {ds.streams[i][step]});
    }
    if (step % 8 == 3) {
      const PathQueryResult route = net.SafePath(src, dst, danger, gamma);
      std::printf("%6d %10d %10s %10zu %12llu\n", step, net.num_clusters(),
                  route.found ? "yes" : "NO",
                  route.found ? route.path.size() - 1 : 0,
                  static_cast<unsigned long long>(
                      net.total_stats().units("maintenance")));
    }
  }
  const Status invariant = net.ValidateInvariant();
  std::printf("\nmaintenance invariant after the whole episode: %s\n",
              invariant.ToString().c_str());
  std::printf("total communication: %s\n", net.total_stats().ToString().c_str());
  return invariant.ok() ? 0 : 1;
}
