// Asynchronous in-network clustering at growing scale.
//
// Demonstrates the explicit-signalling ELink variant (the one designed for
// asynchronous networks, Section 5) on uniform random deployments of
// increasing size, reporting the empirical message and time scaling next to
// the paper's O(N) / O(sqrt(N) log N) bounds.
//
//   ./network_scaling
#include <cmath>
#include <cstdio>

#include "cluster/elink.h"
#include "data/synthetic.h"

using namespace elink;

int main() {
  std::printf("explicit ELink on asynchronous random networks "
              "(avg degree ~4, density 0.8)\n\n");
  std::printf("%6s %10s %12s %12s %10s %12s\n", "N", "clusters", "msg_units",
              "units/N", "time", "time/bound");
  for (int n : {100, 200, 400, 800}) {
    SyntheticConfig scfg;
    scfg.num_nodes = n;
    scfg.seed = 9000 + n;
    Result<SensorDataset> ds = MakeSyntheticDataset(scfg);
    if (!ds.ok()) {
      std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
      return 1;
    }
    ElinkConfig cfg;
    cfg.delta = 0.3 * FeatureDiameter(ds.value());
    cfg.synchronous = false;  // Randomized per-hop delays.
    cfg.seed = n;
    Result<ElinkResult> r = RunElink(ds.value(), cfg, ElinkMode::kExplicit);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    const Status valid = ValidateDeltaClustering(
        r.value().clustering, ds.value().topology.adjacency,
        ds.value().features, *ds.value().metric, cfg.delta);
    if (!valid.ok()) {
      std::fprintf(stderr, "invalid clustering at N=%d: %s\n", n,
                   valid.ToString().c_str());
      return 1;
    }
    // Theorem 3's shape: messages O(N), time O(sqrt(N) log N).
    const double time_bound = std::sqrt(n) * std::log2(n);
    std::printf("%6d %10d %12llu %12.1f %10.1f %12.2f\n", n,
                r.value().clustering.num_clusters(),
                static_cast<unsigned long long>(r.value().stats.total_units()),
                static_cast<double>(r.value().stats.total_units()) / n,
                r.value().completion_time,
                r.value().completion_time / time_bound);
  }
  std::printf("\nunits/N flat => O(N) messages; time/bound flat => "
              "O(sqrt(N) log N) time (Theorem 3)\n");
  return 0;
}
