// Concurrent query serving over a clustered deployment (ROADMAP item 3).
//
// A ServeSession wraps a ClusteredSensorNetwork behind the thread-safe
// elink_serve frontend: client threads issue range and safe-path queries
// concurrently, answers come from an epoch-keyed result cache whenever the
// touched clusters have not changed, and a feature update republishes the
// state — bumping only the affected cluster's epoch, so the rest of the
// cache stays warm.
//
//   ./query_serving
#include <cstdio>
#include <thread>
#include <vector>

#include "core/clustered_network.h"
#include "data/terrain.h"
#include "serve/session.h"
#include "serve/workload.h"

using namespace elink;

int main() {
  // 1. Deploy 300 sensors on fractal terrain and cluster by elevation.
  TerrainConfig tcfg;
  tcfg.num_nodes = 300;
  tcfg.radio_range_fraction = 0.1;
  tcfg.seed = 42;
  Result<SensorDataset> ds_r = MakeTerrainDataset(tcfg);
  if (!ds_r.ok()) {
    std::fprintf(stderr, "%s\n", ds_r.status().ToString().c_str());
    return 1;
  }
  const SensorDataset ds = std::move(ds_r).value();

  ClusteredSensorNetwork::Options nopts;
  nopts.delta = 0.25 * FeatureDiameter(ds);
  nopts.seed = 7;
  auto net_r = ClusteredSensorNetwork::Build(ds, nopts);
  if (!net_r.ok()) {
    std::fprintf(stderr, "%s\n", net_r.status().ToString().c_str());
    return 1;
  }
  auto net = std::move(net_r).value();
  std::printf("deployment: %d sensors, %d clusters\n",
              ds.topology.num_nodes(), net->clustering().num_clusters());

  // 2. Open a serving session (publishes the initial view immediately).
  serve::ServeSession session(net.get(), serve::ServeFrontend::Options{});

  // 3. Four client threads replay skewed workloads concurrently; repeated
  //    predicates hit the cache.
  serve::WorkloadConfig wcfg;
  wcfg.num_clients = 4;
  wcfg.ops_per_client = 500;
  wcfg.predicate_pool = 32;
  serve::WorkloadGenerator gen(ds.features, ds.topology.num_nodes(), wcfg,
                               /*seed=*/11);
  std::vector<std::thread> clients;
  for (int c = 0; c < wcfg.num_clients; ++c) {
    clients.emplace_back([&session, &gen, c] {
      for (const serve::WorkloadOp& op : gen.ClientOps(c)) {
        if (op.is_range) {
          session.frontend().Range(op.feature, op.scalar);
        } else {
          session.frontend().SafePath(op.source, op.destination, op.feature,
                                      op.scalar);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  serve::ServeCounters after_load = session.frontend().Counters();
  std::printf("served %llu queries, cache hits %llu / lookups %llu\n",
              static_cast<unsigned long long>(after_load.range_queries +
                                              after_load.path_queries),
              static_cast<unsigned long long>(after_load.cache.hits),
              static_cast<unsigned long long>(after_load.cache.hits +
                                              after_load.cache.misses));
  if (after_load.cache.hits == 0) {
    std::fprintf(stderr, "expected cache hits on the skewed workload\n");
    return 1;
  }

  // 4. One sensor reading changes: republish.  Only the touched cluster's
  //    epoch bumps, but any bump changes the epoch-vector signature, so the
  //    sweep conservatively drops every cached answer (a cluster change can
  //    affect any predicate).  Republishing an *unchanged* state bumps
  //    nothing and keeps the cache warm — that is the common steady state.
  Feature f = net->feature(0);
  f[0] += 1.0;
  session.UpdateFeatureAndPublish(0, f);
  const serve::ServedRange again =
      session.frontend().Range(gen.pool()[0].feature, gen.pool()[0].scalar);
  serve::ServeCounters after_update = session.frontend().Counters();
  std::printf("after update: epoch bumps %llu, invalidated %llu, "
              "re-served %zu matches (%s)\n",
              static_cast<unsigned long long>(after_update.epoch_bumps),
              static_cast<unsigned long long>(after_update.cache.invalidated),
              again.answer.matches.size(),
              again.from_cache ? "cache" : "recomputed");
  if (after_update.epoch_bumps == 0) {
    std::fprintf(stderr, "expected an epoch bump after the update\n");
    return 1;
  }
  std::printf("serving counters: %s\n",
              session.frontend().CountersJson().c_str());
  return 0;
}
