// Hazard navigation over Death-Valley-style terrain (paper Section 7.3).
//
// A rescue mission must route from a source sensor to a destination while
// staying away (in feature space) from a danger signature — here, a hazard
// centered on a terrain elevation band (e.g. a contaminant pooling at valley
// altitudes).  The clustered index answers the path query by screening whole
// clusters as safe/unsafe and drilling into only the boundary clusters,
// which is far cheaper than BFS-flooding the network.
//
//   ./hazard_navigation
#include <cstdio>

#include "cluster/elink.h"
#include "common/rng.h"
#include "data/terrain.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "index/path_query.h"

using namespace elink;

int main() {
  // 1. Scatter 500 sensors over fractal terrain.
  TerrainConfig tcfg;
  tcfg.num_nodes = 500;
  tcfg.radio_range_fraction = 0.07;
  tcfg.seed = 42;
  Result<SensorDataset> ds_r = MakeTerrainDataset(tcfg);
  if (!ds_r.ok()) {
    std::fprintf(stderr, "%s\n", ds_r.status().ToString().c_str());
    return 1;
  }
  SensorDataset& ds = ds_r.value();
  std::printf("terrain: %d sensors, elevations %.0f..%.0f m\n",
              ds.topology.num_nodes(), 175.0, 1996.0);

  // 2. Cluster by elevation and build the index + backbone.
  const double delta = 0.18 * FeatureDiameter(ds);
  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.seed = 2;
  Result<ElinkResult> clustered = RunElink(ds, ecfg, ElinkMode::kImplicit);
  if (!clustered.ok()) {
    std::fprintf(stderr, "%s\n", clustered.status().ToString().c_str());
    return 1;
  }
  const Clustering& clustering = clustered.value().clustering;
  std::printf("ELink: %d elevation zones (delta = %.1f m)\n",
              clustering.num_clusters(), delta);
  const auto tree = BuildClusterTrees(clustering, ds.topology.adjacency);
  const ClusterIndex index =
      ClusterIndex::Build(clustering, tree, ds.features, *ds.metric);
  const Backbone backbone = Backbone::Build(
      clustering, ds.topology.adjacency, nullptr, &ds.features,
      ds.metric.get());
  PathQueryEngine engine(clustering, index, backbone, ds.topology.adjacency,
                         ds.features, *ds.metric, delta);

  // 3. Route missions around a hazard at low-valley elevation.
  Rng rng(5);
  const Feature danger = {400.0};  // Contaminant pools around 400 m.
  std::printf("hazard signature: elevation %.0f m\n", danger[0]);
  for (double gamma : {150.0, 300.0, 500.0}) {
    std::printf("-- safety margin gamma = %.0f m --\n", gamma);
    int found = 0, blocked = 0;
    unsigned long long ours_units = 0, bfs_units = 0;
    for (int mission = 0; mission < 10; ++mission) {
      const int src = static_cast<int>(rng.UniformInt(500));
      const int dst = static_cast<int>(rng.UniformInt(500));
      const PathQueryResult ours = engine.Query(src, dst, danger, gamma);
      const PathQueryResult bfs = engine.BfsBaseline(src, dst, danger, gamma);
      ours_units += ours.stats.total_units();
      bfs_units += bfs.stats.total_units();
      if (ours.found != bfs.found) {
        std::fprintf(stderr, "MISMATCH vs BFS on mission %d\n", mission);
        return 1;
      }
      if (ours.found) {
        ++found;
      } else {
        ++blocked;
      }
    }
    std::printf(
        "  %d routable, %d blocked; clustered search %llu units vs "
        "BFS flood %llu units (%.1fx cheaper)\n",
        found, blocked, ours_units, bfs_units,
        ours_units ? static_cast<double>(bfs_units) / ours_units : 0.0);
  }

  // 4. Show one concrete safe route.
  const PathQueryResult route = engine.Query(0, 499, danger, 200.0);
  if (route.found) {
    std::printf("route 0 -> 499 (margin 200 m): %zu hops, clusters "
                "safe/unsafe/drilled = %d/%d/%d\n",
                route.path.size() - 1, route.clusters_safe,
                route.clusters_unsafe, route.clusters_drilled);
  } else {
    std::printf("route 0 -> 499 (margin 200 m): no safe path exists\n");
  }
  return 0;
}
