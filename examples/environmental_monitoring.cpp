// Environmental monitoring on a Tao-like ocean buoy array.
//
// The scenario of the paper's introduction: a 6x9 buoy grid measures sea
// surface temperature every 10 minutes.  Each buoy fits the seasonal AR
// model, ELink clusters the array into temperature regimes, the slack-based
// maintenance protocol absorbs a week of new measurements, and scientists
// pose "which regions behave like this one?" range queries against the
// distributed index.
//
//   ./environmental_monitoring
#include <cstdio>
#include <vector>

#include "baselines/centralized_cost.h"
#include "cluster/elink.h"
#include "cluster/maintenance.h"
#include "common/rng.h"
#include "data/tao.h"
#include "index/backbone.h"
#include "index/mtree.h"
#include "index/range_query.h"
#include "timeseries/seasonal.h"

using namespace elink;

int main() {
  // 1. Generate the buoy array: one training month plus a live week.
  TaoConfig tao;
  tao.train_days = 30;
  tao.eval_days = 7;
  Result<SensorDataset> ds_r = MakeTaoDataset(tao);
  if (!ds_r.ok()) {
    std::fprintf(stderr, "%s\n", ds_r.status().ToString().c_str());
    return 1;
  }
  SensorDataset& ds = ds_r.value();
  const int n = ds.topology.num_nodes();
  std::printf("deployment: %d buoys on a 6x9 grid, %d-sample training month\n",
              n, tao.train_days * tao.measurements_per_day);

  // 2. Cluster into temperature regimes (with slack headroom for updates).
  const double delta = 0.35 * FeatureDiameter(ds);
  const double slack = 0.1 * delta;
  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.slack = slack;
  ecfg.seed = 1;
  Result<ElinkResult> clustered = RunElink(ds, ecfg, ElinkMode::kImplicit);
  if (!clustered.ok()) {
    std::fprintf(stderr, "%s\n", clustered.status().ToString().c_str());
    return 1;
  }
  std::printf("ELink found %d ocean regimes (delta = %.3f), %llu msg units\n",
              clustered.value().clustering.num_clusters(), delta,
              static_cast<unsigned long long>(
                  clustered.value().stats.total_units()));
  for (const auto& [root, members] : clustered.value().clustering.Groups()) {
    std::printf("  regime led by buoy %2d: %2zu buoys, a1 = %.3f\n", root,
                members.size(), ds.features[root][0]);
  }

  // 3. Stream the live week through the models with in-network maintenance,
  //    and compare its traffic against centralized coefficient shipping.
  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = slack;
  MaintenanceSession session(ds.topology, clustered.value().clustering,
                             ds.features, ds.metric, mcfg);
  CentralizedModelUpdater central(ds.topology, PickBaseStation(ds.topology),
                                  ds.metric, slack, ds.features);
  // Warm-start each buoy's model from its training history so the live
  // stream continues the fitted state rather than re-learning from scratch.
  std::vector<SeasonalArModel> models;
  models.reserve(n);
  for (int i = 0; i < n; ++i) {
    Result<SeasonalArModel> m =
        SeasonalArModel::Train(ds.train_streams[i], tao.measurements_per_day);
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    models.push_back(std::move(m).value());
  }
  const int steps = tao.eval_days * tao.measurements_per_day;
  for (int t = 0; t < steps; ++t) {
    for (int i = 0; i < n; ++i) {
      models[i].Observe(ds.streams[i][t]);
      if (t % 6 == 5) {  // Refresh features every hour of stream time.
        const Feature f = models[i].Feature();
        session.UpdateFeature(i, f);
        central.UpdateFeature(i, f);
      }
    }
  }
  std::printf("live week: in-network maintenance %llu units "
              "(%lld silent updates, %d detaches) vs centralized %llu units\n",
              static_cast<unsigned long long>(session.stats().total_units()),
              session.silent_updates(), session.detaches(),
              static_cast<unsigned long long>(central.stats().total_units()));

  // 4. Index the final state and answer similarity queries.
  const Clustering& clustering = session.clustering();
  const auto tree = BuildClusterTrees(clustering, ds.topology.adjacency);
  const ClusterIndex index = ClusterIndex::Build(
      clustering, tree, session.current_features(), *ds.metric);
  const Backbone backbone = Backbone::Build(
      clustering, ds.topology.adjacency, nullptr,
      &session.current_features(), ds.metric.get());
  RangeQueryEngine engine(clustering, index, backbone,
                          session.current_features(), *ds.metric, delta);

  Rng rng(7);
  std::printf("range queries (\"regions behaving like buoy X\"):\n");
  for (int trial = 0; trial < 5; ++trial) {
    const int probe = static_cast<int>(rng.UniformInt(n));
    const double r = 0.8 * delta;
    const RangeQueryResult res =
        engine.Query(static_cast<int>(rng.UniformInt(n)),
                     session.current_features()[probe], r);
    std::printf(
        "  like buoy %2d (r = %.3f): %2zu matches, %3llu units "
        "(%d clusters excluded, %d included, %d descended)\n",
        probe, r, res.matches.size(),
        static_cast<unsigned long long>(res.stats.total_units()),
        res.clusters_excluded, res.clusters_included, res.clusters_descended);
  }
  return 0;
}
