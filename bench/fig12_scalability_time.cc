// Fig. 12 — Scalability with time on the Tao data (log-scale in the paper).
//
// Cumulative communication over the live month for:
//   Central-raw    every raw measurement shipped to the base station;
//   Central-model  model coefficients shipped on slack violation;
//   ELink (impl/expl), Hierarchical, SpanForest: one-time clustering cost
//                  (incl. backbone for ELink) + in-network update handling.
//
// Paper shape: raw >> model >> distributed, one order of magnitude per step;
// distributed curves stay nearly flat after the initial clustering.
#include <vector>

#include "baselines/centralized_cost.h"
#include "bench/bench_util.h"
#include "cluster/maintenance.h"
#include "data/tao.h"
#include "timeseries/seasonal.h"

using namespace elink;
using namespace elink::bench;

namespace {

/// Days at which the table reports a row (day 1, then every 4th).
std::vector<int> ReportDays(int eval_days) {
  std::vector<int> days;
  for (int day = 1; day <= eval_days; ++day) {
    if (day % 4 == 0 || day == 1) days.push_back(day);
  }
  return days;
}

/// Per-report-day snapshot of a series' cumulative cost in both currencies.
struct CostSnapshot {
  uint64_t units = 0;
  uint64_t bytes = 0;
};

/// Replays the full eval stream, feeding each 6th-step feature refresh to
/// `update` and every raw measurement to `raw_measurement` (may be null),
/// snapshotting `cost` after each report day.  Every series replays with
/// its own copy of the trained models, so series are independent tasks: the
/// model updates are deterministic, hence each series sees bit-identical
/// features whether the replays run in one thread or six.
std::vector<CostSnapshot> ReplaySeries(
    const SensorDataset& ds, const TaoConfig& tao,
    std::vector<SeasonalArModel> models,
    const std::function<void(int, const Feature&)>& update,
    const std::function<void(int)>& raw_measurement,
    const std::function<CostSnapshot()>& cost) {
  const int n = ds.topology.num_nodes();
  const int per_day = tao.measurements_per_day;
  std::vector<CostSnapshot> snapshots;
  for (int day = 1; day <= tao.eval_days; ++day) {
    for (int t = (day - 1) * per_day; t < day * per_day; ++t) {
      for (int i = 0; i < n; ++i) {
        models[i].Observe(ds.streams[i][t]);
        if (raw_measurement) raw_measurement(i);
        if (t % 6 == 5) update(i, models[i].Feature());
      }
    }
    if (day % 4 == 0 || day == 1) snapshots.push_back(cost());
  }
  return snapshots;
}

CostSnapshot StatsCost(const MessageStats& stats) {
  return {stats.total_units(), stats.total_bytes()};
}

}  // namespace

int main(int argc, char** argv) {
  TaoConfig tao;
  tao.eval_days = 28;
  const SensorDataset ds = Unwrap(MakeTaoDataset(tao), "tao");
  const int n = ds.topology.num_nodes();
  const double delta = 0.35 * FeatureDiameter(ds);
  const double slack = 0.1 * delta;

  std::printf("Fig. 12 - cumulative message units over time, Tao-like data "
              "(%d buoys, delta = %.3f, slack = %.3f)\n\n",
              n, delta, slack);

  // Initial clusterings.
  const AlgorithmOutcomes algos =
      RunAllAlgorithms(ds, delta, /*seed=*/12, /*run_spectral=*/false);
  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = slack;

  std::vector<SeasonalArModel> models;
  models.reserve(n);
  for (int i = 0; i < n; ++i) {
    models.push_back(Unwrap(
        SeasonalArModel::Train(ds.train_streams[i], tao.measurements_per_day),
        "train"));
  }

  // Six series, each an independent replay task: the two centralized
  // updaters and four maintenance sessions (one per clustering).  Per-day
  // unit snapshots land in per-series slots; rows are printed after the
  // join, so the table is byte-identical for any --threads value.
  struct Series {
    const char* name;
    uint64_t initial_units;
    uint64_t initial_bytes;
    std::vector<CostSnapshot> snapshots;
  };
  std::vector<Series> series = {
      {"Central-raw", 0, 0, {}},
      {"Central-mdl", 0, 0, {}},
      {"ELink-imp", algos.elink_implicit_units, algos.elink_implicit_bytes,
       {}},
      {"ELink-exp", algos.elink_explicit_units, algos.elink_explicit_bytes,
       {}},
      {"Hierarch", algos.hierarchical_units, algos.hierarchical_bytes, {}},
      {"SpanForest", algos.forest_units, algos.forest_bytes, {}},
  };
  const Clustering* clusterings[4] = {
      &algos.elink_clustering, &algos.elink_clustering,
      &algos.hierarchical_clustering, &algos.forest_clustering};

  ParallelTrialRunner runner(ThreadsFromArgs(argc, argv));
  runner.Run(static_cast<int>(series.size()), [&](int task) {
    if (task == 0) {
      CentralizedRawUpdater raw(ds.topology, PickBaseStation(ds.topology));
      series[0].snapshots = ReplaySeries(
          ds, tao, models, [](int, const Feature&) {},
          [&raw](int i) { raw.Measurement(i); },
          [&raw] { return StatsCost(raw.stats()); });
    } else if (task == 1) {
      CentralizedModelUpdater central(ds.topology,
                                      PickBaseStation(ds.topology),
                                      ds.metric, slack, ds.features);
      series[1].snapshots = ReplaySeries(
          ds, tao, models,
          [&central](int i, const Feature& f) { central.UpdateFeature(i, f); },
          nullptr, [&central] { return StatsCost(central.stats()); });
    } else {
      MaintenanceSession session(ds.topology, *clusterings[task - 2],
                                 ds.features, ds.metric, mcfg);
      series[task].snapshots = ReplaySeries(
          ds, tao, models,
          [&session](int i, const Feature& f) { session.UpdateFeature(i, f); },
          nullptr, [&session] { return StatsCost(session.stats()); });
    }
  });

  PrintRow({"day", "Central-raw", "Central-mdl", "ELink-imp", "ELink-exp",
            "Hierarch", "SpanForest"});
  const std::vector<int> report_days = ReportDays(tao.eval_days);
  for (size_t row = 0; row < report_days.size(); ++row) {
    std::vector<std::string> cells = {Cell(report_days[row])};
    for (const Series& s : series) {
      cells.push_back(Cell(s.initial_units + s.snapshots[row].units));
    }
    PrintRow(cells);
  }

  std::printf("\ncumulative bytes on wire (version-1 frames)\n");
  PrintRow({"day", "Central-raw", "Central-mdl", "ELink-imp", "ELink-exp",
            "Hierarch", "SpanForest"});
  for (size_t row = 0; row < report_days.size(); ++row) {
    std::vector<std::string> cells = {Cell(report_days[row])};
    for (const Series& s : series) {
      cells.push_back(Cell(s.initial_bytes + s.snapshots[row].bytes));
    }
    PrintRow(cells);
  }
  std::printf("\nexpected shape (log scale): raw >> model >> distributed; "
              "distributed curves nearly flat after clustering\n");
  return 0;
}
