// Fig. 12 — Scalability with time on the Tao data (log-scale in the paper).
//
// Cumulative communication over the live month for:
//   Central-raw    every raw measurement shipped to the base station;
//   Central-model  model coefficients shipped on slack violation;
//   ELink (impl/expl), Hierarchical, SpanForest: one-time clustering cost
//                  (incl. backbone for ELink) + in-network update handling.
//
// Paper shape: raw >> model >> distributed, one order of magnitude per step;
// distributed curves stay nearly flat after the initial clustering.
#include <vector>

#include "baselines/centralized_cost.h"
#include "bench/bench_util.h"
#include "cluster/maintenance.h"
#include "data/tao.h"
#include "timeseries/seasonal.h"

using namespace elink;
using namespace elink::bench;

namespace {

/// One distributed algorithm's replay state.
struct DistributedTrack {
  const char* name;
  uint64_t initial_units;
  MaintenanceSession session;
};

}  // namespace

int main() {
  TaoConfig tao;
  tao.eval_days = 28;
  const SensorDataset ds = Unwrap(MakeTaoDataset(tao), "tao");
  const int n = ds.topology.num_nodes();
  const double delta = 0.35 * FeatureDiameter(ds);
  const double slack = 0.1 * delta;

  std::printf("Fig. 12 - cumulative message units over time, Tao-like data "
              "(%d buoys, delta = %.3f, slack = %.3f)\n\n",
              n, delta, slack);

  // Initial clusterings.
  const AlgorithmOutcomes algos =
      RunAllAlgorithms(ds, delta, /*seed=*/12, /*run_spectral=*/false);
  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = slack;
  std::vector<DistributedTrack> tracks;
  tracks.push_back({"ELink-imp", algos.elink_implicit_units,
                    MaintenanceSession(ds.topology, algos.elink_clustering,
                                       ds.features, ds.metric, mcfg)});
  tracks.push_back({"ELink-exp", algos.elink_explicit_units,
                    MaintenanceSession(ds.topology, algos.elink_clustering,
                                       ds.features, ds.metric, mcfg)});
  tracks.push_back({"Hierarch", algos.hierarchical_units,
                    MaintenanceSession(ds.topology,
                                       algos.hierarchical_clustering,
                                       ds.features, ds.metric, mcfg)});
  tracks.push_back({"SpanForest", algos.forest_units,
                    MaintenanceSession(ds.topology, algos.forest_clustering,
                                       ds.features, ds.metric, mcfg)});

  CentralizedRawUpdater raw(ds.topology, PickBaseStation(ds.topology));
  CentralizedModelUpdater central(ds.topology, PickBaseStation(ds.topology),
                                  ds.metric, slack, ds.features);
  std::vector<SeasonalArModel> models;
  models.reserve(n);
  for (int i = 0; i < n; ++i) {
    models.push_back(Unwrap(
        SeasonalArModel::Train(ds.train_streams[i], tao.measurements_per_day),
        "train"));
  }

  PrintRow({"day", "Central-raw", "Central-mdl", "ELink-imp", "ELink-exp",
            "Hierarch", "SpanForest"});
  const int per_day = tao.measurements_per_day;
  for (int day = 1; day <= tao.eval_days; ++day) {
    for (int t = (day - 1) * per_day; t < day * per_day; ++t) {
      for (int i = 0; i < n; ++i) {
        models[i].Observe(ds.streams[i][t]);
        raw.Measurement(i);
        if (t % 6 == 5) {
          const Feature f = models[i].Feature();
          central.UpdateFeature(i, f);
          for (auto& track : tracks) track.session.UpdateFeature(i, f);
        }
      }
    }
    if (day % 4 == 0 || day == 1) {
      PrintRow({Cell(day), Cell(raw.stats().total_units()),
                Cell(central.stats().total_units()),
                Cell(tracks[0].initial_units +
                     tracks[0].session.stats().total_units()),
                Cell(tracks[1].initial_units +
                     tracks[1].session.stats().total_units()),
                Cell(tracks[2].initial_units +
                     tracks[2].session.stats().total_units()),
                Cell(tracks[3].initial_units +
                     tracks[3].session.stats().total_units())});
    }
  }
  std::printf("\nexpected shape (log scale): raw >> model >> distributed; "
              "distributed curves nearly flat after clustering\n");
  return 0;
}
