// Fig. 13 — Scalability with network size on the synthetic data.
//
// Total clustering communication (paper message units) for networks of 100
// to 800 uniformly placed nodes (density 0.8, ~4 radio neighbors).
//
// Paper shape: ELink-implicit < ELink-explicit < SpanForest-ish <<
// Hierarchical << Centralized; distributed algorithms scale linearly while
// the centralized collection and Hierarchical's leader relays blow up.
#include "baselines/centralized_cost.h"
#include "bench/bench_util.h"
#include "cluster/maintenance.h"
#include "data/synthetic.h"
#include "timeseries/rls.h"

using namespace elink;
using namespace elink::bench;

namespace {

/// Replays `steps` stream measurements through per-node AR(1) refits,
/// feeding the same feature updates to a maintenance session (per
/// clustering) and the centralized updater.  Returns nothing; costs
/// accumulate inside the sessions.
void ReplayStream(const SensorDataset& ds, int steps,
                  std::vector<MaintenanceSession*> sessions,
                  CentralizedModelUpdater* central) {
  const int n = ds.topology.num_nodes();
  // Per-node online AR(1) on demeaned values, warm from the training mean.
  std::vector<RlsEstimator> rls(n, RlsEstimator(1));
  std::vector<double> mean(n, 0.0);
  std::vector<double> prev(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double s = 0.0;
    for (double v : ds.train_streams[i]) s += v;
    mean[i] = s / ds.train_streams[i].size();
    prev[i] = ds.train_streams[i].back() - mean[i];
    // Warm the estimator on the training tail so early updates are sane.
    for (size_t t = 1; t < ds.train_streams[i].size(); ++t) {
      rls[i].Observe({ds.train_streams[i][t - 1] - mean[i]},
                     ds.train_streams[i][t] - mean[i]);
    }
  }
  for (int t = 0; t < steps; ++t) {
    for (int i = 0; i < n; ++i) {
      const double x = ds.streams[i][t] - mean[i];
      rls[i].Observe({prev[i]}, x);
      prev[i] = x;
      if (t % 10 == 9) {
        const Feature f = {rls[i].coefficients()[0]};
        for (auto* s : sessions) s->UpdateFeature(i, f);
        central->UpdateFeature(i, f);
      }
    }
  }
}

/// One (network size, topology instance) cell's accumulated costs: paper
/// message units and real bytes on wire (version-1 frames).
struct CellUnits {
  double imp = 0, exp_units = 0, forest = 0, hier = 0, cent = 0;
  double imp_b = 0, exp_b = 0, forest_b = 0, hier_b = 0, cent_b = 0;
};

/// Self-contained: builds its own dataset, clusterings, and maintenance
/// sessions, so cells can run on worker threads with no shared state.
CellUnits RunCell(int n, int trial) {
  SyntheticConfig scfg;
  scfg.num_nodes = n;
  scfg.seed = 3000 + n + 131 * trial;
  SyntheticConfig stream_cfg = scfg;
  stream_cfg.stream_length = 320;
  const SensorDataset ds =
      Unwrap(MakeSyntheticDataset(stream_cfg), "synthetic");
  const double delta = 0.3 * FeatureDiameter(ds);
  const double slack = 0.05 * delta;
  const AlgorithmOutcomes r = RunAllAlgorithms(
      ds, delta, /*seed=*/n + trial, /*run_spectral=*/false);

  // Centralized: every node ships its coefficients to the base station
  // once for the spectral algorithm to cluster there, then re-ships on
  // every slack violation during the stream.
  CentralizedModelUpdater central(ds.topology,
                                  PickBaseStation(ds.topology),
                                  ds.metric, slack,
                                  std::vector<Feature>(n, Feature{1e18}));
  for (int i = 0; i < n; ++i) central.UpdateFeature(i, ds.features[i]);

  // Distributed algorithms absorb the same stream via the Section-6
  // maintenance protocol, each on its own clustering.
  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = slack;
  MaintenanceSession m_elink(ds.topology, r.elink_clustering, ds.features,
                             ds.metric, mcfg);
  MaintenanceSession m_forest(ds.topology, r.forest_clustering,
                              ds.features, ds.metric, mcfg);
  MaintenanceSession m_hier(ds.topology, r.hierarchical_clustering,
                            ds.features, ds.metric, mcfg);
  ReplayStream(ds, 300, {&m_elink, &m_forest, &m_hier}, &central);

  CellUnits out;
  out.imp = static_cast<double>(r.elink_implicit_units +
                                m_elink.stats().total_units());
  out.exp_units = static_cast<double>(r.elink_explicit_units +
                                      m_elink.stats().total_units());
  out.forest = static_cast<double>(r.forest_units +
                                   m_forest.stats().total_units());
  out.hier = static_cast<double>(r.hierarchical_units +
                                 m_hier.stats().total_units());
  out.cent = static_cast<double>(central.stats().total_units());
  out.imp_b = static_cast<double>(r.elink_implicit_bytes +
                                  m_elink.stats().total_bytes());
  out.exp_b = static_cast<double>(r.elink_explicit_bytes +
                                  m_elink.stats().total_bytes());
  out.forest_b = static_cast<double>(r.forest_bytes +
                                     m_forest.stats().total_bytes());
  out.hier_b = static_cast<double>(r.hierarchical_bytes +
                                   m_hier.stats().total_bytes());
  out.cent_b = static_cast<double>(central.stats().total_bytes());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Fig. 13 - clustering + update-handling cost vs network size, "
              "synthetic data (density 0.8, avg degree ~4, delta = 0.3 x "
              "diameter, 300 stream steps)\n\n");
  PrintRow({"N", "ELink-imp", "ELink-exp", "SpanForest", "Hierarch",
            "Centralized"});
  const int kTrials = 3;  // Topology instances averaged per size.
  const std::vector<int> kSizes = {100, 200, 300, 400, 600, 800};

  // Flatten the (size, trial) grid so every cell is one parallel task;
  // results land in per-cell slots and are averaged in grid order below,
  // so the table is byte-identical for any --threads value.
  std::vector<CellUnits> cells(kSizes.size() * kTrials);
  ParallelTrialRunner runner(ThreadsFromArgs(argc, argv));
  runner.Run(static_cast<int>(cells.size()), [&](int task) {
    const int n = kSizes[task / kTrials];
    const int trial = task % kTrials;
    cells[task] = RunCell(n, trial);
  });

  for (size_t s = 0; s < kSizes.size(); ++s) {
    double imp = 0, exp_units = 0, forest = 0, hier = 0, cent = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const CellUnits& c = cells[s * kTrials + trial];
      imp += c.imp;
      exp_units += c.exp_units;
      forest += c.forest;
      hier += c.hier;
      cent += c.cent;
    }
    PrintRow({Cell(kSizes[s]), Cell(imp / kTrials, 0),
              Cell(exp_units / kTrials, 0), Cell(forest / kTrials, 0),
              Cell(hier / kTrials, 0), Cell(cent / kTrials, 0)});
  }

  std::printf("\ntotal bytes on wire (version-1 frames)\n");
  PrintRow({"N", "ELink-imp", "ELink-exp", "SpanForest", "Hierarch",
            "Centralized"});
  for (size_t s = 0; s < kSizes.size(); ++s) {
    double imp = 0, exp_b = 0, forest = 0, hier = 0, cent = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const CellUnits& c = cells[s * kTrials + trial];
      imp += c.imp_b;
      exp_b += c.exp_b;
      forest += c.forest_b;
      hier += c.hier_b;
      cent += c.cent_b;
    }
    PrintRow({Cell(kSizes[s]), Cell(imp / kTrials, 0),
              Cell(exp_b / kTrials, 0), Cell(forest / kTrials, 0),
              Cell(hier / kTrials, 0), Cell(cent / kTrials, 0)});
  }
  std::printf("\nexpected shape: implicit < explicit; distributed linear in "
              "N; Hierarchical and Centralized grow super-linearly\n");
  return 0;
}
