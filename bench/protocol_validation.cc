// Cost-model validation: the same range queries executed (a) by the
// centralized accounting engine and (b) as the fully distributed protocol in
// the event simulator.  Match counts must be identical; transmitted units
// should track each other closely (the engine is the model of the
// protocol); the protocol additionally reports real end-to-end latency in
// simulated hop-time.
#include "bench/bench_util.h"
#include "cluster/maintenance.h"
#include "cluster/maintenance_protocol.h"
#include "common/rng.h"
#include "data/tao.h"
#include "data/terrain.h"
#include "index/path_query.h"
#include "index/path_query_protocol.h"
#include "index/query_protocol.h"
#include "index/range_query.h"
#include "obs/telemetry.h"

using namespace elink;
using namespace elink::bench;

namespace {

void RunSuite(const SensorDataset& ds, const char* name, double delta_frac,
              std::vector<obs::RunReport>* reports) {
  const double delta = delta_frac * FeatureDiameter(ds);
  obs::RunTelemetry elink_tele;
  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.seed = 21;
  ecfg.observer = &elink_tele;
  const ElinkResult clustered =
      Unwrap(RunElink(ds, ecfg, ElinkMode::kImplicit), "elink");
  const auto tree =
      BuildClusterTrees(clustered.clustering, ds.topology.adjacency);
  const ClusterIndex index = ClusterIndex::Build(clustered.clustering, tree,
                                                 ds.features, *ds.metric);
  const Backbone backbone =
      Backbone::Build(clustered.clustering, ds.topology.adjacency, nullptr,
                      &ds.features, ds.metric.get());
  RangeQueryEngine engine(clustered.clustering, index, backbone, ds.features,
                          *ds.metric, delta);
  obs::RunTelemetry query_tele;
  DistributedRangeQuery::ProtocolOptions qopt;
  qopt.observer = &query_tele;
  DistributedRangeQuery protocol(ds.topology, clustered.clustering, index,
                                 backbone, ds.features, ds.metric, qopt);

  obs::RunReport erep =
      elink_tele.MakeReport("elink_implicit", ecfg.seed, clustered.stats);
  erep.SetParam("dataset", name);
  erep.SetParam("delta", delta);
  reports->push_back(std::move(erep));

  std::printf("-- %s (N = %d, %d clusters) --\n", name,
              ds.topology.num_nodes(),
              clustered.clustering.num_clusters());
  PrintRow({"r/delta", "matches", "engine_u", "protocol_u", "latency"});
  Rng rng(5);
  const int n = ds.topology.num_nodes();
  MessageStats query_stats;
  int total_trials = 0;
  for (double rfrac : {0.4, 0.7, 1.0}) {
    long long matches = 0;
    uint64_t engine_units = 0, protocol_units = 0;
    double latency = 0.0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      const Feature q = ds.features[rng.UniformInt(n)];
      const int initiator = static_cast<int>(rng.UniformInt(n));
      const double r = rfrac * delta;
      const RangeQueryResult er = engine.Query(initiator, q, r);
      const DistributedQueryOutcome pr =
          Unwrap(protocol.Run(initiator, q, r), "protocol");
      if (pr.match_count != static_cast<long long>(er.matches.size())) {
        std::fprintf(stderr, "COUNT MISMATCH\n");
        std::abort();
      }
      matches += pr.match_count;
      engine_units += er.stats.total_units();
      protocol_units += pr.stats.total_units();
      latency += pr.latency;
      query_stats.Merge(pr.stats);
      ++total_trials;
    }
    PrintRow({Cell(rfrac, 1), Cell(static_cast<int>(matches / trials)),
              Cell(engine_units / trials), Cell(protocol_units / trials),
              Cell(latency / trials, 1)});
  }
  obs::RunReport qrep =
      query_tele.MakeReport("range_query", qopt.seed, query_stats);
  qrep.SetParam("dataset", name);
  qrep.SetParam("delta", delta);
  qrep.SetParam("trials", total_trials);
  reports->push_back(std::move(qrep));
  std::printf("\n");
}

}  // namespace

namespace {

void ValidateMaintenance(std::vector<obs::RunReport>* reports) {
  std::printf("-- Section-6 maintenance: accounting session vs distributed "
              "protocol --\n");
  TerrainConfig tcfg;
  tcfg.num_nodes = 200;
  tcfg.radio_range_fraction = 0.1;
  const SensorDataset ds = Unwrap(MakeTerrainDataset(tcfg), "terrain");
  const double delta = 0.3 * FeatureDiameter(ds);
  const double slack = 0.1 * delta;
  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.slack = slack;
  ecfg.seed = 31;
  const ElinkResult base =
      Unwrap(RunElink(ds, ecfg, ElinkMode::kImplicit), "elink");

  MaintenanceConfig mcfg;
  mcfg.delta = delta;
  mcfg.slack = slack;
  MaintenanceSession session(ds.topology, base.clustering, ds.features,
                             ds.metric, mcfg);
  DistributedMaintenance protocol(ds.topology, base.clustering, ds.features,
                                  ds.metric, mcfg);
  obs::RunTelemetry maint_tele;
  protocol.set_observer(&maint_tele);
  Rng rng(77);
  std::vector<Feature> current = ds.features;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < ds.topology.num_nodes(); ++i) {
      current[i][0] += rng.Normal(0.0, 0.03 * delta);
      session.UpdateFeature(i, current[i]);
      protocol.ApplyUpdate(i, current[i]);
    }
  }
  const Status inv = protocol.ValidateRootDistanceInvariant(delta + 2 * slack);
  PrintRow({"", "clusters", "units"});
  PrintRow({"session", Cell(session.clustering().num_clusters()),
            Cell(session.stats().total_units())});
  PrintRow({"protocol", Cell(protocol.CurrentClustering().num_clusters()),
            Cell(protocol.stats().total_units())});
  std::printf("   protocol invariant: %s\n\n", inv.ToString().c_str());

  obs::RunReport mrep =
      maint_tele.MakeReport("maintenance", ecfg.seed, protocol.stats());
  mrep.SetParam("nodes", ds.topology.num_nodes());
  mrep.SetParam("rounds", 20);
  mrep.SetParam("delta", delta);
  reports->push_back(std::move(mrep));
}

void ValidatePathQuery(std::vector<obs::RunReport>* reports) {
  std::printf("-- Section-7.3 path query: accounting engine vs distributed "
              "protocol --\n");
  TerrainConfig tcfg;
  tcfg.num_nodes = 250;
  tcfg.radio_range_fraction = 0.1;
  const SensorDataset ds = Unwrap(MakeTerrainDataset(tcfg), "terrain");
  const double delta = 0.22 * FeatureDiameter(ds);
  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.seed = 21;
  const ElinkResult clustered =
      Unwrap(RunElink(ds, ecfg, ElinkMode::kImplicit), "elink");
  const auto tree =
      BuildClusterTrees(clustered.clustering, ds.topology.adjacency);
  const ClusterIndex index = ClusterIndex::Build(clustered.clustering, tree,
                                                 ds.features, *ds.metric);
  const Backbone backbone =
      Backbone::Build(clustered.clustering, ds.topology.adjacency, nullptr,
                      &ds.features, ds.metric.get());
  PathQueryEngine engine(clustered.clustering, index, backbone,
                         ds.topology.adjacency, ds.features, *ds.metric,
                         delta);
  obs::RunTelemetry path_tele;
  PathProtocolOptions popt;
  popt.observer = &path_tele;
  DistributedPathQuery protocol(ds.topology, clustered.clustering, index,
                                backbone, ds.features, ds.metric, popt);

  Rng rng(9);
  const int n = ds.topology.num_nodes();
  int found = 0;
  uint64_t engine_units = 0, protocol_units = 0;
  MessageStats path_stats;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const Feature danger = ds.features[rng.UniformInt(n)];
    const double gamma = rng.Uniform(0.3, 1.2) * delta;
    const int src = static_cast<int>(rng.UniformInt(n));
    const int dst = static_cast<int>(rng.UniformInt(n));
    const PathQueryResult er = engine.Query(src, dst, danger, gamma);
    const PathQueryResult pr =
        Unwrap(protocol.Run(src, dst, danger, gamma), "path protocol");
    // The engine is the exact cost model of this protocol: outcomes and the
    // engine-modeled categories must agree message for message.
    if (pr.found != er.found || pr.path != er.path) {
      std::fprintf(stderr, "PATH MISMATCH\n");
      std::abort();
    }
    for (const char* cat : {"path_route", "path_backbone", "path_drilldown",
                            "path_search", "path_trace"}) {
      if (pr.stats.units(cat) != er.stats.units(cat)) {
        std::fprintf(stderr, "UNIT MISMATCH in %s\n", cat);
        std::abort();
      }
    }
    if (er.found) ++found;
    engine_units += er.stats.total_units();
    protocol_units += pr.stats.total_units();
    path_stats.Merge(pr.stats);
  }
  PrintRow({"", "found", "units"});
  PrintRow({"engine", Cell(found), Cell(engine_units / trials)});
  PrintRow({"protocol", Cell(found), Cell(protocol_units / trials)});
  std::printf("   (protocol adds completion acks under path_collect)\n\n");

  obs::RunReport prep =
      path_tele.MakeReport("path_query", popt.seed, path_stats);
  prep.SetParam("nodes", ds.topology.num_nodes());
  prep.SetParam("trials", trials);
  prep.SetParam("delta", delta);
  reports->push_back(std::move(prep));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string report_out = StringFlag(argc, argv, "--report-out");
  std::vector<obs::RunReport> reports;
  std::printf("Range-query cost-model validation: accounting engine vs the "
              "distributed protocol in the simulator\n\n");
  {
    TaoConfig tao;
    RunSuite(Unwrap(MakeTaoDataset(tao), "tao"), "Tao-like", 0.35, &reports);
  }
  {
    TerrainConfig tcfg;
    tcfg.num_nodes = 400;
    tcfg.radio_range_fraction = 0.08;
    RunSuite(Unwrap(MakeTerrainDataset(tcfg), "terrain"), "Terrain", 0.2,
             &reports);
  }
  ValidateMaintenance(&reports);
  ValidatePathQuery(&reports);
  std::printf("expected: identical match counts; engine and protocol units "
              "within a small factor of each other\n");
  if (!report_out.empty()) WriteRunReports(report_out, reports);
  return 0;
}
