// QPS + tail-latency benchmark of the concurrent serving layer (elink_serve).
//
// Real client threads (default 4) replay Zipf-skewed range/safe-path
// workloads against one ServeSession while a writer thread keeps publishing
// feature updates (epoch bumps + cache invalidation) underneath them — the
// serving system's steady state, not a quiesced read-only snapshot.
//
// Two load modes over the same deterministic op streams:
//   closed loop (default)      every client issues its next op as soon as
//                              the previous answer returns; measures peak
//                              sustainable throughput
//   open loop (--open-qps R)   ops fire on a Poisson schedule at R ops/sec
//                              per client; measures latency under a fixed
//                              offered load (queueing delay included)
//
// Writes a RunReport-based JSON (BENCH_serve.json by default, --out to
// override) with top-level-greppable parameters:
//   qps              answers served per wall-clock second, all clients
//   p50_us/p99_us/p999_us  per-op latency percentiles (microseconds)
//   cache_hit_rate   hits / (hits+misses) — must be > 0 on the skewed mix
// plus the full serve counter ledger and a log2 latency histogram in the
// metrics section.
//
// `--check-against <baseline.json>` (alias `--check-serve-against`) is the
// perf gate: exits non-zero when QPS regressed more than 10% against the
// committed BENCH_serve.json, or when the cache hit rate collapsed to zero.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/clustered_network.h"
#include "data/terrain.h"
#include "obs/run_report.h"
#include "serve/report.h"
#include "serve/session.h"
#include "serve/workload.h"

using namespace elink;

namespace {

uint64_t FlagValue(int argc, char** argv, const char* name, uint64_t dflt) {
  const std::string eq = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      return std::strtoull(argv[i] + eq.size(), nullptr, 10);
    }
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return dflt;
}

double DoubleFlag(int argc, char** argv, const char* name, double dflt) {
  const std::string eq = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      return std::strtod(argv[i] + eq.size(), nullptr);
    }
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      return std::strtod(argv[i + 1], nullptr);
    }
  }
  return dflt;
}

std::string StringFlag(int argc, char** argv, const char* name) {
  const std::string eq = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      return argv[i] + eq.size();
    }
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[i + 1];
  }
  return "";
}

/// Pulls `"key": <number>` out of a baseline report written by this binary.
double JsonNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return 0.0;
  const size_t colon = json.find(':', at + needle.size());
  if (colon == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

std::string ReadWholeFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return "";
  std::string json;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    json.append(buf, got);
  }
  std::fclose(f);
  return json;
}

double Percentile(const std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_us.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = lo + 1 < sorted_us.size() ? lo + 1 : lo;
  const double frac = rank - static_cast<double>(lo);
  return sorted_us[lo] * (1.0 - frac) + sorted_us[hi] * frac;
}

struct ServeOutcome {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double hit_rate = 0.0;
  uint64_t answers = 0;
  uint64_t publishes = 0;
  std::vector<double> latencies_us;  // Merged, sorted.
  serve::ServeCounters counters;
};

ServeOutcome RunServeBench(int nodes, int clients, int ops_per_client,
                           double open_qps, uint64_t seed) {
  TerrainConfig tcfg;
  tcfg.num_nodes = nodes;
  tcfg.radio_range_fraction = 0.12;
  tcfg.seed = 21;
  auto ds_r = MakeTerrainDataset(tcfg);
  if (!ds_r.ok()) {
    std::fprintf(stderr, "terrain: %s\n", ds_r.status().ToString().c_str());
    std::abort();
  }
  const SensorDataset ds = std::move(ds_r).value();

  ClusteredSensorNetwork::Options nopts;
  nopts.delta = 0.3 * FeatureDiameter(ds);
  nopts.seed = 5;
  auto net_r = ClusteredSensorNetwork::Build(ds, nopts);
  if (!net_r.ok()) {
    std::fprintf(stderr, "network: %s\n", net_r.status().ToString().c_str());
    std::abort();
  }
  auto net = std::move(net_r).value();
  serve::ServeSession session(net.get(), serve::ServeFrontend::Options{});

  serve::WorkloadConfig wcfg;
  wcfg.num_clients = clients;
  wcfg.ops_per_client = ops_per_client;
  wcfg.predicate_pool = 64;
  wcfg.zipf_s = 1.1;            // Skewed: repeats feed the cache.
  wcfg.unique_fraction = 0.05;  // Plus a trickle of guaranteed misses.
  wcfg.open_loop_qps = open_qps > 0.0 ? open_qps : 2000.0;
  serve::WorkloadGenerator gen(ds.features, nodes, wcfg, seed);

  std::vector<std::vector<double>> per_client_us(clients);
  std::atomic<bool> clients_done{false};

  const auto bench_t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::vector<serve::WorkloadOp> ops = gen.ClientOps(c);
      const std::vector<double> arrivals =
          open_qps > 0.0 ? gen.ArrivalOffsets(c) : std::vector<double>{};
      std::vector<double>& lat = per_client_us[c];
      lat.reserve(ops.size());
      const auto start = std::chrono::steady_clock::now();
      for (size_t k = 0; k < ops.size(); ++k) {
        if (open_qps > 0.0) {
          // Open loop: wait for the scheduled send time; latency includes
          // any backlog behind a slow answer (coordinated-omission-free).
          const auto due =
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(arrivals[k]));
          std::this_thread::sleep_until(due);
          const auto t1 = std::chrono::steady_clock::now();
          if (ops[k].is_range) {
            session.frontend().Range(ops[k].feature, ops[k].scalar);
          } else {
            session.frontend().SafePath(ops[k].source, ops[k].destination,
                                        ops[k].feature, ops[k].scalar);
          }
          const auto t2 = std::chrono::steady_clock::now();
          lat.push_back(
              std::chrono::duration<double, std::micro>(t2 - t1).count() +
              std::chrono::duration<double, std::micro>(
                  t1 > due ? t1 - due : std::chrono::steady_clock::duration{})
                  .count());
        } else {
          const auto t1 = std::chrono::steady_clock::now();
          if (ops[k].is_range) {
            session.frontend().Range(ops[k].feature, ops[k].scalar);
          } else {
            session.frontend().SafePath(ops[k].source, ops[k].destination,
                                        ops[k].feature, ops[k].scalar);
          }
          const auto t2 = std::chrono::steady_clock::now();
          lat.push_back(
              std::chrono::duration<double, std::micro>(t2 - t1).count());
        }
      }
    });
  }

  // Writer: publish feature nudges for the whole measurement window, so
  // epoch bumps and invalidation sweeps overlap the query load.
  std::thread writer([&] {
    Rng rng(7);
    while (!clients_done.load(std::memory_order_acquire)) {
      const int node = static_cast<int>(rng.UniformInt(nodes));
      Feature f = net->feature(node);
      f[0] += rng.Uniform(-0.005, 0.005);
      session.UpdateFeatureAndPublish(node, f);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (std::thread& t : threads) t.join();
  const auto bench_t1 = std::chrono::steady_clock::now();
  clients_done.store(true, std::memory_order_release);
  writer.join();

  ServeOutcome out;
  for (const auto& lat : per_client_us) {
    out.latencies_us.insert(out.latencies_us.end(), lat.begin(), lat.end());
  }
  std::sort(out.latencies_us.begin(), out.latencies_us.end());
  out.answers = out.latencies_us.size();
  const double secs =
      std::chrono::duration<double>(bench_t1 - bench_t0).count();
  out.qps = secs > 0.0 ? static_cast<double>(out.answers) / secs : 0.0;
  out.p50_us = Percentile(out.latencies_us, 0.50);
  out.p99_us = Percentile(out.latencies_us, 0.99);
  out.p999_us = Percentile(out.latencies_us, 0.999);
  out.counters = session.frontend().Counters();
  out.publishes = out.counters.publishes;
  const uint64_t looked_up = out.counters.cache.hits + out.counters.cache.misses;
  out.hit_rate = looked_up > 0 ? static_cast<double>(out.counters.cache.hits) /
                                     static_cast<double>(looked_up)
                               : 0.0;
  return out;
}

/// Perf gate: QPS within 10% of the committed baseline, cache still hitting.
bool CheckAgainst(const std::string& baseline_path, const ServeOutcome& run) {
  const std::string json = ReadWholeFile(baseline_path);
  if (json.empty()) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return false;
  }
  const double base_qps = JsonNumber(json, "qps");
  if (base_qps <= 0.0) {
    std::fprintf(stderr, "baseline %s has no qps\n", baseline_path.c_str());
    return false;
  }
  const double ratio = run.qps / base_qps;
  std::printf("check: qps %.0f vs baseline %.0f (%.1f%%)\n", run.qps,
              base_qps, 100.0 * ratio);
  bool ok = true;
  if (ratio < 0.9) {
    std::fprintf(stderr, "FAIL: qps dropped more than 10%% against %s\n",
                 baseline_path.c_str());
    ok = false;
  }
  if (run.hit_rate <= 0.0) {
    std::fprintf(stderr,
                 "FAIL: cache hit rate is zero on the skewed workload\n");
    ok = false;
  }
  if (ok) std::printf("check: serve OK (within 10%% of baseline)\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = static_cast<int>(FlagValue(argc, argv, "--nodes", 200));
  const int clients = static_cast<int>(FlagValue(argc, argv, "--clients", 4));
  const int ops = static_cast<int>(FlagValue(argc, argv, "--ops", 20000));
  const double open_qps = DoubleFlag(argc, argv, "--open-qps", 0.0);
  const uint64_t seed = FlagValue(argc, argv, "--seed", 17);
  std::string out_path = StringFlag(argc, argv, "--out");
  if (out_path.empty()) out_path = "BENCH_serve.json";

  const ServeOutcome run = RunServeBench(nodes, clients, ops, open_qps, seed);

  std::printf("mode                %12s\n",
              open_qps > 0.0 ? "open-loop" : "closed-loop");
  std::printf("answers             %12llu\n",
              static_cast<unsigned long long>(run.answers));
  std::printf("qps                 %12.0f\n", run.qps);
  std::printf("p50 latency (us)    %12.1f\n", run.p50_us);
  std::printf("p99 latency (us)    %12.1f\n", run.p99_us);
  std::printf("p99.9 latency (us)  %12.1f\n", run.p999_us);
  std::printf("cache hit rate      %12.3f\n", run.hit_rate);
  std::printf("publishes overlapped%12llu\n",
              static_cast<unsigned long long>(run.publishes));

  obs::RunReport report;
  report.protocol = "serve";
  report.seed = seed;
  report.SetParam("nodes", nodes);
  report.SetParam("clients", clients);
  report.SetParam("ops_per_client", ops);
  report.SetParam("open_qps", open_qps);
  report.SetParam("qps", run.qps);
  report.SetParam("p50_us", run.p50_us);
  report.SetParam("p99_us", run.p99_us);
  report.SetParam("p999_us", run.p999_us);
  report.SetParam("cache_hit_rate", run.hit_rate);
  report.SetParam("publishes", run.publishes);
  serve::ExportCounters(run.counters, "serve.", &report.metrics);
  for (double us : run.latencies_us) {
    report.metrics.RecordHistogram("serve.latency_us", us);
  }
  if (!report.WriteJsonFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  std::string baseline = StringFlag(argc, argv, "--check-against");
  if (baseline.empty()) {
    baseline = StringFlag(argc, argv, "--check-serve-against");
  }
  if (!baseline.empty() && !CheckAgainst(baseline, run)) return 1;
  return 0;
}
