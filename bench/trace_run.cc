// One small traced ELink run: the quickstart entry point into the
// observability layer (src/obs/).  Attaches RunTelemetry chained into a
// Tracer, runs explicit-mode ELink on a small terrain layout, and writes
// whichever outputs were requested:
//
//   --trace-out FILE    Chrome trace_event JSON (open in Perfetto /
//                       chrome://tracing; node id = tid, sim time = ts)
//   --jsonl-out FILE    one JSON object per trace event, in event order
//   --report-out FILE   the run's RunReport (metrics + stats snapshot,
//                       plus the trace ring's utilization section)
//   --seed N            network seed (default 11)
//   --trace-cap N       trace ring capacity in events (default 65536);
//                       undersizing it is the way to see the overflow
//                       banners the exporters emit
//
// After the run a one-line ring-utilization report goes to stdout; if the
// ring overflowed, a warning goes to stderr as well.
//
// Every output is byte-deterministic for a fixed seed: running twice and
// diffing the files is the CI check that tracing stays reproducible.
#include <cstdint>

#include "bench/bench_util.h"
#include "data/terrain.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

using namespace elink;
using namespace elink::bench;

namespace {

void WriteOrDie(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary);
  f << body;
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::abort();
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_out = StringFlag(argc, argv, "--trace-out");
  const std::string jsonl_out = StringFlag(argc, argv, "--jsonl-out");
  const std::string report_out = StringFlag(argc, argv, "--report-out");
  const uint64_t seed = static_cast<uint64_t>(
      std::atoll(StringFlag(argc, argv, "--seed", "11").c_str()));
  const long long trace_cap =
      std::atoll(StringFlag(argc, argv, "--trace-cap", "65536").c_str());
  if (trace_cap <= 0) {
    std::fprintf(stderr, "--trace-cap must be positive\n");
    return 1;
  }

  TerrainConfig tcfg;
  tcfg.num_nodes = 80;
  tcfg.radio_range_fraction = 0.18;
  tcfg.seed = 9;
  const SensorDataset ds = Unwrap(MakeTerrainDataset(tcfg), "terrain");

  obs::Tracer tracer(static_cast<size_t>(trace_cap));
  obs::RunTelemetry telemetry;
  telemetry.set_next(&tracer);

  ElinkConfig cfg;
  cfg.delta = 0.3 * FeatureDiameter(ds);
  cfg.seed = seed;
  cfg.observer = &telemetry;
  const ElinkResult run =
      Unwrap(RunElink(ds, cfg, ElinkMode::kExplicit), "elink");

  obs::RunReport report =
      telemetry.MakeReport("elink_explicit", seed, run.stats);
  report.SetParam("nodes", tcfg.num_nodes);
  report.SetParam("delta", cfg.delta);
  report.SetSectionJson("trace", tracer.StatsJson());

  std::printf("traced ELink run: %d nodes, seed %llu -> %d clusters, "
              "%llu units, %zu trace events\n",
              tcfg.num_nodes, (unsigned long long)seed,
              run.clustering.num_clusters(),
              (unsigned long long)run.stats.total_units(), tracer.size());
  std::printf("trace ring: %zu/%zu events retained (%.1f%% utilization), "
              "%llu recorded, %llu overwritten\n",
              tracer.size(), tracer.capacity(),
              100.0 * static_cast<double>(tracer.size()) /
                  static_cast<double>(tracer.capacity()),
              (unsigned long long)tracer.total_recorded(),
              (unsigned long long)tracer.overwritten());
  if (tracer.overwritten() > 0) {
    std::fprintf(stderr,
                 "warning: trace ring overflowed (%llu events lost); raise "
                 "--trace-cap to keep the whole run\n",
                 (unsigned long long)tracer.overwritten());
  }

  if (!trace_out.empty()) WriteOrDie(trace_out, tracer.ExportChromeTrace());
  if (!jsonl_out.empty()) WriteOrDie(jsonl_out, tracer.ExportJsonl());
  if (!report_out.empty()) WriteOrDie(report_out, report.ToJson());
  return 0;
}
