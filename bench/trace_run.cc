// One small traced ELink run: the quickstart entry point into the
// observability layer (src/obs/).  Attaches RunTelemetry chained into a
// Tracer, runs explicit-mode ELink on a small terrain layout, and writes
// whichever outputs were requested:
//
//   --trace-out FILE    Chrome trace_event JSON (open in Perfetto /
//                       chrome://tracing; node id = tid, sim time = ts)
//   --jsonl-out FILE    one JSON object per trace event, in event order
//   --report-out FILE   the run's RunReport (metrics + stats snapshot)
//   --seed N            network seed (default 11)
//
// Every output is byte-deterministic for a fixed seed: running twice and
// diffing the files is the CI check that tracing stays reproducible.
#include <cstdint>

#include "bench/bench_util.h"
#include "data/terrain.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

using namespace elink;
using namespace elink::bench;

namespace {

void WriteOrDie(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary);
  f << body;
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::abort();
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_out = StringFlag(argc, argv, "--trace-out");
  const std::string jsonl_out = StringFlag(argc, argv, "--jsonl-out");
  const std::string report_out = StringFlag(argc, argv, "--report-out");
  const uint64_t seed = static_cast<uint64_t>(
      std::atoll(StringFlag(argc, argv, "--seed", "11").c_str()));

  TerrainConfig tcfg;
  tcfg.num_nodes = 80;
  tcfg.radio_range_fraction = 0.18;
  tcfg.seed = 9;
  const SensorDataset ds = Unwrap(MakeTerrainDataset(tcfg), "terrain");

  obs::Tracer tracer;
  obs::RunTelemetry telemetry;
  telemetry.set_next(&tracer);

  ElinkConfig cfg;
  cfg.delta = 0.3 * FeatureDiameter(ds);
  cfg.seed = seed;
  cfg.observer = &telemetry;
  const ElinkResult run =
      Unwrap(RunElink(ds, cfg, ElinkMode::kExplicit), "elink");

  obs::RunReport report =
      telemetry.MakeReport("elink_explicit", seed, run.stats);
  report.SetParam("nodes", tcfg.num_nodes);
  report.SetParam("delta", cfg.delta);

  std::printf("traced ELink run: %d nodes, seed %llu -> %d clusters, "
              "%llu units, %zu trace events\n",
              tcfg.num_nodes, (unsigned long long)seed,
              run.clustering.num_clusters(),
              (unsigned long long)run.stats.total_units(), tracer.size());

  if (!trace_out.empty()) WriteOrDie(trace_out, tracer.ExportChromeTrace());
  if (!jsonl_out.empty()) WriteOrDie(jsonl_out, tracer.ExportJsonl());
  if (!report_out.empty()) WriteOrDie(report_out, report.ToJson());
  return 0;
}
