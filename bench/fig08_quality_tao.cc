// Fig. 8 — Clustering quality (number of clusters) vs delta on the Tao data.
//
// Paper shape: ELink tracks the centralized spectral algorithm closely;
// Hierarchical is worse; Spanning forest is worst.  All counts fall as delta
// grows.
#include "bench/bench_util.h"
#include "data/tao.h"

using namespace elink;
using namespace elink::bench;

int main() {
  std::printf("Fig. 8 - clustering quality vs delta, Tao-like data "
              "(6x9 buoys, 1 training month; phi = 0.1 delta, c = 4)\n\n");
  TaoConfig tao;  // Full-size Tao workload.
  const SensorDataset ds = Unwrap(MakeTaoDataset(tao), "tao");
  const double diameter = FeatureDiameter(ds);

  PrintRow({"delta", "ELink", "Centralized", "Hierarchical", "SpanForest"});
  for (double frac : {0.12, 0.16, 0.2, 0.25, 0.3, 0.4, 0.5}) {
    const double delta = frac * diameter;
    const AlgorithmOutcomes r = RunAllAlgorithms(ds, delta, /*seed=*/8);
    PrintRow({Cell(delta, 3), Cell(r.elink_clusters),
              Cell(r.spectral_clusters), Cell(r.hierarchical_clusters),
              Cell(r.forest_clusters)});
  }
  std::printf("\nexpected shape: ELink ~ Centralized < Hierarchical <= "
              "SpanForest; all decrease with delta\n");
  return 0;
}
