// Fig. 10 — Update handling cost vs slack Delta on the Tao stream.
//
// Paper shape: ELink's update protocol (conditions A1-A3 + cluster-local
// escalation) costs ~10x less than centralized coefficient shipping at the
// same slack, and both costs fall as the slack grows.
#include <vector>

#include "baselines/centralized_cost.h"
#include "bench/bench_util.h"
#include "cluster/maintenance.h"
#include "data/tao.h"
#include "timeseries/seasonal.h"

using namespace elink;
using namespace elink::bench;

int main() {
  TaoConfig tao;
  tao.eval_days = 14;
  const SensorDataset ds = Unwrap(MakeTaoDataset(tao), "tao");
  const int n = ds.topology.num_nodes();
  const double delta = 0.35 * FeatureDiameter(ds);

  std::printf("Fig. 10 - update cost vs slack, Tao-like stream "
              "(%d buoys, %d live days, delta = %.3f)\n\n",
              n, tao.eval_days, delta);
  PrintRow({"slack/delta", "ELink", "Centralized", "central/elink"});

  for (double slack_frac : {0.02, 0.05, 0.1, 0.2, 0.3, 0.45}) {
    const double slack = slack_frac * delta;

    ElinkConfig ecfg;
    ecfg.delta = delta;
    ecfg.slack = slack;
    ecfg.seed = 10;
    const ElinkResult clustered =
        Unwrap(RunElink(ds, ecfg, ElinkMode::kImplicit), "elink");

    MaintenanceConfig mcfg;
    mcfg.delta = delta;
    mcfg.slack = slack;
    MaintenanceSession session(ds.topology, clustered.clustering, ds.features,
                               ds.metric, mcfg);
    CentralizedModelUpdater central(ds.topology, PickBaseStation(ds.topology),
                                    ds.metric, slack, ds.features);

    std::vector<SeasonalArModel> models;
    models.reserve(n);
    for (int i = 0; i < n; ++i) {
      models.push_back(Unwrap(
          SeasonalArModel::Train(ds.train_streams[i],
                                 tao.measurements_per_day),
          "train"));
    }
    const int steps = tao.eval_days * tao.measurements_per_day;
    for (int t = 0; t < steps; ++t) {
      for (int i = 0; i < n; ++i) {
        models[i].Observe(ds.streams[i][t]);
        if (t % 6 == 5) {  // Hourly feature refresh.
          const Feature f = models[i].Feature();
          session.UpdateFeature(i, f);
          central.UpdateFeature(i, f);
        }
      }
    }
    const uint64_t elink_units = session.stats().total_units();
    const uint64_t central_units = central.stats().total_units();
    PrintRow({Cell(slack_frac, 2), Cell(elink_units), Cell(central_units),
              Cell(elink_units
                       ? static_cast<double>(central_units) / elink_units
                       : 0.0,
                   1)});
  }
  std::printf("\nexpected shape: ELink ~10x (or more) below Centralized; "
              "both fall with slack\n");
  return 0;
}
