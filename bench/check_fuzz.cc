// Deterministic scenario fuzzer for the whole stack (src/check).
//
// Runs N seeded scenarios per protocol, evaluating every applicable
// invariant checker on each (see src/check/runner.h for the check matrix).
// On failure it prints the violations, a one-command repro, and — after
// greedily shrinking the scenario knobs — the minimal failing repro.
//
//   check_fuzz                                  # 100 scenarios x 4 protocols
//   check_fuzz --scenarios=1000 --threads=8     # CI configuration
//   check_fuzz --seed=1234 --protocol=elink     # reproduce one failure
//   check_fuzz --seed=1234 --protocol=elink --disable=faults,slack
//
// Output is byte-identical for any --threads value: trials run in parallel
// but results are kept in per-index slots and printed in index order.
// Exits 1 when any trial fails, 0 otherwise.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "check/runner.h"
#include "check/scenario.h"

namespace elink {
namespace check {
namespace {

struct TrialSlot {
  Protocol protocol = Protocol::kElink;
  uint64_t seed = 0;
  bool ok = true;
  std::vector<CheckViolation> violations;
  std::string describe;
};

std::string ReproLine(Protocol protocol, uint64_t seed,
                      const ScenarioKnobs& knobs) {
  std::string line = "bench/check_fuzz --seed=" + std::to_string(seed) +
                     " --protocol=" + ProtocolName(protocol);
  const std::string disabled = knobs.DisableList();
  if (!disabled.empty()) line += " --disable=" + disabled;
  return line;
}

int Main(int argc, char** argv) {
  using bench::StringFlag;
  const int threads = bench::ThreadsFromArgs(argc, argv);

  const std::string seed_flag = StringFlag(argc, argv, "--seed");
  uint64_t seed_start =
      std::strtoull(StringFlag(argc, argv, "--seed-start", "1").c_str(),
                    nullptr, 10);
  int scenarios =
      std::atoi(StringFlag(argc, argv, "--scenarios", "100").c_str());
  if (!seed_flag.empty()) {
    // Single-seed repro mode.
    seed_start = std::strtoull(seed_flag.c_str(), nullptr, 10);
    scenarios = 1;
  }
  if (scenarios < 1) {
    std::fprintf(stderr, "--scenarios must be >= 1\n");
    return 2;
  }

  const std::string protocol_flag =
      StringFlag(argc, argv, "--protocol", "all");
  std::vector<Protocol> protocols;
  if (protocol_flag == "all") {
    protocols = AllProtocols();
  } else {
    Result<Protocol> parsed = ProtocolFromName(protocol_flag);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    protocols.push_back(parsed.value());
  }

  Result<ScenarioKnobs> knobs_or =
      ScenarioKnobs::FromDisableList(StringFlag(argc, argv, "--disable"));
  if (!knobs_or.ok()) {
    std::fprintf(stderr, "%s\n", knobs_or.status().ToString().c_str());
    return 2;
  }
  const ScenarioKnobs knobs = knobs_or.value();

  const int total = static_cast<int>(protocols.size()) * scenarios;
  std::printf("check_fuzz: %d scenario(s) x %zu protocol(s), seeds %" PRIu64
              "..%" PRIu64 "%s\n",
              scenarios, protocols.size(), seed_start,
              seed_start + static_cast<uint64_t>(scenarios) - 1,
              knobs.DisableList().empty()
                  ? ""
                  : (" (disabled: " + knobs.DisableList() + ")").c_str());

  // Parallel phase: every (protocol, seed) trial into its own slot.
  std::vector<TrialSlot> slots(total);
  bench::ParallelTrialRunner runner(threads);
  runner.Run(total, [&](int i) {
    TrialSlot& slot = slots[i];
    slot.protocol = protocols[i / scenarios];
    slot.seed = seed_start + static_cast<uint64_t>(i % scenarios);
    CheckOutcome outcome = RunScenario(slot.protocol, slot.seed, knobs);
    slot.ok = outcome.ok();
    slot.violations = std::move(outcome.violations);
    slot.describe = outcome.scenario.Describe();
  });

  // Report phase: index order, so output never depends on --threads.
  int failures = 0;
  for (size_t p = 0; p < protocols.size(); ++p) {
    int ok_count = 0;
    for (int s = 0; s < scenarios; ++s) {
      if (slots[p * scenarios + s].ok) ++ok_count;
    }
    std::printf("  %-12s %d/%d ok\n", ProtocolName(protocols[p]), ok_count,
                scenarios);
    failures += scenarios - ok_count;
  }
  if (failures == 0) {
    std::printf("check_fuzz: all %d trial(s) passed\n", total);
    return 0;
  }

  // Failure detail + serial shrink (determinism matters more than speed on
  // the failure path, and shrinking re-runs trials many times).
  std::printf("check_fuzz: %d trial(s) FAILED\n", failures);
  for (const TrialSlot& slot : slots) {
    if (slot.ok) continue;
    std::printf("\nFAIL %s seed=%" PRIu64 "\n  scenario: %s\n",
                ProtocolName(slot.protocol), slot.seed,
                slot.describe.c_str());
    for (const CheckViolation& v : slot.violations) {
      std::printf("  violation [%s]: %s\n", v.check.c_str(),
                  v.detail.c_str());
    }
    std::printf("  repro:    %s\n",
                ReproLine(slot.protocol, slot.seed, knobs).c_str());
    const ScenarioKnobs minimal =
        ShrinkFailure(slot.protocol, slot.seed, knobs);
    std::printf("  minimal:  %s\n",
                ReproLine(slot.protocol, slot.seed, minimal).c_str());
  }
  return 1;
}

}  // namespace
}  // namespace check
}  // namespace elink

int main(int argc, char** argv) { return elink::check::Main(argc, argv); }
