// Ablations of ELink's design choices (Sections 3.2 and 5):
//   * the switch budget c (paper: 3-5, experiments use 4);
//   * the switch-gain threshold phi (paper: 0.1 delta);
//   * the literal Fig. 16 switch condition vs the prose's gain rule;
//   * ordered sentinel scheduling vs the unordered O(sqrt N) variant, whose
//     "poor clustering quality due to excessive contention" the paper
//     asserts without measurement.
#include "bench/bench_util.h"
#include "data/tao.h"
#include "data/terrain.h"

using namespace elink;
using namespace elink::bench;

namespace {

void RunConfig(const SensorDataset& ds, double delta, const char* label,
               int max_switches, double phi_fraction, bool literal_rule,
               ElinkMode mode) {
  ElinkConfig cfg;
  cfg.delta = delta;
  cfg.max_switches = max_switches;
  cfg.phi_fraction = phi_fraction;
  cfg.literal_figure_switch_rule = literal_rule;
  cfg.seed = 17;
  const ElinkResult r = Unwrap(RunElink(ds, cfg, mode), "elink");
  PrintRow({label, Cell(r.clustering.num_clusters()),
            Cell(r.stats.total_units()), Cell(r.total_switches),
            Cell(r.repaired_fragments), Cell(r.completion_time, 1)});
}

void RunSuite(const SensorDataset& ds, const char* dataset_name) {
  const double delta = 0.3 * FeatureDiameter(ds);
  std::printf("-- %s (N = %d, delta = %.4f) --\n", dataset_name,
              ds.topology.num_nodes(), delta);
  PrintRow({"variant", "clusters", "units", "switches", "repairs", "time"});
  RunConfig(ds, delta, "baseline(c=4)", 4, 0.1, false, ElinkMode::kImplicit);
  RunConfig(ds, delta, "c=0", 0, 0.1, false, ElinkMode::kImplicit);
  RunConfig(ds, delta, "c=1", 1, 0.1, false, ElinkMode::kImplicit);
  RunConfig(ds, delta, "c=8", 8, 0.1, false, ElinkMode::kImplicit);
  RunConfig(ds, delta, "phi=0", 4, 0.0, false, ElinkMode::kImplicit);
  RunConfig(ds, delta, "phi=0.3d", 4, 0.3, false, ElinkMode::kImplicit);
  RunConfig(ds, delta, "fig16-literal", 4, 0.1, true, ElinkMode::kImplicit);
  RunConfig(ds, delta, "unordered", 4, 0.1, false, ElinkMode::kUnordered);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("ELink design ablations (switch budget, gain threshold, "
              "switch rule, sentinel ordering)\n\n");
  {
    TaoConfig tao;
    RunSuite(Unwrap(MakeTaoDataset(tao), "tao"), "Tao-like");
  }
  {
    TerrainConfig tcfg;
    tcfg.num_nodes = 500;
    tcfg.radio_range_fraction = 0.07;
    RunSuite(Unwrap(MakeTerrainDataset(tcfg), "terrain"), "Terrain");
  }
  std::printf("expected: unordered worst quality (cross-level contention); "
              "larger c slightly better quality at more switches\n");
  return 0;
}
