// Fig. 15 — Average per-query range-query cost on the synthetic
// (spatially uncorrelated) data, radius swept over (0.3 delta, 0.7 delta).
//
// Paper shape: with no spatial correlation the clusters are small and the
// delta-compactness screen prunes little, so the gains over TAG shrink
// compared to Fig. 14 (though the index still helps).
#include "baselines/centralized_cost.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "index/range_query.h"
#include "index/tag.h"

using namespace elink;
using namespace elink::bench;

namespace {

double AverageQueryCost(const SensorDataset& ds, const Clustering& clustering,
                        double delta, double radius, int trials,
                        uint64_t seed) {
  const auto tree = BuildClusterTrees(clustering, ds.topology.adjacency);
  const ClusterIndex index =
      ClusterIndex::Build(clustering, tree, ds.features, *ds.metric);
  const Backbone backbone = Backbone::Build(
      clustering, ds.topology.adjacency, nullptr, &ds.features,
      ds.metric.get());
  RangeQueryEngine engine(clustering, index, backbone, ds.features,
                          *ds.metric, delta);
  Rng rng(seed);
  const int n = ds.topology.num_nodes();
  uint64_t total = 0;
  for (int q = 0; q < trials; ++q) {
    const Feature& probe = ds.features[rng.UniformInt(n)];
    total += engine.Query(static_cast<int>(rng.UniformInt(n)), probe, radius)
                 .stats.total_units();
  }
  return static_cast<double>(total) / trials;
}

}  // namespace

int main() {
  SyntheticConfig scfg;
  scfg.num_nodes = 400;
  scfg.seed = 15;
  const SensorDataset ds = Unwrap(MakeSyntheticDataset(scfg), "synthetic");
  const double delta = 0.3 * FeatureDiameter(ds);
  const int trials = 60;

  std::printf("Fig. 15 - avg range-query cost vs radius, synthetic data "
              "(%d nodes, delta = %.4f, %d queries/point)\n\n",
              scfg.num_nodes, delta, trials);

  const AlgorithmOutcomes algos =
      RunAllAlgorithms(ds, delta, /*seed=*/15, /*run_spectral=*/false);
  TagAggregator tag(ds.topology.adjacency, PickBaseStation(ds.topology),
                    ds.features, *ds.metric);
  MessageStats tag_stats;
  tag.RangeQuery(ds.features[0], delta, &tag_stats);
  const double tag_cost = static_cast<double>(tag_stats.total_units());

  PrintRow({"r/delta", "ELink", "Hierarch", "SpanForest", "TAG"});
  for (double rfrac : {0.30, 0.40, 0.50, 0.60, 0.70}) {
    const double radius = rfrac * delta;
    PrintRow({Cell(rfrac, 2),
              Cell(AverageQueryCost(ds, algos.elink_clustering, delta, radius,
                                    trials, 1)),
              Cell(AverageQueryCost(ds, algos.hierarchical_clustering, delta,
                                    radius, trials, 2)),
              Cell(AverageQueryCost(ds, algos.forest_clustering, delta,
                                    radius, trials, 3)),
              Cell(tag_cost)});
  }
  std::printf("\nexpected shape: smaller gains than Fig. 14 - uncorrelated "
              "data gives many small clusters and weak compactness "
              "pruning\n");
  return 0;
}
