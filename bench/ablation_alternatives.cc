// Section 9 substantiated: the communication cost of the clustering
// alternatives the paper *dismisses*, measured rather than assumed.
//
// Distributed k-medoids must broadcast all k medoid features network-wide on
// every PAM iteration (the paper's stated reason for rejecting it); the
// hierarchical baseline pays leader relays each round (Fig. 13's reason its
// curve blows up).  This harness puts those costs next to ELink's O(N).
#include "baselines/kmedoids.h"
#include "bench/bench_util.h"
#include "data/tao.h"
#include "data/terrain.h"

using namespace elink;
using namespace elink::bench;

namespace {

void RunSuite(const SensorDataset& ds, const char* name) {
  const double delta = 0.3 * FeatureDiameter(ds);
  std::printf("-- %s (N = %d, delta = %.4f) --\n", name,
              ds.topology.num_nodes(), delta);
  const AlgorithmOutcomes algos =
      RunAllAlgorithms(ds, delta, /*seed=*/19, /*run_spectral=*/false);

  KMedoidsConfig kcfg;
  kcfg.delta = delta;
  const KMedoidsResult km = Unwrap(
      KMedoidsDeltaClustering(ds.topology.adjacency, ds.features, *ds.metric,
                              kcfg),
      "kmedoids");

  PrintRow({"algorithm", "clusters", "units"});
  PrintRow({"ELink-imp", Cell(algos.elink_clusters),
            Cell(algos.elink_implicit_units)});
  PrintRow({"SpanForest", Cell(algos.forest_clusters),
            Cell(algos.forest_units)});
  PrintRow({"Hierarch", Cell(algos.hierarchical_clusters),
            Cell(algos.hierarchical_units)});
  PrintRow({"k-medoids", Cell(km.clustering.num_clusters()),
            Cell(km.hypothetical_stats.total_units())});
  std::printf("   (k-medoids: %d PAM iterations, each a network-wide "
              "medoid broadcast)\n\n",
              km.total_iterations);
}

}  // namespace

int main() {
  std::printf("Section 9 alternatives - clustering communication, measured\n\n");
  {
    TaoConfig tao;
    RunSuite(Unwrap(MakeTaoDataset(tao), "tao"), "Tao-like");
  }
  {
    TerrainConfig tcfg;
    tcfg.num_nodes = 300;
    tcfg.radio_range_fraction = 0.09;
    RunSuite(Unwrap(MakeTerrainDataset(tcfg), "terrain"), "Terrain");
  }
  std::printf("expected: k-medoids' broadcast-per-iteration cost dwarfs "
              "every in-network algorithm (the paper's Section-9 argument)\n");
  return 0;
}
