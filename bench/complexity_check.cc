// Theorems 2 & 3 — empirical validation of ELink's O(sqrt(N) log N) running
// time and O(N) message complexity on grid networks, for both signalling
// techniques (explicit additionally under asynchronous delays).
//
// The normalized columns (units/N, time / (sqrt(N) log4(N))) must stay flat
// (bounded) across a 16x size range for the bounds to hold empirically.
#include <cmath>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "sim/topology.h"

using namespace elink;
using namespace elink::bench;

namespace {

/// Smooth synthetic features on the grid so clusterings are non-trivial.
std::vector<Feature> SmoothGridFeatures(int side, uint64_t seed) {
  Rng rng(seed);
  std::vector<Feature> f;
  f.reserve(static_cast<size_t>(side) * side);
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      f.push_back({10.0 * std::sin(3.0 * r / side) +
                   8.0 * std::cos(2.5 * c / side) + rng.Normal(0.0, 0.3)});
    }
  }
  return f;
}

}  // namespace

int main() {
  std::printf("Theorems 2/3 - time and message scaling of ELink on grids "
              "(delta = 6, smooth feature field)\n\n");
  PrintRow({"N", "mode", "units", "units/N", "time", "t/(rtN*log4N)"});
  const WeightedEuclidean metric = WeightedEuclidean::Euclidean(1);
  for (int side : {8, 12, 16, 24, 32}) {
    const int n = side * side;
    const Topology topo = MakeGridTopology(side, side);
    const std::vector<Feature> features = SmoothGridFeatures(side, 99);
    const double norm = std::sqrt(n) * (std::log(n) / std::log(4.0));

    struct ModeSpec {
      const char* name;
      ElinkMode mode;
      bool synchronous;
    };
    const ModeSpec modes[] = {
        {"implicit", ElinkMode::kImplicit, true},
        {"explicit", ElinkMode::kExplicit, true},
        {"expl-async", ElinkMode::kExplicit, false},
    };
    for (const auto& spec : modes) {
      ElinkConfig cfg;
      cfg.delta = 6.0;
      cfg.seed = n;
      cfg.synchronous = spec.synchronous;
      const ElinkResult r =
          Unwrap(RunElink(topo, features, metric, cfg, spec.mode), "elink");
      PrintRow({Cell(n), spec.name, Cell(r.stats.total_units()),
                Cell(static_cast<double>(r.stats.total_units()) / n, 2),
                Cell(r.completion_time, 1),
                Cell(r.completion_time / norm, 2)});
    }
  }
  std::printf("\nexpected shape: units/N and t/(rtN*log4N) bounded (flat) "
              "across the size sweep\n");
  return 0;
}
