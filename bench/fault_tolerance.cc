// Robustness sweep: ELink and the distributed range query under message
// loss and node crashes (fault model of sim/fault.h).
//
// For each (drop probability, crashed-node fraction) cell the harness runs
// explicit-mode ELink over ReliableChannel with the completion watchdog
// armed, and compares the resulting clustering against the fault-free run of
// the same seed (pairwise Rand index).  It then replays a fixed batch of
// range queries through the distributed protocol under the same fault plan
// with aggregation deadlines, reporting how much of the true answer
// survives.  Crashy cells run twice — permanent crashes and a paired
// crash-with-recovery variant (same victims, back after 60 time units) —
// isolating what recovery alone buys.  Output is CSV, one row per cell.
#include <algorithm>
#include <set>

#include "bench/bench_util.h"
#include "cluster/quadtree.h"
#include "common/rng.h"
#include "data/terrain.h"
#include "index/query_protocol.h"
#include "obs/telemetry.h"

using namespace elink;
using namespace elink::bench;

namespace {

// Fraction of node pairs on which the two partitions agree (same cluster in
// both or different cluster in both).  1.0 = identical partitions.
double RandIndex(const Clustering& a, const Clustering& b) {
  const int n = static_cast<int>(a.root_of.size());
  long long agree = 0, pairs = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      ++pairs;
      if (a.SameCluster(i, j) == b.SameCluster(i, j)) ++agree;
    }
  }
  return pairs == 0 ? 1.0 : static_cast<double>(agree) / pairs;
}

uint64_t UnitsWithSuffix(const MessageStats& stats, const std::string& sfx) {
  uint64_t total = 0;
  for (const auto& [cat, units] : stats.units_by_category()) {
    if (cat.size() >= sfx.size() &&
        cat.compare(cat.size() - sfx.size(), sfx.size(), sfx) == 0) {
      total += units;
    }
  }
  return total;
}

// Picks `count` crash victims, sparing the nodes whose loss makes every run
// degenerate in the same uninteresting way (the quadtree coordinator, the
// backbone root, and the query initiators).
FaultPlan MakePlan(double drop_p, int count, int n,
                   const std::set<int>& spared, Rng* rng) {
  FaultPlan plan;
  plan.drop_probability = drop_p;
  std::set<int> chosen;
  while (static_cast<int>(chosen.size()) < count) {
    const int v = static_cast<int>(rng->UniformInt(n));
    if (spared.count(v)) continue;
    if (!chosen.insert(v).second) continue;
    plan.node_crashes.push_back({v, rng->Uniform(10.0, 60.0)});
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string report_out = StringFlag(argc, argv, "--report-out");
  TerrainConfig tcfg;
  tcfg.num_nodes = 200;
  tcfg.radio_range_fraction = 0.1;
  const SensorDataset ds = Unwrap(MakeTerrainDataset(tcfg), "terrain");
  const int n = ds.topology.num_nodes();
  const double delta = 0.3 * FeatureDiameter(ds);

  ElinkConfig base_cfg;
  base_cfg.delta = delta;
  base_cfg.seed = 9;
  const ElinkResult baseline =
      Unwrap(RunElink(ds, base_cfg, ElinkMode::kExplicit), "elink baseline");

  // Query-side fixtures are built from the fault-free clustering: the sweep
  // measures query-time robustness, not index construction under faults.
  const auto tree =
      BuildClusterTrees(baseline.clustering, ds.topology.adjacency);
  const ClusterIndex index = ClusterIndex::Build(baseline.clustering, tree,
                                                 ds.features, *ds.metric);
  const Backbone backbone =
      Backbone::Build(baseline.clustering, ds.topology.adjacency, nullptr,
                      &ds.features, ds.metric.get());

  const QuadtreeDecomposition quad = QuadtreeDecomposition::Build(ds.topology);
  std::set<int> spared = {quad.root(), backbone.tree_root()};

  // A fixed trial batch shared by every cell (and by the fault-free truth).
  struct Trial {
    int initiator;
    Feature q;
    double r;
    long long truth;
  };
  const int kTrials = 10;
  std::vector<Trial> trials;
  {
    Rng qrng(17);
    for (int t = 0; t < kTrials; ++t) {
      Trial tr;
      tr.initiator = static_cast<int>(qrng.UniformInt(n));
      tr.q = ds.features[qrng.UniformInt(n)];
      tr.r = qrng.Uniform(0.4, 1.0) * delta;
      tr.truth = 0;
      for (int i = 0; i < n; ++i) {
        if (ds.metric->Distance(ds.features[i], tr.q) <= tr.r) ++tr.truth;
      }
      trials.push_back(tr);
      spared.insert(tr.initiator);
    }
  }

  std::printf(
      "drop_p,crash_frac,recovery,crashed,elink_completed,rand_index,"
      "unclustered,completion_time,retx_units,ack_units,dropped_units,"
      "elink_bytes,dropped_bytes,query_bytes,"
      "query_recall,query_complete_frac,query_answered_frac\n");

  // Every cell's fault plan is drawn serially from one RNG up front, so the
  // plans (and hence every number below) are independent of how many threads
  // later run the cells.  Each crashy cell is paired with a recovery twin:
  // the same victims and crash times, but every node comes back 60 time
  // units later — isolating what recovery alone buys.
  struct SweepCell {
    double drop_p;
    double crash_frac;
    bool recovery = false;
    int crashed;
    FaultPlan plan;
    std::string row;
  };
  std::vector<SweepCell> cells;
  Rng crash_rng(4242);
  for (double drop_p : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    for (double crash_frac : {0.0, 0.05, 0.10}) {
      SweepCell cell;
      cell.drop_p = drop_p;
      cell.crash_frac = crash_frac;
      cell.crashed = static_cast<int>(crash_frac * n);
      cell.plan = MakePlan(drop_p, cell.crashed, n, spared, &crash_rng);
      if (cell.crashed > 0) {
        SweepCell twin = cell;
        twin.recovery = true;
        for (auto& crash : twin.plan.node_crashes) {
          crash.recover_at = crash.crash_at + 60.0;
        }
        cells.push_back(std::move(cell));
        cells.push_back(std::move(twin));
      } else {
        cells.push_back(std::move(cell));
      }
    }
  }

  // Cells share only read-only state (dataset, baseline clustering, index,
  // backbone, trial batch); each owns its simulations, so they parallelize
  // freely.  Rows are formatted into per-cell slots and printed in sweep
  // order after the join.
  // Two reports per cell (ELink rebuild, query batch), filled into
  // index-ordered slots so --report-out bytes match for any thread count.
  std::vector<obs::RunReport> reports(2 * cells.size());

  ParallelTrialRunner runner(ThreadsFromArgs(argc, argv));
  runner.Run(static_cast<int>(cells.size()), [&](int c) {
    SweepCell& cell = cells[c];
    const FaultPlan& plan = cell.plan;

    // -- ELink under faults ---------------------------------------------
    obs::RunTelemetry elink_tele;
    ElinkConfig cfg = base_cfg;
    cfg.observer = &elink_tele;
    cfg.fault = plan;
    if (plan.enabled()) {
      cfg.reliable_transport = true;
      cfg.reliable.rto = 8.0;
      cfg.reliable.backoff = 1.5;
      cfg.reliable.max_retries = 8;
      // Larger than the full retransmit span (~rto * sum of backoffs).
      cfg.completion_timeout = 450.0;
    }
    const ElinkResult run =
        Unwrap(RunElink(ds, cfg, ElinkMode::kExplicit), "elink faulted");

    // -- Queries under the same plan ------------------------------------
    DistributedRangeQuery::ProtocolOptions qopt;
    qopt.seed = 9;
    qopt.fault = plan;
    if (plan.enabled()) {
      qopt.reliable_transport = true;
      // rto must exceed a round trip of the longest routed leg (tens of
      // hops between far leaders and the backbone root on this layout).
      qopt.reliable.rto = 40.0;
      qopt.reliable.backoff = 1.5;
      qopt.reliable.max_retries = 10;
      // Well above the fault-free end-to-end latency (~70 time units on
      // this layout) plus the full retransmit span, so a flush means a
      // subtree genuinely went dark — deadlines must not race healthy
      // aggregation or in-flight retransmissions.
      qopt.node_deadline = 2500.0;
      qopt.query_deadline = 30000.0;
    }
    obs::RunTelemetry query_tele;
    qopt.observer = &query_tele;
    DistributedRangeQuery protocol(ds.topology, baseline.clustering, index,
                                   backbone, ds.features, ds.metric, qopt);
    double recall = 0.0;
    int complete = 0, answered = 0;
    MessageStats query_stats;
    for (const Trial& tr : trials) {
      const DistributedQueryOutcome out =
          Unwrap(protocol.Run(tr.initiator, tr.q, tr.r), "query");
      if (out.answer_received) ++answered;
      if (out.complete) ++complete;
      recall += tr.truth == 0
                    ? 1.0
                    : std::min<double>(out.match_count, tr.truth) /
                          static_cast<double>(tr.truth);
      query_stats.Merge(out.stats);
    }

    // -- Per-cell run reports -------------------------------------------
    obs::RunReport erep =
        elink_tele.MakeReport("elink_explicit", cfg.seed, run.stats);
    erep.SetParam("drop_p", cell.drop_p);
    erep.SetParam("crash_frac", cell.crash_frac);
    erep.SetParam("recovery", cell.recovery ? 1 : 0);
    erep.SetParam("crashed", cell.crashed);
    erep.metrics.SetGauge("rand_index",
                          RandIndex(baseline.clustering, run.clustering));
    erep.metrics.SetGauge("completed", run.completed ? 1.0 : 0.0);
    reports[2 * c] = std::move(erep);

    obs::RunReport qrep =
        query_tele.MakeReport("range_query", qopt.seed, query_stats);
    qrep.SetParam("drop_p", cell.drop_p);
    qrep.SetParam("crash_frac", cell.crash_frac);
    qrep.SetParam("recovery", cell.recovery ? 1 : 0);
    qrep.SetParam("trials", kTrials);
    qrep.metrics.SetGauge("recall", recall / kTrials);
    qrep.metrics.SetGauge("complete_fraction",
                          static_cast<double>(complete) / kTrials);
    qrep.metrics.SetGauge("answered_fraction",
                          static_cast<double>(answered) / kTrials);
    reports[2 * c + 1] = std::move(qrep);

    char row[320];
    std::snprintf(row, sizeof(row),
                  "%.2f,%.2f,%d,%d,%d,%.4f,%d,%.1f,%llu,%llu,%llu,%llu,%llu,"
                  "%llu,%.3f,%.2f,%.2f\n",
                  cell.drop_p, cell.crash_frac, cell.recovery ? 1 : 0,
                  cell.crashed, run.completed ? 1 : 0,
                  RandIndex(baseline.clustering, run.clustering),
                  run.unclustered_nodes, run.completion_time,
                  (unsigned long long)UnitsWithSuffix(run.stats, ".retx"),
                  (unsigned long long)UnitsWithSuffix(run.stats, ".ack"),
                  (unsigned long long)run.stats.dropped_units(),
                  (unsigned long long)run.stats.total_bytes(),
                  (unsigned long long)run.stats.dropped_bytes(),
                  (unsigned long long)query_stats.total_bytes(),
                  recall / kTrials,
                  static_cast<double>(complete) / kTrials,
                  static_cast<double>(answered) / kTrials);
    cell.row = row;
  });

  for (const SweepCell& cell : cells) {
    std::fputs(cell.row.c_str(), stdout);
  }
  if (!report_out.empty()) WriteRunReports(report_out, reports);
  return 0;
}
