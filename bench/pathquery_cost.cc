// Path-query cost vs safety margin on the terrain data (paper Section 7.3;
// the quantitative results were deferred to the paper's full version, so the
// comparison here is our reproduction of the described design: clustered
// safe-region search vs BFS flooding).
#include "bench/bench_util.h"
#include "common/rng.h"
#include "data/terrain.h"
#include "index/path_query.h"

using namespace elink;
using namespace elink::bench;

int main(int argc, char** argv) {
  const std::string report_out = StringFlag(argc, argv, "--report-out");
  TerrainConfig tcfg;
  tcfg.num_nodes = 600;
  tcfg.radio_range_fraction = 0.06;
  tcfg.seed = 5;
  const SensorDataset ds = Unwrap(MakeTerrainDataset(tcfg), "terrain");
  const double delta = 0.18 * FeatureDiameter(ds);
  const int trials = 40;

  std::printf("Path queries - avg per-query cost vs safety margin gamma, "
              "terrain data (%d sensors, delta = %.1f m, danger at valley "
              "elevations, %d missions/point)\n\n",
              tcfg.num_nodes, delta, trials);

  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.seed = 16;
  const ElinkResult clustered =
      Unwrap(RunElink(ds, ecfg, ElinkMode::kImplicit), "elink");
  const auto tree =
      BuildClusterTrees(clustered.clustering, ds.topology.adjacency);
  const ClusterIndex index = ClusterIndex::Build(clustered.clustering, tree,
                                                 ds.features, *ds.metric);
  const Backbone backbone =
      Backbone::Build(clustered.clustering, ds.topology.adjacency, nullptr,
                      &ds.features, ds.metric.get());
  PathQueryEngine engine(clustered.clustering, index, backbone,
                         ds.topology.adjacency, ds.features, *ds.metric,
                         delta);

  std::vector<obs::RunReport> reports;
  PrintRow({"gamma(m)", "ELink", "BFS", "gain", "routable%"});
  for (double gamma : {100.0, 200.0, 300.0, 450.0, 600.0}) {
    Rng rng(900 + static_cast<uint64_t>(gamma));
    uint64_t ours = 0, bfs = 0;
    int routable = 0;
    MessageStats sweep_stats;
    obs::RunReport rep;
    for (int q = 0; q < trials; ++q) {
      const int src = static_cast<int>(rng.UniformInt(tcfg.num_nodes));
      const int dst = static_cast<int>(rng.UniformInt(tcfg.num_nodes));
      const Feature danger = {rng.Uniform(250.0, 700.0)};
      const PathQueryResult a = engine.Query(src, dst, danger, gamma);
      const PathQueryResult b = engine.BfsBaseline(src, dst, danger, gamma);
      if (a.found != b.found) {
        std::fprintf(stderr, "feasibility mismatch\n");
        return 1;
      }
      ours += a.stats.total_units();
      bfs += b.stats.total_units();
      if (a.found) ++routable;
      sweep_stats.Merge(a.stats);
      rep.metrics.RecordHistogram("query_units",
                                  static_cast<double>(a.stats.total_units()));
      rep.metrics.RecordHistogram("bfs_units",
                                  static_cast<double>(b.stats.total_units()));
    }
    rep.protocol = "path_query_engine";
    rep.seed = 900 + static_cast<uint64_t>(gamma);
    rep.SetParam("gamma", gamma);
    rep.SetParam("trials", trials);
    rep.SetParam("nodes", tcfg.num_nodes);
    rep.SetParam("delta", delta);
    rep.CaptureStats(sweep_stats);
    rep.metrics.SetGauge("routable_fraction",
                         static_cast<double>(routable) / trials);
    reports.push_back(std::move(rep));
    PrintRow({Cell(gamma, 0), Cell(ours / trials), Cell(bfs / trials),
              Cell(ours ? static_cast<double>(bfs) / ours : 0.0, 1),
              Cell(100.0 * routable / trials, 0)});
  }
  if (!report_out.empty()) WriteRunReports(report_out, reports);
  std::printf("\nexpected shape: clustered safe-region search far below BFS "
              "flooding at every margin\n");
  return 0;
}
