// Churn figure — incremental self-healing vs full re-clustering, by churn
// rate.
//
// A terrain deployment is clustered once, then a scheduled sequence of
// crash-with-repair events plays out over a fixed window.  Two repair
// strategies are charged for the same schedule:
//
//  * incremental — the Section-6 maintenance protocol runs churn-aware:
//    orphan adoption, re-probe on repair, epoch bumps.  Cost is the repair
//    traffic of one long-lived session.
//  * rebuild — a strawman that re-runs the full ELink construction over the
//    live topology after every topology change (crash and repair alike).
//    Cost is the sum of those construction runs.
//
// Expected shape: incremental stays well below rebuild at low-to-moderate
// churn, and the gap narrows as the event rate grows.  Output is CSV; pass
// --report-out for machine-readable run reports.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/maintenance_protocol.h"
#include "common/rng.h"
#include "data/terrain.h"
#include "obs/telemetry.h"
#include "sim/churn.h"
#include "sim/graph.h"

using namespace elink;
using namespace elink::bench;

namespace {

// Crash-with-repair schedule with k non-overlapping absences spread over
// [t0, t0 + window].  Victims are drawn so the live graph stays connected
// while they are away (a rebuild over a partitioned network cannot even
// run), which also keeps the two strategies comparable.
ChurnPlan MakeSchedule(int k, const Topology& topo, Rng* rng) {
  ChurnPlan plan;
  const double t0 = 10.0;
  const double window = 120.0;
  const double slot = window / k;
  const int n = topo.num_nodes();
  for (int i = 0; i < k; ++i) {
    int victim = -1;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const int v = static_cast<int>(rng->UniformInt(n));
      std::vector<char> mask(n, 1);
      mask[v] = 0;
      if (IsInducedConnected(topo.adjacency, mask)) {
        victim = v;
        break;
      }
    }
    if (victim < 0) continue;  // Every candidate was an articulation point.
    ChurnPlan::NodeCrash crash;
    crash.node = victim;
    crash.crash_at = t0 + i * slot + rng->Uniform(0.0, 0.2 * slot);
    crash.recover_at = crash.crash_at + rng->Uniform(0.4, 0.7) * slot;
    plan.crashes.push_back(crash);
  }
  return plan;
}

// The live induced deployment for a rebuild: present nodes keep their
// positions and surviving radio edges, with ids compacted.
void LiveSubgraph(const Topology& full, const std::vector<char>& present,
                  const std::vector<Feature>& features, Topology* sub,
                  std::vector<Feature>* sub_features) {
  const int n = full.num_nodes();
  std::vector<int> remap(n, -1);
  sub->positions.clear();
  sub->adjacency.clear();
  sub_features->clear();
  for (int i = 0; i < n; ++i) {
    if (!present[i]) continue;
    remap[i] = static_cast<int>(sub->positions.size());
    sub->positions.push_back(full.positions[i]);
    sub_features->push_back(features[i]);
  }
  sub->adjacency.resize(sub->positions.size());
  for (int i = 0; i < n; ++i) {
    if (remap[i] < 0) continue;
    for (int nb : full.adjacency[i]) {
      if (remap[nb] >= 0) sub->adjacency[remap[i]].push_back(remap[nb]);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string report_out = StringFlag(argc, argv, "--report-out");
  TerrainConfig tcfg;
  tcfg.num_nodes = 150;
  tcfg.radio_range_fraction = 0.12;
  const SensorDataset ds = Unwrap(MakeTerrainDataset(tcfg), "terrain");
  const int n = ds.topology.num_nodes();
  const double delta = 0.3 * FeatureDiameter(ds);

  ElinkConfig ecfg;
  ecfg.delta = delta;
  ecfg.seed = 11;
  const ElinkResult baseline =
      Unwrap(RunElink(ds, ecfg, ElinkMode::kExplicit), "elink baseline");

  std::printf("events,incremental_units,rebuild_units,"
              "incremental_bytes,rebuild_bytes,rebuild_runs,"
              "rebuild_over_incremental,epoch_bumps\n");

  std::vector<obs::RunReport> reports;
  for (int events : {1, 2, 4, 8, 16, 24}) {
    Rng rng(2026 + events);
    const ChurnPlan plan = MakeSchedule(events, ds.topology, &rng);

    // -- Incremental: one churn-aware maintenance session ----------------
    MaintenanceConfig mcfg;
    mcfg.delta = delta;
    obs::RunTelemetry tele;
    DistributedMaintenance dm(ds.topology, baseline.clustering, ds.features,
                              ds.metric, mcfg, /*synchronous=*/false,
                              /*seed=*/7, FaultPlan{}, plan);
    dm.set_observer(&tele);
    dm.RunToQuiescence();
    const uint64_t incremental = dm.stats().total_units();
    const uint64_t incremental_bytes = dm.stats().total_bytes();
    long long epoch_bumps = 0;
    for (int i = 0; i < n; ++i) {
      if (dm.NodeLive(i) && dm.CurrentClustering().root_of[i] == i) {
        epoch_bumps += dm.cluster_epoch(i);
      }
    }

    // -- Rebuild: full ELink on the live topology after every change -----
    struct Change {
      double at;
      int node;
      bool back;
    };
    std::vector<Change> timeline;
    for (const auto& crash : plan.crashes) {
      timeline.push_back({crash.crash_at, crash.node, false});
      timeline.push_back({crash.recover_at, crash.node, true});
    }
    std::sort(timeline.begin(), timeline.end(),
              [](const Change& a, const Change& b) { return a.at < b.at; });
    uint64_t rebuild = 0;
    uint64_t rebuild_bytes = 0;
    int rebuild_runs = 0;
    std::vector<char> present(n, 1);
    for (const Change& ch : timeline) {
      present[ch.node] = ch.back ? 1 : 0;
      Topology sub;
      std::vector<Feature> sub_features;
      LiveSubgraph(ds.topology, present, ds.features, &sub, &sub_features);
      const ElinkResult run = Unwrap(
          RunElink(sub, sub_features, *ds.metric, ecfg, ElinkMode::kExplicit),
          "elink rebuild");
      rebuild += run.stats.total_units();
      rebuild_bytes += run.stats.total_bytes();
      ++rebuild_runs;
    }

    std::printf("%d,%llu,%llu,%llu,%llu,%d,%.2f,%lld\n", events,
                (unsigned long long)incremental, (unsigned long long)rebuild,
                (unsigned long long)incremental_bytes,
                (unsigned long long)rebuild_bytes, rebuild_runs,
                incremental ? static_cast<double>(rebuild) / incremental : 0.0,
                epoch_bumps);

    obs::RunReport rep = tele.MakeReport("maintenance_churn", 7, dm.stats());
    rep.SetParam("events", events);
    rep.metrics.SetGauge("incremental_units",
                         static_cast<double>(incremental));
    rep.metrics.SetGauge("rebuild_units", static_cast<double>(rebuild));
    rep.metrics.SetGauge("incremental_bytes",
                         static_cast<double>(incremental_bytes));
    rep.metrics.SetGauge("rebuild_bytes", static_cast<double>(rebuild_bytes));
    rep.metrics.SetGauge("epoch_bumps", static_cast<double>(epoch_bumps));
    reports.push_back(std::move(rep));
  }
  if (!report_out.empty()) WriteRunReports(report_out, reports);
  return 0;
}
