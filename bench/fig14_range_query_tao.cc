// Fig. 14 — Average per-query cost of range queries on the Tao data, with
// the query radius swept over (0.7 delta, 0.9 delta).
//
// The range-query engine runs on each algorithm's clustering (ELink,
// Hierarchical, Spanning forest); TAG's fixed 2x-tree-edges cost is the
// no-pruning baseline.  Paper shape: on this spatially compact data the
// delta-compactness screen prunes most clusters, putting ELink (and
// Hierarchical) well below TAG — up to ~5x — with the gap narrowing as the
// radius grows.
#include "baselines/centralized_cost.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "data/tao.h"
#include "index/range_query.h"
#include "index/tag.h"

using namespace elink;
using namespace elink::bench;

namespace {

/// Average per-query units of the clustered engine over `trials` queries.
double AverageQueryCost(const SensorDataset& ds, const Clustering& clustering,
                        double delta, double radius, int trials,
                        uint64_t seed) {
  const auto tree = BuildClusterTrees(clustering, ds.topology.adjacency);
  const ClusterIndex index =
      ClusterIndex::Build(clustering, tree, ds.features, *ds.metric);
  const Backbone backbone = Backbone::Build(
      clustering, ds.topology.adjacency, nullptr, &ds.features,
      ds.metric.get());
  RangeQueryEngine engine(clustering, index, backbone, ds.features,
                          *ds.metric, delta);
  Rng rng(seed);
  const int n = ds.topology.num_nodes();
  uint64_t total = 0;
  for (int q = 0; q < trials; ++q) {
    const Feature& probe = ds.features[rng.UniformInt(n)];
    const int initiator = static_cast<int>(rng.UniformInt(n));
    RangeQueryResult res = engine.Query(initiator, probe, radius);
    // Exactness is asserted by the test suite; here we only charge cost.
    total += res.stats.total_units();
  }
  return static_cast<double>(total) / trials;
}

}  // namespace

int main() {
  TaoConfig tao;
  const SensorDataset ds = Unwrap(MakeTaoDataset(tao), "tao");
  const double delta = 0.35 * FeatureDiameter(ds);
  const int trials = 60;

  std::printf("Fig. 14 - avg range-query cost vs radius, Tao-like data "
              "(delta = %.3f, %d queries/point, query features sampled from "
              "nodes)\n\n",
              delta, trials);

  const AlgorithmOutcomes algos =
      RunAllAlgorithms(ds, delta, /*seed=*/14, /*run_spectral=*/false);
  TagAggregator tag(ds.topology.adjacency, PickBaseStation(ds.topology),
                    ds.features, *ds.metric);
  MessageStats tag_stats;
  tag.RangeQuery(ds.features[0], delta, &tag_stats);
  const double tag_cost = static_cast<double>(tag_stats.total_units());

  PrintRow({"r/delta", "ELink", "Hierarch", "SpanForest", "TAG"});
  for (double rfrac : {0.70, 0.75, 0.80, 0.85, 0.90}) {
    const double radius = rfrac * delta;
    PrintRow({Cell(rfrac, 2),
              Cell(AverageQueryCost(ds, algos.elink_clustering, delta, radius,
                                    trials, 1)),
              Cell(AverageQueryCost(ds, algos.hierarchical_clustering, delta,
                                    radius, trials, 2)),
              Cell(AverageQueryCost(ds, algos.forest_clustering, delta,
                                    radius, trials, 3)),
              Cell(tag_cost)});
  }
  std::printf("\nexpected shape: clustered engines well below TAG's fixed "
              "cost (up to ~5x); gap narrows as r grows\n");
  return 0;
}
