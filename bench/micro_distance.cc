// Micro-benchmark of the distance kernel layer: scalar oracle vs each
// dispatched SIMD path over the dimensionalities and batch sizes the
// simulator actually uses (Tao d=4, terrain d=2, sweeps up to d=8; batches
// from a handful of M-tree children to whole-network oracle scans).
//
// Writes BENCH_distance.json (override with --out): for every (dim, batch)
// cell, million distances per second through the scalar kernel and through
// each SIMD level the host supports, plus the speedup of the best level.
// Results are throughput-only — bit-identity of the kernels is asserted by
// tests/simd_kernel_test.cc, not here (though this harness still verifies
// checksum equality across paths as a cheap tripwire).
//
// `--reps N` scales the measurement loop; the ctest smoke run uses a tiny
// rep count so the harness is exercised on every test run.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "metric/distance.h"
#include "metric/feature_pool.h"
#include "metric/simd.h"

using namespace elink;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

uint64_t FlagValue(int argc, char** argv, const char* name, uint64_t dflt) {
  const std::string eq = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      return std::strtoull(argv[i] + eq.size(), nullptr, 10);
    }
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return dflt;
}

std::string StringFlag(int argc, char** argv, const char* name) {
  const std::string eq = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      return argv[i] + eq.size();
    }
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[i + 1];
  }
  return "";
}

/// Million distances per second for one kernel over `reps` sweeps of the
/// pool; `sink` accumulates a checksum so the loop cannot be elided.
double MeasureMdps(WeightedL2SoAFn fn, const FeaturePool& pool,
                   const std::vector<double>& q,
                   const std::vector<double>& w, uint64_t reps,
                   std::vector<double>* out, double* sink) {
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t r = 0; r < reps; ++r) {
    fn(pool.soa(), pool.stride(), pool.size(), pool.dim(), q.data(), w.data(),
       out->data());
    *sink += (*out)[r % pool.size()];
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double total =
      static_cast<double>(reps) * static_cast<double>(pool.size());
  return total / Seconds(t0, t1) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t reps = FlagValue(argc, argv, "--reps", 2000);
  std::string out_path = StringFlag(argc, argv, "--out");
  if (out_path.empty()) out_path = "BENCH_distance.json";

  const int dims[] = {2, 4, 8};
  const size_t batches[] = {8, 64, 1024};
  const SimdLevel active = ActiveSimdLevel();
  std::printf("dispatched level: %s\n", SimdLevelName(active));

  std::string json = "{\n  \"level\": \"";
  json += SimdLevelName(active);
  json += "\",\n  \"cells\": [\n";
  bool first = true;
  double sink = 0.0;

  for (const int dim : dims) {
    for (const size_t batch : batches) {
      Rng rng(7u * static_cast<uint64_t>(dim) + batch);
      std::vector<Feature> feats(batch, Feature(dim));
      for (auto& f : feats) {
        for (double& v : f) v = rng.Uniform(-10.0, 10.0);
      }
      std::vector<double> q(dim), w(dim);
      for (double& v : q) v = rng.Uniform(-10.0, 10.0);
      for (double& v : w) v = rng.Uniform(0.1, 2.0);
      const FeaturePool pool(feats);
      std::vector<double> out(batch), ref(batch);

      const double scalar_mdps = MeasureMdps(
          WeightedL2SoAAt(SimdLevel::kScalar), pool, q, w, reps, &ref, &sink);
      double best_mdps = scalar_mdps;
      const char* best_name = "scalar";
      std::string cell_levels;
      for (const SimdLevel lvl : {SimdLevel::kSse2, SimdLevel::kAvx2}) {
        const WeightedL2SoAFn fn = WeightedL2SoAAt(lvl);
        if (fn == nullptr) continue;
        const double mdps = MeasureMdps(fn, pool, q, w, reps, &out, &sink);
        // Tripwire: every path must produce the same bytes as the scalar
        // oracle (the real assertion lives in simd_kernel_test).
        if (std::memcmp(out.data(), ref.data(),
                        batch * sizeof(double)) != 0) {
          std::fprintf(stderr, "FAIL: %s kernel diverged from scalar\n",
                       SimdLevelName(lvl));
          return 1;
        }
        char buf[96];
        std::snprintf(buf, sizeof(buf), ", \"%s_mdps\": %.1f",
                      SimdLevelName(lvl), mdps);
        cell_levels += buf;
        if (mdps > best_mdps) {
          best_mdps = mdps;
          best_name = SimdLevelName(lvl);
        }
      }

      std::printf(
          "dim %d batch %5zu: scalar %8.1f Mdist/s, best %-6s %8.1f "
          "Mdist/s (%.2fx)\n",
          dim, batch, scalar_mdps, best_name, best_mdps,
          best_mdps / scalar_mdps);
      char cell[256];
      std::snprintf(cell, sizeof(cell),
                    "%s    {\"dim\": %d, \"batch\": %zu, \"scalar_mdps\": "
                    "%.1f%s, \"speedup\": %.2f}",
                    first ? "" : ",\n", dim, batch, scalar_mdps,
                    cell_levels.c_str(), best_mdps / scalar_mdps);
      json += cell;
      first = false;
    }
  }
  json += "\n  ]\n}\n";

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  if (sink == -1.0) std::printf("impossible\n");
  return 0;
}
