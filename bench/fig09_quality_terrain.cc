// Fig. 9 — Clustering quality vs delta on the Death-Valley-like terrain,
// averaged over random topologies.
//
// Paper setup: 2500 sensors scattered over the elevation raster, 5 random
// topologies.  Default here: 600 sensors x 3 topologies so the centralized
// spectral baseline finishes in seconds; pass --full for the paper-scale
// sweep (2500 x 5, spectral disabled above 1500 nodes for runtime).
#include <cstring>

#include "bench/bench_util.h"
#include "data/terrain.h"

using namespace elink;
using namespace elink::bench;

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const int num_nodes = full ? 2500 : 600;
  const int topologies = full ? 5 : 3;
  const bool run_spectral = num_nodes <= 1500;

  std::printf("Fig. 9 - clustering quality vs delta, terrain data "
              "(%d sensors, avg over %d random topologies)\n\n",
              num_nodes, topologies);
  PrintRow({"delta", "ELink", run_spectral ? "Centralized" : "Centralized*",
            "Hierarchical", "SpanForest"});

  for (double frac : {0.1, 0.15, 0.2, 0.3, 0.4, 0.5}) {
    double sum_delta = 0, sum_elink = 0, sum_spec = 0, sum_hier = 0,
           sum_forest = 0;
    for (int topo = 0; topo < topologies; ++topo) {
      TerrainConfig tcfg;
      tcfg.num_nodes = num_nodes;
      tcfg.radio_range_fraction = full ? 0.035 : 0.07;
      tcfg.seed = 100 + topo;
      const SensorDataset ds = Unwrap(MakeTerrainDataset(tcfg), "terrain");
      const double delta = frac * FeatureDiameter(ds);
      const AlgorithmOutcomes r =
          RunAllAlgorithms(ds, delta, /*seed=*/topo, run_spectral);
      sum_delta += delta;
      sum_elink += r.elink_clusters;
      sum_spec += r.spectral_clusters;
      sum_hier += r.hierarchical_clusters;
      sum_forest += r.forest_clusters;
    }
    PrintRow({Cell(sum_delta / topologies, 1), Cell(sum_elink / topologies, 1),
              run_spectral ? Cell(sum_spec / topologies, 1)
                           : std::string("n/a"),
              Cell(sum_hier / topologies, 1),
              Cell(sum_forest / topologies, 1)});
  }
  std::printf("\nexpected shape: ELink ~ Centralized < Hierarchical <= "
              "SpanForest\n");
  if (!run_spectral) {
    std::printf("* spectral skipped at this scale (centralized runtime)\n");
  }
  return 0;
}
